//! Single-account takeover — the attack's step 3 (§V-A3).
//!
//! Given a victim, a target service, an interception capability and the
//! dossier harvested so far, pick an attackable authentication path,
//! trigger its challenges, intercept/read the codes, present the
//! harvested factors, reset the password and loot the profile page.

use crate::dossier::Dossier;
use crate::error::AttackError;
use crate::intercept::Interceptor;
use actfort_ecosystem::factor::{CredentialFactor, ServiceId};
use actfort_ecosystem::host::Ecosystem;
use actfort_ecosystem::info::PersonalInfoKind;
use actfort_ecosystem::policy::{AuthPath, Platform, Purpose};
use actfort_ecosystem::service::{AccountLocator, AuthOutcome, FactorResponse, SessionToken};
use actfort_gsm::identity::Msisdn;

/// A successfully compromised account.
#[derive(Debug, Clone)]
pub struct CompromisedAccount {
    /// The service taken.
    pub service: ServiceId,
    /// A live session on the account.
    pub session: SessionToken,
    /// The platform used.
    pub platform: Platform,
    /// Whether the password was reset (full takeover) rather than a mere
    /// one-time sign-in.
    pub took_over: bool,
    /// The path that fell.
    pub path: AuthPath,
}

/// Whether `factor` can be produced with current capabilities.
fn obtainable(factor: &CredentialFactor, dossier: &Dossier) -> bool {
    match factor {
        CredentialFactor::SmsCode => true, // the interceptor's job
        CredentialFactor::CellphoneNumber => true,
        CredentialFactor::EmailCode | CredentialFactor::EmailLink => dossier.mailbox_owned(),
        CredentialFactor::RealName => dossier.has_full(PersonalInfoKind::RealName),
        CredentialFactor::CitizenId => dossier.has_full(PersonalInfoKind::CitizenId),
        CredentialFactor::BankcardNumber => dossier.has_full(PersonalInfoKind::BankcardNumber),
        CredentialFactor::SecurityQuestion => dossier.has_full(PersonalInfoKind::SecurityAnswers),
        CredentialFactor::CustomerService => dossier.identity_fact_count() >= 3,
        CredentialFactor::LinkedAccount(s) => dossier.owns(s),
        _ => false,
    }
}

/// Orders candidate (platform, purpose, index, path) tuples: full
/// takeovers first, then sign-ins, mobile before web (the paper found
/// mobile ends weaker).
fn candidate_paths(
    spec: &actfort_ecosystem::spec::ServiceSpec,
    dossier: &Dossier,
) -> Vec<(Platform, Purpose, usize, AuthPath)> {
    let mut out = Vec::new();
    for purpose in [Purpose::PasswordReset, Purpose::SignIn] {
        for platform in [Platform::MobileApp, Platform::Web] {
            let available = match platform {
                Platform::Web => spec.has_web,
                Platform::MobileApp => spec.has_mobile,
            };
            if !available {
                continue;
            }
            for (index, path) in spec.paths_for(platform, purpose).into_iter().enumerate() {
                if path.factors.iter().all(|f| obtainable(f, dossier)) {
                    out.push((platform, purpose, index, path.clone()));
                }
            }
        }
    }
    out
}

/// Compromises the victim's account at `service`.
///
/// # Errors
///
/// - [`AttackError::NoViablePath`] when no path is attackable yet (the
///   dossier may need more harvesting first).
/// - Interception and ecosystem failures from the underlying steps.
pub fn compromise(
    eco: &mut Ecosystem,
    victim_phone: &Msisdn,
    service: &ServiceId,
    interceptor: &mut Interceptor,
    dossier: &mut Dossier,
) -> Result<CompromisedAccount, AttackError> {
    let spec = eco
        .service(service)
        .ok_or_else(|| AttackError::Ecosystem(actfort_ecosystem::EcosystemError::UnknownService(
            service.to_string(),
        )))?
        .spec()
        .clone();
    let victim_email = eco
        .people()
        .find(|p| &p.phone == victim_phone)
        .map(|p| p.email.clone())
        .ok_or_else(|| AttackError::ReconFailed(format!("no person with {victim_phone}")))?;

    let candidates = candidate_paths(&spec, dossier);
    if candidates.is_empty() {
        return Err(AttackError::NoViablePath(format!(
            "{service}: dossier holds {} facts, mailbox {}",
            dossier.identity_fact_count(),
            if dossier.mailbox_owned() { "owned" } else { "not owned" }
        )));
    }

    let mut last_err: Option<AttackError> = None;
    for (platform, purpose, index, path) in candidates {
        match attempt_path(
            eco,
            victim_phone,
            &victim_email,
            service,
            &spec.name,
            platform,
            purpose,
            index,
            &path,
            interceptor,
            dossier,
        ) {
            Ok(acct) => {
                loot_profile(eco, service, &acct, dossier);
                // Space attempts out past OTP rate-limit windows.
                eco.advance_ms(61_000);
                return Ok(acct);
            }
            Err(e) => {
                eco.advance_ms(61_000);
                last_err = Some(e);
            }
        }
    }
    Err(last_err.unwrap_or_else(|| AttackError::NoViablePath(service.to_string())))
}

#[allow(clippy::too_many_arguments)]
fn attempt_path(
    eco: &mut Ecosystem,
    victim_phone: &Msisdn,
    victim_email: &str,
    service: &ServiceId,
    service_name: &str,
    platform: Platform,
    purpose: Purpose,
    index: usize,
    path: &AuthPath,
    interceptor: &mut Interceptor,
    dossier: &mut Dossier,
) -> Result<CompromisedAccount, AttackError> {
    let challenge = eco.begin_auth(
        service,
        &AccountLocator::Phone(victim_phone.clone()),
        platform,
        purpose,
        index,
    )?;

    let mut responses: Vec<FactorResponse> = Vec::new();
    for factor in &path.factors {
        let response = match factor {
            CredentialFactor::SmsCode => {
                let code = interceptor.next_code(eco, service_name)?;
                // Key-cracking latency is real attack time; charge it.
                eco.advance_ms(code.latency_ms);
                dossier.log.push(format!("{service}: intercepted SMS code {}", code.code));
                FactorResponse::SmsCode(code.code)
            }
            CredentialFactor::EmailCode | CredentialFactor::EmailLink => {
                let mailbox = eco
                    .mail
                    .mailbox(victim_email)
                    .ok_or_else(|| AttackError::InterceptionFailed("mailbox missing".into()))?;
                let msg = mailbox.latest_from(service.as_str()).ok_or_else(|| {
                    AttackError::InterceptionFailed(format!("no mail from {service}"))
                })?;
                let code = msg.extract_code().ok_or_else(|| {
                    AttackError::InterceptionFailed("mail contains no code".into())
                })?;
                dossier.log.push(format!("{service}: read email code {code} from stolen mailbox"));
                if matches!(factor, CredentialFactor::EmailLink) {
                    FactorResponse::EmailLink(code)
                } else {
                    FactorResponse::EmailCode(code)
                }
            }
            CredentialFactor::CellphoneNumber => {
                FactorResponse::CellphoneNumber(victim_phone.digits().to_owned())
            }
            CredentialFactor::RealName => FactorResponse::RealName(
                dossier
                    .full_value(PersonalInfoKind::RealName)
                    .ok_or_else(|| AttackError::NoViablePath("real name unknown".into()))?,
            ),
            CredentialFactor::CitizenId => FactorResponse::CitizenId(
                dossier
                    .full_value(PersonalInfoKind::CitizenId)
                    .ok_or_else(|| AttackError::NoViablePath("citizen ID unknown".into()))?,
            ),
            CredentialFactor::BankcardNumber => FactorResponse::BankcardNumber(
                dossier
                    .full_value(PersonalInfoKind::BankcardNumber)
                    .ok_or_else(|| AttackError::NoViablePath("bankcard unknown".into()))?,
            ),
            CredentialFactor::SecurityQuestion => FactorResponse::SecurityAnswer(
                dossier
                    .full_value(PersonalInfoKind::SecurityAnswers)
                    .ok_or_else(|| AttackError::NoViablePath("security answer unknown".into()))?,
            ),
            CredentialFactor::CustomerService => {
                FactorResponse::CustomerService(dossier.known_facts())
            }
            CredentialFactor::LinkedAccount(s) => FactorResponse::LinkedAccount(s.clone()),
            other => {
                return Err(AttackError::NoViablePath(format!("{service}: cannot forge {other}")))
            }
        };
        responses.push(response);
    }

    let live_links = dossier.owned_services();
    let outcome = eco.complete_auth(service, challenge.id, &responses, &live_links)?;
    let (session, took_over) = match outcome {
        AuthOutcome::Session(t) => (t, false),
        AuthOutcome::PaymentAuthorised(t) => (t, false),
        AuthOutcome::ResetGranted(grant) => {
            let svc = eco.service_mut(service).expect("service exists");
            let token = svc.apply_reset(grant, &format!("pwned-{service}"))?;
            (token, true)
        }
    };
    Ok(CompromisedAccount {
        service: service.clone(),
        session,
        platform,
        took_over,
        path: path.clone(),
    })
}

/// Reads every available profile page of a freshly compromised account
/// into the dossier.
fn loot_profile(
    eco: &Ecosystem,
    service: &ServiceId,
    acct: &CompromisedAccount,
    dossier: &mut Dossier,
) {
    let Some(svc) = eco.service(service) else { return };
    let spec = svc.spec();
    dossier.mark_owned(service, spec.domain);
    for platform in [Platform::Web, Platform::MobileApp] {
        let available = match platform {
            Platform::Web => spec.has_web,
            Platform::MobileApp => spec.has_mobile,
        };
        if !available {
            continue;
        }
        if let Ok(fields) = svc.view_profile(acct.session, platform) {
            dossier.absorb_profile(service, &fields);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actfort_ecosystem::dataset::curated_services;
    use actfort_ecosystem::population::PopulationBuilder;
    use actfort_gsm::network::NetworkConfig;

    fn world() -> (Ecosystem, Msisdn, String) {
        let mut eco = Ecosystem::with_network(
            3,
            NetworkConfig { session_key_bits: 16, ..Default::default() },
        );
        let mut person = PopulationBuilder::new(21).person();
        person.email = format!("victim{}@gmail.com", person.id.0);
        let phone = person.phone.clone();
        let email = person.email.clone();
        eco.add_person(person).unwrap();
        for spec in curated_services() {
            eco.add_service(spec).unwrap();
        }
        eco.enroll_everyone().unwrap();
        (eco, phone, email)
    }

    #[test]
    fn compromises_sms_only_service_directly() {
        let (mut eco, phone, email) = world();
        let mut icpt = Interceptor::passive(&eco, 16).unwrap();
        let mut dossier = Dossier::new(phone.digits(), &email);
        let acct =
            compromise(&mut eco, &phone, &"ctrip".into(), &mut icpt, &mut dossier).unwrap();
        assert!(acct.took_over, "reset path preferred");
        // Profile loot: the full citizen ID.
        assert!(dossier.has_full(PersonalInfoKind::CitizenId));
        assert!(dossier.owns(&"ctrip".into()));
    }

    #[test]
    fn paypal_needs_mailbox_first() {
        let (mut eco, phone, email) = world();
        let mut icpt = Interceptor::passive(&eco, 16).unwrap();
        let mut dossier = Dossier::new(phone.digits(), &email);
        // Directly: no viable path (email code unreachable).
        let err = compromise(&mut eco, &phone, &"paypal".into(), &mut icpt, &mut dossier);
        assert!(matches!(err, Err(AttackError::NoViablePath(_))));
        // Take Gmail, then PayPal falls.
        compromise(&mut eco, &phone, &"gmail".into(), &mut icpt, &mut dossier).unwrap();
        assert!(dossier.mailbox_owned());
        let acct =
            compromise(&mut eco, &phone, &"paypal".into(), &mut icpt, &mut dossier).unwrap();
        assert!(acct.took_over);
    }

    #[test]
    fn union_bank_resists() {
        let (mut eco, phone, email) = world();
        let mut icpt = Interceptor::passive(&eco, 16).unwrap();
        let mut dossier = Dossier::new(phone.digits(), &email);
        let err = compromise(&mut eco, &phone, &"union-bank".into(), &mut icpt, &mut dossier);
        assert!(matches!(err, Err(AttackError::NoViablePath(_))));
    }

    #[test]
    fn active_interceptor_compromises_stealthily() {
        let (mut eco, phone, email) = world();
        let mut icpt = Interceptor::active(&mut eco, &phone).unwrap();
        let mut dossier = Dossier::new(phone.digits(), &email);
        let acct = compromise(&mut eco, &phone, &"jd".into(), &mut icpt, &mut dossier).unwrap();
        assert!(acct.took_over);
        // Victim's handset saw no OTP at all.
        let sub = eco.gsm.subscriber_by_msisdn(&phone).unwrap();
        assert!(eco.gsm.terminal(sub).unwrap().inbox().is_empty());
        icpt.release(&mut eco);
    }

    #[test]
    fn linked_account_sso_path() {
        let (mut eco, phone, email) = world();
        let mut icpt = Interceptor::passive(&eco, 16).unwrap();
        let mut dossier = Dossier::new(phone.digits(), &email);
        compromise(&mut eco, &phone, &"gmail".into(), &mut icpt, &mut dossier).unwrap();
        // Expedia signs in via the linked Gmail account.
        let acct =
            compromise(&mut eco, &phone, &"expedia".into(), &mut icpt, &mut dossier).unwrap();
        assert_eq!(acct.service, ServiceId::new("expedia"));
    }
}
