//! End-to-end attack scenarios: random and targeted (§II).

use crate::chain::{ChainReactionAttack, ChainReport, InterceptMode};
use crate::error::AttackError;
use crate::recon;
use actfort_core::profile::AttackerProfile;
use actfort_ecosystem::factor::ServiceId;
use actfort_ecosystem::host::Ecosystem;
use actfort_ecosystem::policy::Platform;
use actfort_ecosystem::population::{LeakDatabase, Person, PhishingWifi};

/// Result of a random sweep over harvested victims.
#[derive(Debug)]
pub struct RandomAttackReport {
    /// Numbers harvested by the phishing AP.
    pub harvested: usize,
    /// Per-victim chain outcomes (successes only).
    pub successes: Vec<ChainReport>,
    /// Victims whose chains failed, with the reason.
    pub failures: Vec<(String, AttackError)>,
}

/// Aggregate campaign statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignSummary {
    /// Victims harvested by the AP.
    pub harvested: usize,
    /// Victims whose chain completed.
    pub compromised: usize,
    /// Success rate over harvested victims (0–1).
    pub success_rate: f64,
    /// Mean accounts compromised per successful chain.
    pub mean_accounts_per_chain: f64,
    /// Payments extracted.
    pub payments: usize,
    /// Mean simulated time per successful chain, milliseconds.
    pub mean_elapsed_ms: f64,
}

impl RandomAttackReport {
    /// Computes aggregate statistics for the campaign.
    pub fn summary(&self) -> CampaignSummary {
        let compromised = self.successes.len();
        let denom = compromised.max(1) as f64;
        CampaignSummary {
            harvested: self.harvested,
            compromised,
            success_rate: if self.harvested == 0 {
                0.0
            } else {
                compromised as f64 / self.harvested as f64
            },
            mean_accounts_per_chain: self
                .successes
                .iter()
                .map(|s| s.compromised.len() as f64)
                .sum::<f64>()
                / denom,
            payments: self.successes.iter().filter(|s| s.receipt.is_some()).count(),
            mean_elapsed_ms: self
                .successes
                .iter()
                .map(|s| s.sim_elapsed_ms as f64)
                .sum::<f64>()
                / denom,
        }
    }
}

/// Runs a **random attack**: deploy phishing Wi-Fi, harvest numbers from
/// the crowd, run a chain against each harvested victim.
pub fn random_attack(
    eco: &mut Ecosystem,
    crowd: &[Person],
    target: &ServiceId,
    platform: Platform,
    connect_rate_percent: u8,
) -> RandomAttackReport {
    let mut ap = PhishingWifi::deploy("Airport-Free-WiFi");
    let harvested = recon::harvest_random_targets(&mut ap, crowd, connect_rate_percent);
    let attack = ChainReactionAttack {
        platform,
        profile: AttackerProfile::paper_default(),
        mode: InterceptMode::PassiveSniffing { crack_bits: 16 },
        max_chains: 8,
        ..Default::default()
    };
    let mut successes = Vec::new();
    let mut failures = Vec::new();
    for phone in &harvested {
        match attack.execute(eco, phone, target) {
            Ok(report) => successes.push(report),
            Err(e) => failures.push((phone.to_string(), e)),
        }
    }
    RandomAttackReport { harvested: harvested.len(), successes, failures }
}

/// Runs a **targeted attack**: resolve the named victim through the leak
/// database, seed the dossier with the leaked identity data, and attack
/// with the stealthier active MitM rig.
///
/// # Errors
///
/// Propagates reconnaissance and chain failures.
pub fn targeted_attack(
    eco: &mut Ecosystem,
    db: &LeakDatabase,
    victim_name: &str,
    target: &ServiceId,
    platform: Platform,
) -> Result<ChainReport, AttackError> {
    let (phone, _address) = recon::lookup_target(db, victim_name)?;
    let attack = ChainReactionAttack {
        platform,
        profile: AttackerProfile::targeted(),
        mode: InterceptMode::ActiveMitm,
        max_chains: 8,
        ..Default::default()
    };
    attack.execute(eco, &phone, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use actfort_ecosystem::dataset::curated_services;
    use actfort_ecosystem::population::PopulationBuilder;
    use actfort_gsm::network::NetworkConfig;

    fn world(n_people: usize) -> (Ecosystem, Vec<Person>) {
        let mut eco = Ecosystem::with_network(
            17,
            NetworkConfig { session_key_bits: 16, ..Default::default() },
        );
        let mut people = PopulationBuilder::new(51).population(n_people);
        for p in &mut people {
            p.email = format!("u{}@gmail.com", p.id.0);
            eco.add_person(p.clone()).unwrap();
        }
        for spec in curated_services() {
            eco.add_service(spec).unwrap();
        }
        eco.enroll_everyone().unwrap();
        (eco, people)
    }

    #[test]
    fn random_attack_compromises_harvested_victims() {
        let (mut eco, people) = world(4);
        let report = random_attack(&mut eco, &people, &"baidu-wallet".into(), Platform::Web, 50);
        assert!(report.harvested >= 1);
        assert!(
            !report.successes.is_empty(),
            "at least one harvested victim falls; failures: {:?}",
            report.failures
        );
        for s in &report.successes {
            assert!(s.receipt.is_some(), "wallet pays out");
        }
        let summary = report.summary();
        assert_eq!(summary.compromised, report.successes.len());
        assert!(summary.success_rate > 0.0 && summary.success_rate <= 1.0);
        assert!(summary.mean_accounts_per_chain >= 1.0);
        assert_eq!(summary.payments, summary.compromised);
        assert!(summary.mean_elapsed_ms > 0.0, "chains consume simulated time");
    }

    #[test]
    fn targeted_attack_with_leak_database() {
        let (mut eco, people) = world(3);
        let db = LeakDatabase::from_breach(&people, 1.0);
        let victim = &people[1];
        let report =
            targeted_attack(&mut eco, &db, &victim.real_name, &"alipay".into(), Platform::MobileApp)
                .unwrap();
        assert!(report.stealthy, "active MitM leaves no trace on the handset");
        assert!(report.receipt.is_some());
    }

    #[test]
    fn targeted_attack_fails_without_leak_entry() {
        let (mut eco, people) = world(2);
        let db = LeakDatabase::from_breach(&people, 0.0);
        let err = targeted_attack(
            &mut eco,
            &db,
            &people[0].real_name,
            &"alipay".into(),
            Platform::MobileApp,
        );
        assert!(matches!(err, Err(AttackError::ReconFailed(_))));
    }
}
