//! The attacker's per-victim evidence file.
//!
//! Every compromised account page contributes (possibly masked) views of
//! the victim's information. The dossier merges views per kind
//! ([`actfort_ecosystem::info::merge_masked`]) until values are fully
//! recovered, tracks which services the attacker controls and whether
//! the victim's mailbox is among them.

use actfort_ecosystem::factor::ServiceId;
use actfort_ecosystem::info::{is_fully_recovered, merge_masked, PersonalInfoKind};
use actfort_ecosystem::spec::ServiceDomain;
use std::collections::{BTreeMap, BTreeSet};

/// Maps a mailbox address to the curated service hosting it.
pub fn email_provider_of(address: &str) -> Option<ServiceId> {
    let domain = address.rsplit('@').next()?;
    let id = match domain {
        "gmail.com" => "gmail",
        "163.com" => "netease-163",
        "outlook.com" => "outlook",
        "aliyun.com" => "aliyun-mail",
        _ => return None,
    };
    Some(ServiceId::new(id))
}

/// Accumulated knowledge about one victim.
#[derive(Debug, Clone, Default)]
pub struct Dossier {
    views: BTreeMap<PersonalInfoKind, Vec<String>>,
    owned: BTreeSet<ServiceId>,
    email_provider: Option<ServiceId>,
    mailbox_owned: bool,
    /// Human-readable trace of how each fact was obtained.
    pub log: Vec<String>,
}

impl Dossier {
    /// An empty dossier, seeded only with the victim's phone number
    /// (which reconnaissance supplies).
    pub fn new(phone_digits: &str, email: &str) -> Self {
        let mut d = Self { email_provider: email_provider_of(email), ..Self::default() };
        d.views
            .entry(PersonalInfoKind::CellphoneNumber)
            .or_default()
            .push(phone_digits.to_owned());
        d.log.push(format!("recon: phone number {phone_digits}"));
        d
    }

    /// Adds a fully known value from an out-of-band source (leak DB).
    pub fn add_known(&mut self, kind: PersonalInfoKind, value: &str, source: &str) {
        self.views.entry(kind).or_default().push(value.to_owned());
        self.log.push(format!("{source}: {kind} = {value}"));
    }

    /// Records control of a service account; email-provider control also
    /// unlocks the victim's mailbox when it hosts their address.
    pub fn mark_owned(&mut self, service: &ServiceId, domain: ServiceDomain) {
        self.owned.insert(service.clone());
        if domain == ServiceDomain::Email && self.email_provider.as_ref() == Some(service) {
            self.mailbox_owned = true;
            self.log.push(format!("mailbox access gained via {service}"));
        }
    }

    /// Whether the attacker controls `service`.
    pub fn owns(&self, service: &ServiceId) -> bool {
        self.owned.contains(service)
    }

    /// Services the attacker controls.
    pub fn owned_services(&self) -> Vec<ServiceId> {
        self.owned.iter().cloned().collect()
    }

    /// Whether the victim's mailbox is readable.
    pub fn mailbox_owned(&self) -> bool {
        self.mailbox_owned
    }

    /// The victim's email provider service, if recognised.
    pub fn email_provider(&self) -> Option<&ServiceId> {
        self.email_provider.as_ref()
    }

    /// Absorbs a profile page: masked views accumulate per kind; cloud
    /// photo archives containing an ID-card photo yield the citizen ID.
    pub fn absorb_profile(&mut self, service: &ServiceId, fields: &[(PersonalInfoKind, String)]) {
        for (kind, view) in fields {
            if *kind == PersonalInfoKind::Photos {
                if let Some(cid) = view.strip_prefix("photo-archive-with-id-card:") {
                    self.views
                        .entry(PersonalInfoKind::CitizenId)
                        .or_default()
                        .push(cid.to_owned());
                    self.log.push(format!("{service}: citizen ID from cloud photo backup"));
                }
                continue;
            }
            self.views.entry(*kind).or_default().push(view.clone());
            self.log.push(format!("{service}: {kind} view {view}"));
        }
    }

    /// The fully recovered value of a kind, when the merged views cover
    /// it completely.
    pub fn full_value(&self, kind: PersonalInfoKind) -> Option<String> {
        let views = self.views.get(&kind)?;
        // Views may disagree in length (different formats); try merging
        // per length group, preferring the group with most views.
        let mut by_len: BTreeMap<usize, Vec<&String>> = BTreeMap::new();
        for v in views {
            by_len.entry(v.chars().count()).or_default().push(v);
        }
        let mut best: Option<String> = None;
        for group in by_len.values() {
            if let Some(merged) = merge_masked(group) {
                if is_fully_recovered(&merged) {
                    match &best {
                        Some(b) if b.len() >= merged.len() => {}
                        _ => best = Some(merged),
                    }
                }
            }
        }
        best
    }

    /// Whether a kind is fully known.
    pub fn has_full(&self, kind: PersonalInfoKind) -> bool {
        self.full_value(kind).is_some()
    }

    /// Count of distinct identity facts fully known (the customer-service
    /// social-engineering currency).
    pub fn identity_fact_count(&self) -> usize {
        [
            PersonalInfoKind::RealName,
            PersonalInfoKind::CitizenId,
            PersonalInfoKind::CellphoneNumber,
            PersonalInfoKind::Address,
            PersonalInfoKind::BankcardNumber,
            PersonalInfoKind::SecurityAnswers,
        ]
        .into_iter()
        .filter(|&k| self.has_full(k))
        .count()
    }

    /// All fully known identity facts as (kind, value) pairs.
    pub fn known_facts(&self) -> Vec<(PersonalInfoKind, String)> {
        PersonalInfoKind::all()
            .iter()
            .filter_map(|&k| self.full_value(k).map(|v| (k, v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provider_mapping() {
        assert_eq!(email_provider_of("a@gmail.com"), Some(ServiceId::new("gmail")));
        assert_eq!(email_provider_of("a@163.com"), Some(ServiceId::new("netease-163")));
        assert_eq!(email_provider_of("a@corp.example"), None);
        assert_eq!(email_provider_of("no-at-sign"), None);
    }

    #[test]
    fn seeded_with_phone() {
        let d = Dossier::new("13800138000", "x@gmail.com");
        assert_eq!(d.full_value(PersonalInfoKind::CellphoneNumber).unwrap(), "13800138000");
        assert!(!d.mailbox_owned());
    }

    #[test]
    fn mailbox_ownership_requires_matching_provider() {
        let mut d = Dossier::new("13800138000", "x@gmail.com");
        d.mark_owned(&ServiceId::new("outlook"), ServiceDomain::Email);
        assert!(!d.mailbox_owned(), "wrong provider");
        d.mark_owned(&ServiceId::new("gmail"), ServiceDomain::Email);
        assert!(d.mailbox_owned());
    }

    #[test]
    fn masked_views_merge_to_full_value() {
        let sid = ServiceId::new("xiaozhu");
        let mut d = Dossier::new("13800138000", "x@163.com");
        d.absorb_profile(&sid, &[(PersonalInfoKind::CitizenId, "1101011990********".into())]);
        assert!(!d.has_full(PersonalInfoKind::CitizenId));
        d.absorb_profile(
            &ServiceId::new("china-railway-12306"),
            &[(PersonalInfoKind::CitizenId, "**********03078515".into())],
        );
        assert_eq!(d.full_value(PersonalInfoKind::CitizenId).unwrap(), "110101199003078515");
    }

    #[test]
    fn photo_archive_yields_citizen_id() {
        let mut d = Dossier::new("13800138000", "x@163.com");
        d.absorb_profile(
            &ServiceId::new("baidu-pan"),
            &[(PersonalInfoKind::Photos, "photo-archive-with-id-card:110101199003078515".into())],
        );
        assert_eq!(d.full_value(PersonalInfoKind::CitizenId).unwrap(), "110101199003078515");
        // A plain archive yields nothing.
        let mut d2 = Dossier::new("13800138000", "x@163.com");
        d2.absorb_profile(&ServiceId::new("dropbox"), &[(PersonalInfoKind::Photos, "photo-archive".into())]);
        assert!(!d2.has_full(PersonalInfoKind::CitizenId));
    }

    #[test]
    fn identity_fact_counting() {
        let mut d = Dossier::new("13800138000", "x@163.com");
        assert_eq!(d.identity_fact_count(), 1); // phone
        d.add_known(PersonalInfoKind::RealName, "Wang Wei", "leak db");
        d.add_known(PersonalInfoKind::Address, "1 Test Rd", "leak db");
        assert_eq!(d.identity_fact_count(), 3);
    }

    #[test]
    fn conflicting_view_lengths_grouped() {
        let mut d = Dossier::new("13800138000", "x@163.com");
        let sid = ServiceId::new("a");
        d.absorb_profile(&sid, &[(PersonalInfoKind::RealName, "Wang Wei".into())]);
        d.absorb_profile(&sid, &[(PersonalInfoKind::RealName, "W*** ***".into())]);
        // The clear 8-char view merges with the masked 8-char view.
        assert_eq!(d.full_value(PersonalInfoKind::RealName).unwrap(), "Wang Wei");
    }
}
