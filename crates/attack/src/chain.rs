//! The full Chain Reaction Attack: strategy output → sequential account
//! intrusion → high-value impact.

use crate::dossier::Dossier;
use crate::error::AttackError;
use crate::intercept::Interceptor;
use crate::intrusion::{compromise, CompromisedAccount};
use actfort_core::analysis::AttackChain;
use actfort_core::obs;
use actfort_core::profile::AttackerProfile;
use actfort_core::strategy::StrategyEngine;
use actfort_ecosystem::factor::ServiceId;
use actfort_ecosystem::host::Ecosystem;
use actfort_ecosystem::policy::Platform;
use actfort_ecosystem::spec::ServiceDomain;
use actfort_gsm::identity::Msisdn;
use rand::{Rng, SeedableRng};

/// FNV-style hash used to derive per-victim detection streams.
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Interception mode for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterceptMode {
    /// Passive GSM sniffing with the given crack capability in bits.
    PassiveSniffing {
        /// Keyspace bits the rig can exhaust.
        crack_bits: u32,
    },
    /// Active fake-base-station MitM.
    ActiveMitm,
    /// Remote smishing (§II): no radio proximity, but the victim must
    /// fall for the lure and relay codes.
    Phishing {
        /// Whether the simulated victim complies.
        gullible: bool,
    },
    /// Passive sniffing backed by rainbow-table lookups: works against
    /// full-strength session keys at the published ~90% hit rate, with
    /// occasional misses leaving sessions dark.
    PassiveRainbowTables {
        /// RNG seed for the table model (outcomes are deterministic per
        /// seed).
        seed: u64,
    },
}

/// Configuration of a chain-reaction run.
#[derive(Debug, Clone)]
pub struct ChainReactionAttack {
    /// Platform to analyse and attack over.
    pub platform: Platform,
    /// Assumed base capabilities.
    pub profile: AttackerProfile,
    /// Interception rig choice.
    pub mode: InterceptMode,
    /// Maximum candidate chains to try.
    pub max_chains: usize,
    /// Probability the victim notices each *visible* interception step
    /// (unexpected OTP on their own handset) during the day and freezes
    /// their accounts. The active MitM diverts the SMS entirely, so it is
    /// never subject to this roll; at night (00:00–06:00 simulated time)
    /// vigilance drops to 15% of its daytime value — the paper's
    /// "midnight timing" remark.
    pub victim_vigilance: f64,
    /// Seed for the detection rolls (runs stay deterministic).
    pub detection_seed: u64,
}

impl Default for ChainReactionAttack {
    fn default() -> Self {
        Self {
            platform: Platform::MobileApp,
            profile: AttackerProfile::paper_default(),
            mode: InterceptMode::PassiveSniffing { crack_bits: 16 },
            max_chains: 8,
            victim_vigilance: 0.0,
            detection_seed: 0,
        }
    }
}

/// Outcome of one executed chain.
#[derive(Debug, Clone)]
pub struct ChainReport {
    /// The final target.
    pub target: ServiceId,
    /// The strategy chain that was executed.
    pub chain: AttackChain,
    /// Every account compromised, in order.
    pub compromised: Vec<CompromisedAccount>,
    /// Whether the victim could have noticed SMS arriving (passive mode).
    pub stealthy: bool,
    /// Proof-of-impact payment receipt when the target processes payments.
    pub receipt: Option<String>,
    /// Simulated wall-clock the whole chain consumed (protocol steps,
    /// OTP pacing and key-cracking latency included), in milliseconds.
    pub sim_elapsed_ms: u64,
    /// The dossier's acquisition log.
    pub log: Vec<String>,
}

impl ChainReactionAttack {
    /// Plans and executes a chain ending at `target`.
    ///
    /// # Errors
    ///
    /// - [`AttackError::NoChain`] when the strategy engine finds no route.
    /// - Intrusion/interception failures if every candidate chain fails.
    pub fn execute(
        &self,
        eco: &mut Ecosystem,
        victim_phone: &Msisdn,
        target: &ServiceId,
    ) -> Result<ChainReport, AttackError> {
        let _span = obs::span("attack.execute");
        let specs: Vec<_> = eco.specs().into_iter().cloned().collect();
        let engine = StrategyEngine::new(specs, self.platform, self.profile);
        let chains = engine.backward_query(target, self.max_chains);
        if chains.is_empty() {
            return Err(AttackError::NoChain(target.to_string()));
        }
        obs::add("attack.chains_planned", chains.len() as u64);

        let mut last_err: Option<AttackError> = None;
        for chain in chains {
            obs::add("attack.chains_attempted", 1);
            match self.execute_chain(eco, victim_phone, target, &chain) {
                Ok(report) => return Ok(report),
                // Once the victim noticed and froze everything, trying
                // further chains is pointless.
                Err(e @ AttackError::Detected(_)) => return Err(e),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| AttackError::NoChain(target.to_string())))
    }

    fn execute_chain(
        &self,
        eco: &mut Ecosystem,
        victim_phone: &Msisdn,
        target: &ServiceId,
        chain: &AttackChain,
    ) -> Result<ChainReport, AttackError> {
        let _span = obs::span("attack.chain");
        let started_ms = eco.now_ms();
        let victim_email = eco
            .people()
            .find(|p| &p.phone == victim_phone)
            .map(|p| p.email.clone())
            .ok_or_else(|| AttackError::ReconFailed(format!("no person with {victim_phone}")))?;
        let mut interceptor = match self.mode {
            InterceptMode::PassiveSniffing { crack_bits } => Interceptor::passive(eco, crack_bits)?,
            InterceptMode::ActiveMitm => Interceptor::active(eco, victim_phone)?,
            InterceptMode::Phishing { gullible } => {
                Interceptor::phishing(eco, victim_phone, "AcctSafety", gullible)?
            }
            InterceptMode::PassiveRainbowTables { seed } => Interceptor::passive_with_tables(
                eco,
                actfort_gsm::a5::RainbowTableModel::new(seed),
            )?,
        };
        let mut dossier = Dossier::new(victim_phone.digits(), &victim_email);
        if self.profile.social_engineering_db {
            // Targeted attacks seed the dossier from the leak database.
            if let Some(p) = eco.people().find(|p| &p.phone == victim_phone) {
                let (name, addr) = (p.real_name.clone(), p.address.clone());
                dossier.add_known(actfort_ecosystem::info::PersonalInfoKind::RealName, &name, "leak db");
                dossier.add_known(actfort_ecosystem::info::PersonalInfoKind::Address, &addr, "leak db");
            }
        }

        let mut detection_rng =
            rand::rngs::StdRng::seed_from_u64(self.detection_seed ^ fxhash(victim_phone.digits()));
        let mut compromised = Vec::new();
        for (step_idx, step) in chain.steps.iter().enumerate() {
            let step_no = (step_idx + 1).to_string();
            for service in &step.services {
                obs::event(
                    "attack.step",
                    &[("step", &step_no), ("service", service.as_str())],
                );
                let acct = compromise(eco, victim_phone, service, &mut interceptor, &mut dossier)?;
                obs::add("attack.accounts_compromised", 1);
                compromised.push(acct);
                // §V-A2 stealth caveat: visible interception leaves the
                // OTP on the victim's handset; a vigilant victim freezes
                // everything and the chain dies here.
                if interceptor.leaves_otp_on_handset() && self.victim_vigilance > 0.0 {
                    let hour = (eco.gsm.clock().millis() / 3_600_000) % 24;
                    let factor = if hour < 6 { 0.15 } else { 1.0 };
                    let p = (self.victim_vigilance * factor).clamp(0.0, 1.0);
                    if detection_rng.gen_bool(p) {
                        if let Some(person) = eco.person_by_phone(victim_phone) {
                            let frozen = eco.freeze_person_everywhere(person);
                            interceptor.release(eco);
                            return Err(AttackError::Detected(format!(
                                "unexpected OTP noticed after {service}; {frozen} accounts frozen"
                            )));
                        }
                    }
                }
            }
        }

        // Impact: drain money when the target is a Fintech service.
        let receipt = {
            let is_fintech = eco
                .service(target)
                .map(|s| s.spec().domain == ServiceDomain::Fintech)
                .unwrap_or(false);
            let session = compromised
                .iter()
                .rev()
                .find(|a| &a.service == target)
                .map(|a| a.session);
            match (is_fintech, session) {
                (true, Some(session)) => {
                    eco.service_mut(target).and_then(|s| s.make_payment(session, 99_900).ok())
                }
                _ => None,
            }
        };

        let stealthy = interceptor.is_stealthy();
        interceptor.release(eco);
        Ok(ChainReport {
            target: target.clone(),
            chain: chain.clone(),
            compromised,
            stealthy,
            receipt,
            sim_elapsed_ms: eco.now_ms().saturating_sub(started_ms),
            log: dossier.log.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actfort_ecosystem::dataset::curated_services;
    use actfort_ecosystem::population::PopulationBuilder;
    use actfort_gsm::network::NetworkConfig;

    fn world() -> (Ecosystem, Msisdn) {
        let mut eco = Ecosystem::with_network(
            9,
            NetworkConfig { session_key_bits: 16, ..Default::default() },
        );
        let mut person = PopulationBuilder::new(31).person();
        person.email = format!("victim{}@gmail.com", person.id.0);
        let phone = person.phone.clone();
        eco.add_person(person).unwrap();
        for spec in curated_services() {
            eco.add_service(spec).unwrap();
        }
        eco.enroll_everyone().unwrap();
        (eco, phone)
    }

    #[test]
    fn full_chain_reaches_paypal_and_pays() {
        let (mut eco, phone) = world();
        let attack = ChainReactionAttack { platform: Platform::Web, ..Default::default() };
        let report = attack.execute(&mut eco, &phone, &"paypal".into()).unwrap();
        assert_eq!(report.target, ServiceId::new("paypal"));
        assert!(report.compromised.iter().any(|a| a.service.as_str() == "paypal" && a.took_over));
        assert!(report.receipt.is_some(), "payment made from stolen PayPal");
        assert!(!report.stealthy, "passive sniffing is observable");
        assert!(report.log.iter().any(|l| l.contains("intercepted SMS code")));
    }

    #[test]
    fn chain_reaches_alipay_via_citizen_id_harvest() {
        let (mut eco, phone) = world();
        let attack = ChainReactionAttack::default(); // mobile platform
        let report = attack.execute(&mut eco, &phone, &"alipay".into()).unwrap();
        assert!(report.compromised.len() >= 2, "needs a middle account");
        assert!(report.receipt.is_some());
    }

    #[test]
    fn active_mitm_chain_is_stealthy() {
        let (mut eco, phone) = world();
        let attack = ChainReactionAttack {
            mode: InterceptMode::ActiveMitm,
            platform: Platform::Web,
            ..Default::default()
        };
        let report = attack.execute(&mut eco, &phone, &"jd".into()).unwrap();
        assert!(report.stealthy);
        let sub = eco.gsm.subscriber_by_msisdn(&phone).unwrap();
        assert!(eco.gsm.terminal(sub).unwrap().inbox().is_empty(), "victim saw nothing");
    }

    #[test]
    fn vigilant_victims_freeze_out_visible_attacks_but_not_the_mitm() {
        // Daytime + perfectly vigilant victim: a multi-step passive chain
        // is detected at the first visible OTP, the accounts freeze, and
        // even the step that already succeeded is followed by nothing.
        let (mut eco, phone) = world();
        eco.advance_ms(14 * 3_600_000); // 14:00 simulated time
        let attack = ChainReactionAttack {
            platform: Platform::Web,
            victim_vigilance: 1.0,
            ..Default::default()
        };
        let err = attack.execute(&mut eco, &phone, &"paypal".into());
        assert!(matches!(err, Err(AttackError::Detected(_))), "got {err:?}");
        // The frozen accounts refuse even legitimate-looking flows now.
        let gmail_acct = eco
            .service(&"gmail".into())
            .unwrap()
            .find_account(&actfort_ecosystem::service::AccountLocator::Phone(phone.clone()))
            .unwrap();
        assert!(eco.service(&"gmail".into()).unwrap().is_frozen(gmail_acct));

        // The same vigilant victim at 3 a.m. — the paper's midnight
        // timing: detection odds collapse and the chain usually lands.
        let (mut eco, phone) = world();
        eco.advance_ms(3 * 3_600_000);
        let night = ChainReactionAttack {
            platform: Platform::Web,
            victim_vigilance: 0.5,
            detection_seed: 4,
            ..Default::default()
        };
        assert!(night.execute(&mut eco, &phone, &"paypal".into()).is_ok());

        // And the active MitM never shows the victim anything, so full
        // vigilance is irrelevant.
        let (mut eco, phone) = world();
        eco.advance_ms(14 * 3_600_000);
        let mitm = ChainReactionAttack {
            platform: Platform::Web,
            mode: InterceptMode::ActiveMitm,
            victim_vigilance: 1.0,
            ..Default::default()
        };
        assert!(mitm.execute(&mut eco, &phone, &"paypal".into()).is_ok());
    }

    #[test]
    fn rainbow_table_chain_beats_strong_crypto_over_the_air() {
        // Full-strength keys: the exhaustive-search rig fails, the
        // table-backed rig succeeds (at its hit rate) without any victim
        // cooperation — the paper's actual field method.
        let mut eco = Ecosystem::with_network(15, NetworkConfig::default());
        let mut person = PopulationBuilder::new(35).person();
        person.email = format!("v{}@gmail.com", person.id.0);
        let phone = person.phone.clone();
        eco.add_person(person).unwrap();
        for spec in curated_services() {
            eco.add_service(spec).unwrap();
        }
        eco.enroll_everyone().unwrap();

        let attack = ChainReactionAttack {
            platform: Platform::Web,
            mode: InterceptMode::PassiveRainbowTables { seed: 3 },
            max_chains: 8,
            ..Default::default()
        };
        let report = attack.execute(&mut eco, &phone, &"paypal".into()).unwrap();
        assert!(report.receipt.is_some());
        assert!(
            report.sim_elapsed_ms >= 2_000,
            "table lookups cost seconds, charged to the chain ({} ms)",
            report.sim_elapsed_ms
        );
    }

    #[test]
    fn phishing_chain_beats_strong_crypto_when_victim_complies() {
        // Full-strength session keys: the radio rigs are useless, but the
        // §II remote phishing variant still completes the chain.
        let mut eco = Ecosystem::with_network(9, NetworkConfig::default());
        let mut person = PopulationBuilder::new(33).person();
        person.email = format!("v{}@gmail.com", person.id.0);
        let phone = person.phone.clone();
        eco.add_person(person).unwrap();
        for spec in curated_services() {
            eco.add_service(spec).unwrap();
        }
        eco.enroll_everyone().unwrap();

        let attack = ChainReactionAttack {
            platform: Platform::Web,
            mode: InterceptMode::Phishing { gullible: true },
            ..Default::default()
        };
        let report = attack.execute(&mut eco, &phone, &"paypal".into()).unwrap();
        assert!(report.receipt.is_some());
        assert!(!report.stealthy, "phishing requires the victim's participation");

        // A wary victim ends the campaign.
        let mut eco2 = Ecosystem::with_network(9, NetworkConfig::default());
        let mut person = PopulationBuilder::new(34).person();
        person.email = format!("v{}@gmail.com", person.id.0);
        let phone2 = person.phone.clone();
        eco2.add_person(person).unwrap();
        for spec in curated_services() {
            eco2.add_service(spec).unwrap();
        }
        eco2.enroll_everyone().unwrap();
        let wary = ChainReactionAttack {
            platform: Platform::Web,
            mode: InterceptMode::Phishing { gullible: false },
            ..Default::default()
        };
        assert!(wary.execute(&mut eco2, &phone2, &"paypal".into()).is_err());
    }

    #[test]
    fn robust_target_yields_no_chain() {
        let (mut eco, phone) = world();
        let attack = ChainReactionAttack { platform: Platform::Web, ..Default::default() };
        let err = attack.execute(&mut eco, &phone, &"union-bank".into());
        assert!(matches!(err, Err(AttackError::NoChain(_))));
    }

    #[test]
    fn strong_session_keys_defeat_passive_chains() {
        // Same world but with full-strength A5/1 keys: the sniffer cracks
        // nothing, so every chain attempt dies at interception.
        let mut eco = Ecosystem::with_network(9, NetworkConfig::default());
        let mut person = PopulationBuilder::new(32).person();
        person.email = format!("v{}@gmail.com", person.id.0);
        let phone = person.phone.clone();
        eco.add_person(person).unwrap();
        for spec in curated_services() {
            eco.add_service(spec).unwrap();
        }
        eco.enroll_everyone().unwrap();
        let attack = ChainReactionAttack { platform: Platform::Web, ..Default::default() };
        let err = attack.execute(&mut eco, &phone, &"paypal".into());
        assert!(err.is_err(), "strong keys must stop the passive attack");
    }
}
