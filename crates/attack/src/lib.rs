//! The Chain Reaction Attack engine — §V of the paper, executed for real
//! against the simulated ecosystem.
//!
//! - [`recon`] — target acquisition: phishing Wi-Fi for random attacks,
//!   the leak database for targeted ones.
//! - [`intercept`] — SMS code interception drivers over the GSM
//!   substrate: the passive OsmocomBB-style sniffer and the active
//!   fake-base-station MitM.
//! - [`dossier`] — the attacker's per-victim evidence file, merging
//!   masked profile views until values are fully recovered.
//! - [`intrusion`] — single-account takeover: picks an attackable path,
//!   triggers challenges, intercepts/reads the codes, presents harvested
//!   factors and resets the password.
//! - [`chain`] — the full Chain Reaction Attack: follows a strategy
//!   chain from fringe accounts to the high-value target.
//! - [`cases`] — replays of the paper's Case I (Baidu Wallet), Case II
//!   (PayPal via Gmail) and Case III (Alipay via Ctrip).
//! - [`scenario`] — random and targeted end-to-end scenarios.
//!
//! # Example
//!
//! ```
//! use actfort_attack::cases::{case1_baidu_wallet, CaseWorld};
//!
//! # fn main() -> Result<(), actfort_attack::AttackError> {
//! let mut world = CaseWorld::new(7);
//! let report = case1_baidu_wallet(&mut world)?;
//! assert!(report.receipt.is_some(), "the wallet paid out");
//! # Ok(())
//! # }
//! ```

pub mod cases;
pub mod chain;
pub mod dossier;
pub mod error;
pub mod intercept;
pub mod intrusion;
pub mod recon;
pub mod scenario;

pub use chain::{ChainReactionAttack, ChainReport};
pub use dossier::Dossier;
pub use error::AttackError;
pub use intercept::Interceptor;
