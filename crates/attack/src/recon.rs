//! Target acquisition — §V-A1.
//!
//! Random attacks harvest phone numbers from a phishing Wi-Fi captive
//! portal at crowded places; targeted attacks look the victim up in a
//! black-market leak database.

use crate::error::AttackError;
use actfort_authsvc::email::Mailbox;
use actfort_ecosystem::factor::ServiceId;
use actfort_ecosystem::population::{LeakDatabase, Person, PhishingWifi};
use actfort_gsm::identity::Msisdn;

/// Harvests phone numbers from passers-by who connect to the phishing AP.
/// `connect_rate_percent` of the crowd falls for the portal
/// (deterministic systematic sampling).
pub fn harvest_random_targets(
    ap: &mut PhishingWifi,
    crowd: &[Person],
    connect_rate_percent: u8,
) -> Vec<Msisdn> {
    let rate = usize::from(connect_rate_percent.min(100));
    for (i, person) in crowd.iter().enumerate() {
        if rate > 0 && (i * 100 / crowd.len().max(1)) % 100 < rate {
            ap.victim_connects(person);
        }
    }
    ap.harvested().to_vec()
}

/// Resolves a named target through the leak database.
///
/// # Errors
///
/// Returns [`AttackError::ReconFailed`] when the name is not in the dump.
pub fn lookup_target(db: &LeakDatabase, name: &str) -> Result<(Msisdn, String), AttackError> {
    let entry = db
        .find_by_name(name)
        .ok_or_else(|| AttackError::ReconFailed(format!("{name} not in leak database")))?;
    let phone = Msisdn::new(&entry.phone)
        .map_err(|e| AttackError::ReconFailed(format!("corrupt leak entry: {e}")))?;
    Ok((phone, entry.address.clone()))
}

/// Enumerates the services a victim uses from a stolen mailbox — every
/// welcome mail, code and reset link names its sender. §IV-B2: "From
/// the Email history, there is a high possibility that Email accounts
/// will reveal important information, such as signed-up services".
pub fn services_from_mailbox(mailbox: &Mailbox) -> Vec<ServiceId> {
    let mut out: Vec<ServiceId> = Vec::new();
    for msg in mailbox.messages() {
        let id = ServiceId::new(&msg.from);
        if !out.contains(&id) {
            out.push(id);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use actfort_ecosystem::population::PopulationBuilder;

    #[test]
    fn phishing_harvest_rate() {
        let crowd = PopulationBuilder::new(4).population(100);
        let mut ap = PhishingWifi::deploy("Airport-Free-WiFi");
        let harvested = harvest_random_targets(&mut ap, &crowd, 30);
        assert!((25..=35).contains(&harvested.len()), "harvested {}", harvested.len());
        // Zero rate harvests nothing.
        let mut ap2 = PhishingWifi::deploy("x");
        assert!(harvest_random_targets(&mut ap2, &crowd, 0).is_empty());
    }

    #[test]
    fn mailbox_reveals_signed_up_services() {
        use actfort_ecosystem::dataset::curated;
        use actfort_ecosystem::host::Ecosystem;
        let mut eco = Ecosystem::new(3);
        let person = PopulationBuilder::new(8).person();
        let email = person.email.clone();
        eco.add_person(person).unwrap();
        for id in ["ctrip", "jd", "paypal"] {
            eco.add_service(curated(id).unwrap()).unwrap();
        }
        eco.enroll_everyone().unwrap();
        let services = services_from_mailbox(eco.mail.mailbox(&email).unwrap());
        for id in ["ctrip", "jd", "paypal"] {
            assert!(services.contains(&ServiceId::new(id)), "{id} missing from mailbox recon");
        }
    }

    #[test]
    fn targeted_lookup() {
        let pop = PopulationBuilder::new(4).population(20);
        let db = LeakDatabase::from_breach(&pop, 1.0);
        let victim = &pop[7];
        let (phone, address) = lookup_target(&db, &victim.real_name).unwrap();
        assert_eq!(phone, victim.phone);
        assert_eq!(address, victim.address);
        assert!(matches!(
            lookup_target(&db, "Nobody Nowhere"),
            Err(AttackError::ReconFailed(_))
        ));
    }
}
