//! SMS interception drivers — the attack's step 2 (§V-A2).
//!
//! Four acquisition strategies:
//!
//! - **Passive** (Fig. 6): the 16×C118 OsmocomBB sniffer. Captures the
//!   victim's cell, cracks weak A5/1 sessions off the recorded SI5 known
//!   plaintext, and fishes one-time codes out of the decrypted
//!   SMS-DELIVER frames. The victim still receives the SMS (the
//!   stealthiness caveat the paper notes).
//! - **Passive with rainbow tables**: same capture, but key recovery
//!   follows the published table statistics — effective against
//!   full-strength keys, with occasional misses.
//! - **Active** (Fig. 7): the USRP fake base station. Downgrades,
//!   captures and impersonates the victim so its SMS arrive *only* at
//!   the attacker.
//! - **Phishing** (§II): a remote smishing lure; no proximity needed,
//!   but the victim must comply.

use crate::error::AttackError;
use actfort_ecosystem::host::Ecosystem;
use actfort_gsm::arfcn::Arfcn;
use actfort_gsm::identity::{Msisdn, SubscriberId};
use actfort_gsm::mitm::MitmAttack;
use actfort_gsm::sniffer::{PassiveSniffer, SnifferConfig};

/// An intercepted one-time code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterceptedCode {
    /// The numeric code.
    pub code: String,
    /// Full message text.
    pub text: String,
    /// Displayed sender.
    pub originator: String,
    /// Simulated latency charged to interception (key cracking etc.), ms.
    pub latency_ms: u64,
}

/// A unified interception driver.
#[derive(Debug)]
pub enum Interceptor {
    /// Passive multi-carrier sniffing.
    Passive {
        /// The capture rig.
        sniffer: Box<PassiveSniffer>,
        /// Rainbow-table model to use instead of exhaustive weak-key
        /// search (enables attacks on full-strength keys, with table
        /// misses).
        tables: Option<actfort_gsm::a5::RainbowTableModel>,
        /// Messages already consumed (so each code is used once).
        consumed: usize,
        /// Session keys whose crack latency has been charged already.
        charged_keys: Vec<actfort_gsm::a5::Kc>,
    },
    /// Active MitM with a spoofed registration already in place.
    Active {
        /// The rig (jammer + fake BTS).
        rig: Box<MitmAttack>,
        /// The impersonated victim.
        victim: SubscriberId,
        /// Spoofed-inbox messages already consumed.
        consumed: usize,
    },
    /// Remote phishing (§II): a spoofed "security alert" SMS lures the
    /// victim into relaying the genuine codes they receive. Needs no
    /// radio proximity — but requires the victim's cooperation and is
    /// the least stealthy option.
    Phishing {
        /// The lured victim.
        victim: SubscriberId,
        /// Whether the victim fell for the lure.
        gullible: bool,
        /// Inbox messages already consumed (including the lure itself).
        consumed: usize,
    },
}

impl Interceptor {
    /// Builds a passive rig co-located with the ecosystem's default cell
    /// and tunes receivers to every configured cell carrier.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InterceptionFailed`] when there are more
    /// carriers than receivers.
    pub fn passive(eco: &Ecosystem, crack_bits: u32) -> Result<Self, AttackError> {
        let mut sniffer = PassiveSniffer::new(SnifferConfig { crack_bits, ..SnifferConfig::default() });
        for cell in eco.gsm.cells() {
            sniffer
                .monitor(cell.arfcn)
                .map_err(|e| AttackError::InterceptionFailed(e.to_string()))?;
        }
        Ok(Self::Passive {
            sniffer: Box::new(sniffer),
            tables: None,
            consumed: 0,
            charged_keys: Vec::new(),
        })
    }

    /// Builds a passive rig that attacks sessions with probabilistic
    /// rainbow-table lookups — effective against full-strength session
    /// keys, at the cost of occasional table misses.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InterceptionFailed`] when there are more
    /// carriers than receivers.
    pub fn passive_with_tables(
        eco: &Ecosystem,
        model: actfort_gsm::a5::RainbowTableModel,
    ) -> Result<Self, AttackError> {
        let mut sniffer = PassiveSniffer::new(SnifferConfig::default());
        for cell in eco.gsm.cells() {
            sniffer
                .monitor(cell.arfcn)
                .map_err(|e| AttackError::InterceptionFailed(e.to_string()))?;
        }
        Ok(Self::Passive {
            sniffer: Box::new(sniffer),
            tables: Some(model),
            consumed: 0,
            charged_keys: Vec::new(),
        })
    }

    /// Builds an active rig and runs the full downgrade → capture →
    /// impersonation sequence against `victim_phone`.
    ///
    /// # Errors
    ///
    /// Propagates rig failures (victim out of range, spoof refused).
    pub fn active(eco: &mut Ecosystem, victim_phone: &Msisdn) -> Result<Self, AttackError> {
        let victim = eco
            .gsm
            .subscriber_by_msisdn(victim_phone)
            .ok_or_else(|| AttackError::InterceptionFailed(format!("{victim_phone} not on network")))?;
        let victim_pos = eco
            .gsm
            .terminal(victim)
            .map(|t| t.position())
            .unwrap_or_default();
        let mut rig = MitmAttack::new(victim_pos, Arfcn(42));
        rig.execute(&mut eco.gsm, victim)?;
        Ok(Self::Active { rig: Box::new(rig), victim, consumed: 0 })
    }

    /// Launches a smishing lure from a spoofed sender. When the victim is
    /// `gullible`, every genuine code they subsequently receive is
    /// relayed to the attacker's fake site.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InterceptionFailed`] when the victim is not
    /// on the network or the lure cannot be delivered.
    pub fn phishing(
        eco: &mut Ecosystem,
        victim_phone: &Msisdn,
        spoofed_sender: &str,
        gullible: bool,
    ) -> Result<Self, AttackError> {
        let victim = eco
            .gsm
            .subscriber_by_msisdn(victim_phone)
            .ok_or_else(|| AttackError::InterceptionFailed(format!("{victim_phone} not on network")))?;
        let sender = actfort_gsm::pdu::Address::alphanumeric(spoofed_sender)
            .map_err(|e| AttackError::InterceptionFailed(e.to_string()))?;
        eco.gsm
            .send_sms_from(
                sender,
                victim_phone,
                "Security alert: unusual sign-in detected. Verify at https://account-safety.example and enter the code you receive.",
            )
            .map_err(|e| AttackError::InterceptionFailed(e.to_string()))?;
        let consumed = eco.gsm.terminal(victim).map(|t| t.inbox().len()).unwrap_or(0);
        Ok(Self::Phishing { victim, gullible, consumed })
    }

    /// Waits for (and returns) the next code sent to the victim whose
    /// message mentions `service_name`. Call *after* triggering the
    /// challenge.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InterceptionFailed`] when no matching
    /// message is observable (strong cipher, out of range, nothing sent).
    pub fn next_code(
        &mut self,
        eco: &Ecosystem,
        service_name: &str,
    ) -> Result<InterceptedCode, AttackError> {
        match self {
            Interceptor::Passive { sniffer, tables, consumed, charged_keys } => {
                match tables {
                    Some(model) => sniffer.poll_with_tables(&eco.gsm, model.clone()),
                    None => sniffer.poll(eco.gsm.ether()),
                }
                // Take the newest matching message: older unconsumed codes
                // may have been invalidated by reissues.
                let sms = sniffer
                    .sms()
                    .iter()
                    .skip(*consumed).rfind(|s| s.text.contains(service_name) || s.originator.contains(service_name));
                match sms {
                    Some(s) => {
                        let code = extract_code(&s.text).ok_or_else(|| {
                            AttackError::InterceptionFailed(format!("no code in {:?}", s.text))
                        })?;
                        // A key's search latency is paid once; further
                        // traffic under it decrypts instantly.
                        let latency_ms = match s.cracked_key {
                            Some(kc) if !charged_keys.contains(&kc) => {
                                charged_keys.push(kc);
                                s.crack_latency_ms
                            }
                            _ => 0,
                        };
                        let out = InterceptedCode {
                            code,
                            text: s.text.clone(),
                            originator: s.originator.clone(),
                            latency_ms,
                        };
                        *consumed = sniffer.sms().len();
                        Ok(out)
                    }
                    None => Err(AttackError::InterceptionFailed(format!(
                        "no SMS mentioning {service_name:?} captured (stats: {:?})",
                        sniffer.stats()
                    ))),
                }
            }
            Interceptor::Phishing { victim, gullible, consumed } => {
                if !*gullible {
                    return Err(AttackError::InterceptionFailed(
                        "victim ignored the phishing lure".into(),
                    ));
                }
                let inbox = eco
                    .gsm
                    .terminal(*victim)
                    .map(|t| t.inbox())
                    .unwrap_or(&[]);
                let sms = inbox
                    .iter()
                    .skip(*consumed).rfind(|s| s.text.contains(service_name) || s.originator.contains(service_name));
                match sms {
                    Some(s) => {
                        let code = extract_code(&s.text).ok_or_else(|| {
                            AttackError::InterceptionFailed(format!("no code in {:?}", s.text))
                        })?;
                        let out = InterceptedCode {
                            code,
                            text: s.text.clone(),
                            originator: s.originator.clone(),
                            latency_ms: 0,
                        };
                        *consumed = inbox.len();
                        Ok(out)
                    }
                    None => Err(AttackError::InterceptionFailed(format!(
                        "victim received no SMS mentioning {service_name:?} to relay"
                    ))),
                }
            }
            Interceptor::Active { victim, consumed, .. } => {
                let inbox = eco.gsm.spoofed_inbox(*victim);
                let sms = inbox
                    .iter()
                    .skip(*consumed).rfind(|s| s.text.contains(service_name) || s.originator.contains(service_name));
                match sms {
                    Some(s) => {
                        let code = extract_code(&s.text).ok_or_else(|| {
                            AttackError::InterceptionFailed(format!("no code in {:?}", s.text))
                        })?;
                        let out = InterceptedCode {
                            code,
                            text: s.text.clone(),
                            originator: s.originator.clone(),
                            latency_ms: 0,
                        };
                        *consumed = inbox.len();
                        Ok(out)
                    }
                    None => Err(AttackError::InterceptionFailed(format!(
                        "no diverted SMS mentioning {service_name:?}"
                    ))),
                }
            }
        }
    }

    /// Whether this interceptor also denies the victim the message
    /// (active MitM is stealthy; passive sniffing is not, and phishing
    /// actively involves the victim).
    pub fn is_stealthy(&self) -> bool {
        matches!(self, Interceptor::Active { .. })
    }

    /// Whether this interceptor needs radio proximity to the victim.
    pub fn needs_proximity(&self) -> bool {
        !matches!(self, Interceptor::Phishing { .. })
    }

    /// Whether the victim's handset still displays the intercepted OTPs
    /// (the detection surface of §V-A2). Passive sniffing leaves them
    /// visible; the MitM diverts them; a phished victim has already been
    /// socially engineered into expecting them.
    pub fn leaves_otp_on_handset(&self) -> bool {
        matches!(self, Interceptor::Passive { .. })
    }

    /// Tears down an active rig, releasing the victim.
    pub fn release(&self, eco: &mut Ecosystem) {
        if let Interceptor::Active { rig, victim, .. } = self {
            rig.release(&mut eco.gsm, *victim);
        }
    }
}

/// Extracts the first 4–10 digit run from an SMS body.
pub fn extract_code(text: &str) -> Option<String> {
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if (4..=10).contains(&(i - start)) {
                return Some(text[start..i].to_owned());
            }
        } else {
            i += 1;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use actfort_ecosystem::population::PopulationBuilder;
    use actfort_gsm::network::NetworkConfig;

    fn weak_world() -> (Ecosystem, Msisdn) {
        let mut eco = Ecosystem::with_network(
            5,
            NetworkConfig { session_key_bits: 16, ..Default::default() },
        );
        let person = PopulationBuilder::new(77).person();
        let phone = person.phone.clone();
        eco.add_person(person).unwrap();
        (eco, phone)
    }

    #[test]
    fn extract_code_variants() {
        assert_eq!(extract_code("G-786348 is your Google verification code."), Some("786348".into()));
        assert_eq!(extract_code("code: 4821"), Some("4821".into()));
        assert_eq!(extract_code("no digits"), None);
        assert_eq!(extract_code("card 12345678901234567890"), None);
    }

    #[test]
    fn passive_interceptor_reads_weak_a51_code() {
        let (mut eco, phone) = weak_world();
        let mut icpt = Interceptor::passive(&eco, 16).unwrap();
        eco.gsm.send_sms(&phone, "482910 is your Google login code.").unwrap();
        let got = icpt.next_code(&eco, "Google").unwrap();
        assert_eq!(got.code, "482910");
        assert!(!icpt.is_stealthy());
        // Victim still received it (stealth caveat).
        let sub = eco.gsm.subscriber_by_msisdn(&phone).unwrap();
        assert_eq!(eco.gsm.terminal(sub).unwrap().inbox().len(), 1);
    }

    #[test]
    fn passive_codes_are_consumed_once() {
        let (mut eco, phone) = weak_world();
        let mut icpt = Interceptor::passive(&eco, 16).unwrap();
        eco.gsm.send_sms(&phone, "111222 is your Google login code.").unwrap();
        icpt.next_code(&eco, "Google").unwrap();
        assert!(icpt.next_code(&eco, "Google").is_err(), "same code not replayed");
        eco.gsm.send_sms(&phone, "333444 is your Google login code.").unwrap();
        assert_eq!(icpt.next_code(&eco, "Google").unwrap().code, "333444");
    }

    #[test]
    fn passive_fails_against_strong_keys() {
        let mut eco = Ecosystem::with_network(5, NetworkConfig::default()); // 64-bit keys
        let person = PopulationBuilder::new(78).person();
        let phone = person.phone.clone();
        eco.add_person(person).unwrap();
        let mut icpt = Interceptor::passive(&eco, 20).unwrap();
        eco.gsm.send_sms(&phone, "999000 is your Google login code.").unwrap();
        assert!(icpt.next_code(&eco, "Google").is_err());
    }

    #[test]
    fn active_interceptor_diverts_and_is_stealthy() {
        let (mut eco, phone) = weak_world();
        let mut icpt = Interceptor::active(&mut eco, &phone).unwrap();
        assert!(icpt.is_stealthy());
        eco.gsm.send_sms(&phone, "555666 is your PayPal reset code.").unwrap();
        let got = icpt.next_code(&eco, "PayPal").unwrap();
        assert_eq!(got.code, "555666");
        // The victim saw nothing.
        let sub = eco.gsm.subscriber_by_msisdn(&phone).unwrap();
        assert!(eco.gsm.terminal(sub).unwrap().inbox().is_empty());
        icpt.release(&mut eco);
    }

    #[test]
    fn phishing_relays_codes_from_gullible_victims_without_proximity() {
        // Full-strength keys: passive sniffing would be blind, but the
        // victim hands the code over.
        let mut eco = Ecosystem::with_network(6, NetworkConfig::default());
        let person = PopulationBuilder::new(80).person();
        let phone = person.phone.clone();
        eco.add_person(person).unwrap();
        let mut icpt = Interceptor::phishing(&mut eco, &phone, "AcctSafety", true).unwrap();
        assert!(!icpt.needs_proximity());
        assert!(!icpt.is_stealthy());
        eco.gsm.send_sms(&phone, "909090 is your PayPal reset code.").unwrap();
        assert_eq!(icpt.next_code(&eco, "PayPal").unwrap().code, "909090");
        // The lure itself is never mistaken for a service code.
        assert!(icpt.next_code(&eco, "account-safety").is_err());
    }

    #[test]
    fn wary_victims_defeat_phishing() {
        let (mut eco, phone) = weak_world();
        let mut icpt = Interceptor::phishing(&mut eco, &phone, "AcctSafety", false).unwrap();
        eco.gsm.send_sms(&phone, "111111 is your PayPal reset code.").unwrap();
        assert!(matches!(
            icpt.next_code(&eco, "PayPal"),
            Err(AttackError::InterceptionFailed(_))
        ));
    }

    #[test]
    fn active_fails_for_unknown_number() {
        let (mut eco, _) = weak_world();
        let ghost = Msisdn::new("19999999999").unwrap();
        assert!(Interceptor::active(&mut eco, &ghost).is_err());
    }
}
