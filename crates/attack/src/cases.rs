//! Replays of the paper's real-world case studies (§V-B), executed
//! end-to-end against the simulated ecosystem.

use crate::dossier::Dossier;
use crate::error::AttackError;
use crate::intercept::Interceptor;
use crate::intrusion::compromise;
use actfort_ecosystem::dataset::curated_services;
use actfort_ecosystem::factor::ServiceId;
use actfort_ecosystem::host::Ecosystem;
use actfort_ecosystem::info::PersonalInfoKind;
use actfort_ecosystem::policy::{Platform, Purpose};
use actfort_ecosystem::population::PopulationBuilder;
use actfort_ecosystem::service::{AccountLocator, AuthOutcome, FactorResponse};
use actfort_gsm::identity::Msisdn;
use actfort_gsm::network::NetworkConfig;

/// A case-study world: curated services over a weak-key GSM network,
/// one victim whose mailbox is hosted on Gmail.
#[derive(Debug)]
pub struct CaseWorld {
    /// The simulated world.
    pub eco: Ecosystem,
    /// The victim's phone number (all the attacker starts with).
    pub victim_phone: Msisdn,
    /// The victim's mailbox address.
    pub victim_email: String,
}

impl CaseWorld {
    /// Builds the standard case-study world.
    ///
    /// # Panics
    ///
    /// Panics only on internal setup failures (the configuration is
    /// static and known-good).
    pub fn new(seed: u64) -> Self {
        let mut eco = Ecosystem::with_network(
            seed,
            NetworkConfig { session_key_bits: 16, ..Default::default() },
        );
        let mut person = PopulationBuilder::new(seed ^ 0x5eed).person();
        person.email = format!("victim{}@gmail.com", person.id.0);
        let victim_phone = person.phone.clone();
        let victim_email = person.email.clone();
        eco.add_person(person).expect("fresh world");
        for spec in curated_services() {
            eco.add_service(spec).expect("unique curated ids");
        }
        eco.enroll_everyone().expect("registration succeeds");
        Self { eco, victim_phone, victim_email }
    }
}

/// Outcome of one case replay.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Case label.
    pub name: String,
    /// Step-by-step narrative.
    pub narrative: Vec<String>,
    /// Accounts compromised, in order.
    pub accounts: Vec<ServiceId>,
    /// Payment receipt proving impact, when applicable.
    pub receipt: Option<String>,
}

/// **Case I** — Baidu Wallet: the SMS code works as a one-time login
/// token; once in, the QR payment flows. No intermediate account needed.
///
/// # Errors
///
/// Propagates interception and ecosystem failures.
pub fn case1_baidu_wallet(world: &mut CaseWorld) -> Result<CaseReport, AttackError> {
    let eco = &mut world.eco;
    let phone = &world.victim_phone;
    let target = ServiceId::new("baidu-wallet");
    let mut narrative = Vec::new();
    let mut icpt = Interceptor::passive(eco, 16)?;

    // Sign in directly with the intercepted one-time token.
    let ch = eco.begin_auth(
        &target,
        &AccountLocator::Phone(phone.clone()),
        Platform::MobileApp,
        Purpose::SignIn,
        0,
    )?;
    let code = icpt.next_code(eco, "Baidu Wallet")?;
    narrative.push(format!("intercepted login token {} for Baidu Wallet", code.code));
    let outcome = eco.complete_auth(
        &target,
        ch.id,
        &[
            FactorResponse::CellphoneNumber(phone.digits().to_owned()),
            FactorResponse::SmsCode(code.code),
        ],
        &[],
    )?;
    let AuthOutcome::Session(session) = outcome else {
        return Err(AttackError::NoViablePath("expected a session".into()));
    };
    narrative.push("logged into Baidu Wallet with the SMS code alone".into());
    let receipt = eco
        .service_mut(&target)
        .expect("service exists")
        .make_payment(session, 50_000)
        .map_err(AttackError::from)?;
    narrative.push(format!("paid by QR code: {receipt}"));
    Ok(CaseReport {
        name: "Case I: Baidu Wallet".into(),
        narrative,
        accounts: vec![target],
        receipt: Some(receipt),
    })
}

/// **Case II** — PayPal via Gmail: reset Gmail with the intercepted SMS
/// code, read PayPal's emailed token from the stolen mailbox, reset
/// PayPal (SMS + email code) and transact.
///
/// # Errors
///
/// Propagates interception and ecosystem failures.
pub fn case2_paypal_via_gmail(world: &mut CaseWorld) -> Result<CaseReport, AttackError> {
    let eco = &mut world.eco;
    let phone = &world.victim_phone;
    let mut icpt = Interceptor::passive(eco, 16)?;
    let mut dossier = Dossier::new(phone.digits(), &world.victim_email);
    let mut narrative = Vec::new();

    let gmail = compromise(eco, phone, &"gmail".into(), &mut icpt, &mut dossier)?;
    narrative.push(format!(
        "reset Gmail with only the SMS code (took_over = {})",
        gmail.took_over
    ));
    assert!(dossier.mailbox_owned());
    narrative.push("now reading the victim's mailbox".into());

    let paypal = compromise(eco, phone, &"paypal".into(), &mut icpt, &mut dossier)?;
    narrative.push("reset PayPal with SMS code + emailed token from the stolen mailbox".into());
    let receipt = eco
        .service_mut(&"paypal".into())
        .expect("service exists")
        .make_payment(paypal.session, 120_000)
        .map_err(AttackError::from)?;
    narrative.push(format!("made a transaction: {receipt}"));
    Ok(CaseReport {
        name: "Case II: PayPal via Gmail".into(),
        narrative,
        accounts: vec!["gmail".into(), "paypal".into()],
        receipt: Some(receipt),
    })
}

/// **Case III** — Alipay via Ctrip: log into Ctrip with an SMS token,
/// read the full citizen ID behind the "EDIT" button, then reset the
/// Alipay app's password *and payment code* with citizen ID + SMS, and
/// make a payment.
///
/// # Errors
///
/// Propagates interception and ecosystem failures.
pub fn case3_alipay_via_ctrip(world: &mut CaseWorld) -> Result<CaseReport, AttackError> {
    let eco = &mut world.eco;
    let phone = &world.victim_phone;
    let mut icpt = Interceptor::passive(eco, 16)?;
    let mut dossier = Dossier::new(phone.digits(), &world.victim_email);
    let mut narrative = Vec::new();

    let _ctrip = compromise(eco, phone, &"ctrip".into(), &mut icpt, &mut dossier)?;
    let cid = dossier
        .full_value(PersonalInfoKind::CitizenId)
        .ok_or_else(|| AttackError::NoViablePath("ctrip page lacked the citizen ID".into()))?;
    narrative.push(format!("read citizen ID {cid} from Ctrip's Frequent Travelers page"));

    let alipay = compromise(eco, phone, &"alipay".into(), &mut icpt, &mut dossier)?;
    narrative.push("reset the Alipay app password with citizen ID + SMS code".into());
    assert!(alipay.took_over);

    // Reset the payment code through the Payment purpose path.
    let ch = eco.begin_auth(
        &"alipay".into(),
        &AccountLocator::Phone(phone.clone()),
        Platform::MobileApp,
        Purpose::Payment,
        0,
    )?;
    let code = icpt.next_code(eco, "Alipay")?;
    let outcome = eco.complete_auth(
        &"alipay".into(),
        ch.id,
        &[FactorResponse::SmsCode(code.code), FactorResponse::CitizenId(cid.clone())],
        &[],
    )?;
    let AuthOutcome::PaymentAuthorised(session) = outcome else {
        return Err(AttackError::NoViablePath("expected payment authorisation".into()));
    };
    narrative.push("reset the payment code with citizen ID + SMS code".into());
    let receipt = eco
        .service_mut(&"alipay".into())
        .expect("service exists")
        .make_payment(session, 200_000)
        .map_err(AttackError::from)?;
    narrative.push(format!("made a payment: {receipt}"));

    Ok(CaseReport {
        name: "Case III: Alipay via Ctrip".into(),
        narrative,
        accounts: vec!["ctrip".into(), "alipay".into()],
        receipt: Some(receipt),
    })
}

/// Runs all three cases in fresh worlds, returning their reports.
///
/// # Errors
///
/// Propagates the first failing case.
pub fn run_all(seed: u64) -> Result<Vec<CaseReport>, AttackError> {
    Ok(vec![
        case1_baidu_wallet(&mut CaseWorld::new(seed))?,
        case2_paypal_via_gmail(&mut CaseWorld::new(seed + 1))?,
        case3_alipay_via_ctrip(&mut CaseWorld::new(seed + 2))?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case1_direct_wallet_takeover() {
        let report = case1_baidu_wallet(&mut CaseWorld::new(1)).unwrap();
        assert_eq!(report.accounts.len(), 1, "no intermediate attack needed");
        assert!(report.receipt.is_some());
    }

    #[test]
    fn case2_email_gateway() {
        let report = case2_paypal_via_gmail(&mut CaseWorld::new(2)).unwrap();
        assert_eq!(report.accounts, vec![ServiceId::new("gmail"), ServiceId::new("paypal")]);
        assert!(report.narrative.iter().any(|l| l.contains("mailbox")));
        assert!(report.receipt.is_some());
    }

    #[test]
    fn case3_citizen_id_chain() {
        let report = case3_alipay_via_ctrip(&mut CaseWorld::new(3)).unwrap();
        assert_eq!(report.accounts, vec![ServiceId::new("ctrip"), ServiceId::new("alipay")]);
        assert!(report.narrative.iter().any(|l| l.contains("citizen ID")));
        assert!(report.narrative.iter().any(|l| l.contains("payment code")));
        assert!(report.receipt.is_some());
    }

    #[test]
    fn all_cases_run_together() {
        let reports = run_all(77).unwrap();
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(|r| r.receipt.is_some()));
    }
}
