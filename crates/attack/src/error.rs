//! Error types for the attack engine.

use std::fmt;

/// Errors produced while executing attacks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AttackError {
    /// No authentication path of the target is attackable with current
    /// capabilities and harvested information.
    NoViablePath(String),
    /// SMS interception produced no usable code.
    InterceptionFailed(String),
    /// The strategy engine found no chain to the target.
    NoChain(String),
    /// An underlying ecosystem operation failed.
    Ecosystem(actfort_ecosystem::EcosystemError),
    /// An underlying GSM operation failed.
    Gsm(actfort_gsm::GsmError),
    /// Reconnaissance could not produce the victim's phone number.
    ReconFailed(String),
    /// The victim noticed the attack (unexpected OTPs) and froze their
    /// accounts — §V-A2's stealthiness caveat.
    Detected(String),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::NoViablePath(s) => write!(f, "no viable authentication path on {s}"),
            AttackError::InterceptionFailed(s) => write!(f, "interception failed: {s}"),
            AttackError::NoChain(s) => write!(f, "no attack chain reaches {s}"),
            AttackError::Ecosystem(e) => write!(f, "ecosystem: {e}"),
            AttackError::Gsm(e) => write!(f, "gsm: {e}"),
            AttackError::ReconFailed(s) => write!(f, "reconnaissance failed: {s}"),
            AttackError::Detected(s) => write!(f, "victim detected the attack: {s}"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Ecosystem(e) => Some(e),
            AttackError::Gsm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<actfort_ecosystem::EcosystemError> for AttackError {
    fn from(e: actfort_ecosystem::EcosystemError) -> Self {
        AttackError::Ecosystem(e)
    }
}

impl From<actfort_gsm::GsmError> for AttackError {
    fn from(e: actfort_gsm::GsmError) -> Self {
        AttackError::Gsm(e)
    }
}

impl AttackError {
    /// Stable wire discriminant of this failure, from the 2300–2399
    /// range `actfort_core::Error` reserves for the attack layer (see
    /// the discriminant table in `actfort_core::error`). Codes are
    /// never renumbered.
    pub fn code(&self) -> u16 {
        match self {
            AttackError::NoViablePath(_) => 2301,
            AttackError::InterceptionFailed(_) => 2302,
            AttackError::NoChain(_) => 2303,
            // Wrapped lower-layer failures keep *their* discriminant so
            // the wire code survives the crossing.
            AttackError::Ecosystem(e) => actfort_core::Error::from(e.clone()).code(),
            AttackError::Gsm(e) => actfort_core::Error::from(e.clone()).code(),
            AttackError::ReconFailed(_) => 2304,
            AttackError::Detected(_) => 2305,
        }
    }
}

/// Funnels attack-layer failures into the unified core error: the attack
/// engine sits *above* `actfort-core`, so it maps itself into
/// [`actfort_core::Error::Upstream`] with its stable code assignments.
impl From<AttackError> for actfort_core::Error {
    fn from(e: AttackError) -> Self {
        match e {
            // Lower-layer failures unwrap to their named variant instead
            // of flattening into an opaque upstream message.
            AttackError::Ecosystem(inner) => inner.into(),
            AttackError::Gsm(inner) => inner.into(),
            other => actfort_core::Error::Upstream {
                layer: "attack",
                code: other.code(),
                message: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AttackError>();
    }

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = AttackError::Gsm(actfort_gsm::GsmError::NotAttached);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gsm"));
    }

    #[test]
    fn maps_into_unified_core_error_with_stable_codes() {
        let up = actfort_core::Error::from(AttackError::NoChain("alipay".into()));
        assert_eq!(up.code(), 2303);
        assert_eq!(up.kind(), "attack");
        assert!(up.to_string().contains("alipay"));
        // Wrapped lower-layer failures keep their own layer and code.
        let gsm = actfort_core::Error::from(AttackError::Gsm(actfort_gsm::GsmError::NotAttached));
        assert_eq!(gsm.kind(), "gsm");
        assert_eq!(gsm.code(), 2207);
    }
}
