//! Error types for the attack engine.

use std::fmt;

/// Errors produced while executing attacks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AttackError {
    /// No authentication path of the target is attackable with current
    /// capabilities and harvested information.
    NoViablePath(String),
    /// SMS interception produced no usable code.
    InterceptionFailed(String),
    /// The strategy engine found no chain to the target.
    NoChain(String),
    /// An underlying ecosystem operation failed.
    Ecosystem(actfort_ecosystem::EcosystemError),
    /// An underlying GSM operation failed.
    Gsm(actfort_gsm::GsmError),
    /// Reconnaissance could not produce the victim's phone number.
    ReconFailed(String),
    /// The victim noticed the attack (unexpected OTPs) and froze their
    /// accounts — §V-A2's stealthiness caveat.
    Detected(String),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::NoViablePath(s) => write!(f, "no viable authentication path on {s}"),
            AttackError::InterceptionFailed(s) => write!(f, "interception failed: {s}"),
            AttackError::NoChain(s) => write!(f, "no attack chain reaches {s}"),
            AttackError::Ecosystem(e) => write!(f, "ecosystem: {e}"),
            AttackError::Gsm(e) => write!(f, "gsm: {e}"),
            AttackError::ReconFailed(s) => write!(f, "reconnaissance failed: {s}"),
            AttackError::Detected(s) => write!(f, "victim detected the attack: {s}"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Ecosystem(e) => Some(e),
            AttackError::Gsm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<actfort_ecosystem::EcosystemError> for AttackError {
    fn from(e: actfort_ecosystem::EcosystemError) -> Self {
        AttackError::Ecosystem(e)
    }
}

impl From<actfort_gsm::GsmError> for AttackError {
    fn from(e: actfort_gsm::GsmError) -> Self {
        AttackError::Gsm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AttackError>();
    }

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = AttackError::Gsm(actfort_gsm::GsmError::NotAttached);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gsm"));
    }
}
