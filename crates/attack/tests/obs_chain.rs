//! Golden trace-snapshot test for a fixed-seed end-to-end Chain Reaction
//! Attack: the observability snapshot — strategy counters, GSM pipeline
//! counters, span tree, step-transition events — must be byte-identical
//! across same-seed runs once wall-times are excluded.
//!
//! Flips the process-global recorder: own test binary, serialized via
//! [`obs_lock`].

use actfort_attack::chain::ChainReactionAttack;
use actfort_core::obs;
use actfort_ecosystem::dataset::curated_services;
use actfort_ecosystem::host::Ecosystem;
use actfort_ecosystem::policy::Platform;
use actfort_ecosystem::population::PopulationBuilder;
use actfort_gsm::identity::Msisdn;
use actfort_gsm::network::NetworkConfig;
use std::sync::{Mutex, MutexGuard};

fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn world() -> (Ecosystem, Msisdn) {
    let mut eco =
        Ecosystem::with_network(9, NetworkConfig { session_key_bits: 16, ..Default::default() });
    let mut person = PopulationBuilder::new(31).person();
    person.email = format!("victim{}@gmail.com", person.id.0);
    let phone = person.phone.clone();
    eco.add_person(person).unwrap();
    for spec in curated_services() {
        eco.add_service(spec).unwrap();
    }
    eco.enroll_everyone().unwrap();
    (eco, phone)
}

fn traced_attack() -> (usize, obs::ObsSnapshot) {
    let (mut eco, phone) = world();
    obs::reset();
    obs::set_enabled(true);
    let attack = ChainReactionAttack { platform: Platform::Web, ..Default::default() };
    let report = attack.execute(&mut eco, &phone, &"paypal".into()).expect("chain lands");
    obs::set_enabled(false);
    let snap = obs::snapshot();
    obs::reset();
    (report.compromised.len(), snap)
}

#[test]
fn same_seed_chain_attacks_render_byte_identical_json() {
    let _g = obs_lock();
    let (n1, s1) = traced_attack();
    let (n2, s2) = traced_attack();
    assert_eq!(n1, n2, "chain outcome must be seed-deterministic");
    let j1 = s1.to_json_deterministic();
    assert_eq!(j1, s2.to_json_deterministic(), "snapshot JSON must be byte-identical");
    obs::json::parse(&j1).expect("snapshot JSON parses");
}

#[test]
fn chain_snapshot_pins_steps_and_pipeline_counters() {
    let _g = obs_lock();
    let (compromised, snap) = traced_attack();
    let c = |name: &str| snap.counters.get(name).copied().unwrap_or(0);

    // Strategy: at least one chain was planned and attempted. Failed
    // attempts may compromise accounts before dying, so the counter can
    // only exceed the winning report's list.
    assert!(c("attack.chains_planned") >= 1);
    assert!(c("attack.chains_attempted") >= 1);
    assert!(c("attack.accounts_compromised") as usize >= compromised);
    assert!(c("backward.partials_explored") > 0, "strategy ran the backward search");

    // Span tree: execute wraps each chain attempt.
    assert!(snap.spans.contains_key("attack.execute"));
    assert!(snap.spans.contains_key("attack.execute/attack.chain"));

    // One attack.step event per compromised account, in order, all under
    // the chain span.
    let steps: Vec<_> = snap.events.iter().filter(|e| e.name == "attack.step").collect();
    assert!(steps.len() >= compromised, "every compromise attempt is journaled");
    for e in &steps {
        assert_eq!(e.span, "attack.execute/attack.chain");
        assert!(e.fields.contains_key("step") && e.fields.contains_key("service"));
    }
    assert_eq!(snap.events_dropped, 0);

    // GSM pipeline: the passive rig captured frames, cracked the weak
    // session and recovered at least one OTP per interception.
    assert!(c("gsm.network.sms_submitted") >= 1);
    assert!(c("gsm.sniffer.frames_captured") > 0);
    assert!(c("gsm.sniffer.sessions_cracked") >= 1);
    assert!(c("gsm.sniffer.sms_recovered") >= 1);
}
