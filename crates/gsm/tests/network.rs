//! End-to-end tests of the network's public API: provisioning, attach,
//! SMS delivery, spoofed registrations and the drain-budget contract.
//! (Moved out of `src/network.rs` when the monolith was decomposed.)

use actfort_gsm::cipher::{CipherAlgo, CipherSet};
use actfort_gsm::error::GsmError;
use actfort_gsm::identity::Msisdn;
use actfort_gsm::network::{GsmNetwork, NetworkConfig};
use actfort_gsm::radio::{AirMessage, Direction, Position};
use actfort_gsm::terminal::RatPreference;

fn net() -> GsmNetwork {
    GsmNetwork::new(NetworkConfig::default())
}

fn msisdn(s: &str) -> Msisdn {
    Msisdn::new(s).unwrap()
}

#[test]
fn provision_attach_and_deliver() {
    let mut net = net();
    let id = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
    net.attach(id).unwrap();
    net.send_sms(&msisdn("13800138000"), "123456 is your code").unwrap();
    let ms = net.terminal(id).unwrap();
    assert_eq!(ms.inbox().len(), 1);
    assert_eq!(ms.inbox()[0].text, "123456 is your code");
}

#[test]
fn duplicate_msisdn_rejected() {
    let mut net = net();
    net.provision_subscriber("a", msisdn("13800138000")).unwrap();
    assert!(net.provision_subscriber("b", msisdn("13800138000")).is_err());
}

#[test]
fn sms_to_unknown_number_fails() {
    let mut net = net();
    assert!(matches!(
        net.send_sms(&msisdn("19999999999"), "x"),
        Err(GsmError::UnknownSubscriber(_))
    ));
}

#[test]
fn sms_queues_until_attach() {
    let mut net = net();
    let id = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
    net.send_sms(&msisdn("13800138000"), "early").unwrap();
    assert_eq!(net.smsc_pending(), 1);
    assert!(net.terminal(id).unwrap().inbox().is_empty());
    net.attach(id).unwrap();
    let report = net.run_until_idle();
    assert_eq!(net.smsc_pending(), 0);
    assert_eq!(net.terminal(id).unwrap().inbox().len(), 1);
    assert!(report.events_processed >= 1);
    assert!(!report.exhausted);
    assert_eq!(report.residual, 0);
}

#[test]
fn attach_negotiates_a51_by_default() {
    let mut net = net();
    let id = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
    net.attach(id).unwrap();
    assert_eq!(net.terminal(id).unwrap().cipher_context().algo, CipherAlgo::A51);
    assert!(net.current_kc(id).is_some());
}

#[test]
fn attach_fails_when_handset_on_lte() {
    let mut net = GsmNetwork::new(NetworkConfig { lte_available: true, ..Default::default() });
    let id = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
    net.terminal_mut(id).unwrap().set_rat(RatPreference::PreferLte);
    assert!(net.attach(id).is_err());
    // Jamming LTE forces the GSM fallback.
    net.terminal_mut(id).unwrap().set_lte_jammed(true);
    assert!(net.attach(id).is_ok());
}

#[test]
fn attach_fails_out_of_coverage() {
    let mut net = net();
    let id = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
    net.terminal_mut(id).unwrap().set_position(Position::new(10_000.0, 10_000.0));
    assert!(net.attach(id).is_err());
}

#[test]
fn attach_emits_expected_transaction_on_air() {
    let mut net = net();
    let id = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
    net.attach(id).unwrap();
    let kinds: Vec<u8> =
        net.ether().frames().iter().map(|f| f.payload.first().copied().unwrap_or(0)).collect();
    // LAU request, auth request, auth response and cipher-mode command
    // are all plaintext; the final three (cipher-mode complete, SI5
    // padding, LAU accept) are ciphered, so their tags are opaque.
    assert_eq!(kinds[0], 0x03);
    assert_eq!(kinds[1], 0x07);
    assert_eq!(kinds[2], 0x08);
    assert_eq!(kinds[3], 0x09);
    assert_eq!(net.ether().frames().len(), 7);
}

#[test]
fn tmsi_is_reallocated_on_attach() {
    let mut net = net();
    let id = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
    assert!(net.terminal(id).unwrap().tmsi().is_none());
    net.attach(id).unwrap();
    let first = net.terminal(id).unwrap().tmsi().unwrap();
    net.attach(id).unwrap();
    let second = net.terminal(id).unwrap().tmsi().unwrap();
    assert_ne!(first, second);
}

#[test]
fn delivered_sms_frames_are_ciphered_under_a51() {
    let mut net = net();
    let id = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
    net.attach(id).unwrap();
    let before = net.ether().frames().len();
    net.send_sms(&msisdn("13800138000"), "sensitive otp 555666").unwrap();
    let frames = &net.ether().frames()[before..];
    let sms_frame = frames
        .iter()
        .find(|f| f.cipher == CipherAlgo::A51 && f.direction == Direction::Downlink)
        .expect("ciphered downlink SMS frame");
    // Without the key the payload must not parse as an SMS deliver.
    let parsed = sms_frame.message_plaintext();
    assert!(!matches!(parsed, Ok(AirMessage::SmsDeliverData { .. })));
    // With the victim's context it parses fine.
    let ctx = net.terminal(id).unwrap().cipher_context();
    assert!(matches!(sms_frame.message_with(&ctx), Ok(AirMessage::SmsDeliverData { .. })));
}

#[test]
fn spoofed_registration_diverts_sms() {
    let mut net = net();
    let id = net.provision_subscriber("victim", msisdn("13800138000")).unwrap();
    net.attach(id).unwrap();
    // The attacker relays the victim's true SRES (fake BTS capture).
    let victim_ms = net.terminal(id).unwrap().clone();
    net.register_spoofed(id, Position::new(50.0, 0.0), CipherSet::none(), |rand| {
        victim_ms.a3_sres(rand)
    })
    .unwrap();
    net.send_sms(&msisdn("13800138000"), "OTP 999000").unwrap();
    assert_eq!(net.spoofed_inbox(id).len(), 1, "attacker got the message");
    assert_eq!(net.terminal(id).unwrap().inbox().len(), 0, "victim got nothing");
    assert_eq!(net.spoofed_inbox(id)[0].text, "OTP 999000");
}

#[test]
fn spoofed_registration_rejects_wrong_sres() {
    let mut net = net();
    let id = net.provision_subscriber("victim", msisdn("13800138000")).unwrap();
    let err = net.register_spoofed(id, Position::new(0.0, 0.0), CipherSet::none(), |_| 0xbad);
    assert!(matches!(err, Err(GsmError::ProtocolViolation(_))));
}

#[test]
fn spoofed_registration_requires_downgrade() {
    // If the network mandates A5/3 the spoof cannot complete.
    let mut net = GsmNetwork::new(NetworkConfig {
        cipher_preference: vec![CipherAlgo::A53],
        ..Default::default()
    });
    let id = net.provision_subscriber("victim", msisdn("13800138000")).unwrap();
    let victim_ms = net.terminal(id).unwrap().clone();
    // Even claiming full support, the attacker has no Kc; and claiming
    // none is refused by a network whose preference list lacks A5/0?
    // Preference [A53] + classmark none negotiates A5/0 fallback, so
    // configure preference to only offer A5/3 — negotiate() falls back
    // to A50 by design, mirroring real networks that accept it. Spoof
    // therefore succeeds only because the network tolerates A5/0:
    let res = net.register_spoofed(id, Position::new(0.0, 0.0), CipherSet::none(), |rand| {
        victim_ms.a3_sres(rand)
    });
    assert!(res.is_ok(), "downgrade-tolerant network accepts A5/0 spoof");
    // A network that *refuses* A5/0 blocks the spoof: model by putting
    // A5/3 first and having the attacker claim A5/3 support (it still
    // lacks Kc, so the registration must fail).
    let mut strict = GsmNetwork::new(NetworkConfig {
        cipher_preference: vec![CipherAlgo::A53, CipherAlgo::A51],
        ..Default::default()
    });
    let id2 = strict.provision_subscriber("victim2", msisdn("13900000000")).unwrap();
    let ms2 = strict.terminal(id2).unwrap().clone();
    let err = strict.register_spoofed(id2, Position::new(0.0, 0.0), CipherSet::all(), |rand| {
        ms2.a3_sres(rand)
    });
    assert!(matches!(err, Err(GsmError::ProtocolViolation(_))));
}

#[test]
fn person_to_person_sms_flows_both_ways() {
    let mut net = net();
    let a = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
    let b = net.provision_subscriber("bob", msisdn("13900139000")).unwrap();
    net.attach(a).unwrap();
    net.attach(b).unwrap();
    net.ms_send_sms(a, &msisdn("13900139000"), "dinner at 8?").unwrap();
    let bob = net.terminal(b).unwrap();
    assert_eq!(bob.inbox().len(), 1);
    assert_eq!(bob.inbox()[0].text, "dinner at 8?");
    assert_eq!(bob.inbox()[0].originator, "13800138000");
    // The uplink SMS-SUBMIT crossed the air ciphered.
    assert!(net
        .ether()
        .frames()
        .iter()
        .any(|f| f.direction == Direction::Uplink && f.cipher == CipherAlgo::A51));
}

#[test]
fn ms_send_requires_attachment() {
    let mut net = net();
    let a = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
    let _b = net.provision_subscriber("bob", msisdn("13900139000")).unwrap();
    assert!(matches!(
        net.ms_send_sms(a, &msisdn("13900139000"), "hi"),
        Err(GsmError::NotAttached)
    ));
    net.attach(a).unwrap();
    assert!(matches!(
        net.ms_send_sms(a, &msisdn("19999999999"), "hi"),
        Err(GsmError::UnknownSubscriber(_))
    ));
}

#[test]
fn long_sms_is_split_and_reassembled() {
    let mut net = net();
    let id = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
    net.attach(id).unwrap();
    let text = "Your statement is ready. ".repeat(12); // > 160 septets
    net.send_sms(&msisdn("13800138000"), &text).unwrap();
    let ms = net.terminal(id).unwrap();
    assert_eq!(ms.inbox().len(), 1, "parts reassembled into one message");
    assert_eq!(ms.inbox()[0].text, text);
    assert_eq!(ms.pending_multipart(), 0);
    // More than one SMS-DELIVER frame crossed the air.
    let deliver_frames = net
        .ether()
        .frames()
        .iter()
        .filter(|f| f.direction == Direction::Downlink && f.cipher == CipherAlgo::A51)
        .count();
    assert!(deliver_frames >= 2, "expected multiple ciphered parts, saw {deliver_frames}");
}

#[test]
fn interleaved_multipart_messages_reassemble_independently() {
    let mut net = net();
    let a = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
    net.attach(a).unwrap();
    let text1 = "AAAA ".repeat(40);
    let text2 = "BBBB ".repeat(40);
    net.send_sms(&msisdn("13800138000"), &text1).unwrap();
    net.send_sms(&msisdn("13800138000"), &text2).unwrap();
    let ms = net.terminal(a).unwrap();
    assert_eq!(ms.inbox().len(), 2);
    assert_eq!(ms.inbox()[0].text, text1);
    assert_eq!(ms.inbox()[1].text, text2);
}

#[test]
fn detach_makes_subscriber_unreachable() {
    let mut net = net();
    let id = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
    net.attach(id).unwrap();
    net.detach(id);
    net.send_sms(&msisdn("13800138000"), "late").unwrap();
    assert!(net.terminal(id).unwrap().inbox().is_empty());
    assert_eq!(net.smsc_pending(), 1);
}

#[test]
fn drain_budget_stops_self_rescheduling_retries() {
    // An unreachable destination with a huge retry budget produces a
    // delivery event that keeps rescheduling itself. run_until_idle
    // must stop at its iteration budget and say so, not hang.
    let mut net = GsmNetwork::new(NetworkConfig {
        smsc_max_attempts: u8::MAX,
        ..Default::default()
    });
    let _id = net.provision_subscriber("ghost", msisdn("13800138000")).unwrap();
    net.send_sms(&msisdn("13800138000"), "never arrives").unwrap();
    let report = net.run_until_idle_with(50);
    assert_eq!(report.events_processed, 50);
    assert!(report.exhausted, "budget ran out with the retry chain still live");
    assert!(report.residual >= 1);
    assert_eq!(net.smsc_pending(), 1, "message still queued, not lost");
    // A later drain with enough budget runs the chain to expiry.
    let report = net.run_until_idle_with(10_000);
    assert!(!report.exhausted);
    assert_eq!(report.residual, 0);
    assert_eq!(net.smsc_pending(), 0, "SMSC expired the message");
}
