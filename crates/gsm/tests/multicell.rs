//! Multi-cell scenarios: mobility, per-cell sniffer coverage and the
//! receiver-capacity constraint that motivates the paper's 16-handset
//! rig.

use actfort_gsm::arfcn::Arfcn;
use actfort_gsm::cipher::CipherSet;
use actfort_gsm::identity::Msisdn;
use actfort_gsm::mitm::FakeBaseStation;
use actfort_gsm::network::{GsmNetwork, NetworkConfig};
use actfort_gsm::radio::{CellConfig, CellId, Position};
use actfort_gsm::sniffer::{PassiveSniffer, SnifferConfig};
use actfort_gsm::terminal::{Camp, RatPreference};

fn msisdn(s: &str) -> Msisdn {
    Msisdn::new(s).unwrap()
}

fn two_cell_network() -> GsmNetwork {
    let mut net = GsmNetwork::new(NetworkConfig { session_key_bits: 16, ..Default::default() });
    net.add_cell(CellConfig {
        id: CellId(2),
        arfcn: Arfcn(23),
        lac: 0x1002,
        position: Position::new(1_200.0, 0.0),
        range_m: 800.0,
        cipher_preference: vec![actfort_gsm::cipher::CipherAlgo::A51],
    })
    .unwrap();
    net
}

#[test]
fn subscriber_moves_and_reattaches_on_nearest_cell() {
    let mut net = two_cell_network();
    let id = net.provision_subscriber("mover", msisdn("13800138000")).unwrap();
    assert_eq!(net.attach(id).unwrap(), CellId(1));
    net.send_sms(&msisdn("13800138000"), "111111 at home cell").unwrap();

    // Walk into the second cell's area and re-attach.
    net.terminal_mut(id).unwrap().set_position(Position::new(1_200.0, 10.0));
    assert_eq!(net.attach(id).unwrap(), CellId(2));
    net.send_sms(&msisdn("13800138000"), "222222 at away cell").unwrap();

    let ms = net.terminal(id).unwrap();
    assert_eq!(ms.inbox().len(), 2);
    // The away-cell traffic was carried on the second ARFCN.
    assert!(net
        .ether()
        .frames()
        .iter()
        .any(|f| f.arfcn == Arfcn(23) && f.cell == CellId(2)));
}

#[test]
fn single_receiver_misses_the_other_cell() {
    let mut net = two_cell_network();
    let a = net.provision_subscriber("a", msisdn("13800138000")).unwrap();
    let b = net.provision_subscriber("b", msisdn("13900139000")).unwrap();
    net.attach(a).unwrap();
    net.terminal_mut(b).unwrap().set_position(Position::new(1_200.0, 0.0));
    net.attach(b).unwrap();
    net.send_sms(&msisdn("13800138000"), "123456 is your Google login code.").unwrap();
    net.send_sms(&msisdn("13900139000"), "654321 is your Google login code.").unwrap();

    // One receiver, tuned to cell 1 only — note the long sniffer range so
    // distance is not the limiting factor, carrier choice is.
    let mut narrow = PassiveSniffer::new(SnifferConfig {
        receivers: 1,
        crack_bits: 16,
        range_m: 5_000.0,
        ..Default::default()
    });
    narrow.monitor(Arfcn(17)).unwrap();
    assert!(narrow.monitor(Arfcn(23)).is_err(), "capacity exhausted");
    narrow.poll(net.ether());
    assert_eq!(narrow.sms().len(), 1, "only the home-cell code is captured");

    // The 16-receiver rig covers both carriers.
    let mut rig = PassiveSniffer::new(SnifferConfig {
        crack_bits: 16,
        range_m: 5_000.0,
        ..Default::default()
    });
    rig.monitor(Arfcn(17)).unwrap();
    rig.monitor(Arfcn(23)).unwrap();
    rig.poll(net.ether());
    assert_eq!(rig.sms().len(), 2, "both cells' codes captured");
}

#[test]
fn sniffer_tracks_distinct_keys_per_cell() {
    let mut net = two_cell_network();
    let a = net.provision_subscriber("a", msisdn("13800138000")).unwrap();
    let b = net.provision_subscriber("b", msisdn("13900139000")).unwrap();
    net.attach(a).unwrap();
    net.terminal_mut(b).unwrap().set_position(Position::new(1_200.0, 0.0));
    net.attach(b).unwrap();
    net.send_sms(&msisdn("13800138000"), "111222 is your code").unwrap();
    net.send_sms(&msisdn("13900139000"), "333444 is your code").unwrap();

    let mut rig = PassiveSniffer::new(SnifferConfig {
        crack_bits: 16,
        range_m: 5_000.0,
        ..Default::default()
    });
    rig.monitor(Arfcn(17)).unwrap();
    rig.monitor(Arfcn(23)).unwrap();
    rig.poll(net.ether());
    assert_eq!(rig.stats().sessions_cracked, 2);
    let keys: Vec<_> = rig.sms().iter().filter_map(|s| s.cracked_key).collect();
    assert_eq!(keys.len(), 2);
    assert_ne!(keys[0], keys[1], "each subscriber had its own session key");
}

/// The fake-cell capture invariant the campaign engine models: once a
/// victim is parked on a MitM base station, *no* real cell delivers to
/// it — every message is diverted, however many retry sweeps run, and
/// even in a multi-cell city with a nearer real cell available.
#[test]
fn captured_victim_receives_nothing_real_across_retries() {
    let mut net = two_cell_network();
    let id = net.provision_subscriber("victim", msisdn("13800138000")).unwrap();
    net.terminal_mut(id).unwrap().set_rat(RatPreference::GsmOnly);
    net.attach(id).unwrap();

    // Stage 1: the IMSI catcher parks the victim on the fake cell.
    let mut fbs = FakeBaseStation::new(Position::new(10.0, 0.0), Arfcn(42));
    fbs.lure(&mut net, id).unwrap();
    let fake = match net.terminal(id).unwrap().camp() {
        Camp::Fake(cell) => cell,
        other => panic!("victim should camp on the fake cell, camps on {other:?}"),
    };
    assert_ne!(fake, CellId(1));
    assert_ne!(fake, CellId(2));

    // Stage 2: the attacker impersonates the victim towards the real
    // network by relaying its true SRES, diverting its traffic.
    let victim_ms = net.terminal(id).unwrap().clone();
    net.register_spoofed(id, Position::new(50.0, 0.0), CipherSet::none(), |rand| {
        victim_ms.a3_sres(rand)
    })
    .unwrap();

    for i in 0..3 {
        net.send_sms(&msisdn("13800138000"), &format!("OTP {i}00{i}")).unwrap();
    }
    // Drain every retry sweep the SMSC will ever schedule.
    let report = net.run_until_idle();
    assert_eq!(report.residual, 0, "retry wheel drained");

    assert_eq!(net.terminal(id).unwrap().inbox().len(), 0, "victim got nothing real");
    assert_eq!(net.smsc_pending(), 0, "nothing left queued for a real cell");
    let diverted = net.spoofed_inbox(id);
    assert_eq!(diverted.len(), 3, "attacker harvested every message");
    assert!(diverted.iter().enumerate().all(|(i, s)| s.text == format!("OTP {i}00{i}")));
    // The victim never regained real service along the way.
    assert_eq!(net.terminal(id).unwrap().camp(), Camp::Fake(fake));
}
