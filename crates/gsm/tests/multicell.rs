//! Multi-cell scenarios: mobility, per-cell sniffer coverage and the
//! receiver-capacity constraint that motivates the paper's 16-handset
//! rig.

use actfort_gsm::arfcn::Arfcn;
use actfort_gsm::identity::Msisdn;
use actfort_gsm::network::{GsmNetwork, NetworkConfig};
use actfort_gsm::radio::{CellConfig, CellId, Position};
use actfort_gsm::sniffer::{PassiveSniffer, SnifferConfig};

fn msisdn(s: &str) -> Msisdn {
    Msisdn::new(s).unwrap()
}

fn two_cell_network() -> GsmNetwork {
    let mut net = GsmNetwork::new(NetworkConfig { session_key_bits: 16, ..Default::default() });
    net.add_cell(CellConfig {
        id: CellId(2),
        arfcn: Arfcn(23),
        lac: 0x1002,
        position: Position::new(1_200.0, 0.0),
        range_m: 800.0,
        cipher_preference: vec![actfort_gsm::cipher::CipherAlgo::A51],
    })
    .unwrap();
    net
}

#[test]
fn subscriber_moves_and_reattaches_on_nearest_cell() {
    let mut net = two_cell_network();
    let id = net.provision_subscriber("mover", msisdn("13800138000")).unwrap();
    assert_eq!(net.attach(id).unwrap(), CellId(1));
    net.send_sms(&msisdn("13800138000"), "111111 at home cell").unwrap();

    // Walk into the second cell's area and re-attach.
    net.terminal_mut(id).unwrap().set_position(Position::new(1_200.0, 10.0));
    assert_eq!(net.attach(id).unwrap(), CellId(2));
    net.send_sms(&msisdn("13800138000"), "222222 at away cell").unwrap();

    let ms = net.terminal(id).unwrap();
    assert_eq!(ms.inbox().len(), 2);
    // The away-cell traffic was carried on the second ARFCN.
    assert!(net
        .ether()
        .frames()
        .iter()
        .any(|f| f.arfcn == Arfcn(23) && f.cell == CellId(2)));
}

#[test]
fn single_receiver_misses_the_other_cell() {
    let mut net = two_cell_network();
    let a = net.provision_subscriber("a", msisdn("13800138000")).unwrap();
    let b = net.provision_subscriber("b", msisdn("13900139000")).unwrap();
    net.attach(a).unwrap();
    net.terminal_mut(b).unwrap().set_position(Position::new(1_200.0, 0.0));
    net.attach(b).unwrap();
    net.send_sms(&msisdn("13800138000"), "123456 is your Google login code.").unwrap();
    net.send_sms(&msisdn("13900139000"), "654321 is your Google login code.").unwrap();

    // One receiver, tuned to cell 1 only — note the long sniffer range so
    // distance is not the limiting factor, carrier choice is.
    let mut narrow = PassiveSniffer::new(SnifferConfig {
        receivers: 1,
        crack_bits: 16,
        range_m: 5_000.0,
        ..Default::default()
    });
    narrow.monitor(Arfcn(17)).unwrap();
    assert!(narrow.monitor(Arfcn(23)).is_err(), "capacity exhausted");
    narrow.poll(net.ether());
    assert_eq!(narrow.sms().len(), 1, "only the home-cell code is captured");

    // The 16-receiver rig covers both carriers.
    let mut rig = PassiveSniffer::new(SnifferConfig {
        crack_bits: 16,
        range_m: 5_000.0,
        ..Default::default()
    });
    rig.monitor(Arfcn(17)).unwrap();
    rig.monitor(Arfcn(23)).unwrap();
    rig.poll(net.ether());
    assert_eq!(rig.sms().len(), 2, "both cells' codes captured");
}

#[test]
fn sniffer_tracks_distinct_keys_per_cell() {
    let mut net = two_cell_network();
    let a = net.provision_subscriber("a", msisdn("13800138000")).unwrap();
    let b = net.provision_subscriber("b", msisdn("13900139000")).unwrap();
    net.attach(a).unwrap();
    net.terminal_mut(b).unwrap().set_position(Position::new(1_200.0, 0.0));
    net.attach(b).unwrap();
    net.send_sms(&msisdn("13800138000"), "111222 is your code").unwrap();
    net.send_sms(&msisdn("13900139000"), "333444 is your code").unwrap();

    let mut rig = PassiveSniffer::new(SnifferConfig {
        crack_bits: 16,
        range_m: 5_000.0,
        ..Default::default()
    });
    rig.monitor(Arfcn(17)).unwrap();
    rig.monitor(Arfcn(23)).unwrap();
    rig.poll(net.ether());
    assert_eq!(rig.stats().sessions_cracked, 2);
    let keys: Vec<_> = rig.sms().iter().filter_map(|s| s.cracked_key).collect();
    assert_eq!(keys.len(), 2);
    assert_ne!(keys[0], keys[1], "each subscriber had its own session key");
}
