//! Property tests for the city-scale campaign engine and the mobility
//! semantics it abstracts: shard-count invariance of campaign reports,
//! single-serving-cell attachment, and pending-SMS survival across
//! handovers.

use actfort_gsm::arfcn::Arfcn;
use actfort_gsm::campaign::{run, run_sharded, CampaignConfig};
use actfort_gsm::identity::Msisdn;
use actfort_gsm::network::{GsmNetwork, NetworkConfig};
use actfort_gsm::radio::{CellConfig, CellId, Position};
use actfort_gsm::terminal::Camp;
use proptest::prelude::*;

fn msisdn(s: &str) -> Msisdn {
    Msisdn::new(s).unwrap()
}

/// A 2×2 cell grid with 1200 m spacing and 800 m range: interior
/// positions are always covered, corners can fall out of coverage.
fn grid_network() -> GsmNetwork {
    let mut net = GsmNetwork::new(NetworkConfig { session_key_bits: 16, ..Default::default() });
    for (i, (x, y)) in [(1_200.0, 0.0), (0.0, 1_200.0), (1_200.0, 1_200.0)].iter().enumerate() {
        net.add_cell(CellConfig {
            id: CellId(2 + i as u16),
            arfcn: Arfcn(23 + i as u16),
            lac: 0x1002 + i as u16,
            position: Position::new(*x, *y),
            range_m: 800.0,
            cipher_preference: vec![actfort_gsm::cipher::CipherAlgo::A51],
        })
        .unwrap();
    }
    net
}

/// Nearest covering real cell for a position, straight from the
/// network's own directory — what `attach` must pick.
fn nearest_covering(net: &GsmNetwork, pos: Position) -> Option<CellId> {
    net.cells()
        .iter()
        .filter(|c| c.position.distance(pos) <= c.range_m)
        .min_by(|a, b| {
            a.position.distance(pos).partial_cmp(&b.position.distance(pos)).expect("no NaN")
        })
        .map(|c| c.id)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The merged campaign report is byte-identical however the
    /// subscriber population is partitioned over shards — including
    /// degenerate partitions with more shards than subscribers.
    #[test]
    fn campaign_report_is_shard_invariant(
        seed in any::<u64>(),
        subscribers in 20u32..120,
        sniffers in 0u32..5,
        mitm_stations in 0u32..4,
    ) {
        let cfg = CampaignConfig {
            seed,
            subscribers,
            duration_s: 8,
            grid_cols: 5,
            grid_rows: 3,
            sniffers,
            mitm_stations,
            ..CampaignConfig::default()
        };
        let one = run_sharded(&cfg, 1).to_json();
        prop_assert_eq!(&one, &run_sharded(&cfg, 2).to_json(), "2 shards diverged");
        prop_assert_eq!(&one, &run_sharded(&cfg, 8).to_json(), "8 shards diverged");
        prop_assert_eq!(&one, &run(&cfg).to_json(), "run() is the 1-shard path");
    }

    /// Structural report invariants hold for any seed: counters
    /// reconcile between totals and per-cell, interceptions are sorted
    /// and unique per (time, subscriber), and the compromised list is
    /// exactly the distinct intercepted subscribers.
    #[test]
    fn campaign_report_reconciles(seed in any::<u64>()) {
        let cfg = CampaignConfig {
            seed,
            subscribers: 80,
            duration_s: 10,
            grid_cols: 4,
            grid_rows: 3,
            sniffers: 3,
            mitm_stations: 2,
            ..CampaignConfig::default()
        };
        let report = run(&cfg);
        let t = &report.totals;
        prop_assert_eq!(report.per_cell.iter().map(|c| c.frames).sum::<u64>(), t.frames);
        prop_assert_eq!(report.per_cell.iter().map(|c| c.attaches).sum::<u64>(), t.attaches);
        prop_assert_eq!(report.per_cell.iter().map(|c| c.handovers).sum::<u64>(), t.handovers);
        prop_assert_eq!(
            report.per_cell.iter().map(|c| c.pages).sum::<u64>(),
            t.sms_delivered + t.sms_diverted,
            "every SMS pages exactly once"
        );
        prop_assert_eq!(
            report.per_cell.iter().map(|c| c.page_responses).sum::<u64>(),
            t.sms_delivered,
            "only real deliveries answer their page"
        );
        prop_assert_eq!(t.sms_sniffed + t.sms_diverted, report.interceptions.len() as u64);
        for w in report.interceptions.windows(2) {
            prop_assert!(
                (w[0].time_us, w[0].subscriber) < (w[1].time_us, w[1].subscriber),
                "interceptions sorted and unique"
            );
        }
        let mut subs: Vec<u32> = report.interceptions.iter().map(|i| i.subscriber).collect();
        subs.sort_unstable();
        subs.dedup();
        prop_assert_eq!(subs, report.compromised);
    }

    /// After any walk, an attached subscriber camps on exactly one real
    /// cell: the nearest one covering its position. Out-of-coverage
    /// attaches fail without corrupting the previous camp.
    #[test]
    fn attach_camps_on_the_single_nearest_covering_cell(
        walk in prop::collection::vec((-500i32..1_700, -500i32..1_700), 1..8),
    ) {
        let mut net = grid_network();
        let id = net.provision_subscriber("walker", msisdn("13800138000")).unwrap();
        for (x, y) in walk {
            let pos = Position::new(f64::from(x), f64::from(y));
            net.terminal_mut(id).unwrap().set_position(pos);
            let before = net.terminal(id).unwrap().camp();
            match net.attach(id) {
                Ok(cell) => {
                    prop_assert_eq!(Some(cell), nearest_covering(&net, pos));
                    // Exactly one serving cell, and it is the one
                    // attach reported.
                    prop_assert_eq!(net.terminal(id).unwrap().camp(), Camp::Real(cell));
                }
                Err(_) => {
                    prop_assert_eq!(nearest_covering(&net, pos), None, "covered attach failed");
                    prop_assert_eq!(net.terminal(id).unwrap().camp(), before);
                }
            }
        }
    }

    /// An SMS queued while the subscriber is unreachable survives any
    /// handover: wherever the subscriber re-attaches, the retry wheel
    /// delivers it there, on that cell's carrier.
    #[test]
    fn handover_preserves_pending_sms_delivery(
        first in 0usize..4,
        second in 0usize..4,
        code in 100_000u32..1_000_000,
    ) {
        let sites =
            [(0.0, 0.0), (1_200.0, 0.0), (0.0, 1_200.0), (1_200.0, 1_200.0)];
        let mut net = grid_network();
        let id = net.provision_subscriber("mover", msisdn("13800138000")).unwrap();
        net.terminal_mut(id).unwrap().set_position(Position::new(sites[first].0, sites[first].1));
        let origin = net.attach(id).unwrap();
        net.detach(id);

        let text = format!("{code} is your verification code.");
        net.send_sms(&msisdn("13800138000"), &text).unwrap();
        prop_assert_eq!(net.smsc_pending(), 1, "undeliverable SMS is queued");

        // Hand over: re-attach at a (possibly) different site.
        net.terminal_mut(id).unwrap().set_position(Position::new(sites[second].0, sites[second].1));
        let landed = net.attach(id).unwrap();
        if first != second {
            prop_assert_ne!(origin, landed, "distinct sites map to distinct cells");
        }
        let report = net.run_until_idle();
        prop_assert_eq!(report.residual, 0, "wheel drained");
        prop_assert_eq!(net.smsc_pending(), 0, "queue drained");
        let ms = net.terminal(id).unwrap();
        prop_assert_eq!(ms.inbox().len(), 1);
        prop_assert_eq!(ms.inbox()[0].text.clone(), text);
        // The delivery rode the landing cell's carrier.
        let arfcn = net.cells().iter().find(|c| c.id == landed).unwrap().arfcn;
        prop_assert!(
            net.ether().frames().iter().rev().any(|f| f.cell == landed && f.arfcn == arfcn),
            "no frames on the landing cell"
        );
    }
}
