//! Property-based tests for the GSM substrate's codecs and cipher.

use actfort_gsm::a5::{apply_keystream, A51, Kc};
use actfort_gsm::arfcn::Arfcn;
use actfort_gsm::cipher::CipherAlgo;
use actfort_gsm::pdu::{
    self, Address, SmsDeliver, SmsSubmit, TypeOfNumber,
};
use actfort_gsm::radio::{AirFrame, AirMessage, CellId, Direction, Ether, Position};
use actfort_gsm::sniffer::{PassiveSniffer, SnifferConfig};
use actfort_gsm::time::SimClock;
use proptest::prelude::*;

/// Strategy producing text drawn from the GSM 7-bit basic alphabet.
fn gsm7_text(max_len: usize) -> impl Strategy<Value = String> {
    let alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .,:;!?#%&()*+-/<=>@_£¥èéàΔΩ€{}[]~|\\^";
    let chars: Vec<char> = alphabet.chars().collect();
    prop::collection::vec(prop::sample::select(chars), 0..max_len)
        .prop_map(|v| v.into_iter().collect())
}

/// Strategy for BMP-only text (valid UCS-2).
fn bmp_text(max_len: usize) -> impl Strategy<Value = String> {
    // `char` can never be a surrogate, so any BMP char is valid UCS-2.
    prop::collection::vec(prop::char::range('\u{20}', '\u{ffff}'), 0..max_len)
        .prop_map(|v| v.into_iter().collect())
}

fn digits(min: usize, max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(prop::sample::select(('0'..='9').collect::<Vec<_>>()), min..=max)
        .prop_map(|v| v.into_iter().collect())
}

proptest! {
    #[test]
    fn septet_pack_unpack_roundtrip(septets in prop::collection::vec(0u8..128, 0..300)) {
        let packed = pdu::pack_septets(&septets);
        let back = pdu::unpack_septets(&packed, septets.len()).expect("enough bytes");
        prop_assert_eq!(back, septets);
    }

    #[test]
    fn gsm7_text_roundtrip(text in gsm7_text(100)) {
        // Escaped characters cost two septets; keep under the limit.
        prop_assume!(pdu::gsm7_septet_len(&text).unwrap_or(999) <= 160);
        let (packed, n) = pdu::gsm7_encode(&text).expect("alphabet text encodes");
        let back = pdu::gsm7_decode(&packed, n).expect("decodes");
        prop_assert_eq!(back, text);
    }

    #[test]
    fn ucs2_roundtrip(text in bmp_text(70)) {
        let data = pdu::ucs2_encode(&text).expect("BMP text encodes");
        let back = pdu::ucs2_decode(&data).expect("decodes");
        prop_assert_eq!(back, text);
    }

    #[test]
    fn deliver_roundtrip_any_text(text in bmp_text(60), addr in digits(5, 15)) {
        let oa = Address::numeric(&addr, TypeOfNumber::International).unwrap();
        let d = SmsDeliver::new(oa, &text).expect("one-PDU text");
        let back = SmsDeliver::decode(&d.encode()).expect("decodes");
        prop_assert_eq!(back.text().unwrap(), text);
        prop_assert_eq!(back, d);
    }

    #[test]
    fn deliver_decode_never_panics_on_junk(data in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = SmsDeliver::decode(&data);
        let _ = SmsSubmit::decode(&data);
        let _ = AirMessage::decode(&data);
    }

    #[test]
    fn submit_roundtrip_any_text(text in gsm7_text(80), mr in any::<u8>(), addr in digits(5, 15)) {
        prop_assume!(pdu::gsm7_septet_len(&text).unwrap_or(999) <= 160);
        let da = Address::numeric(&addr, TypeOfNumber::National).unwrap();
        let s = SmsSubmit::new(mr, da, &text).unwrap();
        let back = SmsSubmit::decode(&s.encode()).unwrap();
        prop_assert_eq!(back, s);
    }

    /// Long messages split into concatenated parts whose decoded texts
    /// reassemble to the original, whatever the alphabet.
    #[test]
    fn split_deliver_roundtrips(text in bmp_text(500), reference in any::<u8>()) {
        prop_assume!(!text.is_empty());
        let oa = Address::numeric("10690001", TypeOfNumber::National).unwrap();
        let parts = pdu::split_deliver(&oa, &text, reference).expect("splittable");
        let mut reassembled = String::new();
        for (i, part) in parts.iter().enumerate() {
            let decoded = SmsDeliver::decode(&part.encode()).expect("decodes");
            if parts.len() > 1 {
                let info = decoded.concat.expect("multipart parts carry a header");
                prop_assert_eq!(info.reference, reference);
                prop_assert_eq!(usize::from(info.seq), i + 1);
                prop_assert_eq!(usize::from(info.total), parts.len());
            } else {
                prop_assert!(decoded.concat.is_none());
            }
            reassembled.push_str(&decoded.text().expect("part text"));
        }
        prop_assert_eq!(reassembled, text);
    }

    #[test]
    fn a51_keystream_involution(kc in any::<u64>(), frame in 0u32..(1 << 22), data in prop::collection::vec(any::<u8>(), 1..64)) {
        let mut buf = data.clone();
        apply_keystream(Kc(kc), frame, &mut buf);
        apply_keystream(Kc(kc), frame, &mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn a51_distinct_frames_give_distinct_keystream(kc in any::<u64>(), f1 in 0u32..(1<<22), f2 in 0u32..(1<<22)) {
        prop_assume!(f1 != f2);
        let a = A51::new(Kc(kc), f1).keystream_bytes(16);
        let b = A51::new(Kc(kc), f2).keystream_bytes(16);
        // Collisions over 128 bits are effectively impossible.
        prop_assert_ne!(a, b);
    }

    /// The sniffer survives arbitrary hostile traffic: random payloads,
    /// random cipher markings, random cells — no panics, and statistics
    /// stay consistent.
    #[test]
    fn sniffer_never_panics_on_junk(
        frames in prop::collection::vec(
            (
                prop::collection::vec(any::<u8>(), 0..64),
                0u8..3,
                0u16..4,
                any::<u32>(),
            ),
            0..60,
        )
    ) {
        let mut ether = Ether::new();
        for (payload, cipher, cell, frame_number) in &frames {
            let cipher = match cipher {
                0 => CipherAlgo::A50,
                1 => CipherAlgo::A51,
                _ => CipherAlgo::A53,
            };
            ether.transmit(AirFrame {
                seq: 0,
                time: SimClock::new(),
                frame_number: *frame_number & 0x3f_ffff,
                arfcn: Arfcn(17),
                cell: CellId(*cell),
                direction: Direction::Downlink,
                cipher,
                origin: Position::default(),
                payload: payload.clone(),
            });
        }
        let mut sniffer = PassiveSniffer::new(SnifferConfig { crack_bits: 8, ..Default::default() });
        sniffer.monitor(Arfcn(17)).unwrap();
        sniffer.poll(&ether);
        let stats = sniffer.stats();
        prop_assert_eq!(stats.frames_captured + stats.frames_missed, frames.len());
        prop_assert!(stats.sms_recovered <= stats.frames_captured);
    }

    #[test]
    fn a51_keystream_is_balanced(kc in any::<u64>(), frame in 0u32..(1<<22)) {
        // Sanity: roughly half the bits are ones over 1024 bits.
        let mut bits = vec![0u8; 1024];
        A51::new(Kc(kc), frame).keystream_bits(&mut bits);
        let ones: usize = bits.iter().map(|&b| usize::from(b)).sum();
        prop_assert!((380..=644).contains(&ones), "ones = {}", ones);
    }
}
