//! Simulated GSM substrate for the ActFort reproduction.
//!
//! The DSN 2021 paper intercepts SMS one-time codes over a live GSM network
//! using Motorola C118 handsets running OsmocomBB (passive sniffing) and a
//! USRP-based fake base station (active man-in-the-middle). This crate
//! rebuilds the *protocol-level* behaviour those rigs exploit, entirely
//! in-process and deterministically:
//!
//! - [`pdu`] — GSM 03.40 SMS TPDUs with real 7-bit septet packing, UCS-2,
//!   semi-octet address encoding and service-centre timestamps.
//! - [`a5`] — a faithful A5/1 stream-cipher implementation plus a
//!   calibrated known-plaintext cracking model standing in for the
//!   published rainbow-table attacks.
//! - [`radio`], [`terminal`], [`network`], [`smsc`] — cells, base
//!   stations, mobile stations, paging, location updates and a
//!   store-and-forward SMS centre over a shared air interface.
//! - [`sniffer`] — a passive multi-ARFCN monitor in the style of the
//!   paper's 16-C118 rig, with Wireshark-like capture filtering.
//! - [`mitm`] — the active attack: an LTE-downgrade jammer model, an
//!   IMSI-catching fake base station and a fake victim terminal.
//!
//! # Example
//!
//! ```
//! use actfort_gsm::network::{GsmNetwork, NetworkConfig};
//! use actfort_gsm::identity::Msisdn;
//!
//! # fn main() -> Result<(), actfort_gsm::GsmError> {
//! let mut net = GsmNetwork::new(NetworkConfig::default());
//! let victim = net.provision_subscriber("victim", Msisdn::new("13800138000")?)?;
//! net.attach(victim)?;
//! net.send_sms(&Msisdn::new("13800138000")?, "G-786348 is your verification code.")?;
//! net.run_until_idle();
//! let ms = net.terminal(victim).expect("attached terminal");
//! assert_eq!(ms.inbox().len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod a5;
pub mod arfcn;
pub mod campaign;
pub mod cell;
pub mod cipher;
mod city;
pub mod error;
pub mod identity;
pub mod mitm;
pub mod network;
pub mod pdu;
pub mod radio;
pub mod report;
pub mod scheduler;
pub mod smsc;
pub mod sniffer;
pub mod subscriber;
pub mod terminal;
pub mod time;
pub mod transaction;
pub mod wireshark;

pub use error::GsmError;
pub use time::SimClock;
