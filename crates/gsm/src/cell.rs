//! Cell inventory: an indexed directory of [`CellConfig`]s.
//!
//! The network used to keep cells in a bare `Vec` and linearly scan it
//! for duplicate ids on every insert and for the serving cell on every
//! attach — fine for three cells, quadratic poison for a city of
//! hundreds. The directory keeps an id→slot index map alongside the
//! dense cell array so duplicate checks and id lookups are O(log n)
//! while iteration stays cache-friendly.

use crate::error::GsmError;
use crate::radio::{CellConfig, CellId, Position};
use std::collections::BTreeMap;

/// An indexed inventory of the network's cells.
#[derive(Debug, Default)]
pub struct CellDirectory {
    cells: Vec<CellConfig>,
    index: BTreeMap<CellId, usize>,
}

impl CellDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a cell.
    ///
    /// # Errors
    ///
    /// Returns [`GsmError::ProtocolViolation`] on a duplicate cell id.
    pub fn insert(&mut self, cell: CellConfig) -> Result<CellId, GsmError> {
        let id = cell.id;
        if self.index.contains_key(&id) {
            return Err(GsmError::ProtocolViolation(format!("duplicate {id}")));
        }
        self.index.insert(id, self.cells.len());
        self.cells.push(cell);
        Ok(id)
    }

    /// Looks up a cell by id.
    pub fn get(&self, id: CellId) -> Option<&CellConfig> {
        self.index.get(&id).map(|&slot| &self.cells[slot])
    }

    /// All cells, in insertion order.
    pub fn all(&self) -> &[CellConfig] {
        &self.cells
    }

    /// The first cell added (the network's default cell).
    pub fn first(&self) -> Option<&CellConfig> {
        self.cells.first()
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the directory holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The best serving cell for a handset at `pos`: the nearest cell
    /// whose range covers the position.
    pub fn best_for(&self, pos: Position) -> Option<&CellConfig> {
        self.cells
            .iter()
            .filter(|c| c.position.distance(pos) <= c.range_m)
            .min_by(|a, b| {
                a.position
                    .distance(pos)
                    .partial_cmp(&b.position.distance(pos))
                    .expect("distances are finite")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(id: u16, x: f64) -> CellConfig {
        CellConfig { id: CellId(id), position: Position::new(x, 0.0), ..CellConfig::default() }
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut dir = CellDirectory::new();
        dir.insert(cell(1, 0.0)).unwrap();
        assert!(dir.insert(cell(1, 100.0)).is_err());
        assert_eq!(dir.len(), 1);
    }

    #[test]
    fn lookup_by_id() {
        let mut dir = CellDirectory::new();
        dir.insert(cell(7, 0.0)).unwrap();
        dir.insert(cell(3, 500.0)).unwrap();
        assert_eq!(dir.get(CellId(3)).unwrap().position.x, 500.0);
        assert!(dir.get(CellId(9)).is_none());
    }

    #[test]
    fn best_for_picks_nearest_covering_cell() {
        let mut dir = CellDirectory::new();
        dir.insert(cell(1, 0.0)).unwrap();
        dir.insert(cell(2, 600.0)).unwrap();
        assert_eq!(dir.best_for(Position::new(100.0, 0.0)).unwrap().id, CellId(1));
        assert_eq!(dir.best_for(Position::new(500.0, 0.0)).unwrap().id, CellId(2));
        assert!(dir.best_for(Position::new(10_000.0, 0.0)).is_none());
    }
}
