//! Protocol transaction drivers: the burst-by-burst GSM procedures
//! ([`GsmNetwork::attach`], spoofed registration, paging + SMS
//! delivery, mobile-originated SMS) that emit byte-faithful traffic
//! into the ether. Split from `network.rs`, which keeps the state,
//! directories and the event-wheel drain loop.

use crate::a5::Kc;
use crate::cipher::{CipherAlgo, CipherContext, CipherSet};
use crate::error::GsmError;
use crate::identity::{Msisdn, SubscriberId, Tmsi};
use crate::network::GsmNetwork;
use crate::pdu::SmsDeliver;
use crate::radio::{AirFrame, AirMessage, CellConfig, CellId, Direction, MsIdentity, Position};
use crate::subscriber::Attachment;
use crate::terminal::{Camp, ReceivedSms};
use actfort_obs as obs;
use rand::Rng;

impl GsmNetwork {
    /// Confines a session key to the configured weak-key subspace.
    fn weaken(&self, kc: Kc) -> Kc {
        let bits = self.config.session_key_bits.min(64);
        if bits >= 64 {
            return kc;
        }
        let mask = (1u64 << bits) - 1;
        Kc((kc.0 & mask) | (crate::a5::WEAK_KC_BASE & !mask))
    }

    /// Transmits one burst; returns `false` when the loss model swallowed
    /// it (the frame then reaches neither receivers nor sniffers).
    fn transmit(
        &mut self,
        cell: &CellConfig,
        direction: Direction,
        cipher: CipherAlgo,
        ctx: Option<&CipherContext>,
        origin: Position,
        msg: &AirMessage,
    ) -> bool {
        self.clock.advance_frame();
        let frame_number = self.clock.frame_number();
        let mut payload = msg.encode();
        if let Some(ctx) = ctx {
            ctx.apply(frame_number, &mut payload);
        }
        self.ether.transmit(AirFrame {
            seq: 0,
            time: self.clock,
            frame_number,
            arfcn: cell.arfcn,
            cell: cell.id,
            direction,
            cipher,
            origin,
            payload,
        })
    }

    /// Performs a full location update for `id` on the best covering cell:
    /// LAU request, authentication, cipher-mode negotiation and TMSI
    /// reallocation. On success the subscriber becomes reachable for SMS.
    ///
    /// # Errors
    ///
    /// - [`GsmError::UnknownSubscriber`] for an unknown id.
    /// - [`GsmError::ProtocolViolation`] when the handset is out of every
    ///   cell's range, or is camped on LTE (jam it first).
    pub fn attach(&mut self, id: SubscriberId) -> Result<CellId, GsmError> {
        let sub = self.subs.get(id).ok_or_else(|| GsmError::UnknownSubscriber(id.to_string()))?;
        if !sub.ms.uses_gsm(self.config.lte_available) {
            return Err(GsmError::ProtocolViolation("handset is camped on LTE".into()));
        }
        let pos = sub.ms.position();
        let cell = self
            .cells
            .best_for(pos)
            .cloned()
            .ok_or_else(|| GsmError::ProtocolViolation("no cell covers the handset".into()))?;
        let ms_pos = pos;
        let bts_pos = cell.position;

        // Uplink LAU request with current identity (TMSI if held).
        let (identity, classmark) = {
            let sub = self.subs.get(id).expect("checked above");
            let identity = match sub.ms.tmsi() {
                Some(t) => MsIdentity::Tmsi(t),
                None => MsIdentity::Imsi(sub.ms.imsi()),
            };
            (identity, sub.ms.classmark())
        };
        self.transmit(
            &cell,
            Direction::Uplink,
            CipherAlgo::A50,
            None,
            ms_pos,
            &AirMessage::LocationUpdateRequest { id: identity, classmark: classmark.mask() },
        );

        // Challenge-response authentication.
        let rand: u64 = self.rng.gen();
        self.transmit(
            &cell,
            Direction::Downlink,
            CipherAlgo::A50,
            None,
            bts_pos,
            &AirMessage::AuthRequest { rand },
        );
        let (sres, kc) = {
            let sub = self.subs.get(id).expect("checked above");
            (sub.ms.a3_sres(rand), self.weaken(sub.ms.a8_kc(rand)))
        };
        self.transmit(
            &cell,
            Direction::Uplink,
            CipherAlgo::A50,
            None,
            ms_pos,
            &AirMessage::AuthResponse { sres },
        );

        // Cipher mode: strongest algorithm the classmark and the cell allow.
        let algo = classmark.negotiate(&cell.cipher_preference);
        self.transmit(
            &cell,
            Direction::Downlink,
            CipherAlgo::A50,
            None,
            bts_pos,
            &AirMessage::CipherModeCommand { algo },
        );
        let ctx = CipherContext { algo, kc };
        self.transmit(
            &cell,
            Direction::Uplink,
            algo,
            Some(&ctx),
            ms_pos,
            &AirMessage::CipherModeComplete,
        );

        // Predictable SI5 padding inside the ciphered channel — the known
        // plaintext real-world A5/1 cracking feeds on.
        self.transmit(&cell, Direction::Downlink, algo, Some(&ctx), bts_pos, &AirMessage::Si5Padding);

        // TMSI reallocation inside the ciphered channel.
        let new_tmsi = if self.config.tmsi_reallocation {
            self.next_tmsi += 1;
            Some(Tmsi(self.next_tmsi))
        } else {
            None
        };
        self.transmit(
            &cell,
            Direction::Downlink,
            algo,
            Some(&ctx),
            bts_pos,
            &AirMessage::LocationUpdateAccept { new_tmsi },
        );

        let sub = self.subs.get_mut(id).expect("checked above");
        if let Some(t) = new_tmsi {
            sub.ms.set_tmsi(Some(t));
        }
        sub.ms.set_camp(Camp::Real(cell.id));
        sub.ms.set_cipher_context(ctx);
        sub.attachment = Attachment::Real { cell: cell.id, ctx };
        sub.kc = Some(kc);
        obs::add("gsm.network.attaches", 1);
        Ok(cell.id)
    }

    /// Registers an attacker-controlled fake terminal under the victim's
    /// identity (Fig. 10 of the paper). `auth_relay` receives the network's
    /// RAND and must return the victim's SRES — in the real attack the
    /// fake base station relays the challenge to the captive victim.
    ///
    /// On success the victim's SMS traffic is diverted to the spoofed
    /// registration (readable via [`GsmNetwork::spoofed_inbox`]) under the
    /// negotiated cipher, which the attacker downgraded to A5/0 by
    /// claiming an empty classmark.
    ///
    /// # Errors
    ///
    /// - [`GsmError::UnknownSubscriber`] for an unknown victim.
    /// - [`GsmError::ProtocolViolation`] when the relayed SRES is wrong or
    ///   the negotiated cipher is one the attacker cannot run (the spoof
    ///   must force A5/0).
    pub fn register_spoofed<F>(
        &mut self,
        victim: SubscriberId,
        attacker_pos: Position,
        classmark: CipherSet,
        mut auth_relay: F,
    ) -> Result<CipherContext, GsmError>
    where
        F: FnMut(u64) -> u32,
    {
        let sub = self
            .subs
            .get(victim)
            .ok_or_else(|| GsmError::UnknownSubscriber(victim.to_string()))?;
        let imsi = sub.ms.imsi();
        let cell = self
            .cells
            .best_for(attacker_pos)
            .cloned()
            .ok_or_else(|| GsmError::ProtocolViolation("no cell covers the attacker".into()))?;
        let bts_pos = cell.position;

        self.transmit(
            &cell,
            Direction::Uplink,
            CipherAlgo::A50,
            None,
            attacker_pos,
            &AirMessage::LocationUpdateRequest {
                id: MsIdentity::Imsi(imsi),
                classmark: classmark.mask(),
            },
        );
        let rand: u64 = self.rng.gen();
        self.transmit(
            &cell,
            Direction::Downlink,
            CipherAlgo::A50,
            None,
            bts_pos,
            &AirMessage::AuthRequest { rand },
        );
        let relayed_sres = auth_relay(rand);
        self.transmit(
            &cell,
            Direction::Uplink,
            CipherAlgo::A50,
            None,
            attacker_pos,
            &AirMessage::AuthResponse { sres: relayed_sres },
        );
        let (expected_sres, kc) = {
            let sub = self.subs.get(victim).expect("checked above");
            (sub.ms.a3_sres(rand), self.weaken(sub.ms.a8_kc(rand)))
        };
        if relayed_sres != expected_sres {
            return Err(GsmError::ProtocolViolation("authentication failed (bad SRES)".into()));
        }
        let algo = classmark.negotiate(&cell.cipher_preference);
        self.transmit(
            &cell,
            Direction::Downlink,
            CipherAlgo::A50,
            None,
            bts_pos,
            &AirMessage::CipherModeCommand { algo },
        );
        if algo != CipherAlgo::A50 {
            // The attacker does not hold Kc; only a successful downgrade
            // to plaintext lets the spoofed registration proceed.
            return Err(GsmError::ProtocolViolation(format!(
                "network insisted on {algo}; spoofed registration impossible"
            )));
        }
        let ctx = CipherContext::plaintext();
        self.transmit(
            &cell,
            Direction::Uplink,
            algo,
            Some(&ctx),
            attacker_pos,
            &AirMessage::CipherModeComplete,
        );
        self.transmit(
            &cell,
            Direction::Downlink,
            algo,
            Some(&ctx),
            bts_pos,
            &AirMessage::LocationUpdateAccept { new_tmsi: None },
        );
        let sub = self.subs.get_mut(victim).expect("checked above");
        sub.attachment = Attachment::Spoofed { ctx };
        sub.kc = Some(kc);
        obs::add("gsm.network.spoofed_registrations", 1);
        Ok(ctx)
    }

    pub(crate) fn deliver_one(&mut self, id: SubscriberId, tpdu: &SmsDeliver) -> Result<(), GsmError> {
        let sub = self.subs.get(id).ok_or_else(|| GsmError::UnknownSubscriber(id.to_string()))?;
        match sub.attachment {
            Attachment::None => Err(GsmError::NotAttached),
            Attachment::Real { cell, ctx } => {
                let cell = self.cells.get(cell).cloned().ok_or(GsmError::UnknownCell(cell.0))?;
                let (identity, ms_pos) = {
                    let sub = self.subs.get(id).expect("checked above");
                    let identity = if self.config.page_by_imsi {
                        MsIdentity::Imsi(sub.ms.imsi())
                    } else {
                        match sub.ms.tmsi() {
                            Some(t) => MsIdentity::Tmsi(t),
                            None => MsIdentity::Imsi(sub.ms.imsi()),
                        }
                    };
                    (identity, sub.ms.position())
                };
                let bts_pos = cell.position;
                self.transmit(
                    &cell,
                    Direction::Downlink,
                    CipherAlgo::A50,
                    None,
                    bts_pos,
                    &AirMessage::PagingRequest { id: identity },
                );
                self.transmit(
                    &cell,
                    Direction::Uplink,
                    CipherAlgo::A50,
                    None,
                    ms_pos,
                    &AirMessage::PagingResponse { id: identity },
                );
                let landed = self.transmit(
                    &cell,
                    Direction::Downlink,
                    ctx.algo,
                    Some(&ctx),
                    bts_pos,
                    &AirMessage::SmsDeliverData { tpdu: tpdu.encode() },
                );
                if !landed {
                    // The burst faded; the handset never acknowledges and
                    // the SMSC will retry.
                    return Err(GsmError::ProtocolViolation("delivery burst lost on the air".into()));
                }
                self.transmit(
                    &cell,
                    Direction::Uplink,
                    ctx.algo,
                    Some(&ctx),
                    ms_pos,
                    &AirMessage::SmsAck,
                );
                let received = ReceivedSms {
                    originator: tpdu.originator.to_string(),
                    text: tpdu.text()?,
                    time: self.clock,
                    raw_tpdu: tpdu.encode(),
                };
                let sub = self.subs.get_mut(id).expect("checked above");
                sub.ms.receive_sms(received, tpdu.concat);
                Ok(())
            }
            Attachment::Spoofed { ctx } => {
                // Traffic goes to the attacker's registration; the cell is
                // whichever covers the attacker — reuse the first cell for
                // the transmission record.
                let cell = self.cells.first().cloned().ok_or(GsmError::UnknownCell(0))?;
                let bts_pos = cell.position;
                let imsi = {
                    let sub = self.subs.get(id).expect("checked above");
                    sub.ms.imsi()
                };
                self.transmit(
                    &cell,
                    Direction::Downlink,
                    CipherAlgo::A50,
                    None,
                    bts_pos,
                    &AirMessage::PagingRequest { id: MsIdentity::Imsi(imsi) },
                );
                self.transmit(
                    &cell,
                    Direction::Downlink,
                    ctx.algo,
                    Some(&ctx),
                    bts_pos,
                    &AirMessage::SmsDeliverData { tpdu: tpdu.encode() },
                );
                let received = ReceivedSms {
                    originator: tpdu.originator.to_string(),
                    text: tpdu.text()?,
                    time: self.clock,
                    raw_tpdu: tpdu.encode(),
                };
                let sub = self.subs.get_mut(id).expect("checked above");
                sub.spoofed_inbox.push(received);
                Ok(())
            }
        }
    }

    /// Sends a person-to-person SMS from an attached subscriber's
    /// handset: the SMS-SUBMIT crosses the air uplink (ciphered under the
    /// sender's session), the SMSC stores it, and delivery to the
    /// recipient proceeds as usual.
    ///
    /// # Errors
    ///
    /// - [`GsmError::NotAttached`] when the sender has no service.
    /// - [`GsmError::UnknownSubscriber`] for sender or recipient.
    /// - [`GsmError::PduEncode`] when the text needs more than one PDU
    ///   (mobile-originated concatenation is not modelled).
    pub fn ms_send_sms(
        &mut self,
        from: SubscriberId,
        to: &Msisdn,
        text: &str,
    ) -> Result<(), GsmError> {
        let sub = self
            .subs
            .get(from)
            .ok_or_else(|| GsmError::UnknownSubscriber(from.to_string()))?;
        let Attachment::Real { cell, ctx } = sub.attachment else {
            return Err(GsmError::NotAttached);
        };
        if self.subscriber_by_msisdn(to).is_none() {
            return Err(GsmError::UnknownSubscriber(to.to_string()));
        }
        let sender_msisdn = sub.ms.msisdn().clone();
        let ms_pos = sub.ms.position();
        let cell = self.cells.get(cell).cloned().ok_or(GsmError::UnknownCell(cell.0))?;
        let destination = crate::pdu::Address::from_msisdn(to);
        let submit = crate::pdu::SmsSubmit::new(self.rng.gen(), destination, text)?;
        self.transmit(
            &cell,
            Direction::Uplink,
            ctx.algo,
            Some(&ctx),
            ms_pos,
            &AirMessage::SmsSubmitData { tpdu: submit.encode() },
        );
        self.transmit(
            &cell,
            Direction::Downlink,
            ctx.algo,
            Some(&ctx),
            cell.position,
            &AirMessage::SmsAck,
        );
        // Store-and-forward toward the recipient.
        obs::add("gsm.network.sms_mobile_originated", 1);
        self.send_sms_from(crate::pdu::Address::from_msisdn(&sender_msisdn), to, text)
    }

    /// Transmits a frame on behalf of equipment that is *not* part of the
    /// legitimate network — the fake base station and fake terminal of the
    /// active MitM rig. The frame lands in the same ether all receivers
    /// and sniffers read.
    pub fn transmit_on(
        &mut self,
        cell: &CellConfig,
        direction: Direction,
        cipher: CipherAlgo,
        ctx: Option<&CipherContext>,
        origin: Position,
        msg: &AirMessage,
    ) {
        self.transmit(cell, direction, cipher, ctx, origin, msg);
    }
}
