//! Wireshark-style rendering of captured traffic (Fig. 5 of the paper).
//!
//! The paper filters OsmocomBB captures in Wireshark down to the
//! `TP-User-Data` lines carrying one-time codes. This module reproduces
//! that view over [`AirFrame`] captures and [`SniffedSms`] records.

use crate::radio::{AirFrame, AirMessage, Direction};
use crate::sniffer::SniffedSms;

/// A display filter over captured frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DisplayFilter {
    /// Every frame.
    All,
    /// Only frames whose decoded SMS text contains the needle
    /// (case-sensitive), like `smstext contains "code"`.
    SmsTextContains(String),
    /// Only downlink frames.
    Downlink,
    /// Only frames that parse as plaintext layer-3 messages.
    Parsed,
}

impl DisplayFilter {
    fn admits(&self, frame: &AirFrame) -> bool {
        match self {
            DisplayFilter::All => true,
            DisplayFilter::Downlink => frame.direction == Direction::Downlink,
            DisplayFilter::Parsed => frame.message_plaintext().is_ok(),
            DisplayFilter::SmsTextContains(needle) => match frame.message_plaintext() {
                Ok(AirMessage::SmsDeliverData { tpdu }) => crate::pdu::SmsDeliver::decode(&tpdu)
                    .and_then(|d| d.text())
                    .map(|t| t.contains(needle.as_str()))
                    .unwrap_or(false),
                _ => false,
            },
        }
    }
}

/// Renders a one-line summary of a frame, in the style of a Wireshark
/// packet list row.
pub fn frame_summary(frame: &AirFrame) -> String {
    let dir = match frame.direction {
        Direction::Downlink => "DL",
        Direction::Uplink => "UL",
    };
    let proto = match frame.message_plaintext() {
        Ok(msg) => message_name(&msg).to_owned(),
        Err(_) => format!("[ciphered {}]", frame.cipher),
    };
    format!(
        "{:>6}  {:>10.3}s  {}  {}  {}  {}",
        frame.seq,
        frame.time.micros() as f64 / 1_000_000.0,
        frame.arfcn,
        frame.cell,
        dir,
        proto
    )
}

/// Renders the Fig. 5 style detail block for a recovered SMS:
///
/// ```text
/// TP-User-Data
/// SMS text: G-786348 is your Google verification code.
/// ```
pub fn fig5_block(sms: &SniffedSms) -> String {
    format!("TP-User-Data\nSMS text: {}", sms.text)
}

/// Applies a display filter and renders matching frames.
pub fn render_filtered(frames: &[AirFrame], filter: &DisplayFilter) -> Vec<String> {
    frames.iter().filter(|f| filter.admits(f)).map(frame_summary).collect()
}

/// Renders the full packet-detail pane for one frame: the summary row,
/// the protocol line and a classic offset/hex/ASCII dump of the payload.
pub fn frame_detail(frame: &AirFrame) -> String {
    let mut out = String::new();
    out.push_str(&frame_summary(frame));
    out.push('\n');
    match frame.message_plaintext() {
        Ok(AirMessage::SmsDeliverData { tpdu }) => {
            if let Ok(d) = crate::pdu::SmsDeliver::decode(&tpdu) {
                out.push_str(&format!("  TP-Originating-Address: {}\n", d.originator));
                if let Some(c) = d.concat {
                    out.push_str(&format!(
                        "  UDH concatenation: part {}/{} (ref {})\n",
                        c.seq, c.total, c.reference
                    ));
                }
                if let Ok(text) = d.text() {
                    out.push_str(&format!("  TP-User-Data\n  SMS text: {text}\n"));
                }
            }
        }
        Ok(msg) => out.push_str(&format!("  {}\n", message_name(&msg))),
        Err(_) => out.push_str(&format!("  payload ciphered under {}\n", frame.cipher)),
    }
    out.push_str(&hex_dump(&frame.payload));
    out
}

/// Exports captured frames as a classic libpcap file (little-endian,
/// LINKTYPE_USER0), openable in real Wireshark. Each record carries an
/// 8-byte pseudo-header — ARFCN (u16), cell id (u16), direction (u8),
/// cipher mask bit (u8), two reserved bytes — followed by the raw
/// payload.
pub fn export_pcap(frames: &[AirFrame]) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + frames.len() * 32);
    // Global header.
    out.extend_from_slice(&0xa1b2_c3d4u32.to_le_bytes()); // magic
    out.extend_from_slice(&2u16.to_le_bytes()); // version major
    out.extend_from_slice(&4u16.to_le_bytes()); // version minor
    out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
    out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
    out.extend_from_slice(&65_535u32.to_le_bytes()); // snaplen
    out.extend_from_slice(&147u32.to_le_bytes()); // LINKTYPE_USER0
    for f in frames {
        let micros = f.time.micros();
        let len = (8 + f.payload.len()) as u32;
        out.extend_from_slice(&((micros / 1_000_000) as u32).to_le_bytes());
        out.extend_from_slice(&((micros % 1_000_000) as u32).to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes()); // incl_len
        out.extend_from_slice(&len.to_le_bytes()); // orig_len
        out.extend_from_slice(&f.arfcn.0.to_le_bytes());
        out.extend_from_slice(&f.cell.0.to_le_bytes());
        out.push(match f.direction {
            Direction::Downlink => 0,
            Direction::Uplink => 1,
        });
        out.push(f.cipher.mask_bit());
        out.extend_from_slice(&[0, 0]);
        out.extend_from_slice(&f.payload);
    }
    out
}

/// Classic 16-bytes-per-row hex + ASCII dump.
pub fn hex_dump(data: &[u8]) -> String {
    let mut out = String::new();
    for (row, chunk) in data.chunks(16).enumerate() {
        let hex: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
        let ascii: String = chunk
            .iter()
            .map(|&b| if (0x20..0x7f).contains(&b) { char::from(b) } else { '.' })
            .collect();
        out.push_str(&format!("  {:04x}  {:<47}  {}\n", row * 16, hex.join(" "), ascii));
    }
    out
}

fn message_name(msg: &AirMessage) -> &'static str {
    match msg {
        AirMessage::SystemInfo { .. } => "System Information",
        AirMessage::PagingRequest { .. } => "Paging Request",
        AirMessage::PagingResponse { .. } => "Paging Response",
        AirMessage::LocationUpdateRequest { .. } => "Location Updating Request",
        AirMessage::LocationUpdateAccept { .. } => "Location Updating Accept",
        AirMessage::IdentityRequest => "Identity Request",
        AirMessage::IdentityResponse { .. } => "Identity Response",
        AirMessage::AuthRequest { .. } => "Authentication Request",
        AirMessage::AuthResponse { .. } => "Authentication Response",
        AirMessage::CipherModeCommand { .. } => "Ciphering Mode Command",
        AirMessage::CipherModeComplete => "Ciphering Mode Complete",
        AirMessage::SmsDeliverData { .. } => "CP-DATA (SMS-DELIVER)",
        AirMessage::SmsSubmitData { .. } => "CP-DATA (SMS-SUBMIT)",
        AirMessage::SmsAck => "CP-ACK",
        AirMessage::ChannelRelease => "Channel Release",
        AirMessage::Si5Padding => "System Information Type 5",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arfcn::Arfcn;
    use crate::cipher::CipherAlgo;
    use crate::identity::Msisdn;
    use crate::network::{GsmNetwork, NetworkConfig};
    use crate::sniffer::{PassiveSniffer, SnifferConfig};

    fn plaintext_capture() -> GsmNetwork {
        let mut net = GsmNetwork::new(NetworkConfig {
            cipher_preference: vec![CipherAlgo::A50],
            ..Default::default()
        });
        let id = net.provision_subscriber("v", Msisdn::new("13800138000").unwrap()).unwrap();
        net.attach(id).unwrap();
        net.send_sms(
            &Msisdn::new("13800138000").unwrap(),
            "G-786348 is your Google verification code.",
        )
        .unwrap();
        net
    }

    #[test]
    fn summaries_name_plaintext_messages() {
        let net = plaintext_capture();
        let lines = render_filtered(net.ether().frames(), &DisplayFilter::All);
        assert_eq!(lines.len(), net.ether().frames().len());
        assert!(lines[0].contains("Location Updating Request"));
        assert!(lines.iter().any(|l| l.contains("CP-DATA (SMS-DELIVER)")));
    }

    #[test]
    fn sms_text_filter_matches_fig5() {
        let net = plaintext_capture();
        let filter = DisplayFilter::SmsTextContains("verification code".into());
        let lines = render_filtered(net.ether().frames(), &filter);
        assert_eq!(lines.len(), 1);
    }

    #[test]
    fn ciphered_frames_render_opaque() {
        let mut net = GsmNetwork::new(NetworkConfig::default()); // A5/1
        let id = net.provision_subscriber("v", Msisdn::new("13800138000").unwrap()).unwrap();
        net.attach(id).unwrap();
        let lines = render_filtered(net.ether().frames(), &DisplayFilter::All);
        assert!(lines.iter().any(|l| l.contains("[ciphered A5/1]")));
    }

    #[test]
    fn fig5_block_format() {
        let mut net = GsmNetwork::new(NetworkConfig { session_key_bits: 16, ..Default::default() });
        let id = net.provision_subscriber("v", Msisdn::new("13800138000").unwrap()).unwrap();
        net.attach(id).unwrap();
        net.send_sms(
            &Msisdn::new("13800138000").unwrap(),
            "255436 is your Facebook password reset code",
        )
        .unwrap();
        let mut sniffer = PassiveSniffer::new(SnifferConfig { crack_bits: 16, ..Default::default() });
        sniffer.monitor(Arfcn(17)).unwrap();
        sniffer.poll(net.ether());
        let block = fig5_block(&sniffer.sms()[0]);
        assert!(block.starts_with("TP-User-Data\nSMS text: 255436"));
    }

    #[test]
    fn frame_detail_includes_hex_dump_and_text() {
        let net = plaintext_capture();
        let sms_frame = net
            .ether()
            .frames()
            .iter()
            .find(|f| {
                matches!(
                    f.message_plaintext(),
                    Ok(crate::radio::AirMessage::SmsDeliverData { .. })
                )
            })
            .expect("an SMS frame exists");
        let detail = frame_detail(sms_frame);
        assert!(detail.contains("SMS text: G-786348"));
        assert!(detail.contains("TP-Originating-Address"));
        assert!(detail.contains("0000  "), "hex dump rows present");
        // Ciphered frames render as opaque with a dump.
        let mut net2 = GsmNetwork::new(NetworkConfig::default());
        let id = net2.provision_subscriber("v", Msisdn::new("13800138000").unwrap()).unwrap();
        net2.attach(id).unwrap();
        let ciphered = net2
            .ether()
            .frames()
            .iter()
            .find(|f| f.cipher == CipherAlgo::A51)
            .unwrap();
        let detail = frame_detail(ciphered);
        assert!(detail.contains("payload ciphered under A5/1"));
    }

    #[test]
    fn frame_detail_names_multipart_headers() {
        let mut net = GsmNetwork::new(NetworkConfig {
            cipher_preference: vec![CipherAlgo::A50],
            ..Default::default()
        });
        let id = net.provision_subscriber("v", Msisdn::new("13800138000").unwrap()).unwrap();
        net.attach(id).unwrap();
        let long = "statement line. ".repeat(15);
        net.send_sms(&Msisdn::new("13800138000").unwrap(), &long).unwrap();
        let part_frame = net
            .ether()
            .frames()
            .iter()
            .find(|f| match f.message_plaintext() {
                Ok(crate::radio::AirMessage::SmsDeliverData { tpdu }) => {
                    crate::pdu::SmsDeliver::decode(&tpdu).map(|d| d.concat.is_some()).unwrap_or(false)
                }
                _ => false,
            })
            .expect("a multipart part crossed the air");
        let detail = frame_detail(part_frame);
        assert!(detail.contains("UDH concatenation: part 1/"), "{detail}");
    }

    #[test]
    fn pcap_export_is_well_formed() {
        let net = plaintext_capture();
        let frames = net.ether().frames();
        let pcap = export_pcap(frames);
        // Global header.
        assert_eq!(&pcap[..4], &0xa1b2_c3d4u32.to_le_bytes());
        assert_eq!(u32::from_le_bytes(pcap[20..24].try_into().unwrap()), 147);
        // Walk every record and count.
        let mut pos = 24usize;
        let mut records = 0usize;
        while pos < pcap.len() {
            let incl = u32::from_le_bytes(pcap[pos + 8..pos + 12].try_into().unwrap()) as usize;
            let orig = u32::from_le_bytes(pcap[pos + 12..pos + 16].try_into().unwrap()) as usize;
            assert_eq!(incl, orig);
            pos += 16 + incl;
            records += 1;
        }
        assert_eq!(pos, pcap.len(), "no trailing bytes");
        assert_eq!(records, frames.len());
        // Pseudo-header of the first record carries the ARFCN.
        let arfcn = u16::from_le_bytes(pcap[24 + 16..24 + 18].try_into().unwrap());
        assert_eq!(arfcn, frames[0].arfcn.0);
        assert_eq!(export_pcap(&[]).len(), 24, "empty capture is just the header");
    }

    #[test]
    fn hex_dump_formats_rows() {
        let dump = hex_dump(b"G-786348 is your Google verification code.");
        assert!(dump.starts_with("  0000  "));
        assert!(dump.contains("0010"), "second row for >16 bytes");
        assert!(dump.contains("G-786348"));
        assert_eq!(hex_dump(&[]), "");
    }

    #[test]
    fn downlink_filter() {
        let net = plaintext_capture();
        let all = render_filtered(net.ether().frames(), &DisplayFilter::All).len();
        let dl = render_filtered(net.ether().frames(), &DisplayFilter::Downlink).len();
        assert!(dl < all);
        assert!(dl > 0);
    }
}
