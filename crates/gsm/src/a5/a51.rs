//! The A5/1 stream cipher, exactly as deployed on the GSM Um interface.
//!
//! Three short LFSRs (19, 22 and 23 bits) are keyed with the 64-bit
//! session key `Kc` and the 22-bit TDMA frame number, then clocked with
//! the majority rule to produce 228 keystream bits per frame (114 for
//! each direction). The short registers and majority clocking are what
//! make the published time-memory-tradeoff attacks practical — which is
//! the entire premise of the paper's SMS interception step.

use crate::error::GsmError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Keystream bits produced per direction per TDMA frame.
pub const KEYSTREAM_BITS_PER_FRAME: usize = 114;

const R1_MASK: u32 = (1 << 19) - 1;
const R2_MASK: u32 = (1 << 22) - 1;
const R3_MASK: u32 = (1 << 23) - 1;
const R1_TAPS: u32 = (1 << 18) | (1 << 17) | (1 << 16) | (1 << 13);
const R2_TAPS: u32 = (1 << 21) | (1 << 20);
const R3_TAPS: u32 = (1 << 22) | (1 << 21) | (1 << 20) | (1 << 7);
const R1_CLOCK: u32 = 1 << 8;
const R2_CLOCK: u32 = 1 << 10;
const R3_CLOCK: u32 = 1 << 10;

/// A 64-bit GSM session key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Kc(pub u64);

impl Kc {
    /// Builds a key from 8 bytes using the reference loading order: bit
    /// `i` of the cipher is bit `i % 8` of byte `i / 8` (LSB of the first
    /// byte enters the registers first).
    ///
    /// # Errors
    ///
    /// Returns [`GsmError::BadKey`] when `bytes` is not exactly 8 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, GsmError> {
        if bytes.len() != 8 {
            return Err(GsmError::BadKey { expected: 8, got: bytes.len() });
        }
        let mut v = 0u64;
        for (idx, &b) in bytes.iter().enumerate() {
            v |= u64::from(b) << (8 * idx);
        }
        Ok(Self(v))
    }

    /// Key bit `i` as fed into the registers during loading.
    pub fn bit(&self, i: u32) -> u32 {
        ((self.0 >> i) & 1) as u32
    }
}

impl fmt::Display for Kc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Kc={:016x}", self.0)
    }
}

/// An A5/1 keystream generator keyed for one TDMA frame.
#[derive(Debug, Clone)]
pub struct A51 {
    r1: u32,
    r2: u32,
    r3: u32,
}

impl A51 {
    /// Keys the cipher with `kc` and the 22-bit `frame` number, performing
    /// the standard 64 + 22 loading cycles and 100 mixing cycles.
    pub fn new(kc: Kc, frame: u32) -> Self {
        let mut s = Self { r1: 0, r2: 0, r3: 0 };
        for i in 0..64 {
            s.clock_all();
            let b = kc.bit(i);
            s.r1 ^= b;
            s.r2 ^= b;
            s.r3 ^= b;
        }
        for i in 0..22 {
            s.clock_all();
            let b = (frame >> i) & 1;
            s.r1 ^= b;
            s.r2 ^= b;
            s.r3 ^= b;
        }
        for _ in 0..100 {
            s.clock_majority();
        }
        s
    }

    fn clock_all(&mut self) {
        self.r1 = ((self.r1 << 1) | parity(self.r1 & R1_TAPS)) & R1_MASK;
        self.r2 = ((self.r2 << 1) | parity(self.r2 & R2_TAPS)) & R2_MASK;
        self.r3 = ((self.r3 << 1) | parity(self.r3 & R3_TAPS)) & R3_MASK;
    }

    fn clock_majority(&mut self) {
        let c1 = (self.r1 & R1_CLOCK) != 0;
        let c2 = (self.r2 & R2_CLOCK) != 0;
        let c3 = (self.r3 & R3_CLOCK) != 0;
        let maj = (c1 as u8 + c2 as u8 + c3 as u8) >= 2;
        if c1 == maj {
            self.r1 = ((self.r1 << 1) | parity(self.r1 & R1_TAPS)) & R1_MASK;
        }
        if c2 == maj {
            self.r2 = ((self.r2 << 1) | parity(self.r2 & R2_TAPS)) & R2_MASK;
        }
        if c3 == maj {
            self.r3 = ((self.r3 << 1) | parity(self.r3 & R3_TAPS)) & R3_MASK;
        }
    }

    fn output_bit(&self) -> u8 {
        (((self.r1 >> 18) ^ (self.r2 >> 21) ^ (self.r3 >> 22)) & 1) as u8
    }

    /// Produces the next keystream bit.
    pub fn next_bit(&mut self) -> u8 {
        self.clock_majority();
        self.output_bit()
    }

    /// Fills `out` with keystream bits (one bit per byte, values 0/1).
    pub fn keystream_bits(&mut self, out: &mut [u8]) {
        for b in out.iter_mut() {
            *b = self.next_bit();
        }
    }

    /// Produces `n` keystream *bytes* (8 bits each, MSB first), the form
    /// used to XOR payload octets in the simulator.
    pub fn keystream_bytes(&mut self, n: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let mut byte = 0u8;
            for _ in 0..8 {
                byte = (byte << 1) | self.next_bit();
            }
            out.push(byte);
        }
        out
    }
}

/// XORs `data` in place with the A5/1 keystream for (`kc`, `frame`).
/// Applying it twice restores the plaintext.
pub fn apply_keystream(kc: Kc, frame: u32, data: &mut [u8]) {
    let mut cipher = A51::new(kc, frame);
    let ks = cipher.keystream_bytes(data.len());
    for (d, k) in data.iter_mut().zip(ks) {
        *d ^= k;
    }
}

fn parity(v: u32) -> u32 {
    v.count_ones() & 1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published A5/1 test vector from the Briceno/Goldberg/Wagner
    /// reference implementation: key 0x12 23 45 67 89 AB CD EF, frame
    /// 0x134, downlink keystream (114 bits) 53 4E AA 58 2F E8 15 1A B6 E1
    /// 85 5A 72 8C 00 (final byte holds only two defined bits).
    #[test]
    fn reference_test_vector() {
        let kc = Kc::from_bytes(&[0x12, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef]).unwrap();
        let mut bits = [0u8; KEYSTREAM_BITS_PER_FRAME];
        A51::new(kc, 0x134).keystream_bits(&mut bits);
        let mut bytes = vec![0u8; 15];
        for (i, &b) in bits.iter().enumerate() {
            bytes[i / 8] |= b << (7 - (i % 8));
        }
        assert_eq!(
            bytes,
            vec![0x53, 0x4e, 0xaa, 0x58, 0x2f, 0xe8, 0x15, 0x1a, 0xb6, 0xe1, 0x85, 0x5a, 0x72, 0x8c, 0x00]
        );
    }

    #[test]
    fn keystream_is_deterministic() {
        let kc = Kc(0x0123_4567_89ab_cdef);
        let a = A51::new(kc, 42).keystream_bytes(32);
        let b = A51::new(kc, 42).keystream_bytes(32);
        assert_eq!(a, b);
    }

    #[test]
    fn keystream_differs_across_frames() {
        let kc = Kc(0x0123_4567_89ab_cdef);
        let a = A51::new(kc, 1).keystream_bytes(16);
        let b = A51::new(kc, 2).keystream_bytes(16);
        assert_ne!(a, b);
    }

    #[test]
    fn keystream_is_key_sensitive() {
        let a = A51::new(Kc(1), 7).keystream_bytes(16);
        let b = A51::new(Kc(2), 7).keystream_bytes(16);
        assert_ne!(a, b);
    }

    #[test]
    fn apply_keystream_is_involutive() {
        let kc = Kc(0xdead_beef_cafe_f00d);
        let mut data = b"255436 is your Facebook password reset code".to_vec();
        let orig = data.clone();
        apply_keystream(kc, 100, &mut data);
        assert_ne!(data, orig);
        apply_keystream(kc, 100, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn kc_from_bytes_validates_length() {
        assert!(Kc::from_bytes(&[0; 7]).is_err());
        assert!(Kc::from_bytes(&[0; 9]).is_err());
        // Reference order: first byte occupies the low bits.
        assert_eq!(Kc::from_bytes(&[1, 0, 0, 0, 0, 0, 0, 0]).unwrap(), Kc(1));
    }

    #[test]
    fn keystream_bits_match_bytes() {
        let kc = Kc(0x1111_2222_3333_4444);
        let mut bits = [0u8; 16];
        A51::new(kc, 9).keystream_bits(&mut bits);
        let bytes = A51::new(kc, 9).keystream_bytes(2);
        let mut rebuilt = 0u16;
        for &b in &bits {
            rebuilt = (rebuilt << 1) | u16::from(b);
        }
        assert_eq!(rebuilt.to_be_bytes().to_vec(), bytes);
    }
}
