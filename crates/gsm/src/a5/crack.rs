//! Attacker-side key recovery for A5/1.
//!
//! Two components:
//!
//! - [`SubsetKeySearch`] — an *exact* known-plaintext search over a
//!   restricted keyspace. It really runs the cipher for every candidate
//!   and compares keystream, so tests can demonstrate genuine key
//!   recovery without a 2^64 walk.
//! - [`RainbowTableModel`] — a calibrated stand-in for the published
//!   time-memory-tradeoff tables (srlabs "A5/1 decryption"). Real tables
//!   recover ~90% of session keys in seconds given 114 bits of known
//!   keystream; the model reproduces that success probability and a
//!   latency distribution deterministically from a seed.

use crate::a5::a51::{A51, Kc, KEYSTREAM_BITS_PER_FRAME};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// High bits shared by every "weak" session key the simulated network
/// issues when configured with a reduced `session_key_bits`.
///
/// This models published-table coverage in a reduced form: the real
/// rainbow tables cover ~90% of the full 2^64 keyspace probabilistically;
/// the simulator instead confines session keys to a small exactly-
/// searchable subspace so key recovery runs the *real* cipher end to end.
pub const WEAK_KC_BASE: u64 = 0xac7f_0a51_0000_0000;

/// Result of a cracking attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrackOutcome {
    /// The session key was recovered after the given simulated latency.
    Recovered {
        /// The recovered session key.
        kc: Kc,
        /// Simulated wall-clock cost in milliseconds.
        latency_ms: u64,
    },
    /// The attempt failed (keystream fell outside table coverage).
    NotFound {
        /// Simulated wall-clock cost in milliseconds.
        latency_ms: u64,
    },
}

impl CrackOutcome {
    /// The recovered key, if any.
    pub fn key(&self) -> Option<Kc> {
        match self {
            CrackOutcome::Recovered { kc, .. } => Some(*kc),
            CrackOutcome::NotFound { .. } => None,
        }
    }

    /// Simulated latency of the attempt in milliseconds.
    pub fn latency_ms(&self) -> u64 {
        match self {
            CrackOutcome::Recovered { latency_ms, .. } | CrackOutcome::NotFound { latency_ms } => {
                *latency_ms
            }
        }
    }
}

/// Exact known-plaintext key search over `keyspace_bits` low key bits.
///
/// All higher key bits are taken from `base`; the search enumerates the
/// low bits and checks each candidate against the observed keystream.
/// With `keyspace_bits ≤ 24` this is fast enough for unit tests while
/// exercising the *real* cipher end to end.
#[derive(Debug, Clone)]
pub struct SubsetKeySearch {
    base: Kc,
    keyspace_bits: u32,
}

impl SubsetKeySearch {
    /// Creates a search over `keyspace_bits` unknown low bits (max 32).
    ///
    /// # Panics
    ///
    /// Panics if `keyspace_bits > 32`.
    pub fn new(base: Kc, keyspace_bits: u32) -> Self {
        assert!(keyspace_bits <= 32, "subset search limited to 32 unknown bits");
        Self { base, keyspace_bits }
    }

    /// Recovers the key matching `keystream` (bit-per-byte, as produced by
    /// [`A51::keystream_bits`]) for TDMA frame `frame`. At least 24 bits of
    /// keystream are required to make false positives unlikely.
    ///
    /// Returns the number of candidates tried alongside the key.
    pub fn recover(&self, frame: u32, keystream: &[u8]) -> Option<(Kc, u64)> {
        if keystream.len() < 24 {
            return None;
        }
        let mask = if self.keyspace_bits == 64 {
            u64::MAX
        } else {
            !((1u64 << self.keyspace_bits) - 1)
        };
        let high = self.base.0 & mask;
        let mut probe = vec![0u8; keystream.len().min(KEYSTREAM_BITS_PER_FRAME)];
        for candidate in 0..(1u64 << self.keyspace_bits) {
            let kc = Kc(high | candidate);
            let mut cipher = A51::new(kc, frame);
            cipher.keystream_bits(&mut probe);
            if probe == keystream[..probe.len()] {
                return Some((kc, candidate + 1));
            }
        }
        None
    }
}

/// Calibrated rainbow-table crack model.
///
/// The published GSM A5/1 tables (~1.7 TB) give roughly a 90% hit rate
/// from a single burst of 114 known keystream bits, with lookups taking
/// seconds to tens of seconds on commodity hardware.
///
/// A real table covers a *fixed* fraction of the keyspace by
/// construction (chains × chain length / 2^64), so the hit rate an
/// attacker observes over a session concentrates tightly around the
/// nominal coverage — it does not behave like independent coin flips,
/// which over short runs can make the table look perfect or useless.
/// The model therefore uses stratified accounting: across any window of
/// `n` distinct consistent lookups, the number of hits is within one of
/// `n × hit_rate`. A seed-derived phase decides where in the stride the
/// misses land, and repeated lookups of the same `(key, frame)` burst
/// always return the first outcome, so runs stay reproducible.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RainbowTableModel {
    /// Fraction of lookups that succeed (default 0.90).
    pub hit_rate: f64,
    /// Minimum lookup latency in milliseconds (default 2 000).
    pub min_latency_ms: u64,
    /// Maximum lookup latency in milliseconds (default 30 000).
    pub max_latency_ms: u64,
    seed: u64,
    /// Distinct consistent lookups answered so far.
    lookups: u64,
    /// Cached outcome per `(key, frame)` — a table never changes its
    /// answer for the same burst.
    outcomes: BTreeMap<(u64, u32), bool>,
}

impl Default for RainbowTableModel {
    fn default() -> Self {
        Self::new(0xa51a_5c0d_e000_0001)
    }
}

impl RainbowTableModel {
    /// Creates a model with the published-table defaults and a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            hit_rate: 0.90,
            min_latency_ms: 2_000,
            max_latency_ms: 30_000,
            seed,
            lookups: 0,
            outcomes: BTreeMap::new(),
        }
    }

    /// Creates a model with a custom hit rate (clamped to `[0, 1]`).
    pub fn with_hit_rate(mut self, hit_rate: f64) -> Self {
        self.hit_rate = hit_rate.clamp(0.0, 1.0);
        self
    }

    /// Attempts to recover `true_key` from observed `keystream` bits.
    ///
    /// The model validates that the caller actually possesses keystream
    /// consistent with `true_key` for `frame` — i.e. the simulation can't
    /// "crack" traffic it never correctly observed — then decides success
    /// by stratified coverage accounting and draws latency
    /// deterministically.
    pub fn crack(&mut self, true_key: Kc, frame: u32, keystream: &[u8]) -> CrackOutcome {
        let mut expected = vec![0u8; keystream.len().min(KEYSTREAM_BITS_PER_FRAME)];
        A51::new(true_key, frame).keystream_bits(&mut expected);
        let consistent =
            keystream.len() >= KEYSTREAM_BITS_PER_FRAME.min(64) && expected == keystream[..expected.len()];
        let latency_ms = self.rng_for(true_key, frame).gen_range(self.min_latency_ms..=self.max_latency_ms);
        if consistent && self.covered(true_key, frame) {
            CrackOutcome::Recovered { kc: true_key, latency_ms }
        } else {
            CrackOutcome::NotFound { latency_ms }
        }
    }

    /// Stratified coverage: the k-th distinct consistent lookup hits iff
    /// the integer part of `k × hit_rate + phase` advances — a Bresenham
    /// walk that keeps observed hits within one of `n × hit_rate` over
    /// every window of `n` lookups, with the seed choosing the phase.
    fn covered(&mut self, kc: Kc, frame: u32) -> bool {
        if let Some(&hit) = self.outcomes.get(&(kc.0, frame)) {
            return hit;
        }
        let phase = (self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 11) as f64
            / (1u64 << 53) as f64;
        let before = (self.lookups as f64 * self.hit_rate + phase).floor();
        let after = ((self.lookups + 1) as f64 * self.hit_rate + phase).floor();
        self.lookups += 1;
        let hit = after > before;
        self.outcomes.insert((kc.0, frame), hit);
        hit
    }

    fn rng_for(&self, kc: Kc, frame: u32) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ kc.0.rotate_left(17) ^ u64::from(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_search_recovers_real_key() {
        let true_kc = Kc(0x0123_4567_89ab_0000 | 0x2a7);
        let mut keystream = [0u8; 64];
        A51::new(true_kc, 0x134).keystream_bits(&mut keystream);
        let search = SubsetKeySearch::new(Kc(0x0123_4567_89ab_0000), 12);
        let (found, tried) = search.recover(0x134, &keystream).expect("key in subset");
        assert_eq!(found, true_kc);
        assert!(tried <= 1 << 12);
    }

    #[test]
    fn subset_search_fails_outside_keyspace() {
        let true_kc = Kc(0xffff_0000_0000_0000 | 0x3);
        let mut keystream = [0u8; 64];
        A51::new(true_kc, 5).keystream_bits(&mut keystream);
        // Base has different high bits, so the key is unreachable.
        let search = SubsetKeySearch::new(Kc(0), 8);
        assert!(search.recover(5, &keystream).is_none());
    }

    #[test]
    fn subset_search_requires_enough_keystream() {
        let search = SubsetKeySearch::new(Kc(0), 4);
        assert!(search.recover(1, &[0u8; 10]).is_none());
    }

    #[test]
    fn rainbow_model_is_deterministic() {
        let mut model = RainbowTableModel::new(7);
        let kc = Kc(42);
        let mut ks = [0u8; KEYSTREAM_BITS_PER_FRAME];
        A51::new(kc, 9).keystream_bits(&mut ks);
        let a = model.crack(kc, 9, &ks);
        let b = model.crack(kc, 9, &ks);
        assert_eq!(a, b);
    }

    #[test]
    fn rainbow_model_rejects_wrong_keystream() {
        let mut model = RainbowTableModel::new(7).with_hit_rate(1.0);
        let ks = [0u8; KEYSTREAM_BITS_PER_FRAME];
        // All-zero keystream is (astronomically likely) inconsistent.
        let outcome = model.crack(Kc(0x1234), 9, &ks);
        assert_eq!(outcome.key(), None);
    }

    #[test]
    fn rainbow_model_hit_rate_calibration() {
        let mut model = RainbowTableModel::new(99);
        let mut hits = 0u32;
        let trials = 400u32;
        for i in 0..trials {
            let kc = Kc(u64::from(i).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1));
            let mut ks = [0u8; KEYSTREAM_BITS_PER_FRAME];
            A51::new(kc, i).keystream_bits(&mut ks);
            if model.crack(kc, i, &ks).key().is_some() {
                hits += 1;
            }
        }
        let rate = f64::from(hits) / f64::from(trials);
        assert!((0.84..=0.96).contains(&rate), "hit rate {rate} outside calibration band");
    }

    #[test]
    fn latency_within_bounds() {
        let mut model = RainbowTableModel::new(3);
        let kc = Kc(77);
        let mut ks = [0u8; KEYSTREAM_BITS_PER_FRAME];
        A51::new(kc, 1).keystream_bits(&mut ks);
        let outcome = model.crack(kc, 1, &ks);
        assert!(outcome.latency_ms() >= model.min_latency_ms);
        assert!(outcome.latency_ms() <= model.max_latency_ms);
    }
}
