//! A5 air-interface ciphering.
//!
//! [`a51`] is a bit-faithful implementation of the A5/1 stream cipher
//! (three majority-clocked LFSRs). [`crack`] provides the attacker side:
//! an exact known-plaintext key search usable on reduced keyspaces in
//! tests, and a calibrated rainbow-table model reproducing the published
//! time/success statistics the paper relies on ("A5/1 decryption",
//! srlabs 2010).

pub mod a51;
pub mod crack;

pub use a51::{apply_keystream, A51, Kc, KEYSTREAM_BITS_PER_FRAME};
pub use crack::{CrackOutcome, RainbowTableModel, SubsetKeySearch, WEAK_KC_BASE};
