//! GSM 03.40 short-message TPDUs.
//!
//! Implements the transfer-layer encoding that OsmocomBB + Wireshark decode
//! in the paper's Fig. 5: SMS-DELIVER and SMS-SUBMIT with the 7-bit default
//! alphabet (septet packing), UCS-2 for non-GSM text, semi-octet BCD
//! addresses and service-centre timestamps.
//!
//! ```
//! use actfort_gsm::pdu::{SmsDeliver, Address};
//! use actfort_gsm::identity::Msisdn;
//!
//! # fn main() -> Result<(), actfort_gsm::GsmError> {
//! let oa = Address::from_msisdn(&Msisdn::new("+10692000000")?);
//! let deliver = SmsDeliver::new(oa, "255436 is your Facebook password reset code")?;
//! let bytes = deliver.encode();
//! let back = SmsDeliver::decode(&bytes)?;
//! assert_eq!(back.text()?, "255436 is your Facebook password reset code");
//! # Ok(())
//! # }
//! ```

use crate::error::GsmError;
use crate::identity::Msisdn;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum user-data length in septets for a single 7-bit PDU.
pub const MAX_SEPTETS: usize = 160;
/// Maximum user-data length in UCS-2 characters for a single PDU.
pub const MAX_UCS2_CHARS: usize = 70;
/// Septets available per concatenated-SMS part (160 minus the 7-septet
/// user-data header).
pub const MAX_SEPTETS_PER_PART: usize = 153;
/// UCS-2 characters available per concatenated part (70 minus 3 header
/// units).
pub const MAX_UCS2_CHARS_PER_PART: usize = 67;

/// Concatenated-SMS information element (IEI 0x00): which part of a
/// multipart message this PDU carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConcatInfo {
    /// Message reference shared by all parts.
    pub reference: u8,
    /// Total number of parts (≥ 1).
    pub total: u8,
    /// This part's index, 1-based.
    pub seq: u8,
}

// ---------------------------------------------------------------------------
// 7-bit default alphabet
// ---------------------------------------------------------------------------

/// The GSM 7-bit default alphabet, indexed by septet value (0x00–0x7f).
/// `\u{10}` marks positions reachable only via the escape mechanism.
const GSM7_BASIC: [char; 128] = [
    '@', '£', '$', '¥', 'è', 'é', 'ù', 'ì', 'ò', 'Ç', '\n', 'Ø', 'ø', '\r', 'Å', 'å', //
    'Δ', '_', 'Φ', 'Γ', 'Λ', 'Ω', 'Π', 'Ψ', 'Σ', 'Θ', 'Ξ', '\u{1b}', 'Æ', 'æ', 'ß', 'É', //
    ' ', '!', '"', '#', '¤', '%', '&', '\'', '(', ')', '*', '+', ',', '-', '.', '/', //
    '0', '1', '2', '3', '4', '5', '6', '7', '8', '9', ':', ';', '<', '=', '>', '?', //
    '¡', 'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'J', 'K', 'L', 'M', 'N', 'O', //
    'P', 'Q', 'R', 'S', 'T', 'U', 'V', 'W', 'X', 'Y', 'Z', 'Ä', 'Ö', 'Ñ', 'Ü', '§', //
    '¿', 'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', //
    'p', 'q', 'r', 's', 't', 'u', 'v', 'w', 'x', 'y', 'z', 'ä', 'ö', 'ñ', 'ü', 'à',
];

/// Extension-table characters reached with the 0x1B escape septet.
const GSM7_EXT: [(u8, char); 10] = [
    (0x0a, '\u{c}'), // form feed
    (0x14, '^'),
    (0x28, '{'),
    (0x29, '}'),
    (0x2f, '\\'),
    (0x3c, '['),
    (0x3d, '~'),
    (0x3e, ']'),
    (0x40, '|'),
    (0x65, '€'),
];

/// Converts a character to its septet sequence (1 septet, or escape + septet).
fn gsm7_encode_char(c: char) -> Option<([u8; 2], usize)> {
    if c != '\u{1b}' {
        if let Some(idx) = GSM7_BASIC.iter().position(|&g| g == c) {
            return Some(([idx as u8, 0], 1));
        }
    }
    GSM7_EXT
        .iter()
        .find(|&&(_, g)| g == c)
        .map(|&(code, _)| ([0x1b, code], 2))
}

/// Whether `text` fits the GSM 7-bit default alphabet entirely.
pub fn is_gsm7(text: &str) -> bool {
    text.chars().all(|c| gsm7_encode_char(c).is_some())
}

/// Number of septets needed to encode `text` (escaped characters cost two).
pub fn gsm7_septet_len(text: &str) -> Option<usize> {
    let mut n = 0usize;
    for c in text.chars() {
        let (_, len) = gsm7_encode_char(c)?;
        n += len;
    }
    Some(n)
}

/// Packs a septet sequence into octets per GSM 03.38 §6.1.2.1.
pub fn pack_septets(septets: &[u8]) -> Vec<u8> {
    pack_septets_with_fill(septets, 0)
}

/// Packs septets with `fill_bits` leading padding bits — the alignment
/// inserted after a user-data header so text starts on a septet boundary.
pub fn pack_septets_with_fill(septets: &[u8], fill_bits: u8) -> Vec<u8> {
    let fill_bits = fill_bits % 8;
    let mut out = Vec::with_capacity(septets.len() * 7 / 8 + 2);
    let mut carry = 0u8;
    let mut carry_bits = fill_bits;
    for &s in septets {
        let s = s & 0x7f;
        if carry_bits == 0 {
            carry = s;
            carry_bits = 7;
        } else {
            let take = 8 - carry_bits;
            out.push(carry | (s << carry_bits));
            carry = s >> take;
            carry_bits = 7 - take;
        }
    }
    if carry_bits > 0 {
        out.push(carry);
    }
    out
}

/// Unpacks `count` septets from packed octets. Returns `None` when the
/// buffer is too short.
pub fn unpack_septets(data: &[u8], count: usize) -> Option<Vec<u8>> {
    unpack_septets_with_fill(data, count, 0)
}

/// Unpacks `count` septets that start after `fill_bits` padding bits.
pub fn unpack_septets_with_fill(data: &[u8], count: usize, fill_bits: u8) -> Option<Vec<u8>> {
    let fill_bits = usize::from(fill_bits % 8);
    let needed = (count * 7 + fill_bits).div_ceil(8);
    if data.len() < needed {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let bit = fill_bits + i * 7;
        let byte = bit / 8;
        let shift = (bit % 8) as u32;
        let mut v = u16::from(data[byte]) >> shift;
        if shift > 1 {
            if let Some(&next) = data.get(byte + 1) {
                v |= u16::from(next) << (8 - shift);
            }
        }
        out.push((v & 0x7f) as u8);
    }
    Some(out)
}

/// Encodes text to packed 7-bit user data, returning `(octets, septet_count)`.
///
/// # Errors
///
/// Returns [`GsmError::PduEncode`] when the text contains characters outside
/// the default alphabet or exceeds [`MAX_SEPTETS`].
pub fn gsm7_encode(text: &str) -> Result<(Vec<u8>, usize), GsmError> {
    let mut septets = Vec::with_capacity(text.len());
    for c in text.chars() {
        let (pair, len) = gsm7_encode_char(c)
            .ok_or_else(|| GsmError::PduEncode(format!("character {c:?} not in GSM 7-bit alphabet")))?;
        septets.extend_from_slice(&pair[..len]);
    }
    if septets.len() > MAX_SEPTETS {
        return Err(GsmError::PduEncode(format!(
            "message needs {} septets, limit is {MAX_SEPTETS}",
            septets.len()
        )));
    }
    let count = septets.len();
    Ok((pack_septets(&septets), count))
}

/// Decodes `count` packed septets back to text.
///
/// # Errors
///
/// Returns [`GsmError::PduDecode`] on truncated input or a dangling escape.
pub fn gsm7_decode(data: &[u8], count: usize) -> Result<String, GsmError> {
    let septets = unpack_septets(data, count).ok_or(GsmError::PduDecode {
        offset: data.len(),
        reason: "user data truncated".into(),
    })?;
    decode_septet_stream(&septets)
}

/// Converts a raw septet stream to text, resolving escape sequences.
fn decode_septet_stream(septets: &[u8]) -> Result<String, GsmError> {
    let mut out = String::with_capacity(septets.len());
    let mut iter = septets.iter().copied();
    while let Some(s) = iter.next() {
        if s == 0x1b {
            let ext = iter.next().ok_or(GsmError::PduDecode {
                offset: septets.len(),
                reason: "dangling escape septet".into(),
            })?;
            match GSM7_EXT.iter().find(|&&(code, _)| code == ext) {
                Some(&(_, c)) => out.push(c),
                // Per spec, unknown escape renders as the basic-table char.
                None => out.push(GSM7_BASIC[usize::from(ext & 0x7f)]),
            }
        } else {
            out.push(GSM7_BASIC[usize::from(s)]);
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// UCS-2
// ---------------------------------------------------------------------------

/// Encodes text as big-endian UCS-2 user data. Supplementary-plane
/// characters (emoji) are encoded as UTF-16 surrogate pairs — the
/// UCS2-as-UTF16 convention real handsets follow — and cost two of the
/// [`MAX_UCS2_CHARS`] code units. (An earlier version truncated them
/// with `as u16`, silently corrupting the text.)
///
/// # Errors
///
/// Returns [`GsmError::PduEncode`] for messages longer than
/// [`MAX_UCS2_CHARS`] UTF-16 code units.
pub fn ucs2_encode(text: &str) -> Result<Vec<u8>, GsmError> {
    let mut out = Vec::with_capacity(text.len() * 2);
    let mut units = 0usize;
    for unit in text.encode_utf16() {
        out.extend_from_slice(&unit.to_be_bytes());
        units += 1;
    }
    if units > MAX_UCS2_CHARS {
        return Err(GsmError::PduEncode(format!(
            "message has {units} UCS-2 code units, limit is {MAX_UCS2_CHARS}"
        )));
    }
    Ok(out)
}

/// Decodes big-endian UCS-2 user data, combining UTF-16 surrogate pairs
/// back into supplementary-plane characters.
///
/// # Errors
///
/// Returns [`GsmError::PduDecode`] on odd length or an unpaired
/// surrogate code unit (the offset names the failing byte).
pub fn ucs2_decode(data: &[u8]) -> Result<String, GsmError> {
    if data.len() % 2 != 0 {
        return Err(GsmError::PduDecode { offset: data.len(), reason: "odd UCS-2 length".into() });
    }
    let units: Vec<u16> =
        data.chunks_exact(2).map(|pair| u16::from_be_bytes([pair[0], pair[1]])).collect();
    let mut out = String::with_capacity(units.len());
    let mut i = 0usize;
    while i < units.len() {
        let hi = units[i];
        match hi {
            0xd800..=0xdbff => {
                let lo = units.get(i + 1).copied().ok_or(GsmError::PduDecode {
                    offset: i * 2,
                    reason: format!("unpaired high surrogate 0x{hi:04x}"),
                })?;
                if !(0xdc00..=0xdfff).contains(&lo) {
                    return Err(GsmError::PduDecode {
                        offset: i * 2,
                        reason: format!("high surrogate 0x{hi:04x} not followed by a low surrogate"),
                    });
                }
                let scalar =
                    0x10000 + ((u32::from(hi) - 0xd800) << 10) + (u32::from(lo) - 0xdc00);
                out.push(char::from_u32(scalar).expect("surrogate pair decodes to a scalar"));
                i += 2;
            }
            0xdc00..=0xdfff => {
                return Err(GsmError::PduDecode {
                    offset: i * 2,
                    reason: format!("unpaired low surrogate 0x{hi:04x}"),
                });
            }
            _ => {
                out.push(char::from_u32(u32::from(hi)).expect("BMP non-surrogate is a scalar"));
                i += 1;
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Addresses
// ---------------------------------------------------------------------------

/// Type-of-number in an address field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TypeOfNumber {
    /// Numbering plan unknown.
    Unknown,
    /// International number (shown with a leading `+`).
    International,
    /// National number.
    National,
    /// Alphanumeric sender (e.g. `Google`), GSM-7 packed.
    Alphanumeric,
}

impl TypeOfNumber {
    fn to_bits(self) -> u8 {
        match self {
            TypeOfNumber::Unknown => 0b000,
            TypeOfNumber::International => 0b001,
            TypeOfNumber::National => 0b010,
            TypeOfNumber::Alphanumeric => 0b101,
        }
    }

    fn from_bits(bits: u8) -> Self {
        match bits & 0b111 {
            0b001 => TypeOfNumber::International,
            0b010 => TypeOfNumber::National,
            0b101 => TypeOfNumber::Alphanumeric,
            _ => TypeOfNumber::Unknown,
        }
    }
}

/// An originating or destination address (TP-OA / TP-DA).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Address {
    ton: TypeOfNumber,
    /// Digits for numeric addresses, raw text for alphanumeric ones.
    value: String,
}

impl Address {
    /// Creates a numeric address from digits.
    ///
    /// # Errors
    ///
    /// Returns [`GsmError::InvalidMsisdn`] when `digits` is empty, longer
    /// than 20 digits, or contains a non-digit.
    pub fn numeric(digits: &str, ton: TypeOfNumber) -> Result<Self, GsmError> {
        if digits.is_empty() || digits.len() > 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(GsmError::InvalidMsisdn(digits.to_owned()));
        }
        Ok(Self { ton, value: digits.to_owned() })
    }

    /// Creates an alphanumeric sender ID (max 11 GSM-7 characters).
    ///
    /// # Errors
    ///
    /// Returns [`GsmError::PduEncode`] for over-long or non-GSM-7 names.
    pub fn alphanumeric(name: &str) -> Result<Self, GsmError> {
        if name.is_empty() || name.chars().count() > 11 || !is_gsm7(name) {
            return Err(GsmError::PduEncode(format!("invalid alphanumeric sender {name:?}")));
        }
        Ok(Self { ton: TypeOfNumber::Alphanumeric, value: name.to_owned() })
    }

    /// Converts a validated phone number into an address.
    pub fn from_msisdn(msisdn: &Msisdn) -> Self {
        let ton =
            if msisdn.is_international() { TypeOfNumber::International } else { TypeOfNumber::National };
        Self { ton, value: msisdn.digits().to_owned() }
    }

    /// The digit string or alphanumeric name.
    pub fn value(&self) -> &str {
        &self.value
    }

    /// The type of number.
    pub fn type_of_number(&self) -> TypeOfNumber {
        self.ton
    }

    /// Encodes as `[len, toa, semi-octets…]`. For numeric addresses `len`
    /// counts digits; for alphanumeric it counts useful semi-octets.
    fn encode(&self, out: &mut Vec<u8>) {
        let toa = 0x80 | (self.ton.to_bits() << 4) | 0x01; // ISDN numbering plan
        match self.ton {
            TypeOfNumber::Alphanumeric => {
                let (packed, _) = gsm7_encode(&self.value).expect("validated at construction");
                out.push((packed.len() * 2) as u8);
                out.push(toa);
                out.extend_from_slice(&packed);
            }
            _ => {
                out.push(self.value.len() as u8);
                out.push(toa);
                out.extend_from_slice(&encode_semi_octets(&self.value));
            }
        }
    }

    /// Decodes an address, returning `(address, bytes_consumed)`.
    fn decode(data: &[u8]) -> Result<(Self, usize), GsmError> {
        let len = *data.first().ok_or(GsmError::PduDecode {
            offset: 0,
            reason: "missing address length".into(),
        })? as usize;
        let toa = *data.get(1).ok_or(GsmError::PduDecode {
            offset: 1,
            reason: "missing type-of-address".into(),
        })?;
        let ton = TypeOfNumber::from_bits(toa >> 4);
        match ton {
            TypeOfNumber::Alphanumeric => {
                let octets = len.div_ceil(2);
                let body = data.get(2..2 + octets).ok_or(GsmError::PduDecode {
                    offset: 2,
                    reason: "alphanumeric address truncated".into(),
                })?;
                let septets = octets * 8 / 7;
                let name = gsm7_decode(body, septets)?;
                let name = name.trim_end_matches(['@', ' ']).to_owned();
                Ok((Self { ton, value: name }, 2 + octets))
            }
            _ => {
                let octets = len.div_ceil(2);
                let body = data.get(2..2 + octets).ok_or(GsmError::PduDecode {
                    offset: 2,
                    reason: "numeric address truncated".into(),
                })?;
                let digits = decode_semi_octets(body, len);
                Ok((Self { ton, value: digits }, 2 + octets))
            }
        }
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.ton {
            TypeOfNumber::International => write!(f, "+{}", self.value),
            _ => f.write_str(&self.value),
        }
    }
}

/// Packs decimal digits two per octet, low nibble first, padding with 0xF.
fn encode_semi_octets(digits: &str) -> Vec<u8> {
    let bytes: Vec<u8> = digits.bytes().map(|b| b - b'0').collect();
    bytes
        .chunks(2)
        .map(|pair| {
            let lo = pair[0];
            let hi = pair.get(1).copied().unwrap_or(0x0f);
            (hi << 4) | lo
        })
        .collect()
}

/// Unpacks `count` digits from semi-octet encoding.
fn decode_semi_octets(data: &[u8], count: usize) -> String {
    let mut out = String::with_capacity(count);
    for &b in data {
        for nibble in [b & 0x0f, b >> 4] {
            if out.len() == count {
                break;
            }
            if nibble <= 9 {
                out.push(char::from(b'0' + nibble));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Timestamps and data coding
// ---------------------------------------------------------------------------

/// Service-centre timestamp (TP-SCTS), second precision, with a
/// quarter-hour timezone offset as on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Scts {
    /// Two-digit year (00–99).
    pub year: u8,
    /// Month 1–12.
    pub month: u8,
    /// Day 1–31.
    pub day: u8,
    /// Hour 0–23.
    pub hour: u8,
    /// Minute 0–59.
    pub minute: u8,
    /// Second 0–59.
    pub second: u8,
    /// Timezone in quarter hours, signed.
    pub tz_quarter_hours: i8,
}

impl Scts {
    /// Derives a timestamp from simulation milliseconds (epoch at
    /// 2021-01-01 00:00:00 +08, the paper's measurement locale).
    pub fn from_sim_millis(ms: u64) -> Self {
        let total_secs = ms / 1000;
        let second = (total_secs % 60) as u8;
        let minute = ((total_secs / 60) % 60) as u8;
        let hour = ((total_secs / 3600) % 24) as u8;
        let days = total_secs / 86_400;
        // Simple civil calendar from 2021-01-01.
        let mut year = 21u16;
        let mut day_of_year = days;
        loop {
            let leap = year % 4 == 0;
            let year_days = if leap { 366 } else { 365 };
            if day_of_year < year_days {
                break;
            }
            day_of_year -= year_days;
            year += 1;
        }
        let leap = year % 4 == 0;
        let month_lens =
            [31, if leap { 29 } else { 28 }, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
        let mut month = 1u8;
        for len in month_lens {
            if day_of_year < len {
                break;
            }
            day_of_year -= len;
            month += 1;
        }
        Self {
            year: (year % 100) as u8,
            month,
            day: (day_of_year + 1) as u8,
            hour,
            minute,
            second,
            tz_quarter_hours: 32, // UTC+8
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        for v in [self.year, self.month, self.day, self.hour, self.minute, self.second] {
            out.push(swap_bcd(v));
        }
        let tz = self.tz_quarter_hours;
        let mag = tz.unsigned_abs();
        let mut b = swap_bcd(mag);
        if tz < 0 {
            b |= 0x08; // sign bit lives in the low nibble's high bit pre-swap
        }
        out.push(b);
    }

    fn decode(data: &[u8]) -> Result<(Self, usize), GsmError> {
        if data.len() < 7 {
            return Err(GsmError::PduDecode { offset: 0, reason: "timestamp truncated".into() });
        }
        let f = |i: usize| unswap_bcd(data[i]);
        let tz_raw = data[6];
        let negative = tz_raw & 0x08 != 0;
        let mag = unswap_bcd(tz_raw & !0x08);
        let tz = if negative { -(mag as i8) } else { mag as i8 };
        Ok((
            Self {
                year: f(0),
                month: f(1),
                day: f(2),
                hour: f(3),
                minute: f(4),
                second: f(5),
                tz_quarter_hours: tz,
            },
            7,
        ))
    }
}

impl fmt::Display for Scts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "20{:02}-{:02}-{:02} {:02}:{:02}:{:02}",
            self.year, self.month, self.day, self.hour, self.minute, self.second
        )
    }
}

fn swap_bcd(v: u8) -> u8 {
    ((v % 10) << 4) | (v / 10)
}

fn unswap_bcd(b: u8) -> u8 {
    (b & 0x0f) * 10 + (b >> 4)
}

/// TP-DCS data coding scheme recognised by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataCoding {
    /// GSM 7-bit default alphabet.
    Gsm7,
    /// 8-bit binary data.
    Octet,
    /// UCS-2 big-endian text.
    Ucs2,
}

impl DataCoding {
    fn to_byte(self) -> u8 {
        match self {
            DataCoding::Gsm7 => 0x00,
            DataCoding::Octet => 0x04,
            DataCoding::Ucs2 => 0x08,
        }
    }

    fn from_byte(b: u8) -> Result<Self, GsmError> {
        match b & 0x0c {
            0x00 => Ok(DataCoding::Gsm7),
            0x04 => Ok(DataCoding::Octet),
            0x08 => Ok(DataCoding::Ucs2),
            other => Err(GsmError::PduDecode {
                offset: 0,
                reason: format!("reserved data coding 0x{other:02x}"),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// SMS-DELIVER
// ---------------------------------------------------------------------------

/// An SMS-DELIVER TPDU — the network-to-mobile message the sniffer captures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmsDeliver {
    /// Originating address (TP-OA).
    pub originator: Address,
    /// Protocol identifier (TP-PID), normally zero.
    pub pid: u8,
    /// Data coding scheme in effect.
    pub coding: DataCoding,
    /// Service-centre timestamp.
    pub timestamp: Scts,
    /// Concatenation header, when this PDU is one part of a multipart
    /// message.
    pub concat: Option<ConcatInfo>,
    /// User data, packed per `coding` (includes the UDH when `concat`).
    user_data: Vec<u8>,
    /// Septet count for 7-bit, byte count otherwise (TP-UDL).
    udl: u8,
}

/// The 6-octet concatenation user-data header.
fn concat_udh(c: ConcatInfo) -> [u8; 6] {
    [0x05, 0x00, 0x03, c.reference, c.total, c.seq]
}

/// Fill bits inserted after a UDH of `header_octets` so text aligns to a
/// septet boundary, and the number of septets the header consumes.
fn udh_septet_geometry(header_octets: usize) -> (u8, usize) {
    let bits = header_octets * 8;
    let septets = bits.div_ceil(7);
    let fill = (septets * 7 - bits) as u8;
    (fill, septets)
}

impl SmsDeliver {
    /// Builds a deliver PDU from text, choosing GSM-7 when possible and
    /// UCS-2 otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`GsmError::PduEncode`] when the text exceeds one PDU.
    pub fn new(originator: Address, text: &str) -> Result<Self, GsmError> {
        let (coding, user_data, udl) = if is_gsm7(text) {
            let (packed, septets) = gsm7_encode(text)?;
            (DataCoding::Gsm7, packed, septets as u8)
        } else {
            let data = ucs2_encode(text)?;
            let len = data.len() as u8;
            (DataCoding::Ucs2, data, len)
        };
        Ok(Self { originator, pid: 0, coding, timestamp: Scts::default(), concat: None, user_data, udl })
    }

    /// Builds one part of a concatenated message.
    ///
    /// # Errors
    ///
    /// Returns [`GsmError::PduEncode`] when the part text exceeds the
    /// per-part capacity or the concat fields are inconsistent.
    pub fn new_concat_part(
        originator: Address,
        text: &str,
        concat: ConcatInfo,
    ) -> Result<Self, GsmError> {
        if concat.total == 0 || concat.seq == 0 || concat.seq > concat.total {
            return Err(GsmError::PduEncode(format!(
                "inconsistent concat header {}/{}",
                concat.seq, concat.total
            )));
        }
        let udh = concat_udh(concat);
        let (coding, user_data, udl) = if is_gsm7(text) {
            let n = gsm7_septet_len(text).expect("checked gsm7");
            if n > MAX_SEPTETS_PER_PART {
                return Err(GsmError::PduEncode(format!(
                    "part needs {n} septets, limit is {MAX_SEPTETS_PER_PART}"
                )));
            }
            let mut septets = Vec::with_capacity(n);
            for c in text.chars() {
                let (pair, len) = gsm7_encode_char(c).expect("checked gsm7");
                septets.extend_from_slice(&pair[..len]);
            }
            let (fill, header_septets) = udh_septet_geometry(udh.len());
            let mut ud = udh.to_vec();
            ud.extend_from_slice(&pack_septets_with_fill(&septets, fill));
            (DataCoding::Gsm7, ud, (header_septets + n) as u8)
        } else {
            let data = ucs2_encode(text)?;
            if data.len() / 2 > MAX_UCS2_CHARS_PER_PART {
                return Err(GsmError::PduEncode(format!(
                    "part has {} UCS-2 characters, limit is {MAX_UCS2_CHARS_PER_PART}",
                    data.len() / 2
                )));
            }
            let mut ud = udh.to_vec();
            ud.extend_from_slice(&data);
            let len = ud.len() as u8;
            (DataCoding::Ucs2, ud, len)
        };
        Ok(Self {
            originator,
            pid: 0,
            coding,
            timestamp: Scts::default(),
            concat: Some(concat),
            user_data,
            udl,
        })
    }

    /// Sets the service-centre timestamp (builder style).
    pub fn with_timestamp(mut self, timestamp: Scts) -> Self {
        self.timestamp = timestamp;
        self
    }

    /// The decoded message text (of this part, for concatenated PDUs).
    ///
    /// # Errors
    ///
    /// Returns [`GsmError::PduDecode`] if the stored user data is malformed
    /// (possible when constructed via [`SmsDeliver::decode`] on hostile input).
    pub fn text(&self) -> Result<String, GsmError> {
        match (self.coding, self.concat.is_some()) {
            (DataCoding::Gsm7, false) => gsm7_decode(&self.user_data, usize::from(self.udl)),
            (DataCoding::Gsm7, true) => {
                let udhl = usize::from(*self.user_data.first().ok_or(GsmError::PduDecode {
                    offset: 0,
                    reason: "missing UDH".into(),
                })?);
                let header_octets = udhl + 1;
                let (fill, header_septets) = udh_septet_geometry(header_octets);
                let body = self.user_data.get(header_octets..).ok_or(GsmError::PduDecode {
                    offset: header_octets,
                    reason: "UDH longer than user data".into(),
                })?;
                let text_septets = usize::from(self.udl).saturating_sub(header_septets);
                let septets = unpack_septets_with_fill(body, text_septets, fill).ok_or(
                    GsmError::PduDecode { offset: header_octets, reason: "part truncated".into() },
                )?;
                decode_septet_stream(&septets)
            }
            (DataCoding::Ucs2, false) => ucs2_decode(&self.user_data),
            (DataCoding::Ucs2, true) => {
                let udhl = usize::from(*self.user_data.first().ok_or(GsmError::PduDecode {
                    offset: 0,
                    reason: "missing UDH".into(),
                })?);
                let body = self.user_data.get(udhl + 1..).ok_or(GsmError::PduDecode {
                    offset: udhl + 1,
                    reason: "UDH longer than user data".into(),
                })?;
                ucs2_decode(body)
            }
            (DataCoding::Octet, _) => Ok(self.user_data.iter().map(|&b| char::from(b)).collect()),
        }
    }

    /// Raw user-data octets (TP-UD).
    pub fn user_data(&self) -> &[u8] {
        &self.user_data
    }

    /// Serialises to transfer-layer bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.user_data.len());
        // MTI=00 deliver, MMS=1; UDHI set when a header is present.
        out.push(0x04 | if self.concat.is_some() { 0x40 } else { 0 });
        self.originator.encode(&mut out);
        out.push(self.pid);
        out.push(self.coding.to_byte());
        self.timestamp.encode(&mut out);
        out.push(self.udl);
        out.extend_from_slice(&self.user_data);
        out
    }

    /// Parses transfer-layer bytes.
    ///
    /// # Errors
    ///
    /// Returns [`GsmError::PduDecode`] with the failing offset on any
    /// truncation or malformed field.
    pub fn decode(data: &[u8]) -> Result<Self, GsmError> {
        let fo = *data.first().ok_or(GsmError::PduDecode {
            offset: 0,
            reason: "empty PDU".into(),
        })?;
        if fo & 0x03 != 0x00 {
            return Err(GsmError::PduDecode {
                offset: 0,
                reason: format!("not an SMS-DELIVER (MTI={})", fo & 0x03),
            });
        }
        let has_udh = fo & 0x40 != 0;
        let mut pos = 1usize;
        let (originator, used) = Address::decode(&data[pos..]).map_err(|e| bump_offset(e, pos))?;
        pos += used;
        let pid = *data.get(pos).ok_or(GsmError::PduDecode {
            offset: pos,
            reason: "missing TP-PID".into(),
        })?;
        pos += 1;
        let dcs = *data.get(pos).ok_or(GsmError::PduDecode {
            offset: pos,
            reason: "missing TP-DCS".into(),
        })?;
        let coding = DataCoding::from_byte(dcs).map_err(|e| bump_offset(e, pos))?;
        pos += 1;
        let (timestamp, used) = Scts::decode(&data[pos..]).map_err(|e| bump_offset(e, pos))?;
        pos += used;
        let udl = *data.get(pos).ok_or(GsmError::PduDecode {
            offset: pos,
            reason: "missing TP-UDL".into(),
        })?;
        pos += 1;
        let ud_octets = match coding {
            DataCoding::Gsm7 => (usize::from(udl) * 7).div_ceil(8),
            _ => usize::from(udl),
        };
        let user_data = data
            .get(pos..pos + ud_octets)
            .ok_or(GsmError::PduDecode { offset: pos, reason: "user data truncated".into() })?
            .to_vec();
        let concat = if has_udh {
            Some(parse_concat_udh(&user_data).map_err(|e| bump_offset(e, pos))?)
        } else {
            None
        };
        Ok(Self { originator, pid, coding, timestamp, concat, user_data, udl })
    }
}

/// Parses the user-data header, returning the concatenation IE.
fn parse_concat_udh(ud: &[u8]) -> Result<ConcatInfo, GsmError> {
    let udhl = usize::from(*ud.first().ok_or(GsmError::PduDecode {
        offset: 0,
        reason: "missing UDHL".into(),
    })?);
    let header = ud.get(1..1 + udhl).ok_or(GsmError::PduDecode {
        offset: 1,
        reason: "UDH truncated".into(),
    })?;
    let mut i = 0usize;
    while i + 2 <= header.len() {
        let iei = header[i];
        let ielen = usize::from(header[i + 1]);
        let body = header.get(i + 2..i + 2 + ielen).ok_or(GsmError::PduDecode {
            offset: i + 2,
            reason: "information element truncated".into(),
        })?;
        if iei == 0x00 {
            if ielen != 3 {
                return Err(GsmError::PduDecode {
                    offset: i,
                    reason: "concat IE must be 3 bytes".into(),
                });
            }
            let info = ConcatInfo { reference: body[0], total: body[1], seq: body[2] };
            if info.total == 0 || info.seq == 0 || info.seq > info.total {
                return Err(GsmError::PduDecode {
                    offset: i,
                    reason: format!("inconsistent concat header {}/{}", info.seq, info.total),
                });
            }
            return Ok(info);
        }
        i += 2 + ielen;
    }
    Err(GsmError::PduDecode { offset: 0, reason: "no concatenation element in UDH".into() })
}

/// Splits `text` into one or more deliver PDUs: a single plain PDU when
/// it fits, or concatenated parts sharing `reference` otherwise.
///
/// # Errors
///
/// Returns [`GsmError::PduEncode`] when the message would need more than
/// 255 parts.
pub fn split_deliver(
    originator: &Address,
    text: &str,
    reference: u8,
) -> Result<Vec<SmsDeliver>, GsmError> {
    let fits_single = if is_gsm7(text) {
        gsm7_septet_len(text).map(|n| n <= MAX_SEPTETS).unwrap_or(false)
    } else {
        text.encode_utf16().count() <= MAX_UCS2_CHARS
    };
    if fits_single {
        return Ok(vec![SmsDeliver::new(originator.clone(), text)?]);
    }
    // Chunk at character granularity, respecting per-part cost.
    let mut chunks: Vec<String> = Vec::new();
    let mut current = String::new();
    let mut cost = 0usize;
    let gsm7 = is_gsm7(text);
    let limit = if gsm7 { MAX_SEPTETS_PER_PART } else { MAX_UCS2_CHARS_PER_PART };
    for c in text.chars() {
        let c_cost = if gsm7 {
            gsm7_septet_len(&c.to_string()).expect("whole text is GSM-7")
        } else {
            // Supplementary-plane characters occupy a surrogate pair.
            c.len_utf16()
        };
        if cost + c_cost > limit {
            chunks.push(std::mem::take(&mut current));
            cost = 0;
        }
        current.push(c);
        cost += c_cost;
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    if chunks.len() > 255 {
        return Err(GsmError::PduEncode(format!("message needs {} parts, limit is 255", chunks.len())));
    }
    let total = chunks.len() as u8;
    chunks
        .into_iter()
        .enumerate()
        .map(|(i, part)| {
            SmsDeliver::new_concat_part(
                originator.clone(),
                &part,
                ConcatInfo { reference, total, seq: (i + 1) as u8 },
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// SMS-SUBMIT
// ---------------------------------------------------------------------------

/// An SMS-SUBMIT TPDU — the mobile-to-network submission.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmsSubmit {
    /// Message reference assigned by the terminal (TP-MR).
    pub reference: u8,
    /// Destination address (TP-DA).
    pub destination: Address,
    /// Protocol identifier.
    pub pid: u8,
    /// Data coding scheme.
    pub coding: DataCoding,
    user_data: Vec<u8>,
    udl: u8,
}

impl SmsSubmit {
    /// Builds a submit PDU from text.
    ///
    /// # Errors
    ///
    /// Returns [`GsmError::PduEncode`] when the text exceeds one PDU.
    pub fn new(reference: u8, destination: Address, text: &str) -> Result<Self, GsmError> {
        let (coding, user_data, udl) = if is_gsm7(text) {
            let (packed, septets) = gsm7_encode(text)?;
            (DataCoding::Gsm7, packed, septets as u8)
        } else {
            let data = ucs2_encode(text)?;
            let len = data.len() as u8;
            (DataCoding::Ucs2, data, len)
        };
        Ok(Self { reference, destination, pid: 0, coding, user_data, udl })
    }

    /// The decoded message text.
    ///
    /// # Errors
    ///
    /// Returns [`GsmError::PduDecode`] if the stored user data is malformed.
    pub fn text(&self) -> Result<String, GsmError> {
        match self.coding {
            DataCoding::Gsm7 => gsm7_decode(&self.user_data, usize::from(self.udl)),
            DataCoding::Ucs2 => ucs2_decode(&self.user_data),
            DataCoding::Octet => Ok(self.user_data.iter().map(|&b| char::from(b)).collect()),
        }
    }

    /// Serialises to transfer-layer bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.user_data.len());
        out.push(0x01); // MTI=01 submit, no VP
        out.push(self.reference);
        self.destination.encode(&mut out);
        out.push(self.pid);
        out.push(self.coding.to_byte());
        out.push(self.udl);
        out.extend_from_slice(&self.user_data);
        out
    }

    /// Parses transfer-layer bytes.
    ///
    /// # Errors
    ///
    /// Returns [`GsmError::PduDecode`] on malformed input.
    pub fn decode(data: &[u8]) -> Result<Self, GsmError> {
        let fo = *data.first().ok_or(GsmError::PduDecode {
            offset: 0,
            reason: "empty PDU".into(),
        })?;
        if fo & 0x03 != 0x01 {
            return Err(GsmError::PduDecode {
                offset: 0,
                reason: format!("not an SMS-SUBMIT (MTI={})", fo & 0x03),
            });
        }
        if fo & 0x18 != 0 {
            return Err(GsmError::PduDecode {
                offset: 0,
                reason: "validity-period formats not supported".into(),
            });
        }
        let reference = *data.get(1).ok_or(GsmError::PduDecode {
            offset: 1,
            reason: "missing TP-MR".into(),
        })?;
        let mut pos = 2usize;
        let (destination, used) = Address::decode(&data[pos..]).map_err(|e| bump_offset(e, pos))?;
        pos += used;
        let pid = *data.get(pos).ok_or(GsmError::PduDecode {
            offset: pos,
            reason: "missing TP-PID".into(),
        })?;
        pos += 1;
        let dcs = *data.get(pos).ok_or(GsmError::PduDecode {
            offset: pos,
            reason: "missing TP-DCS".into(),
        })?;
        let coding = DataCoding::from_byte(dcs).map_err(|e| bump_offset(e, pos))?;
        pos += 1;
        let udl = *data.get(pos).ok_or(GsmError::PduDecode {
            offset: pos,
            reason: "missing TP-UDL".into(),
        })?;
        pos += 1;
        let ud_octets = match coding {
            DataCoding::Gsm7 => (usize::from(udl) * 7).div_ceil(8),
            _ => usize::from(udl),
        };
        let user_data = data
            .get(pos..pos + ud_octets)
            .ok_or(GsmError::PduDecode { offset: pos, reason: "user data truncated".into() })?
            .to_vec();
        Ok(Self { reference, destination, pid, coding, user_data, udl })
    }
}

fn bump_offset(e: GsmError, base: usize) -> GsmError {
    match e {
        GsmError::PduDecode { offset, reason } => GsmError::PduDecode { offset: offset + base, reason },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn intl(digits: &str) -> Address {
        Address::numeric(digits, TypeOfNumber::International).unwrap()
    }

    #[test]
    fn septet_pack_known_vector() {
        // "hello" packs to E8 32 9B FD 06 per GSM 03.38.
        let septets: Vec<u8> = "hello".chars().map(|c| gsm7_encode_char(c).unwrap().0[0]).collect();
        assert_eq!(pack_septets(&septets), vec![0xe8, 0x32, 0x9b, 0xfd, 0x06]);
    }

    #[test]
    fn septet_unpack_inverts_pack() {
        let septets: Vec<u8> = (0..153).map(|i| (i % 128) as u8).collect();
        let packed = pack_septets(&septets);
        assert_eq!(unpack_septets(&packed, septets.len()).unwrap(), septets);
    }

    #[test]
    fn gsm7_roundtrip_ascii() {
        let text = "G-786348 is your Google verification code.";
        let (packed, n) = gsm7_encode(text).unwrap();
        assert_eq!(gsm7_decode(&packed, n).unwrap(), text);
    }

    #[test]
    fn gsm7_roundtrip_extension_chars() {
        let text = "code {123} ~ [ok] | 5€";
        let (packed, n) = gsm7_encode(text).unwrap();
        assert_eq!(gsm7_decode(&packed, n).unwrap(), text);
    }

    #[test]
    fn gsm7_rejects_cjk() {
        assert!(!is_gsm7("验证码"));
        assert!(gsm7_encode("验证码").is_err());
    }

    #[test]
    fn gsm7_length_limit() {
        let long = "a".repeat(161);
        assert!(gsm7_encode(&long).is_err());
        let ok = "a".repeat(160);
        assert!(gsm7_encode(&ok).is_ok());
        // Escaped characters cost two septets each.
        let escapes = "€".repeat(81);
        assert!(gsm7_encode(&escapes).is_err());
    }

    #[test]
    fn ucs2_roundtrip_chinese() {
        let text = "【支付宝】验证码 255436";
        let data = ucs2_encode(text).unwrap();
        assert_eq!(ucs2_decode(&data).unwrap(), text);
    }

    #[test]
    fn ucs2_roundtrip_astral_plane() {
        // Supplementary-plane characters survive as surrogate pairs
        // (the old encoder truncated them with `as u16`).
        let text = "验证码 🔐 884211 💥";
        let data = ucs2_encode(text).unwrap();
        assert_eq!(data.len(), text.encode_utf16().count() * 2);
        assert_eq!(ucs2_decode(&data).unwrap(), text);

        // A lone emoji costs two code units on the wire.
        assert_eq!(ucs2_encode("🔥").unwrap().len(), 4);
        assert_eq!(ucs2_decode(&ucs2_encode("🔥").unwrap()).unwrap(), "🔥");
    }

    #[test]
    fn ucs2_length_limit_counts_code_units() {
        // 36 emoji = 72 UTF-16 units: over the 70-unit single-PDU cap.
        assert!(ucs2_encode(&"🔥".repeat(35)).is_ok());
        assert!(ucs2_encode(&"🔥".repeat(36)).is_err());
    }

    #[test]
    fn ucs2_decode_rejects_odd_length() {
        assert!(ucs2_decode(&[0x00]).is_err());
    }

    #[test]
    fn ucs2_decode_rejects_unpaired_surrogates() {
        // Lone high surrogate at the end.
        let err = ucs2_decode(&[0xd8, 0x3d]).unwrap_err();
        assert!(matches!(err, GsmError::PduDecode { offset: 0, .. }), "{err:?}");
        // High surrogate followed by a BMP unit.
        let err = ucs2_decode(&[0x00, 0x41, 0xd8, 0x3d, 0x00, 0x42]).unwrap_err();
        assert!(matches!(err, GsmError::PduDecode { offset: 2, .. }), "{err:?}");
        // Lone low surrogate.
        let err = ucs2_decode(&[0xdc, 0x00]).unwrap_err();
        assert!(matches!(err, GsmError::PduDecode { offset: 0, .. }), "{err:?}");
    }

    #[test]
    fn deliver_roundtrip_emoji() {
        let d = SmsDeliver::new(intl("10690001"), "【支付宝】🔐 验证码 884211").unwrap();
        assert_eq!(d.coding, DataCoding::Ucs2);
        let back = SmsDeliver::decode(&d.encode()).unwrap();
        assert_eq!(back.text().unwrap(), "【支付宝】🔐 验证码 884211");
    }

    #[test]
    fn split_deliver_emoji_text_reassembles_without_splitting_pairs() {
        let oa = intl("10690001");
        // 40 × (1 emoji + 2 BMP chars) = 160 UTF-16 units: multipart, and
        // every chunk boundary must respect surrogate pairs.
        let text = "🔥安全".repeat(40);
        assert!(text.encode_utf16().count() > MAX_UCS2_CHARS);
        let parts = split_deliver(&oa, &text, 11).unwrap();
        assert!(parts.len() >= 2);
        for p in &parts {
            assert!(p.text().unwrap().chars().all(|c| "🔥安全".contains(c)));
        }
        let reassembled: String = parts.iter().map(|p| p.text().unwrap()).collect();
        assert_eq!(reassembled, text);
    }

    #[test]
    fn semi_octet_roundtrip_even_and_odd() {
        for digits in ["13800138000", "1234", "12345"] {
            let enc = encode_semi_octets(digits);
            assert_eq!(decode_semi_octets(&enc, digits.len()), digits);
        }
    }

    #[test]
    fn address_roundtrip_numeric() {
        let addr = intl("8613800138000");
        let mut buf = Vec::new();
        addr.encode(&mut buf);
        let (back, used) = Address::decode(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(back, addr);
    }

    #[test]
    fn address_roundtrip_alphanumeric() {
        let addr = Address::alphanumeric("Google").unwrap();
        let mut buf = Vec::new();
        addr.encode(&mut buf);
        let (back, _) = Address::decode(&buf).unwrap();
        assert_eq!(back.value(), "Google");
        assert_eq!(back.type_of_number(), TypeOfNumber::Alphanumeric);
    }

    #[test]
    fn address_rejects_overlong_sender() {
        assert!(Address::alphanumeric("TwelveChars!").is_err());
        assert!(Address::alphanumeric("").is_err());
    }

    #[test]
    fn scts_encode_decode_roundtrip() {
        let ts = Scts {
            year: 21,
            month: 7,
            day: 15,
            hour: 23,
            minute: 59,
            second: 1,
            tz_quarter_hours: 32,
        };
        let mut buf = Vec::new();
        ts.encode(&mut buf);
        let (back, used) = Scts::decode(&buf).unwrap();
        assert_eq!(used, 7);
        assert_eq!(back, ts);
    }

    #[test]
    fn scts_negative_timezone() {
        let ts = Scts { tz_quarter_hours: -20, ..Scts::default() };
        let mut buf = Vec::new();
        ts.encode(&mut buf);
        let (back, _) = Scts::decode(&buf).unwrap();
        assert_eq!(back.tz_quarter_hours, -20);
    }

    #[test]
    fn scts_from_sim_millis_epoch() {
        let ts = Scts::from_sim_millis(0);
        assert_eq!((ts.year, ts.month, ts.day), (21, 1, 1));
        // One day + 1h2m3s later.
        let ts = Scts::from_sim_millis((86_400 + 3_723) * 1000);
        assert_eq!((ts.day, ts.hour, ts.minute, ts.second), (2, 1, 2, 3));
    }

    #[test]
    fn deliver_roundtrip_gsm7() {
        let d = SmsDeliver::new(intl("10692000000"), "255436 is your Facebook password reset code")
            .unwrap()
            .with_timestamp(Scts::from_sim_millis(123_456_789));
        let bytes = d.encode();
        let back = SmsDeliver::decode(&bytes).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.text().unwrap(), "255436 is your Facebook password reset code");
    }

    #[test]
    fn deliver_roundtrip_ucs2() {
        let d = SmsDeliver::new(intl("10690001"), "【支付宝】验证码 884211，打死也不要告诉别人").unwrap();
        assert_eq!(d.coding, DataCoding::Ucs2);
        let back = SmsDeliver::decode(&d.encode()).unwrap();
        assert_eq!(back.text().unwrap(), "【支付宝】验证码 884211，打死也不要告诉别人");
    }

    #[test]
    fn deliver_alphanumeric_sender() {
        let d = SmsDeliver::new(Address::alphanumeric("Google").unwrap(), "G-786348").unwrap();
        let back = SmsDeliver::decode(&d.encode()).unwrap();
        assert_eq!(back.originator.value(), "Google");
    }

    #[test]
    fn deliver_decode_rejects_submit() {
        let s = SmsSubmit::new(1, intl("13800138000"), "hi").unwrap();
        assert!(matches!(SmsDeliver::decode(&s.encode()), Err(GsmError::PduDecode { .. })));
    }

    #[test]
    fn deliver_decode_rejects_truncation_everywhere() {
        let d = SmsDeliver::new(intl("13800138000"), "truncation probe").unwrap();
        let bytes = d.encode();
        for cut in 0..bytes.len() {
            assert!(
                SmsDeliver::decode(&bytes[..cut]).is_err(),
                "decode unexpectedly succeeded at cut {cut}"
            );
        }
    }

    #[test]
    fn concat_part_roundtrip_gsm7() {
        let oa = Address::alphanumeric("Google").unwrap();
        let info = ConcatInfo { reference: 7, total: 2, seq: 1 };
        let d = SmsDeliver::new_concat_part(oa, "part one of a long security notice ", info).unwrap();
        let back = SmsDeliver::decode(&d.encode()).unwrap();
        assert_eq!(back.concat, Some(info));
        assert_eq!(back.text().unwrap(), "part one of a long security notice ");
    }

    #[test]
    fn concat_part_roundtrip_ucs2() {
        let oa = intl("10690001");
        let info = ConcatInfo { reference: 9, total: 3, seq: 2 };
        let d = SmsDeliver::new_concat_part(oa, "第二部分：验证码相关通知", info).unwrap();
        assert_eq!(d.coding, DataCoding::Ucs2);
        let back = SmsDeliver::decode(&d.encode()).unwrap();
        assert_eq!(back.concat, Some(info));
        assert_eq!(back.text().unwrap(), "第二部分：验证码相关通知");
    }

    #[test]
    fn concat_rejects_inconsistent_headers() {
        let oa = intl("10690001");
        assert!(SmsDeliver::new_concat_part(
            oa.clone(),
            "x",
            ConcatInfo { reference: 1, total: 0, seq: 1 }
        )
        .is_err());
        assert!(SmsDeliver::new_concat_part(
            oa,
            "x",
            ConcatInfo { reference: 1, total: 2, seq: 3 }
        )
        .is_err());
    }

    #[test]
    fn concat_part_respects_capacity() {
        let oa = intl("10690001");
        let info = ConcatInfo { reference: 1, total: 2, seq: 1 };
        let too_long = "a".repeat(MAX_SEPTETS_PER_PART + 1);
        assert!(SmsDeliver::new_concat_part(oa.clone(), &too_long, info).is_err());
        let fits = "a".repeat(MAX_SEPTETS_PER_PART);
        assert!(SmsDeliver::new_concat_part(oa, &fits, info).is_ok());
    }

    #[test]
    fn split_deliver_short_text_is_single_plain_pdu() {
        let oa = Address::alphanumeric("Google").unwrap();
        let parts = split_deliver(&oa, "short message", 5).unwrap();
        assert_eq!(parts.len(), 1);
        assert!(parts[0].concat.is_none());
    }

    #[test]
    fn split_deliver_long_text_reassembles() {
        let oa = Address::alphanumeric("Google").unwrap();
        let text = "Security notice: we observed a sign-in from a new device. ".repeat(8);
        assert!(gsm7_septet_len(&text).unwrap() > MAX_SEPTETS);
        let parts = split_deliver(&oa, &text, 42).unwrap();
        assert!(parts.len() >= 2);
        let mut reassembled = String::new();
        for (i, p) in parts.iter().enumerate() {
            let info = p.concat.expect("multipart");
            assert_eq!(info.reference, 42);
            assert_eq!(usize::from(info.seq), i + 1);
            assert_eq!(usize::from(info.total), parts.len());
            reassembled.push_str(&p.text().unwrap());
        }
        assert_eq!(reassembled, text);
    }

    #[test]
    fn split_deliver_long_ucs2_reassembles() {
        let oa = intl("10690001");
        let text = "安全提醒：您的账户刚刚在新设备上登录。".repeat(6);
        assert!(text.chars().count() > MAX_UCS2_CHARS);
        let parts = split_deliver(&oa, &text, 3).unwrap();
        assert!(parts.len() >= 2);
        let reassembled: String = parts.iter().map(|p| p.text().unwrap()).collect();
        assert_eq!(reassembled, text);
    }

    #[test]
    fn septet_fill_roundtrip() {
        for fill in 0u8..7 {
            let septets: Vec<u8> = (0..50).map(|i| (i * 3) % 128).collect();
            let packed = pack_septets_with_fill(&septets, fill);
            let back = unpack_septets_with_fill(&packed, septets.len(), fill).unwrap();
            assert_eq!(back, septets, "fill {fill}");
        }
    }

    #[test]
    fn submit_roundtrip() {
        let s = SmsSubmit::new(42, intl("8613800138000"), "please send code").unwrap();
        let back = SmsSubmit::decode(&s.encode()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.reference, 42);
        assert_eq!(back.text().unwrap(), "please send code");
    }

    #[test]
    fn submit_decode_rejects_deliver() {
        let d = SmsDeliver::new(intl("10690001"), "hello").unwrap();
        assert!(SmsSubmit::decode(&d.encode()).is_err());
    }
}
