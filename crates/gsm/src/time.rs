//! Discrete simulated time.
//!
//! The whole substrate runs on a deterministic millisecond clock; GSM TDMA
//! frame numbers are derived from it (one frame every 4.615 ms, as on the
//! real Um interface).

use serde::{Deserialize, Serialize};

/// Duration of one GSM TDMA frame in microseconds (4.615 ms).
pub const TDMA_FRAME_US: u64 = 4_615;

/// A deterministic simulation clock measured in microseconds.
///
/// `SimClock` is cheap to copy and advances only when the simulation
/// explicitly steps it, which keeps every run reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimClock {
    micros: u64,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock at an absolute microsecond offset.
    pub fn at_micros(micros: u64) -> Self {
        Self { micros }
    }

    /// Current time in microseconds since simulation start.
    pub fn micros(&self) -> u64 {
        self.micros
    }

    /// Current time in whole milliseconds.
    pub fn millis(&self) -> u64 {
        self.micros / 1_000
    }

    /// Current TDMA frame number (wraps at the GSM hyperframe of
    /// 2 715 648 frames, as the real air interface does).
    pub fn frame_number(&self) -> u32 {
        ((self.micros / TDMA_FRAME_US) % 2_715_648) as u32
    }

    /// Advances the clock by `micros` microseconds.
    pub fn advance_micros(&mut self, micros: u64) {
        self.micros = self.micros.saturating_add(micros);
    }

    /// Advances the clock by `ms` milliseconds.
    pub fn advance_millis(&mut self, ms: u64) {
        self.advance_micros(ms.saturating_mul(1_000));
    }

    /// Advances to exactly the next TDMA frame boundary.
    pub fn advance_frame(&mut self) {
        let rem = self.micros % TDMA_FRAME_US;
        self.advance_micros(TDMA_FRAME_US - rem);
    }

    /// Elapsed microseconds since `earlier`. Returns zero when `earlier`
    /// is in the future.
    pub fn since(&self, earlier: SimClock) -> u64 {
        self.micros.saturating_sub(earlier.micros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SimClock::new().micros(), 0);
        assert_eq!(SimClock::new().frame_number(), 0);
    }

    #[test]
    fn advance_accumulates() {
        let mut c = SimClock::new();
        c.advance_millis(10);
        c.advance_micros(500);
        assert_eq!(c.micros(), 10_500);
        assert_eq!(c.millis(), 10);
    }

    #[test]
    fn frame_number_tracks_tdma_period() {
        let mut c = SimClock::new();
        assert_eq!(c.frame_number(), 0);
        c.advance_micros(TDMA_FRAME_US);
        assert_eq!(c.frame_number(), 1);
        c.advance_micros(TDMA_FRAME_US * 9);
        assert_eq!(c.frame_number(), 10);
    }

    #[test]
    fn frame_number_wraps_at_hyperframe() {
        let c = SimClock::at_micros(TDMA_FRAME_US * 2_715_648);
        assert_eq!(c.frame_number(), 0);
    }

    #[test]
    fn advance_frame_lands_on_boundary() {
        let mut c = SimClock::at_micros(100);
        c.advance_frame();
        assert_eq!(c.micros() % TDMA_FRAME_US, 0);
        assert_eq!(c.frame_number(), 1);
    }

    #[test]
    fn since_saturates() {
        let early = SimClock::at_micros(5);
        let late = SimClock::at_micros(25);
        assert_eq!(late.since(early), 20);
        assert_eq!(early.since(late), 0);
    }
}
