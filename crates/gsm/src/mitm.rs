//! The active man-in-the-middle rig: 4G jammer, fake base station and
//! fake victim terminal (Fig. 7 / Fig. 10 of the paper).
//!
//! The attack runs in three stages:
//!
//! 1. **Downgrade** — the jammer denies LTE within its radius, forcing
//!    handsets onto GSM.
//! 2. **Capture** — the fake base station (strongest signal nearby)
//!    attracts the victim's location update, forces an identity request
//!    (IMSI catching) and parks the victim without service.
//! 3. **Impersonate** — the fake victim terminal registers with the
//!    legitimate network under the victim's identity, relaying the
//!    authentication challenge to the captive victim and claiming a
//!    no-cipher classmark so everything arrives in plaintext. The
//!    network then delivers the victim's SMS — including one-time
//!    codes — straight to the attacker, and the victim sees nothing,
//!    which is what makes the active attack stealthier than sniffing.

use crate::arfcn::Arfcn;
use crate::cipher::{CipherAlgo, CipherSet};
use crate::error::GsmError;
use crate::identity::{Imsi, SubscriberId};
use crate::radio::{AirMessage, CellConfig, CellId, Direction, MsIdentity, Position};
use crate::terminal::{Camp, ReceivedSms};
use crate::network::GsmNetwork;
use actfort_obs as obs;
use serde::{Deserialize, Serialize};

/// A directional 4G jammer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Jammer {
    /// Jammer location.
    pub position: Position,
    /// Effective radius in metres.
    pub radius_m: f64,
}

impl Jammer {
    /// Creates a jammer.
    pub fn new(position: Position, radius_m: f64) -> Self {
        Self { position, radius_m }
    }

    /// Jams every handset within radius; returns how many were affected.
    pub fn activate(&self, net: &mut GsmNetwork) -> usize {
        self.set_jammed(net, true)
    }

    /// Stops jamming; returns how many handsets were released.
    pub fn deactivate(&self, net: &mut GsmNetwork) -> usize {
        self.set_jammed(net, false)
    }

    fn set_jammed(&self, net: &mut GsmNetwork, jammed: bool) -> usize {
        let mut n = 0;
        let ids: Vec<_> = net.subscriber_ids().collect();
        for id in ids {
            let Some(ms) = net.terminal(id) else { continue };
            if ms.position().distance(self.position) <= self.radius_m && ms.lte_jammed() != jammed {
                net.terminal_mut(id).expect("listed id exists").set_lte_jammed(jammed);
                n += 1;
            }
        }
        n
    }
}

/// The fake base station (USRP + OsmoNITB in the paper's rig).
#[derive(Debug, Clone)]
pub struct FakeBaseStation {
    /// Radio parameters of the fake cell.
    pub cell: CellConfig,
    caught: Vec<(SubscriberId, Imsi)>,
}

impl FakeBaseStation {
    /// Cell id space reserved for fake cells.
    pub const FAKE_CELL_BASE: u16 = 0xf000;

    /// Creates a fake base station at `position` broadcasting on `arfcn`.
    pub fn new(position: Position, arfcn: Arfcn) -> Self {
        Self {
            cell: CellConfig {
                id: CellId(Self::FAKE_CELL_BASE),
                arfcn,
                lac: 0xfffe, // unfamiliar LAC forces location updates
                position,
                range_m: 500.0,
                cipher_preference: vec![CipherAlgo::A50],
            },
            caught: Vec::new(),
        }
    }

    /// IMSIs captured so far.
    pub fn caught(&self) -> &[(SubscriberId, Imsi)] {
        &self.caught
    }

    /// Attracts `victim` onto the fake cell and extracts its IMSI.
    ///
    /// # Errors
    ///
    /// - [`GsmError::ProtocolViolation`] when the victim is out of range
    ///   or still camped on LTE (jam first).
    /// - [`GsmError::UnknownSubscriber`] for an unknown id.
    pub fn lure(&mut self, net: &mut GsmNetwork, victim: SubscriberId) -> Result<Imsi, GsmError> {
        let ms = net
            .terminal(victim)
            .ok_or_else(|| GsmError::UnknownSubscriber(victim.to_string()))?;
        if ms.position().distance(self.cell.position) > self.cell.range_m {
            return Err(GsmError::ProtocolViolation("victim out of fake-cell range".into()));
        }
        let lte_available = ms.rat() == crate::terminal::RatPreference::PreferLte && !ms.lte_jammed();
        if lte_available {
            return Err(GsmError::ProtocolViolation(
                "victim is camped on LTE; downgrade it first".into(),
            ));
        }
        let victim_pos = ms.position();
        let identity = match ms.tmsi() {
            Some(t) => MsIdentity::Tmsi(t),
            None => MsIdentity::Imsi(ms.imsi()),
        };
        let imsi = ms.imsi();
        let fake_pos = self.cell.position;

        // Broadcast a tempting new location area, receive the LAU, demand
        // the permanent identity (the IMSI catcher move), then stall the
        // victim forever.
        net.transmit_on(
            &self.cell,
            Direction::Downlink,
            CipherAlgo::A50,
            None,
            fake_pos,
            &AirMessage::SystemInfo { cell: self.cell.id, lac: self.cell.lac, ciphers: 0b001 },
        );
        net.transmit_on(
            &self.cell,
            Direction::Uplink,
            CipherAlgo::A50,
            None,
            victim_pos,
            &AirMessage::LocationUpdateRequest { id: identity, classmark: CipherSet::all().mask() },
        );
        net.transmit_on(
            &self.cell,
            Direction::Downlink,
            CipherAlgo::A50,
            None,
            fake_pos,
            &AirMessage::IdentityRequest,
        );
        net.transmit_on(
            &self.cell,
            Direction::Uplink,
            CipherAlgo::A50,
            None,
            victim_pos,
            &AirMessage::IdentityResponse { imsi },
        );

        net.detach(victim);
        net.terminal_mut(victim)
            .expect("victim exists")
            .set_camp(Camp::Fake(self.cell.id));
        self.caught.push((victim, imsi));
        obs::add("gsm.mitm.imsi_caught", 1);
        Ok(imsi)
    }
}

/// Report of one complete active MitM run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MitmReport {
    /// Handsets the jammer pushed off LTE.
    pub jammed: usize,
    /// The victim's captured IMSI.
    pub imsi: Imsi,
    /// Cipher the spoofed registration negotiated (always A5/0 on success).
    pub downgraded_to: CipherAlgo,
    /// Messages diverted to the attacker so far.
    pub intercepted: Vec<ReceivedSms>,
}

/// Orchestrates the full active attack.
#[derive(Debug)]
pub struct MitmAttack {
    /// The LTE-denial stage.
    pub jammer: Jammer,
    /// The capture stage.
    pub fbs: FakeBaseStation,
}

impl MitmAttack {
    /// Builds a rig co-located at `position`.
    pub fn new(position: Position, arfcn: Arfcn) -> Self {
        Self { jammer: Jammer::new(position, 500.0), fbs: FakeBaseStation::new(position, arfcn) }
    }

    /// Runs downgrade → capture → impersonation against `victim`.
    ///
    /// # Errors
    ///
    /// Propagates stage failures; see [`FakeBaseStation::lure`] and
    /// [`GsmNetwork::register_spoofed`].
    pub fn execute(
        &mut self,
        net: &mut GsmNetwork,
        victim: SubscriberId,
    ) -> Result<MitmReport, GsmError> {
        let _span = obs::span("gsm.mitm.execute");
        obs::add("gsm.mitm.downgrade_attempts", 1);
        let jammed = self.jammer.activate(net);
        obs::add("gsm.mitm.handsets_jammed", jammed as u64);
        let imsi = self.fbs.lure(net, victim)?;

        // The fake terminal answers the legitimate network's challenge by
        // relaying it to the captive victim. The handset clone *is* the
        // captive victim: it holds the SIM that computes SRES.
        let captive = net
            .terminal(victim)
            .ok_or_else(|| GsmError::UnknownSubscriber(victim.to_string()))?
            .clone();
        let mut relayed: Option<(u64, u32)> = None;
        let ctx = net.register_spoofed(victim, self.fbs.cell.position, CipherSet::none(), |rand| {
            let sres = captive.a3_sres(rand);
            relayed = Some((rand, sres));
            sres
        })?;
        obs::add("gsm.mitm.downgrades_succeeded", 1);

        // Materialise the relay legs on the fake cell so captures show the
        // full Fig. 10 sequence.
        if let Some((rand, sres)) = relayed {
            let fake_pos = self.fbs.cell.position;
            let victim_pos = captive.position();
            net.transmit_on(
                &self.fbs.cell,
                Direction::Downlink,
                CipherAlgo::A50,
                None,
                fake_pos,
                &AirMessage::AuthRequest { rand },
            );
            net.transmit_on(
                &self.fbs.cell,
                Direction::Uplink,
                CipherAlgo::A50,
                None,
                victim_pos,
                &AirMessage::AuthResponse { sres },
            );
        }

        Ok(MitmReport {
            jammed,
            imsi,
            downgraded_to: ctx.algo,
            intercepted: net.spoofed_inbox(victim).to_vec(),
        })
    }

    /// Messages diverted to the attacker so far.
    pub fn collect(&self, net: &GsmNetwork, victim: SubscriberId) -> Vec<ReceivedSms> {
        net.spoofed_inbox(victim).to_vec()
    }

    /// Tears the rig down: stops jamming and releases the victim to idle.
    /// (The victim must re-attach on its own; until then it has no
    /// service, exactly as after a real IMSI-catcher encounter.)
    pub fn release(&self, net: &mut GsmNetwork, victim: SubscriberId) {
        self.jammer.deactivate(net);
        if let Some(ms) = net.terminal_mut(victim) {
            ms.set_camp(Camp::Idle);
        }
        net.detach(victim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::Msisdn;
    use crate::network::{GsmNetwork, NetworkConfig};
    use crate::terminal::RatPreference;

    fn msisdn(s: &str) -> Msisdn {
        Msisdn::new(s).unwrap()
    }

    fn lte_net() -> GsmNetwork {
        GsmNetwork::new(NetworkConfig { lte_available: true, ..Default::default() })
    }

    #[test]
    fn full_mitm_intercepts_otp_stealthily() {
        let mut net = lte_net();
        let victim = net.provision_subscriber("victim", msisdn("13800138000")).unwrap();
        net.terminal_mut(victim).unwrap().set_rat(RatPreference::GsmOnly);
        net.attach(victim).unwrap();

        let mut rig = MitmAttack::new(Position::new(100.0, 0.0), Arfcn(42));
        let report = rig.execute(&mut net, victim).unwrap();
        assert_eq!(report.downgraded_to, CipherAlgo::A50);

        net.send_sms(&msisdn("13800138000"), "G-786348 is your Google verification code.").unwrap();
        let stolen = rig.collect(&net, victim);
        assert_eq!(stolen.len(), 1);
        assert!(stolen[0].text.contains("G-786348"));
        // Stealth: the victim's handset saw nothing.
        assert!(net.terminal(victim).unwrap().inbox().is_empty());
    }

    #[test]
    fn jammer_downgrades_lte_handsets() {
        let mut net = lte_net();
        let victim = net.provision_subscriber("victim", msisdn("13800138000")).unwrap();
        net.terminal_mut(victim).unwrap().set_rat(RatPreference::PreferLte);
        // Out of jam range: unaffected.
        let far_jammer = Jammer::new(Position::new(10_000.0, 0.0), 100.0);
        assert_eq!(far_jammer.activate(&mut net), 0);
        // In range: downgraded, then attachable over GSM.
        let jammer = Jammer::new(Position::new(0.0, 0.0), 500.0);
        assert_eq!(jammer.activate(&mut net), 1);
        assert!(net.attach(victim).is_ok());
        assert_eq!(jammer.deactivate(&mut net), 1);
    }

    #[test]
    fn lure_requires_downgrade_for_lte_victims() {
        let mut net = lte_net();
        let victim = net.provision_subscriber("victim", msisdn("13800138000")).unwrap();
        net.terminal_mut(victim).unwrap().set_rat(RatPreference::PreferLte);
        let mut fbs = FakeBaseStation::new(Position::new(50.0, 0.0), Arfcn(42));
        assert!(fbs.lure(&mut net, victim).is_err(), "LTE victim resists the fake cell");
        Jammer::new(Position::default(), 500.0).activate(&mut net);
        let imsi = fbs.lure(&mut net, victim).unwrap();
        assert_eq!(imsi, net.terminal(victim).unwrap().imsi());
        assert_eq!(fbs.caught().len(), 1);
    }

    #[test]
    fn lure_fails_out_of_range() {
        let mut net = GsmNetwork::new(NetworkConfig::default());
        let victim = net.provision_subscriber("victim", msisdn("13800138000")).unwrap();
        net.terminal_mut(victim).unwrap().set_rat(RatPreference::GsmOnly);
        let mut fbs = FakeBaseStation::new(Position::new(9_000.0, 0.0), Arfcn(42));
        assert!(fbs.lure(&mut net, victim).is_err());
    }

    #[test]
    fn luring_parks_victim_without_service() {
        let mut net = GsmNetwork::new(NetworkConfig::default());
        let victim = net.provision_subscriber("victim", msisdn("13800138000")).unwrap();
        net.terminal_mut(victim).unwrap().set_rat(RatPreference::GsmOnly);
        net.attach(victim).unwrap();
        let mut fbs = FakeBaseStation::new(Position::new(10.0, 0.0), Arfcn(42));
        fbs.lure(&mut net, victim).unwrap();
        assert_eq!(net.terminal(victim).unwrap().camp(), Camp::Fake(CellId(0xf000)));
        // SMS queued, not delivered anywhere.
        net.send_sms(&msisdn("13800138000"), "hello?").unwrap();
        assert!(net.terminal(victim).unwrap().inbox().is_empty());
        assert!(net.spoofed_inbox(victim).is_empty());
        assert_eq!(net.smsc_pending(), 1);
    }

    #[test]
    fn release_restores_normality_after_reattach() {
        let mut net = GsmNetwork::new(NetworkConfig::default());
        let victim = net.provision_subscriber("victim", msisdn("13800138000")).unwrap();
        net.terminal_mut(victim).unwrap().set_rat(RatPreference::GsmOnly);
        net.attach(victim).unwrap();
        let mut rig = MitmAttack::new(Position::new(10.0, 0.0), Arfcn(42));
        rig.execute(&mut net, victim).unwrap();
        rig.release(&mut net, victim);
        net.attach(victim).unwrap();
        net.send_sms(&msisdn("13800138000"), "back to normal").unwrap();
        assert_eq!(net.terminal(victim).unwrap().inbox().len(), 1);
    }

    #[test]
    fn mitm_emits_fig10_sequence_on_air() {
        let mut net = GsmNetwork::new(NetworkConfig::default());
        let victim = net.provision_subscriber("victim", msisdn("13800138000")).unwrap();
        net.terminal_mut(victim).unwrap().set_rat(RatPreference::GsmOnly);
        let mut rig = MitmAttack::new(Position::new(10.0, 0.0), Arfcn(42));
        rig.execute(&mut net, victim).unwrap();
        // The fake cell carried: SystemInfo, LAU, IdentityRequest,
        // IdentityResponse, relayed AuthRequest and AuthResponse.
        let fake_frames: Vec<_> = net
            .ether()
            .frames()
            .iter()
            .filter(|f| f.cell == CellId(FakeBaseStation::FAKE_CELL_BASE))
            .collect();
        assert_eq!(fake_frames.len(), 6);
        assert!(matches!(
            fake_frames[2].message_plaintext().unwrap(),
            AirMessage::IdentityRequest
        ));
        assert!(matches!(
            fake_frames[3].message_plaintext().unwrap(),
            AirMessage::IdentityResponse { .. }
        ));
    }
}
