//! The discrete-event core: a hierarchical timer wheel over
//! [`SimClock`] microseconds.
//!
//! The old simulator advanced a polling clock in fixed millisecond hops
//! and re-scanned every subscriber on each hop — O(population) per
//! step, regardless of how much was actually happening. City-scale
//! campaigns need the opposite: time jumps straight to the next event
//! and dispatch is O(1) per event, no matter how many cells and
//! subscribers are idle. The wheel here follows the epoch-stamped
//! fixed-slot design proven in `serve::reactor`, extended to two
//! hierarchical levels over simulated (not wall-clock) time:
//!
//! - **Fine level** — 256 slots of 1024 µs each (one slot ≈ one fifth
//!   of a GSM paging multiframe). Events within ~262 ms land directly
//!   in their slot: insert is a shift, a mask and a push.
//! - **Coarse level** — 256 slots of 262 ms each (~67 s horizon).
//!   Events beyond the fine lap wait here; when the cursor enters a
//!   coarse block, the block cascades into the fine slots it spans.
//! - **Overflow** — events beyond the coarse horizon sit in an
//!   unordered spill vector, reconsidered once per coarse lap. A
//!   campaign schedules each recurring event's *next* occurrence only,
//!   so the spill stays near-empty in practice.
//!
//! Slot occupancy is tracked in bitmasks (four `u64` words per level),
//! so an idle stretch is skipped with a handful of trailing-zero
//! scans instead of slot-by-slot polling — the wheel is O(1) per event
//! even when consecutive events are far apart.
//!
//! Ordering contract: events pop in slot order; **within one 1024 µs
//! tick, insertion order**. Two events scheduled in the same tick are
//! therefore processed FIFO, which is what makes campaign runs
//! byte-identical across runs and shard counts. Events scheduled at or
//! before the cursor are delivered on the next pop (the wheel never
//! drops or reorders them behind later ticks).

use std::collections::VecDeque;

/// Microseconds covered by one fine slot (2^10, so the slot index is a
/// shift and a mask).
pub const FINE_TICK_US: u64 = 1 << FINE_SHIFT;

/// log2 of [`FINE_TICK_US`].
pub const FINE_SHIFT: u32 = 10;

/// Slots per level (fine and coarse alike): 2^8.
pub const SLOTS: usize = 1 << SLOT_BITS;

const SLOT_BITS: u32 = 8;
const SLOT_MASK: u64 = (SLOTS - 1) as u64;
/// Fine ticks covered by one full coarse lap (2^16).
const HORIZON_TICKS: u64 = (SLOTS * SLOTS) as u64;
const OCC_WORDS: usize = SLOTS / 64;

/// Outcome of draining a wheel under an iteration budget — what
/// [`crate::network::GsmNetwork::run_until_idle`] returns instead of
/// silently spinning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DrainReport {
    /// Events dispatched during this drain.
    pub events_processed: u64,
    /// Events still queued when the drain stopped.
    pub residual: usize,
    /// `true` when the iteration budget ran out before the queue did —
    /// the caller should treat the simulation as still busy (e.g. a
    /// self-rescheduling event chain) rather than idle.
    pub exhausted: bool,
    /// Simulated time of the last dispatched event, in microseconds.
    pub end_us: u64,
}

/// A two-level hierarchical timer wheel holding events of type `E`.
///
/// See the [module docs](self) for the slotting scheme.
#[derive(Debug)]
pub struct EventWheel<E> {
    fine: Vec<VecDeque<(u64, E)>>,
    coarse: Vec<Vec<(u64, E)>>,
    overflow: Vec<(u64, E)>,
    fine_occ: [u64; OCC_WORDS],
    coarse_occ: [u64; OCC_WORDS],
    /// Current fine tick: all earlier ticks are fully consumed.
    cursor: u64,
    len: usize,
    now_us: u64,
}

impl<E> Default for EventWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventWheel<E> {
    /// An empty wheel with its cursor at time zero.
    pub fn new() -> Self {
        Self {
            fine: (0..SLOTS).map(|_| VecDeque::new()).collect(),
            coarse: (0..SLOTS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            fine_occ: [0; OCC_WORDS],
            coarse_occ: [0; OCC_WORDS],
            cursor: 0,
            len: 0,
            now_us: 0,
        }
    }

    /// Queued events (all levels).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Simulated time of the most recently popped event (monotonic).
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Schedules `event` at absolute simulated time `at_us`. Times at
    /// or before the cursor are delivered on the next pop.
    pub fn schedule(&mut self, at_us: u64, event: E) {
        let tick = (at_us >> FINE_SHIFT).max(self.cursor);
        let delta = tick - self.cursor;
        if delta < SLOTS as u64 {
            let slot = (tick & SLOT_MASK) as usize;
            self.fine[slot].push_back((at_us, event));
            set_bit(&mut self.fine_occ, slot);
        } else if delta < HORIZON_TICKS {
            let slot = ((tick >> SLOT_BITS) & SLOT_MASK) as usize;
            self.coarse[slot].push((at_us, event));
            set_bit(&mut self.coarse_occ, slot);
        } else {
            self.overflow.push((at_us, event));
        }
        self.len += 1;
    }

    /// Pops the next event in slot order (FIFO within a tick), or
    /// `None` when the wheel is empty.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let slot = (self.cursor & SLOT_MASK) as usize;
            if let Some((at, event)) = self.fine[slot].pop_front() {
                self.len -= 1;
                self.now_us = self.now_us.max(at);
                return Some((at, event));
            }
            clear_bit(&mut self.fine_occ, slot);
            // Jump to the next occupied fine slot in this lap, if any.
            let lap_base = self.cursor & !SLOT_MASK;
            if let Some(next) = next_occupied(&self.fine_occ, slot + 1) {
                self.cursor = lap_base | next as u64;
                continue;
            }
            // Lap exhausted: advance to the next occupied lap.
            self.advance_lap(lap_base + SLOTS as u64);
        }
    }

    /// Moves the cursor to `from` (a lap boundary) or beyond, landing
    /// it on the next occupied fine slot. On entering a lap its coarse
    /// block is cascaded FIRST, so block entries and wrapped
    /// direct-scheduled fine entries interleave on the fine level —
    /// checking fine occupancy before cascading would skip the block
    /// and deliver its events a full coarse lap late. Only called with
    /// `len > 0`, so one of the three levels is guaranteed to hold an
    /// event.
    fn advance_lap(&mut self, from: u64) {
        let mut base = from;
        loop {
            self.cursor = base;
            self.rehome_overflow();
            // This lap's coarse block joins the lap's fine slots, where
            // entries scheduled <256 ticks ahead from late in the
            // previous lap have already wrapped in.
            let block = ((base >> SLOT_BITS) & SLOT_MASK) as usize;
            if test_bit(&self.coarse_occ, block) {
                self.cascade(block);
            }
            if let Some(next) = next_occupied(&self.fine_occ, 0) {
                self.cursor = base | next as u64;
                return;
            }
            // Lap empty: jump to the nearest occupied coarse block,
            // scanning the occupancy cyclically from the next one.
            let mut found = None;
            if let Some(next) = next_occupied(&self.coarse_occ, block + 1) {
                found = Some(next as u64 - block as u64);
            } else if let Some(next) = next_occupied(&self.coarse_occ, 0) {
                found = Some(next as u64 + SLOTS as u64 - block as u64);
            }
            if let Some(dist) = found {
                let target = base + (dist << SLOT_BITS);
                let slot = ((target >> SLOT_BITS) & SLOT_MASK) as usize;
                self.cursor = target;
                self.cascade(slot);
                let min_slot = next_occupied(&self.fine_occ, 0)
                    .expect("cascaded coarse block produced no fine entries");
                self.cursor = target | min_slot as u64;
                return;
            }
            // Nothing within the horizon: everything left sits in the
            // spill. Jump the lap boundary to the earliest spill entry
            // and loop — re-homing will land it on the fine level.
            debug_assert!(!self.overflow.is_empty(), "len > 0 with empty levels");
            let min_tick = self
                .overflow
                .iter()
                .map(|(at, _)| at >> FINE_SHIFT)
                .min()
                .expect("overflow non-empty");
            base = (min_tick & !SLOT_MASK).max(base);
        }
    }

    /// Moves every entry of coarse slot `slot` onto the fine level.
    /// The cursor must sit at the base of the block the slot belongs
    /// to, so each entry's fine slot is just its low tick bits.
    fn cascade(&mut self, slot: usize) {
        let entries = std::mem::take(&mut self.coarse[slot]);
        clear_bit(&mut self.coarse_occ, slot);
        debug_assert!(!entries.is_empty(), "occupied coarse slot was empty");
        for (at, event) in entries {
            let tick = (at >> FINE_SHIFT).max(self.cursor);
            debug_assert!(tick - self.cursor < SLOTS as u64, "coarse entry outside its block");
            let fine_slot = (tick & SLOT_MASK) as usize;
            self.fine[fine_slot].push_back((at, event));
            set_bit(&mut self.fine_occ, fine_slot);
        }
    }

    /// Pulls spill entries now within the wheel horizon back onto the
    /// fine/coarse levels. Called at every lap boundary, so a spill
    /// entry is re-homed at least a full coarse lap before it is due
    /// even while earlier events keep both wheel levels busy.
    fn rehome_overflow(&mut self) {
        if self.overflow.is_empty() {
            return;
        }
        let limit = self.cursor + HORIZON_TICKS;
        let mut i = 0;
        while i < self.overflow.len() {
            if (self.overflow[i].0 >> FINE_SHIFT) < limit {
                let (at, event) = self.overflow.swap_remove(i);
                self.len -= 1;
                self.schedule(at, event);
            } else {
                i += 1;
            }
        }
    }

    /// Drains up to `budget` events through `handler`, which receives
    /// each event plus a scheduler handle for follow-ups. Returns a
    /// [`DrainReport`]; `exhausted` is set when the budget ran out
    /// first, so a self-rescheduling event chain cannot hang the caller.
    pub fn drain(&mut self, budget: u64, mut handler: impl FnMut(u64, E, &mut Followups<E>)) -> DrainReport {
        let mut report = DrainReport::default();
        let mut followups = Followups { queue: Vec::new() };
        while report.events_processed < budget {
            let Some((at, event)) = self.pop() else { break };
            report.events_processed += 1;
            report.end_us = self.now_us;
            handler(at, event, &mut followups);
            for (t, e) in followups.queue.drain(..) {
                self.schedule(t, e);
            }
        }
        report.residual = self.len;
        report.exhausted = report.events_processed == budget && self.len > 0;
        report
    }
}

/// Handle passed to [`EventWheel::drain`] handlers for scheduling
/// follow-up events (the wheel itself is mutably borrowed by the
/// drain loop).
pub struct Followups<E> {
    queue: Vec<(u64, E)>,
}

impl<E> Followups<E> {
    /// Schedules `event` at absolute time `at_us` once the current
    /// dispatch returns.
    pub fn schedule(&mut self, at_us: u64, event: E) {
        self.queue.push((at_us, event));
    }
}

#[inline]
fn set_bit(occ: &mut [u64; OCC_WORDS], slot: usize) {
    occ[slot >> 6] |= 1 << (slot & 63);
}

#[inline]
fn clear_bit(occ: &mut [u64; OCC_WORDS], slot: usize) {
    occ[slot >> 6] &= !(1 << (slot & 63));
}

#[inline]
fn test_bit(occ: &[u64; OCC_WORDS], slot: usize) -> bool {
    occ[slot >> 6] & (1 << (slot & 63)) != 0
}

/// First occupied slot at or after `from`, or `None` (non-cyclic).
#[inline]
fn next_occupied(occ: &[u64; OCC_WORDS], from: usize) -> Option<usize> {
    if from >= SLOTS {
        return None;
    }
    let mut word = from >> 6;
    let mut bits = occ[word] & (!0u64 << (from & 63));
    loop {
        if bits != 0 {
            return Some((word << 6) + bits.trailing_zeros() as usize);
        }
        word += 1;
        if word >= OCC_WORDS {
            return None;
        }
        bits = occ[word];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_across_levels() {
        let mut w = EventWheel::new();
        // Overflow (beyond 67 s), coarse (1 s), fine (2 ms), immediate.
        w.schedule(100_000_000, 'o');
        w.schedule(1_000_000, 'c');
        w.schedule(2_000, 'f');
        w.schedule(0, 'i');
        assert_eq!(w.len(), 4);
        let order: Vec<char> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['i', 'f', 'c', 'o']);
        assert!(w.is_empty());
        assert_eq!(w.now_us(), 100_000_000);
    }

    #[test]
    fn same_tick_events_pop_fifo() {
        // All times fall inside the single 1024 µs tick starting at
        // 4096 µs, so slot order cannot help — insertion order must.
        let mut w = EventWheel::new();
        for i in 0..10u32 {
            w.schedule(4_096 + u64::from(i) * 10, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn past_events_fire_on_next_pop() {
        let mut w = EventWheel::new();
        w.schedule(10_000_000, 'a');
        assert_eq!(w.pop().unwrap().1, 'a');
        // The cursor now sits at ~10 s; scheduling in the past clamps.
        w.schedule(5, 'p');
        let (at, e) = w.pop().unwrap();
        assert_eq!(e, 'p');
        assert_eq!(at, 5, "original timestamp preserved");
        assert_eq!(w.now_us(), 10_000_000, "now is monotonic");
    }

    #[test]
    fn handler_rescheduling_advances_through_laps() {
        // A self-perpetuating event hopping 100 ms at a time must cross
        // fine-lap and coarse-lap boundaries without loss.
        let mut w = EventWheel::new();
        w.schedule(0, ());
        let mut fired = 0u64;
        while let Some((at, ())) = w.pop() {
            fired += 1;
            if fired < 2_000 {
                w.schedule(at + 100_000, ());
            }
        }
        assert_eq!(fired, 2_000, "200 s of 100 ms hops crosses the 67 s horizon twice");
    }

    #[test]
    fn drain_budget_stops_self_rescheduling_chains() {
        let mut w = EventWheel::new();
        w.schedule(0, ());
        let report = w.drain(50, |at, (), followups| {
            followups.schedule(at + 1_000, ());
        });
        assert_eq!(report.events_processed, 50);
        assert!(report.exhausted, "budget ran out with work still queued");
        assert_eq!(report.residual, 1);
        // A later drain continues from where the first stopped.
        let report = w.drain(10, |_, (), _| {});
        assert_eq!(report.events_processed, 1);
        assert!(!report.exhausted);
        assert_eq!(report.residual, 0);
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_order() {
        let mut w = EventWheel::new();
        w.schedule(1_000_000, 1u32);
        assert_eq!(w.pop().unwrap().1, 1);
        w.schedule(2_000_000, 2);
        w.schedule(1_500_000, 3);
        assert_eq!(w.pop().unwrap().1, 3);
        w.schedule(1_600_000, 4); // in the past relative to nothing — 1.6 s is after 1.5 s cursor
        assert_eq!(w.pop().unwrap().1, 4);
        assert_eq!(w.pop().unwrap().1, 2);
        assert!(w.pop().is_none());
    }

    #[test]
    fn lap_coarse_block_is_not_skipped_by_wrapped_fine_entries() {
        // Regression: a lap holding both a wrapped direct-fine entry
        // and a coarse block must cascade the block on lap entry, or
        // the block's events pop a full coarse lap late — after later
        // events from other blocks.
        let mut w = EventWheel::new();
        let tick = |t: u64| t * FINE_TICK_US;
        w.schedule(tick(250), 'p'); // late in lap 0, fine
        w.schedule(tick(356), 'b'); // lap 1: coarse at schedule time
        w.schedule(tick(600), 'c'); // lap 2: coarse
        assert_eq!(w.pop().unwrap().1, 'p'); // cursor now at slot 250
        w.schedule(tick(260), 'a'); // wraps into lap 1's fine slot 4
        let order: Vec<char> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c'], "tick order across lap entry");
    }

    #[test]
    fn dense_and_sparse_mixes_survive_a_shuffle() {
        // Deterministic pseudo-shuffle over a wide time range, then pop
        // everything and verify global slot-order monotonicity.
        let mut w = EventWheel::new();
        let mut t = 0x9e3779b97f4a7c15u64;
        let mut times = Vec::new();
        for _ in 0..10_000 {
            t ^= t << 13;
            t ^= t >> 7;
            t ^= t << 17;
            let at = t % 200_000_000; // up to 200 s
            times.push(at);
            w.schedule(at, at);
        }
        let mut last_tick = 0u64;
        let mut popped = 0;
        while let Some((at, v)) = w.pop() {
            assert_eq!(at, v);
            let tick = at >> FINE_SHIFT;
            assert!(tick >= last_tick, "tick order violated: {tick} after {last_tick}");
            last_tick = tick;
            popped += 1;
        }
        assert_eq!(popped, 10_000);
    }
}
