//! The simulated Um air interface: frames, layer-3 messages and cells.
//!
//! Every transmission — from real base stations, terminals, the fake MitM
//! base station and fake terminals alike — is serialised to bytes,
//! optionally ciphered, and appended to a shared [`Ether`] capture log.
//! Receivers (victim terminals, the passive sniffer) read frames from the
//! ether subject to a distance gate, exactly mirroring the paper's
//! "within hundreds of metres" threat model.

use crate::arfcn::Arfcn;
use crate::cipher::{CipherAlgo, CipherContext};
use crate::error::GsmError;
use crate::identity::{Imsi, Tmsi};
use crate::time::SimClock;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a (real or fake) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellId(pub u16);

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell#{}", self.0)
    }
}

/// A planar position in metres; radio reception is gated on distance.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Position {
    /// East coordinate in metres.
    pub x: f64,
    /// North coordinate in metres.
    pub y: f64,
}

impl Position {
    /// Creates a position.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other` in metres.
    pub fn distance(&self, other: Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Identity presented by a mobile on the air.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MsIdentity {
    /// The short-lived alias (the privacy-preserving case).
    Tmsi(Tmsi),
    /// The permanent identity (what IMSI catchers force out).
    Imsi(Imsi),
}

impl fmt::Display for MsIdentity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsIdentity::Tmsi(t) => write!(f, "TMSI {t}"),
            MsIdentity::Imsi(i) => write!(f, "IMSI {i}"),
        }
    }
}

/// Layer-3 messages carried over the simulated air interface.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AirMessage {
    /// Broadcast system information on the BCCH.
    SystemInfo {
        /// Transmitting cell.
        cell: CellId,
        /// Location area code.
        lac: u16,
        /// Cipher capability mask advertised by the network.
        ciphers: u8,
    },
    /// Downlink page for a mobile.
    PagingRequest {
        /// Paged identity.
        id: MsIdentity,
    },
    /// Uplink answer to a page.
    PagingResponse {
        /// Responding identity.
        id: MsIdentity,
    },
    /// Uplink location-update request (LAU).
    LocationUpdateRequest {
        /// Presented identity.
        id: MsIdentity,
        /// Claimed cipher support mask (MS classmark).
        classmark: u8,
    },
    /// Downlink LAU accept, optionally reallocating a TMSI.
    LocationUpdateAccept {
        /// Newly assigned TMSI, if any.
        new_tmsi: Option<Tmsi>,
    },
    /// Downlink identity request (the IMSI-catcher message).
    IdentityRequest,
    /// Uplink identity response revealing the IMSI.
    IdentityResponse {
        /// The revealed permanent identity.
        imsi: Imsi,
    },
    /// Downlink authentication challenge.
    AuthRequest {
        /// Network random challenge.
        rand: u64,
    },
    /// Uplink authentication response.
    AuthResponse {
        /// Signed response computed from Ki and RAND.
        sres: u32,
    },
    /// Downlink cipher-mode command selecting an algorithm.
    CipherModeCommand {
        /// Selected algorithm.
        algo: CipherAlgo,
    },
    /// Uplink confirmation that ciphering started.
    CipherModeComplete,
    /// Downlink SMS delivery (CP-DATA wrapping an SMS-DELIVER TPDU).
    SmsDeliverData {
        /// Encoded SMS-DELIVER TPDU.
        tpdu: Vec<u8>,
    },
    /// Uplink SMS submission (CP-DATA wrapping an SMS-SUBMIT TPDU).
    SmsSubmitData {
        /// Encoded SMS-SUBMIT TPDU.
        tpdu: Vec<u8>,
    },
    /// Acknowledgement of an SMS transfer.
    SmsAck,
    /// Channel release at the end of a transaction.
    ChannelRelease,
    /// Ciphered SI5 system-information padding (fixed 23 × 0x2b bytes).
    /// Real GSM sends these predictable messages inside the ciphered
    /// channel; they are the known plaintext that makes the published
    /// A5/1 table attacks work, and they play the same role here.
    Si5Padding,
}

/// The fixed SI5 padding plaintext (23 octets of 0x2b, as in GSM 04.08).
pub const SI5_PADDING: [u8; 23] = [0x2b; 23];

impl AirMessage {
    /// Serialises to bytes (tag + fields). The encoding is stable and
    /// self-describing enough for the sniffer to parse captures.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8);
        match self {
            AirMessage::SystemInfo { cell, lac, ciphers } => {
                out.push(0x0e);
                out.extend_from_slice(&cell.0.to_be_bytes());
                out.extend_from_slice(&lac.to_be_bytes());
                out.push(*ciphers);
            }
            AirMessage::PagingRequest { id } => {
                out.push(0x01);
                encode_identity(id, &mut out);
            }
            AirMessage::PagingResponse { id } => {
                out.push(0x02);
                encode_identity(id, &mut out);
            }
            AirMessage::LocationUpdateRequest { id, classmark } => {
                out.push(0x03);
                encode_identity(id, &mut out);
                out.push(*classmark);
            }
            AirMessage::LocationUpdateAccept { new_tmsi } => {
                out.push(0x04);
                match new_tmsi {
                    Some(t) => {
                        out.push(1);
                        out.extend_from_slice(&t.0.to_be_bytes());
                    }
                    None => out.push(0),
                }
            }
            AirMessage::IdentityRequest => out.push(0x05),
            AirMessage::IdentityResponse { imsi } => {
                out.push(0x06);
                out.extend_from_slice(&imsi.value().to_be_bytes());
            }
            AirMessage::AuthRequest { rand } => {
                out.push(0x07);
                out.extend_from_slice(&rand.to_be_bytes());
            }
            AirMessage::AuthResponse { sres } => {
                out.push(0x08);
                out.extend_from_slice(&sres.to_be_bytes());
            }
            AirMessage::CipherModeCommand { algo } => {
                out.push(0x09);
                out.push(algo.mask_bit());
            }
            AirMessage::CipherModeComplete => out.push(0x0a),
            AirMessage::SmsDeliverData { tpdu } => {
                out.push(0x0b);
                out.extend_from_slice(&(tpdu.len() as u16).to_be_bytes());
                out.extend_from_slice(tpdu);
            }
            AirMessage::SmsSubmitData { tpdu } => {
                out.push(0x0c);
                out.extend_from_slice(&(tpdu.len() as u16).to_be_bytes());
                out.extend_from_slice(tpdu);
            }
            AirMessage::SmsAck => out.push(0x0f),
            AirMessage::ChannelRelease => out.push(0x0d),
            AirMessage::Si5Padding => {
                out.push(0x10);
                out.extend_from_slice(&SI5_PADDING);
            }
        }
        out
    }

    /// Parses bytes produced by [`AirMessage::encode`]. The encoding is
    /// self-delimiting and `decode` demands exact consumption — trailing
    /// bytes are an error. (Strictness matters operationally: a sniffer
    /// trying recovered keys against ciphered frames relies on wrong-key
    /// garbage *failing* to parse.)
    ///
    /// # Errors
    ///
    /// Returns [`GsmError::PduDecode`] on truncation, trailing bytes or
    /// unknown tags — which is also what a sniffer sees when it tries to
    /// parse traffic that is still ciphered.
    pub fn decode(data: &[u8]) -> Result<Self, GsmError> {
        let (msg, used) = Self::decode_prefix(data)?;
        if used != data.len() {
            return Err(GsmError::PduDecode {
                offset: used,
                reason: format!("{} trailing bytes after message", data.len() - used),
            });
        }
        Ok(msg)
    }

    /// Parses a message from the front of `data`, returning the bytes
    /// consumed.
    fn decode_prefix(data: &[u8]) -> Result<(Self, usize), GsmError> {
        let tag = *data.first().ok_or(GsmError::PduDecode {
            offset: 0,
            reason: "empty air message".into(),
        })?;
        let body = &data[1..];
        let err = |reason: &str| GsmError::PduDecode { offset: 1, reason: reason.into() };
        match tag {
            0x0e => {
                if body.len() < 5 {
                    return Err(err("system info truncated"));
                }
                Ok((
                    AirMessage::SystemInfo {
                        cell: CellId(u16::from_be_bytes([body[0], body[1]])),
                        lac: u16::from_be_bytes([body[2], body[3]]),
                        ciphers: body[4],
                    },
                    6,
                ))
            }
            0x01 => {
                let (id, used) = decode_identity(body)?;
                Ok((AirMessage::PagingRequest { id }, 1 + used))
            }
            0x02 => {
                let (id, used) = decode_identity(body)?;
                Ok((AirMessage::PagingResponse { id }, 1 + used))
            }
            0x03 => {
                let (id, used) = decode_identity(body)?;
                let classmark = *body.get(used).ok_or_else(|| err("missing classmark"))?;
                Ok((AirMessage::LocationUpdateRequest { id, classmark }, 1 + used + 1))
            }
            0x04 => {
                let flag = *body.first().ok_or_else(|| err("missing TMSI flag"))?;
                let (new_tmsi, used) = if flag == 1 {
                    let b = body.get(1..5).ok_or_else(|| err("TMSI truncated"))?;
                    (Some(Tmsi(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))), 6)
                } else {
                    (None, 2)
                };
                Ok((AirMessage::LocationUpdateAccept { new_tmsi }, used))
            }
            0x05 => Ok((AirMessage::IdentityRequest, 1)),
            0x06 => {
                let b = body.get(..8).ok_or_else(|| err("IMSI truncated"))?;
                let v = u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);
                Ok((AirMessage::IdentityResponse { imsi: Imsi::parse(&format!("{v:015}"))? }, 9))
            }
            0x07 => {
                let b = body.get(..8).ok_or_else(|| err("RAND truncated"))?;
                Ok((
                    AirMessage::AuthRequest {
                        rand: u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]),
                    },
                    9,
                ))
            }
            0x08 => {
                let b = body.get(..4).ok_or_else(|| err("SRES truncated"))?;
                Ok((
                    AirMessage::AuthResponse { sres: u32::from_be_bytes([b[0], b[1], b[2], b[3]]) },
                    5,
                ))
            }
            0x09 => {
                let bit = *body.first().ok_or_else(|| err("missing cipher algo"))?;
                let algo = CipherAlgo::from_mask_bit(bit)
                    .ok_or_else(|| err("unknown cipher algorithm"))?;
                Ok((AirMessage::CipherModeCommand { algo }, 2))
            }
            0x0a => Ok((AirMessage::CipherModeComplete, 1)),
            0x0b | 0x0c => {
                let lb = body.get(..2).ok_or_else(|| err("missing TPDU length"))?;
                let len = usize::from(u16::from_be_bytes([lb[0], lb[1]]));
                let tpdu =
                    body.get(2..2 + len).ok_or_else(|| err("TPDU truncated"))?.to_vec();
                let msg = if tag == 0x0b {
                    AirMessage::SmsDeliverData { tpdu }
                } else {
                    AirMessage::SmsSubmitData { tpdu }
                };
                Ok((msg, 3 + len))
            }
            0x0f => Ok((AirMessage::SmsAck, 1)),
            0x0d => Ok((AirMessage::ChannelRelease, 1)),
            0x10 => {
                let b = body.get(..23).ok_or_else(|| err("SI5 truncated"))?;
                if b != SI5_PADDING {
                    return Err(err("SI5 padding corrupted"));
                }
                Ok((AirMessage::Si5Padding, 24))
            }
            other => Err(GsmError::PduDecode {
                offset: 0,
                reason: format!("unknown air message tag 0x{other:02x}"),
            }),
        }
    }
}

fn encode_identity(id: &MsIdentity, out: &mut Vec<u8>) {
    match id {
        MsIdentity::Tmsi(t) => {
            out.push(0);
            out.extend_from_slice(&t.0.to_be_bytes());
        }
        MsIdentity::Imsi(i) => {
            out.push(1);
            out.extend_from_slice(&i.value().to_be_bytes());
        }
    }
}

fn decode_identity(data: &[u8]) -> Result<(MsIdentity, usize), GsmError> {
    let tag = *data.first().ok_or(GsmError::PduDecode {
        offset: 0,
        reason: "missing identity tag".into(),
    })?;
    match tag {
        0 => {
            let b = data.get(1..5).ok_or(GsmError::PduDecode {
                offset: 1,
                reason: "TMSI truncated".into(),
            })?;
            Ok((MsIdentity::Tmsi(Tmsi(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))), 5))
        }
        1 => {
            let b = data.get(1..9).ok_or(GsmError::PduDecode {
                offset: 1,
                reason: "IMSI truncated".into(),
            })?;
            let v = u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);
            Ok((MsIdentity::Imsi(Imsi::parse(&format!("{v:015}"))?), 9))
        }
        other => Err(GsmError::PduDecode {
            offset: 0,
            reason: format!("unknown identity tag {other}"),
        }),
    }
}

/// Transmission direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Base station to mobile.
    Downlink,
    /// Mobile to base station.
    Uplink,
}

/// One captured burst on the air interface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AirFrame {
    /// Monotonic capture sequence number.
    pub seq: u64,
    /// Transmission time.
    pub time: SimClock,
    /// TDMA frame number used for ciphering.
    pub frame_number: u32,
    /// Carrier the burst went out on.
    pub arfcn: Arfcn,
    /// Cell the burst belongs to.
    pub cell: CellId,
    /// Uplink or downlink.
    pub direction: Direction,
    /// Algorithm the payload is ciphered under.
    pub cipher: CipherAlgo,
    /// Transmitter position (used for the reception distance gate).
    pub origin: Position,
    /// Serialized [`AirMessage`], ciphered per `cipher`.
    pub payload: Vec<u8>,
}

impl AirFrame {
    /// Attempts to parse the payload as a plaintext air message. Fails for
    /// frames ciphered under an algorithm the caller has no key for.
    pub fn message_plaintext(&self) -> Result<AirMessage, GsmError> {
        AirMessage::decode(&self.payload)
    }

    /// Decrypts (a copy of) the payload under `ctx` and parses it.
    ///
    /// # Errors
    ///
    /// Returns [`GsmError::PduDecode`] when the context is wrong for this
    /// frame (garbage after decryption fails to parse).
    pub fn message_with(&self, ctx: &CipherContext) -> Result<AirMessage, GsmError> {
        let mut data = self.payload.clone();
        ctx.apply(self.frame_number, &mut data);
        AirMessage::decode(&data)
    }
}

/// Configuration of one simulated cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellConfig {
    /// Cell identifier (must be unique within a network).
    pub id: CellId,
    /// Broadcast carrier.
    pub arfcn: Arfcn,
    /// Location area code.
    pub lac: u16,
    /// Cell site position.
    pub position: Position,
    /// Usable radius in metres.
    pub range_m: f64,
    /// Network cipher preference for this cell, strongest first.
    pub cipher_preference: Vec<CipherAlgo>,
}

impl Default for CellConfig {
    fn default() -> Self {
        Self {
            id: CellId(1),
            arfcn: Arfcn(17),
            lac: 0x1001,
            position: Position::default(),
            range_m: 800.0,
            cipher_preference: vec![CipherAlgo::A51, CipherAlgo::A50],
        }
    }
}

/// The shared capture log every transmitter appends to.
///
/// The ether is an append-only Vec; receivers keep cursors into it. This
/// gives byte-exact replayability and lets the sniffer revisit history
/// (e.g. decrypt recorded frames after cracking a key — exactly the
/// offline attack the rainbow tables enable).
#[derive(Debug, Default)]
pub struct Ether {
    frames: Vec<AirFrame>,
    next_seq: u64,
    /// Per-mille probability that any given frame is lost to fading.
    pub loss_per_mille: u16,
    loss_counter: u64,
}

impl Ether {
    /// Creates an empty, lossless ether.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an ether that deterministically drops roughly
    /// `loss_per_mille`/1000 of frames (systematic sampling).
    pub fn with_loss(loss_per_mille: u16) -> Self {
        Self { loss_per_mille: loss_per_mille.min(1000), ..Self::default() }
    }

    /// Transmits a frame: assigns a sequence number and appends to the
    /// log. Returns `true` when the frame made it onto the air (i.e. was
    /// not dropped by the loss model).
    pub fn transmit(&mut self, mut frame: AirFrame) -> bool {
        self.loss_counter += 1;
        if self.loss_per_mille > 0
            && (self.loss_counter.wrapping_mul(0x9e37_79b9)) % 1000 < u64::from(self.loss_per_mille)
        {
            return false;
        }
        frame.seq = self.next_seq;
        self.next_seq += 1;
        self.frames.push(frame);
        true
    }

    /// All frames captured so far.
    pub fn frames(&self) -> &[AirFrame] {
        &self.frames
    }

    /// Frames with sequence number ≥ `cursor`, for incremental readers.
    pub fn frames_since(&self, cursor: u64) -> &[AirFrame] {
        let start = self.frames.partition_point(|f| f.seq < cursor);
        &self.frames[start..]
    }

    /// Number of frames transmitted successfully.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether nothing has been transmitted yet.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::a5::Kc;

    fn sample_messages() -> Vec<AirMessage> {
        vec![
            AirMessage::SystemInfo { cell: CellId(3), lac: 0x2002, ciphers: 0b011 },
            AirMessage::PagingRequest { id: MsIdentity::Tmsi(Tmsi(0xdeadbeef)) },
            AirMessage::PagingResponse { id: MsIdentity::Imsi(Imsi::from_parts(460, 0, 99)) },
            AirMessage::LocationUpdateRequest {
                id: MsIdentity::Imsi(Imsi::from_parts(460, 1, 5)),
                classmark: 0b011,
            },
            AirMessage::LocationUpdateAccept { new_tmsi: Some(Tmsi(7)) },
            AirMessage::LocationUpdateAccept { new_tmsi: None },
            AirMessage::IdentityRequest,
            AirMessage::IdentityResponse { imsi: Imsi::from_parts(460, 0, 1) },
            AirMessage::AuthRequest { rand: 0x0123_4567_89ab_cdef },
            AirMessage::AuthResponse { sres: 0xcafe_f00d },
            AirMessage::CipherModeCommand { algo: CipherAlgo::A51 },
            AirMessage::CipherModeComplete,
            AirMessage::SmsDeliverData { tpdu: vec![1, 2, 3, 4] },
            AirMessage::SmsSubmitData { tpdu: vec![] },
            AirMessage::SmsAck,
            AirMessage::ChannelRelease,
            AirMessage::Si5Padding,
        ]
    }

    #[test]
    fn air_message_roundtrip_all_variants() {
        for msg in sample_messages() {
            let bytes = msg.encode();
            let back = AirMessage::decode(&bytes).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn air_message_decode_rejects_truncation() {
        for msg in sample_messages() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                // Single-byte messages at cut 0 give "empty" errors; all
                // other truncations must also fail rather than panic.
                let _ = AirMessage::decode(&bytes[..cut]);
            }
        }
        assert!(AirMessage::decode(&[]).is_err());
        assert!(AirMessage::decode(&[0x99]).is_err());
    }

    #[test]
    fn position_distance() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ether_assigns_sequence_numbers() {
        let mut ether = Ether::new();
        for _ in 0..3 {
            let sent = ether.transmit(test_frame(0));
            assert!(sent);
        }
        let seqs: Vec<u64> = ether.frames().iter().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn ether_frames_since_cursor() {
        let mut ether = Ether::new();
        for _ in 0..5 {
            ether.transmit(test_frame(0));
        }
        assert_eq!(ether.frames_since(3).len(), 2);
        assert_eq!(ether.frames_since(0).len(), 5);
        assert_eq!(ether.frames_since(99).len(), 0);
    }

    #[test]
    fn ether_loss_model_drops_roughly_proportionally() {
        let mut ether = Ether::with_loss(250);
        let mut sent = 0;
        for _ in 0..1000 {
            if ether.transmit(test_frame(0)) {
                sent += 1;
            }
        }
        assert!((600..=900).contains(&sent), "sent {sent} of 1000 at 25% loss");
    }

    #[test]
    fn ciphered_frame_parses_only_with_key() {
        let kc = Kc(0x1122_3344_5566_7788);
        let ctx = CipherContext { algo: CipherAlgo::A51, kc };
        let msg = AirMessage::SmsDeliverData { tpdu: vec![9, 9, 9] };
        let mut payload = msg.encode();
        ctx.apply(77, &mut payload);
        let frame = AirFrame { payload, frame_number: 77, cipher: CipherAlgo::A51, ..test_frame(0) };
        assert!(frame.message_plaintext().is_err() || frame.message_plaintext().unwrap() != msg);
        assert_eq!(frame.message_with(&ctx).unwrap(), msg);
    }

    fn test_frame(frame_number: u32) -> AirFrame {
        AirFrame {
            seq: 0,
            time: SimClock::new(),
            frame_number,
            arfcn: Arfcn(17),
            cell: CellId(1),
            direction: Direction::Downlink,
            cipher: CipherAlgo::A50,
            origin: Position::default(),
            payload: AirMessage::ChannelRelease.encode(),
        }
    }
}
