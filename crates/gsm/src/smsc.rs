//! The store-and-forward short message service centre.

use crate::error::GsmError;
use crate::identity::Msisdn;
use crate::pdu::SmsDeliver;
use crate::time::SimClock;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Delivery state of a queued message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeliveryState {
    /// Waiting for the recipient to become reachable.
    Queued,
    /// Handed to the serving cell.
    Delivered,
    /// Dropped after exceeding the retry budget.
    Expired,
}

/// A message waiting in (or accounted for by) the SMS centre.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueuedSms {
    /// Destination subscriber number.
    pub destination: Msisdn,
    /// The deliver TPDU to hand to the serving cell.
    pub tpdu: SmsDeliver,
    /// Submission time.
    pub submitted_at: SimClock,
    /// Delivery attempts made so far.
    pub attempts: u8,
    /// Current state.
    pub state: DeliveryState,
}

/// A store-and-forward SMS centre with a bounded queue and retry budget.
#[derive(Debug, Clone)]
pub struct SmsCenter {
    queue: VecDeque<QueuedSms>,
    delivered: Vec<QueuedSms>,
    max_queue: usize,
    max_attempts: u8,
}

impl Default for SmsCenter {
    fn default() -> Self {
        Self::new(10_000, 5)
    }
}

impl SmsCenter {
    /// Creates a centre with the given queue bound and retry budget.
    pub fn new(max_queue: usize, max_attempts: u8) -> Self {
        Self { queue: VecDeque::new(), delivered: Vec::new(), max_queue, max_attempts }
    }

    /// Accepts a message for delivery.
    ///
    /// # Errors
    ///
    /// Returns [`GsmError::SmscReject`] when the queue is full.
    pub fn submit(
        &mut self,
        destination: Msisdn,
        tpdu: SmsDeliver,
        now: SimClock,
    ) -> Result<(), GsmError> {
        if self.queue.len() >= self.max_queue {
            return Err(GsmError::SmscReject(format!("queue full ({} messages)", self.max_queue)));
        }
        self.queue.push_back(QueuedSms {
            destination,
            tpdu,
            submitted_at: now,
            attempts: 0,
            state: DeliveryState::Queued,
        });
        Ok(())
    }

    /// Takes the next queued message for `destination`, marking an attempt.
    /// The caller must report the outcome via [`SmsCenter::confirm`] or
    /// [`SmsCenter::requeue`].
    pub fn take_for(&mut self, destination: &Msisdn) -> Option<QueuedSms> {
        let idx = self.queue.iter().position(|m| &m.destination == destination)?;
        let mut msg = self.queue.remove(idx)?;
        msg.attempts += 1;
        Some(msg)
    }

    /// Records a successful delivery.
    pub fn confirm(&mut self, mut msg: QueuedSms) {
        msg.state = DeliveryState::Delivered;
        self.delivered.push(msg);
    }

    /// Returns a message to the queue after a failed attempt; expires it
    /// once the retry budget is exhausted.
    pub fn requeue(&mut self, mut msg: QueuedSms) {
        if msg.attempts >= self.max_attempts {
            msg.state = DeliveryState::Expired;
            self.delivered.push(msg);
        } else {
            self.queue.push_back(msg);
        }
    }

    /// Messages still waiting.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Messages still waiting for one destination.
    pub fn pending_for(&self, destination: &Msisdn) -> usize {
        self.queue.iter().filter(|m| &m.destination == destination).count()
    }

    /// Destinations with pending traffic, deduplicated in queue order.
    pub fn pending_destinations(&self) -> Vec<Msisdn> {
        let mut seen = Vec::new();
        for m in &self.queue {
            if !seen.contains(&m.destination) {
                seen.push(m.destination.clone());
            }
        }
        seen
    }

    /// Completed (delivered or expired) messages, oldest first.
    pub fn history(&self) -> &[QueuedSms] {
        &self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdu::Address;

    fn deliver(text: &str) -> SmsDeliver {
        SmsDeliver::new(Address::alphanumeric("Google").unwrap(), text).unwrap()
    }

    fn num(s: &str) -> Msisdn {
        Msisdn::new(s).unwrap()
    }

    #[test]
    fn submit_take_confirm_flow() {
        let mut smsc = SmsCenter::default();
        smsc.submit(num("13800138000"), deliver("code 1"), SimClock::new()).unwrap();
        assert_eq!(smsc.pending(), 1);
        let msg = smsc.take_for(&num("13800138000")).unwrap();
        assert_eq!(msg.attempts, 1);
        smsc.confirm(msg);
        assert_eq!(smsc.pending(), 0);
        assert_eq!(smsc.history().len(), 1);
        assert_eq!(smsc.history()[0].state, DeliveryState::Delivered);
    }

    #[test]
    fn take_for_respects_destination() {
        let mut smsc = SmsCenter::default();
        smsc.submit(num("13800138000"), deliver("a"), SimClock::new()).unwrap();
        assert!(smsc.take_for(&num("13900000000")).is_none());
        assert!(smsc.take_for(&num("13800138000")).is_some());
    }

    #[test]
    fn requeue_until_expiry() {
        let mut smsc = SmsCenter::new(10, 2);
        smsc.submit(num("13800138000"), deliver("x"), SimClock::new()).unwrap();
        let m = smsc.take_for(&num("13800138000")).unwrap();
        smsc.requeue(m); // attempt 1 of 2
        let m = smsc.take_for(&num("13800138000")).unwrap();
        assert_eq!(m.attempts, 2);
        smsc.requeue(m); // budget exhausted
        assert_eq!(smsc.pending(), 0);
        assert_eq!(smsc.history()[0].state, DeliveryState::Expired);
    }

    #[test]
    fn queue_bound_is_enforced() {
        let mut smsc = SmsCenter::new(1, 3);
        smsc.submit(num("13800138000"), deliver("a"), SimClock::new()).unwrap();
        let err = smsc.submit(num("13800138000"), deliver("b"), SimClock::new());
        assert!(matches!(err, Err(GsmError::SmscReject(_))));
    }

    #[test]
    fn pending_destinations_dedup() {
        let mut smsc = SmsCenter::default();
        let a = num("13800138000");
        let b = num("13900000000");
        smsc.submit(a.clone(), deliver("1"), SimClock::new()).unwrap();
        smsc.submit(a.clone(), deliver("2"), SimClock::new()).unwrap();
        smsc.submit(b.clone(), deliver("3"), SimClock::new()).unwrap();
        assert_eq!(smsc.pending_destinations(), vec![a, b]);
    }
}
