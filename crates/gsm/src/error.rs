//! Error types for the GSM substrate.

use std::fmt;

/// Errors produced by the simulated GSM stack.
///
/// Every fallible public function in this crate returns `Result<_, GsmError>`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GsmError {
    /// An MSISDN (phone number) failed validation.
    InvalidMsisdn(String),
    /// An IMSI failed validation.
    InvalidImsi(String),
    /// A TPDU could not be decoded; carries the byte offset and a reason.
    PduDecode { offset: usize, reason: String },
    /// A TPDU could not be encoded (e.g. message too long for one PDU).
    PduEncode(String),
    /// The referenced subscriber is unknown to the network.
    UnknownSubscriber(String),
    /// The referenced cell or ARFCN does not exist.
    UnknownCell(u16),
    /// The terminal is not attached to any cell.
    NotAttached,
    /// The SMS centre rejected a submission (queue full, routing failure).
    SmscReject(String),
    /// Ciphering was requested with a key of the wrong length.
    BadKey { expected: usize, got: usize },
    /// The sniffer ran out of monitoring capacity (all C118s busy).
    SnifferCapacity { capacity: usize },
    /// The operation conflicts with the current protocol state.
    ProtocolViolation(String),
}

impl fmt::Display for GsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GsmError::InvalidMsisdn(s) => write!(f, "invalid MSISDN: {s}"),
            GsmError::InvalidImsi(s) => write!(f, "invalid IMSI: {s}"),
            GsmError::PduDecode { offset, reason } => {
                write!(f, "PDU decode failed at byte {offset}: {reason}")
            }
            GsmError::PduEncode(reason) => write!(f, "PDU encode failed: {reason}"),
            GsmError::UnknownSubscriber(s) => write!(f, "unknown subscriber: {s}"),
            GsmError::UnknownCell(a) => write!(f, "unknown cell on ARFCN {a}"),
            GsmError::NotAttached => write!(f, "terminal is not attached to a cell"),
            GsmError::SmscReject(r) => write!(f, "SMS centre rejected submission: {r}"),
            GsmError::BadKey { expected, got } => {
                write!(f, "bad cipher key length: expected {expected} bytes, got {got}")
            }
            GsmError::SnifferCapacity { capacity } => {
                write!(f, "sniffer capacity exhausted: all {capacity} receivers busy")
            }
            GsmError::ProtocolViolation(r) => write!(f, "protocol violation: {r}"),
        }
    }
}

impl std::error::Error for GsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let e = GsmError::NotAttached;
        let s = e.to_string();
        assert!(s.starts_with("terminal"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GsmError>();
    }

    #[test]
    fn decode_error_carries_offset() {
        let e = GsmError::PduDecode { offset: 7, reason: "truncated".into() };
        assert!(e.to_string().contains("byte 7"));
    }
}
