//! Campaign result types: per-cell counters, interception records,
//! merged totals, defender-side anomaly signals and the byte-stable
//! [`CampaignReport`] rendering. The engine lives in
//! [`crate::campaign`]; this module is pure data so the report can be
//! consumed (and re-serialized deterministically) without pulling in
//! the event loop.

/// Per-cell activity counters; merged across shards by field-wise sum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellStats {
    /// Completed location updates.
    pub attaches: u64,
    /// Inbound handovers.
    pub handovers: u64,
    /// Paging requests sent.
    pub pages: u64,
    /// Paging responses heard.
    pub page_responses: u64,
    /// SMS delivered on this cell.
    pub sms_delivered: u64,
    /// Total air frames carried.
    pub frames: u64,
}

impl CellStats {
    pub(crate) fn merge(&mut self, other: &CellStats) {
        self.attaches += other.attaches;
        self.handovers += other.handovers;
        self.pages += other.pages;
        self.page_responses += other.page_responses;
        self.sms_delivered += other.sms_delivered;
        self.frames += other.frames;
    }
}

/// How an SMS fell into the attacker's hands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum InterceptKind {
    /// A passive sniffer covering the serving cell cracked the session.
    Sniffed {
        /// Index of the sniffer in the fleet.
        sniffer: u8,
    },
    /// The victim was parked on a fake base station; delivery was
    /// diverted to the spoofed registration.
    Mitm {
        /// Index of the fake base station.
        station: u8,
    },
}

/// One captured SMS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interception {
    /// Simulated capture time, microseconds.
    pub time_us: u64,
    /// Victim subscriber (campaign-global id).
    pub subscriber: u32,
    /// Cell index the traffic was associated with (the victim's real
    /// serving cell, also for MitM diversions).
    pub cell: u16,
    /// Capture mechanism.
    pub kind: InterceptKind,
}

/// Campaign-wide totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Totals {
    /// Events dispatched through the wheel.
    pub events: u64,
    /// Air frames accounted (the benchmark currency).
    pub frames: u64,
    /// Location updates completed.
    pub attaches: u64,
    /// Handovers completed.
    pub handovers: u64,
    /// SMS delivered (to real handsets).
    pub sms_delivered: u64,
    /// SMS captured by passive sniffers.
    pub sms_sniffed: u64,
    /// SMS diverted by fake base stations.
    pub sms_diverted: u64,
    /// Capture events (a subscriber lured onto a fake cell).
    pub captures: u64,
}

impl Totals {
    pub(crate) fn merge(&mut self, o: &Totals) {
        self.events += o.events;
        self.frames += o.frames;
        self.attaches += o.attaches;
        self.handovers += o.handovers;
        self.sms_delivered += o.sms_delivered;
        self.sms_sniffed += o.sms_sniffed;
        self.sms_diverted += o.sms_diverted;
        self.captures += o.captures;
    }
}

/// Defender-side detection signals computed over the merged counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Anomalies {
    /// Cells whose attach count is a ≥3σ outlier above the city mean —
    /// the capture/release churn signature around fake base stations.
    pub attach_outliers: Vec<u16>,
    /// Cells paging significantly more than they hear responses
    /// (response ratio < 0.9 over ≥20 pages) — captured victims are
    /// paged on their last real cell and never answer.
    pub paging_response_outliers: Vec<u16>,
}

/// The merged result of a campaign run. Serialize with
/// [`CampaignReport::to_json`] for a byte-stable artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Seed the campaign ran under.
    pub seed: u64,
    /// Cells in the city.
    pub cells: u32,
    /// Population size.
    pub subscribers: u32,
    /// Simulated duration, seconds.
    pub duration_s: u32,
    /// Campaign-wide totals.
    pub totals: Totals,
    /// Distinct subscribers with at least one interception, ascending.
    pub compromised: Vec<u32>,
    /// Every captured SMS, sorted by `(time_us, subscriber)`.
    pub interceptions: Vec<Interception>,
    /// Per-cell counters, indexed by cell.
    pub per_cell: Vec<CellStats>,
    /// Detection exposure.
    pub anomalies: Anomalies,
}

impl CampaignReport {
    /// Deterministic JSON rendering: fixed key order, no whitespace
    /// variation — byte-identical for equal reports.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096 + self.per_cell.len() * 96);
        s.push_str(&format!(
            "{{\"seed\":{},\"cells\":{},\"subscribers\":{},\"duration_s\":{},",
            self.seed, self.cells, self.subscribers, self.duration_s
        ));
        let t = &self.totals;
        s.push_str(&format!(
            "\"totals\":{{\"events\":{},\"frames\":{},\"attaches\":{},\"handovers\":{},\"sms_delivered\":{},\"sms_sniffed\":{},\"sms_diverted\":{},\"captures\":{}}},",
            t.events, t.frames, t.attaches, t.handovers, t.sms_delivered, t.sms_sniffed, t.sms_diverted, t.captures
        ));
        s.push_str("\"compromised\":[");
        for (i, c) in self.compromised.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&c.to_string());
        }
        s.push_str("],\"interceptions\":[");
        for (i, it) in self.interceptions.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let (kind, idx) = match it.kind {
                InterceptKind::Sniffed { sniffer } => ("sniffed", sniffer),
                InterceptKind::Mitm { station } => ("mitm", station),
            };
            s.push_str(&format!(
                "{{\"time_us\":{},\"subscriber\":{},\"cell\":{},\"kind\":\"{kind}\",\"unit\":{idx}}}",
                it.time_us, it.subscriber, it.cell
            ));
        }
        s.push_str("],\"per_cell\":[");
        for (i, c) in self.per_cell.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"attaches\":{},\"handovers\":{},\"pages\":{},\"page_responses\":{},\"sms_delivered\":{},\"frames\":{}}}",
                c.attaches, c.handovers, c.pages, c.page_responses, c.sms_delivered, c.frames
            ));
        }
        s.push_str("],\"anomalies\":{\"attach_outliers\":[");
        for (i, c) in self.anomalies.attach_outliers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&c.to_string());
        }
        s.push_str("],\"paging_response_outliers\":[");
        for (i, c) in self.anomalies.paging_response_outliers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&c.to_string());
        }
        s.push_str("]}}");
        s
    }
}

/// Attach-rate and paging-response outlier detection over the merged
/// per-cell counters.
pub(crate) fn detect_anomalies(per_cell: &[CellStats]) -> Anomalies {
    let n = per_cell.len().max(1) as f64;
    let mean = per_cell.iter().map(|c| c.attaches as f64).sum::<f64>() / n;
    let var = per_cell.iter().map(|c| (c.attaches as f64 - mean).powi(2)).sum::<f64>() / n;
    let std = var.sqrt();
    let mut attach_outliers = Vec::new();
    if std > 0.0 {
        for (i, c) in per_cell.iter().enumerate() {
            if (c.attaches as f64 - mean) / std >= 3.0 {
                attach_outliers.push(i as u16);
            }
        }
    }
    let mut paging_response_outliers = Vec::new();
    for (i, c) in per_cell.iter().enumerate() {
        if c.pages >= 20 && (c.page_responses as f64) < 0.9 * c.pages as f64 {
            paging_response_outliers.push(i as u16);
        }
    }
    Anomalies { attach_outliers, paging_response_outliers }
}
