//! Radio channel numbering (ARFCN) and frequency bands.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An Absolute Radio-Frequency Channel Number.
///
/// Each simulated cell broadcasts on one ARFCN; each C118-style sniffer
/// receiver can camp on exactly one ARFCN at a time, which is why the
/// paper's rig chains 16 phones to one laptop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Arfcn(pub u16);

impl Arfcn {
    /// Frequency band this channel belongs to, by ETSI numbering.
    pub fn band(&self) -> Band {
        match self.0 {
            0..=124 => Band::Gsm900,
            512..=885 => Band::Dcs1800,
            975..=1023 => Band::EGsm900,
            _ => Band::Unknown,
        }
    }

    /// Downlink carrier frequency in kHz (GSM900: 935 MHz + 200 kHz × n).
    pub fn downlink_khz(&self) -> u32 {
        match self.band() {
            Band::Gsm900 => 935_000 + 200 * u32::from(self.0),
            Band::EGsm900 => 935_000 + 200 * (u32::from(self.0) - 1024),
            Band::Dcs1800 => 1_805_000 + 200 * (u32::from(self.0) - 512),
            Band::Unknown => 0,
        }
    }
}

impl fmt::Display for Arfcn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ARFCN{}", self.0)
    }
}

/// GSM frequency bands recognised by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Band {
    /// Primary GSM 900 MHz band (ARFCN 0–124).
    Gsm900,
    /// Extended GSM 900 band (ARFCN 975–1023).
    EGsm900,
    /// DCS 1800 MHz band (ARFCN 512–885).
    Dcs1800,
    /// Outside any simulated band.
    Unknown,
}

impl fmt::Display for Band {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Band::Gsm900 => "GSM900",
            Band::EGsm900 => "E-GSM900",
            Band::Dcs1800 => "DCS1800",
            Band::Unknown => "unknown",
        };
        f.pad(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_classification() {
        assert_eq!(Arfcn(1).band(), Band::Gsm900);
        assert_eq!(Arfcn(124).band(), Band::Gsm900);
        assert_eq!(Arfcn(512).band(), Band::Dcs1800);
        assert_eq!(Arfcn(1000).band(), Band::EGsm900);
        assert_eq!(Arfcn(300).band(), Band::Unknown);
    }

    #[test]
    fn downlink_frequency_gsm900() {
        // ARFCN 1 downlink is 935.2 MHz.
        assert_eq!(Arfcn(1).downlink_khz(), 935_200);
        assert_eq!(Arfcn(0).downlink_khz(), 935_000);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Arfcn(42).to_string(), "ARFCN42");
        assert_eq!(Band::Dcs1800.to_string(), "DCS1800");
    }
}
