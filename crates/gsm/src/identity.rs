//! Subscriber and equipment identities: MSISDN, IMSI, TMSI.

use crate::error::GsmError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A subscriber's public phone number (Mobile Station International
/// Subscriber Directory Number).
///
/// Validated to be 5–15 decimal digits with an optional leading `+`.
///
/// ```
/// use actfort_gsm::identity::Msisdn;
/// let n = Msisdn::new("+8613800138000")?;
/// assert_eq!(n.digits(), "8613800138000");
/// # Ok::<(), actfort_gsm::GsmError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Msisdn {
    digits: String,
    international: bool,
}

impl Msisdn {
    /// Parses and validates a phone number.
    ///
    /// # Errors
    ///
    /// Returns [`GsmError::InvalidMsisdn`] when the input is not 5–15
    /// decimal digits (after an optional leading `+`).
    pub fn new(number: &str) -> Result<Self, GsmError> {
        let (international, rest) = match number.strip_prefix('+') {
            Some(rest) => (true, rest),
            None => (false, number),
        };
        if rest.len() < 5 || rest.len() > 15 || !rest.bytes().all(|b| b.is_ascii_digit()) {
            return Err(GsmError::InvalidMsisdn(number.to_owned()));
        }
        Ok(Self { digits: rest.to_owned(), international })
    }

    /// The bare digit string without any `+` prefix.
    pub fn digits(&self) -> &str {
        &self.digits
    }

    /// Whether the number was written in international (`+`) form.
    pub fn is_international(&self) -> bool {
        self.international
    }

    /// Last four digits, as commonly displayed in masked UIs.
    pub fn last4(&self) -> &str {
        let n = self.digits.len();
        &self.digits[n.saturating_sub(4)..]
    }
}

impl fmt::Display for Msisdn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.international {
            write!(f, "+{}", self.digits)
        } else {
            f.write_str(&self.digits)
        }
    }
}

/// International Mobile Subscriber Identity — the permanent secret
/// identity stored on the SIM (15 digits: MCC + MNC + MSIN).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Imsi(u64);

impl Imsi {
    /// Parses a 6–15 digit IMSI.
    ///
    /// # Errors
    ///
    /// Returns [`GsmError::InvalidImsi`] for non-digit or wrong-length input.
    pub fn parse(s: &str) -> Result<Self, GsmError> {
        if s.len() < 6 || s.len() > 15 || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(GsmError::InvalidImsi(s.to_owned()));
        }
        Ok(Self(s.parse().map_err(|_| GsmError::InvalidImsi(s.to_owned()))?))
    }

    /// Builds an IMSI from MCC/MNC and a subscriber index (test helper
    /// used throughout the simulator).
    pub fn from_parts(mcc: u16, mnc: u16, msin: u64) -> Self {
        Self(u64::from(mcc) * 1_000_000_000_000 + u64::from(mnc % 100) * 10_000_000_000 + msin % 10_000_000_000)
    }

    /// The raw numeric value.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// Mobile country code (first three digits of the 15-digit form).
    pub fn mcc(&self) -> u16 {
        (self.0 / 1_000_000_000_000) as u16
    }
}

impl fmt::Display for Imsi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:015}", self.0)
    }
}

/// Temporary Mobile Subscriber Identity — the short-lived alias a network
/// assigns so the IMSI stays off the air. IMSI catchers work precisely by
/// forcing terminals to reveal the IMSI instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tmsi(pub u32);

impl fmt::Display for Tmsi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:08x}", self.0)
    }
}

/// Handle to a provisioned subscriber inside a [`crate::network::GsmNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SubscriberId(pub u32);

impl fmt::Display for SubscriberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msisdn_accepts_national_and_international() {
        assert!(Msisdn::new("13800138000").is_ok());
        let intl = Msisdn::new("+8613800138000").unwrap();
        assert!(intl.is_international());
        assert_eq!(intl.to_string(), "+8613800138000");
    }

    #[test]
    fn msisdn_rejects_garbage() {
        assert!(Msisdn::new("").is_err());
        assert!(Msisdn::new("12ab34").is_err());
        assert!(Msisdn::new("1234").is_err());
        assert!(Msisdn::new("1234567890123456").is_err());
        assert!(Msisdn::new("++123456").is_err());
    }

    #[test]
    fn msisdn_last4() {
        let n = Msisdn::new("13800138000").unwrap();
        assert_eq!(n.last4(), "8000");
    }

    #[test]
    fn imsi_roundtrip_and_parts() {
        let imsi = Imsi::from_parts(460, 0, 123_456_789);
        assert_eq!(imsi.mcc(), 460);
        let parsed = Imsi::parse(&imsi.to_string()).unwrap();
        assert_eq!(parsed, imsi);
    }

    #[test]
    fn imsi_rejects_bad_input() {
        assert!(Imsi::parse("12345").is_err());
        assert!(Imsi::parse("1234567890123456").is_err());
        assert!(Imsi::parse("12345678x").is_err());
    }

    #[test]
    fn tmsi_displays_hex() {
        assert_eq!(Tmsi(0xdeadbeef).to_string(), "0xdeadbeef");
    }
}
