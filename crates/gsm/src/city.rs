//! Precomputed synthetic-city geometry for the campaign engine:
//! the cell grid, nearest-site lookup and per-cell attacker coverage
//! masks (which sniffers hear a cell, which fake base stations can
//! lure from it). Built once per campaign and shared read-only by
//! every shard.

use crate::campaign::{mix, next_f64, CampaignConfig};
use crate::radio::Position;

/// Precomputed city geometry shared read-only by every shard.
pub(crate) struct City {
    pub(crate) cols: u32,
    pub(crate) rows: u32,
    pub(crate) spacing: f64,
    pub(crate) mitm: Vec<Position>,
    /// Per-cell bitmask of sniffers whose range covers the cell site.
    pub(crate) cell_sniffers: Vec<u64>,
    /// Per-cell bitmask of fake base stations within lure range of the
    /// cell site's neighbourhood.
    pub(crate) cell_mitm: Vec<u64>,
    pub(crate) width: f64,
    pub(crate) height: f64,
}

impl City {
    pub(crate) fn build(cfg: &CampaignConfig) -> Self {
        let cells = cfg.cells() as usize;
        let width = f64::from(cfg.grid_cols.saturating_sub(1)) * cfg.cell_spacing_m;
        let height = f64::from(cfg.grid_rows.saturating_sub(1)) * cfg.cell_spacing_m;
        // Spread attacker units deterministically along a low-discrepancy
        // walk over the city rectangle, seeded from the campaign seed so
        // layouts differ between seeds but never between runs.
        let unit_positions = |count: u32, salt: u64| -> Vec<Position> {
            let mut rng = mix(cfg.seed, salt);
            (0..count.min(64))
                .map(|_| {
                    let x = next_f64(&mut rng) * width;
                    let y = next_f64(&mut rng) * height;
                    Position::new(x, y)
                })
                .collect()
        };
        let sniffers = unit_positions(cfg.sniffers, 0x5217);
        let mitm = unit_positions(cfg.mitm_stations, 0x3713);
        let mut cell_sniffers = vec![0u64; cells];
        let mut cell_mitm = vec![0u64; cells];
        for row in 0..cfg.grid_rows {
            for col in 0..cfg.grid_cols {
                let idx = (row * cfg.grid_cols + col) as usize;
                let site = Position::new(
                    f64::from(col) * cfg.cell_spacing_m,
                    f64::from(row) * cfg.cell_spacing_m,
                );
                for (i, s) in sniffers.iter().enumerate() {
                    if s.distance(site) <= cfg.sniffer_range_m {
                        cell_sniffers[idx] |= 1 << i;
                    }
                }
                for (i, m) in mitm.iter().enumerate() {
                    // A station matters to a cell when its lure range
                    // reaches anywhere a subscriber served by this cell
                    // can stand (site + half the spacing).
                    if m.distance(site) <= cfg.mitm_range_m + cfg.cell_spacing_m {
                        cell_mitm[idx] |= 1 << i;
                    }
                }
            }
        }
        Self {
            cols: cfg.grid_cols,
            rows: cfg.grid_rows,
            spacing: cfg.cell_spacing_m,
            mitm,
            cell_sniffers,
            cell_mitm,
            width,
            height,
        }
    }

    /// Serving cell for a position: the nearest grid site, O(1).
    #[inline]
    pub(crate) fn cell_at(&self, pos: Position) -> u16 {
        let col = ((pos.x / self.spacing) + 0.5).floor().max(0.0) as u32;
        let row = ((pos.y / self.spacing) + 0.5).floor().max(0.0) as u32;
        let col = col.min(self.cols - 1);
        let row = row.min(self.rows - 1);
        (row * self.cols + col) as u16
    }

    /// The fake base station holding a handset at `pos`, if any.
    #[inline]
    pub(crate) fn capturing_station(&self, cell: u16, pos: Position, range: f64) -> Option<u8> {
        let mut mask = self.cell_mitm[cell as usize];
        while mask != 0 {
            let i = mask.trailing_zeros() as usize;
            if self.mitm[i].distance(pos) <= range {
                return Some(i as u8);
            }
            mask &= mask - 1;
        }
        None
    }
}
