//! City-scale interception campaigns over the discrete-event core.
//!
//! The protocol-level simulator ([`crate::network`]) is byte-faithful:
//! every burst is encoded, ciphered and appended to the ether. That is
//! the right tool for one sniffer near one victim, and three orders of
//! magnitude too slow for the paper's ecosystem-scale claim — a fleet
//! of sniffers and fake base stations blanketing a city of hundreds of
//! cells and thousands of moving subscribers. The campaign engine keeps
//! the *transaction structure* (attach, handover, paging, SMS transfer,
//! spoofed registration) and drops the byte materialization: each
//! protocol transaction bumps per-cell frame counters by the exact
//! burst count the full simulator would emit, so throughput is counted
//! in real frame equivalents while dispatch stays O(1) per event on the
//! [`EventWheel`].
//!
//! ## Shard determinism
//!
//! Campaigns are embarrassingly parallel by construction: every
//! subscriber carries an independent RNG stream (splitmix64 of the
//! campaign seed and the subscriber id), never reads another
//! subscriber's state, and the per-cell counters merge by commutative
//! addition. Interceptions are sorted by `(time_us, subscriber)` at
//! merge. Any partition of subscribers over shards therefore yields a
//! byte-identical [`CampaignReport`] — pinned by tests across 1/2/8
//! shards.
//!
//! ## Detection exposure
//!
//! A telco-side defender sees what the paper's countermeasures discuss:
//! attach-rate outliers (capture/release churn near fake base stations)
//! and paging-response outliers (captured victims are paged on their
//! last real cell and never answer). Both detectors run over the merged
//! per-cell counters and land in the report next to the compromise
//! numbers.

use crate::arfcn::Arfcn;
use crate::radio::{CellConfig, CellId, Position};
use crate::scheduler::EventWheel;
use actfort_obs as obs;

pub use crate::report::{Anomalies, CampaignReport, CellStats, Interception, InterceptKind, Totals};

use crate::report::detect_anomalies;
use crate::city::City;

/// Frames in a full location-update transaction (LAU request, auth
/// request/response, cipher command/complete, SI5, LAU accept) — what
/// [`crate::network::GsmNetwork::attach`] emits.
pub const ATTACH_FRAMES: u64 = 7;
/// Frames in a handover (measurement report, command, access, complete).
pub const HANDOVER_FRAMES: u64 = 4;
/// Frames in a paging exchange (request + response).
pub const PAGE_FRAMES: u64 = 2;
/// Frames in an SMS delivery after paging (DELIVER + ack, ciphered).
pub const SMS_FRAMES: u64 = 4;
/// Frames in a spoofed (MitM) registration — same shape as an attach.
pub const SPOOF_FRAMES: u64 = 7;
/// Frames when an SMS is diverted to a spoofed registration (page on
/// the real cell goes unanswered; deliver lands on the fake cell).
pub const MITM_SMS_FRAMES: u64 = 3;

/// Campaign shape: the synthetic city, its population and the attacker
/// fleet. All fields are plain data so configs can be built inline.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; every subscriber derives an independent stream.
    pub seed: u64,
    /// Grid columns of the cell layout.
    pub grid_cols: u32,
    /// Grid rows of the cell layout.
    pub grid_rows: u32,
    /// Distance between neighbouring cell sites, metres.
    pub cell_spacing_m: f64,
    /// Cell radio range, metres.
    pub cell_range_m: f64,
    /// Population size.
    pub subscribers: u32,
    /// Simulated campaign duration, seconds.
    pub duration_s: u32,
    /// Mean per-subscriber interval between service SMS, milliseconds.
    pub sms_interval_ms: u32,
    /// Interval between mobility steps, milliseconds.
    pub move_interval_ms: u32,
    /// Pedestrian/vehicle speed, metres per second.
    pub walk_speed_mps: f64,
    /// Passive sniffer count (≤ 64), spread deterministically over the
    /// city.
    pub sniffers: u32,
    /// Sniffer receive range, metres.
    pub sniffer_range_m: f64,
    /// Probability (per mille) that a sniffed delivery yields the key —
    /// the rainbow-table hit rate.
    pub crack_hit_per_mille: u16,
    /// MitM fake base stations (≤ 64), spread over the city.
    pub mitm_stations: u32,
    /// Fake base station lure range, metres.
    pub mitm_range_m: f64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            seed: 0x0ac7_f047,
            grid_cols: 20,
            grid_rows: 10,
            cell_spacing_m: 900.0,
            cell_range_m: 800.0,
            subscribers: 2_000,
            duration_s: 60,
            sms_interval_ms: 1_000,
            move_interval_ms: 2_000,
            walk_speed_mps: 15.0,
            sniffers: 8,
            sniffer_range_m: 1_000.0,
            crack_hit_per_mille: 220,
            mitm_stations: 4,
            mitm_range_m: 350.0,
        }
    }
}

impl CampaignConfig {
    /// Number of cells in the grid.
    pub fn cells(&self) -> u32 {
        self.grid_cols * self.grid_rows
    }

    /// The grid as real [`CellConfig`]s — for driving the byte-faithful
    /// simulator with the same layout (ARFCNs cycle, LAC tracks the
    /// row).
    pub fn cell_configs(&self) -> Vec<CellConfig> {
        let mut out = Vec::with_capacity(self.cells() as usize);
        for row in 0..self.grid_rows {
            for col in 0..self.grid_cols {
                let idx = row * self.grid_cols + col;
                out.push(CellConfig {
                    id: CellId((idx + 1) as u16),
                    arfcn: Arfcn((idx % 124) as u16),
                    lac: 0x1000 + row as u16,
                    position: Position::new(
                        f64::from(col) * self.cell_spacing_m,
                        f64::from(row) * self.cell_spacing_m,
                    ),
                    range_m: self.cell_range_m,
                    cipher_preference: vec![
                        crate::cipher::CipherAlgo::A51,
                        crate::cipher::CipherAlgo::A50,
                    ],
                });
            }
        }
        out
    }
}

/// Per-subscriber simulation state (shard-local).
struct SubState {
    /// Campaign-global subscriber id.
    id: u32,
    rng: u64,
    pos: Position,
    waypoint: Position,
    /// Current real serving cell (last real cell while captured).
    serving: u16,
    /// The fake base station currently holding the handset, if any.
    captured: Option<u8>,
    /// Monotonic per-subscriber SMS counter (crack-draw salt).
    sms_seq: u32,
}

/// Campaign events. Compact and `Copy`: the payload is a shard-local
/// subscriber index.
#[derive(Clone, Copy)]
enum Ev {
    Attach(u32),
    Move(u32),
    Sms(u32),
}

/// splitmix64 step.
#[inline]
pub(crate) fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform f64 in [0, 1).
#[inline]
pub(crate) fn next_f64(state: &mut u64) -> f64 {
    (next_u64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Stateless mix of two words (crack draws, stream seeding).
#[inline]
pub(crate) fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What one shard produces; merged commutatively.
struct ShardOutcome {
    totals: Totals,
    per_cell: Vec<CellStats>,
    interceptions: Vec<Interception>,
}

fn run_shard(cfg: &CampaignConfig, city: &City, shard: u32, shards: u32) -> ShardOutcome {
    let end_us = u64::from(cfg.duration_s) * 1_000_000;
    let mut wheel: EventWheel<Ev> = EventWheel::new();
    let mut subs: Vec<SubState> = Vec::new();
    for id in (shard..cfg.subscribers).step_by(shards as usize) {
        let mut rng = mix(cfg.seed, u64::from(id)); // independent stream per subscriber
        let pos = Position::new(next_f64(&mut rng) * city.width, next_f64(&mut rng) * city.height);
        let waypoint =
            Position::new(next_f64(&mut rng) * city.width, next_f64(&mut rng) * city.height);
        let start_us = next_u64(&mut rng) % 1_000_000; // stagger attaches over the first second
        let local = subs.len() as u32;
        subs.push(SubState {
            id,
            rng,
            pos,
            waypoint,
            serving: 0,
            captured: None,
            sms_seq: 0,
        });
        wheel.schedule(start_us, Ev::Attach(local));
    }
    let mut totals = Totals::default();
    let mut per_cell = vec![CellStats::default(); (city.cols * city.rows) as usize];
    let mut interceptions = Vec::new();
    let move_step = u64::from(cfg.move_interval_ms) * 1_000;
    let sms_mean = u64::from(cfg.sms_interval_ms) * 1_000;

    while let Some((at, ev)) = wheel.pop() {
        totals.events += 1;
        match ev {
            Ev::Attach(i) => {
                let s = &mut subs[i as usize];
                let cell = city.cell_at(s.pos);
                s.serving = cell;
                per_cell[cell as usize].attaches += 1;
                per_cell[cell as usize].frames += ATTACH_FRAMES;
                totals.attaches += 1;
                totals.frames += ATTACH_FRAMES;
                if let Some(st) = city.capturing_station(cell, s.pos, cfg.mitm_range_m) {
                    s.captured = Some(st);
                    totals.captures += 1;
                    totals.frames += SPOOF_FRAMES;
                    per_cell[cell as usize].frames += SPOOF_FRAMES;
                }
                // First mobility step and first SMS, phase-jittered.
                let mv = at + move_step + next_u64(&mut s.rng) % move_step.max(1);
                if mv < end_us {
                    wheel.schedule(mv, Ev::Move(i));
                }
                let sm = at + 1 + next_u64(&mut s.rng) % (2 * sms_mean).max(1);
                if sm < end_us {
                    wheel.schedule(sm, Ev::Sms(i));
                }
            }
            Ev::Move(i) => {
                let s = &mut subs[i as usize];
                // Step toward the waypoint; arrived → draw a new one.
                let dx = s.waypoint.x - s.pos.x;
                let dy = s.waypoint.y - s.pos.y;
                let dist = (dx * dx + dy * dy).sqrt();
                let step = cfg.walk_speed_mps * (move_step as f64 / 1_000_000.0);
                if dist <= step {
                    s.pos = s.waypoint;
                    s.waypoint = Position::new(
                        next_f64(&mut s.rng) * city.width,
                        next_f64(&mut s.rng) * city.height,
                    );
                } else {
                    s.pos = Position::new(s.pos.x + dx / dist * step, s.pos.y + dy / dist * step);
                }
                let cell = city.cell_at(s.pos);
                let station = city.capturing_station(cell, s.pos, cfg.mitm_range_m);
                match (s.captured, station) {
                    (None, Some(st)) => {
                        // Lured onto a fake cell: the real network keeps
                        // believing the last serving cell.
                        s.captured = Some(st);
                        totals.captures += 1;
                        totals.frames += SPOOF_FRAMES;
                        per_cell[s.serving as usize].frames += SPOOF_FRAMES;
                    }
                    (Some(_), None) => {
                        // Walked out of lure range: reattach for real.
                        s.captured = None;
                        s.serving = cell;
                        per_cell[cell as usize].attaches += 1;
                        per_cell[cell as usize].frames += ATTACH_FRAMES;
                        totals.attaches += 1;
                        totals.frames += ATTACH_FRAMES;
                    }
                    (None, None) if cell != s.serving => {
                        per_cell[cell as usize].handovers += 1;
                        per_cell[cell as usize].frames += HANDOVER_FRAMES;
                        totals.handovers += 1;
                        totals.frames += HANDOVER_FRAMES;
                        s.serving = cell;
                    }
                    _ => {}
                }
                let mv = at + move_step;
                if mv < end_us {
                    wheel.schedule(mv, Ev::Move(i));
                }
            }
            Ev::Sms(i) => {
                let s = &mut subs[i as usize];
                s.sms_seq += 1;
                let cell = s.serving;
                let stats = &mut per_cell[cell as usize];
                stats.pages += 1;
                if let Some(st) = s.captured {
                    // Page goes unanswered on the real cell; delivery is
                    // diverted to the spoofed registration.
                    stats.frames += MITM_SMS_FRAMES;
                    totals.frames += MITM_SMS_FRAMES;
                    totals.sms_diverted += 1;
                    interceptions.push(Interception {
                        time_us: at,
                        subscriber: s.id,
                        cell,
                        kind: InterceptKind::Mitm { station: st },
                    });
                } else {
                    stats.page_responses += 1;
                    stats.sms_delivered += 1;
                    stats.frames += PAGE_FRAMES + SMS_FRAMES;
                    totals.frames += PAGE_FRAMES + SMS_FRAMES;
                    totals.sms_delivered += 1;
                    let mask = city.cell_sniffers[cell as usize];
                    if mask != 0 {
                        // Deterministic crack draw, independent of shard
                        // layout: salt = (subscriber, sms_seq).
                        let draw = mix(
                            cfg.seed ^ 0x0515_0515,
                            (u64::from(s.id) << 32) | u64::from(s.sms_seq),
                        );
                        if (draw % 1_000) < u64::from(cfg.crack_hit_per_mille) {
                            interceptions.push(Interception {
                                time_us: at,
                                subscriber: s.id,
                                cell,
                                kind: InterceptKind::Sniffed {
                                    sniffer: mask.trailing_zeros() as u8,
                                },
                            });
                            totals.sms_sniffed += 1;
                        }
                    }
                }
                let sm = at + 1 + next_u64(&mut s.rng) % (2 * sms_mean).max(1);
                if sm < end_us {
                    wheel.schedule(sm, Ev::Sms(i));
                }
            }
        }
    }
    ShardOutcome { totals, per_cell, interceptions }
}

/// Runs the campaign on the calling thread (one shard).
pub fn run(cfg: &CampaignConfig) -> CampaignReport {
    run_sharded(cfg, 1)
}

/// Runs the campaign partitioned over `shards` worker threads and
/// merges. The merged report is byte-identical for any shard count
/// under the same config.
pub fn run_sharded(cfg: &CampaignConfig, shards: u32) -> CampaignReport {
    let _span = obs::span("gsm.campaign.run");
    let shards = shards.max(1);
    let city = City::build(cfg);
    let outcomes: Vec<ShardOutcome> = if shards == 1 {
        vec![run_shard(cfg, &city, 0, 1)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|k| {
                    let city = &city;
                    scope.spawn(move || run_shard(cfg, city, k, shards))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
        })
    };

    let mut totals = Totals::default();
    let mut per_cell = vec![CellStats::default(); cfg.cells() as usize];
    let mut interceptions = Vec::new();
    for o in &outcomes {
        totals.merge(&o.totals);
        for (acc, c) in per_cell.iter_mut().zip(&o.per_cell) {
            acc.merge(c);
        }
        interceptions.extend_from_slice(&o.interceptions);
    }
    interceptions.sort_unstable_by_key(|i| (i.time_us, i.subscriber));
    let mut compromised: Vec<u32> = interceptions.iter().map(|i| i.subscriber).collect();
    compromised.sort_unstable();
    compromised.dedup();

    let anomalies = detect_anomalies(&per_cell);
    obs::add("gsm.campaign.frames", totals.frames);
    obs::add("gsm.campaign.interceptions", interceptions.len() as u64);
    obs::add("gsm.campaign.captures", totals.captures);

    CampaignReport {
        seed: cfg.seed,
        cells: cfg.cells(),
        subscribers: cfg.subscribers,
        duration_s: cfg.duration_s,
        totals,
        compromised,
        interceptions,
        per_cell,
        anomalies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CampaignConfig {
        CampaignConfig {
            subscribers: 200,
            duration_s: 20,
            grid_cols: 6,
            grid_rows: 4,
            sniffers: 3,
            mitm_stations: 2,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_produces_traffic_and_interceptions() {
        let report = run(&small());
        assert!(report.totals.frames > 10_000, "frames: {}", report.totals.frames);
        assert!(report.totals.attaches >= 200, "everyone attaches at least once");
        assert!(report.totals.sms_delivered > 0);
        assert!(!report.interceptions.is_empty(), "the fleet intercepts something");
        assert!(!report.compromised.is_empty());
        // Interceptions are sorted and within the campaign window.
        let end_us = u64::from(report.duration_s) * 1_000_000;
        for w in report.interceptions.windows(2) {
            assert!((w[0].time_us, w[0].subscriber) < (w[1].time_us, w[1].subscriber));
        }
        assert!(report.interceptions.iter().all(|i| i.time_us < end_us));
    }

    #[test]
    fn report_is_identical_across_runs() {
        let a = run(&small());
        let b = run(&small());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn report_is_byte_identical_across_shard_counts() {
        let cfg = small();
        let one = run_sharded(&cfg, 1).to_json();
        let two = run_sharded(&cfg, 2).to_json();
        let eight = run_sharded(&cfg, 8).to_json();
        assert_eq!(one, two, "1 vs 2 shards");
        assert_eq!(one, eight, "1 vs 8 shards");
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(&small());
        let b = run(&CampaignConfig { seed: 99, ..small() });
        assert_ne!(a.to_json(), b.to_json());
    }

    #[test]
    fn frame_totals_reconcile_with_per_cell() {
        let report = run(&small());
        let cell_frames: u64 = report.per_cell.iter().map(|c| c.frames).sum();
        assert_eq!(cell_frames, report.totals.frames);
        let pages: u64 = report.per_cell.iter().map(|c| c.pages).sum();
        let responses: u64 = report.per_cell.iter().map(|c| c.page_responses).sum();
        assert_eq!(pages, report.totals.sms_delivered + report.totals.sms_diverted);
        assert_eq!(responses, report.totals.sms_delivered);
    }

    #[test]
    fn mitm_presence_creates_paging_anomalies() {
        // With stations and enough traffic, some cell shows unanswered
        // pages; with no stations, none can.
        let with = run(&CampaignConfig { subscribers: 500, ..small() });
        let without = run(&CampaignConfig { mitm_stations: 0, subscribers: 500, ..small() });
        assert!(without.anomalies.paging_response_outliers.is_empty());
        assert!(
            !with.anomalies.paging_response_outliers.is_empty(),
            "captured victims should leave unanswered pages somewhere"
        );
        assert_eq!(without.totals.sms_diverted, 0);
        assert_eq!(without.totals.captures, 0);
    }
}
