//! Air-interface cipher negotiation.
//!
//! GSM lets the network pick the ciphering algorithm after authentication,
//! constrained by what the mobile *claims* to support — there is no
//! integrity protection on the capability report. Both attacks in the
//! paper exploit this: many live networks run A5/0 (no encryption) or
//! crackable A5/1, and an active MitM can claim "A5/0 only" to strip
//! encryption entirely.

use crate::a5::Kc;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Ciphering algorithms the simulator understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CipherAlgo {
    /// No encryption at all — still common on real GSM networks.
    A50,
    /// The classic LFSR cipher, breakable with published tables.
    A51,
    /// KASUMI-based cipher; treated as unbreakable by the simulator.
    A53,
}

impl CipherAlgo {
    /// Whether a passive attacker can read traffic under this algorithm
    /// (directly, or after a practical key-recovery attack).
    pub fn is_breakable(&self) -> bool {
        matches!(self, CipherAlgo::A50 | CipherAlgo::A51)
    }

    /// Bitmask bit used in capability reports.
    pub fn mask_bit(&self) -> u8 {
        match self {
            CipherAlgo::A50 => 0b001,
            CipherAlgo::A51 => 0b010,
            CipherAlgo::A53 => 0b100,
        }
    }

    /// Decodes a single algorithm from its mask bit.
    pub fn from_mask_bit(bit: u8) -> Option<Self> {
        match bit {
            0b001 => Some(CipherAlgo::A50),
            0b010 => Some(CipherAlgo::A51),
            0b100 => Some(CipherAlgo::A53),
            _ => None,
        }
    }
}

impl fmt::Display for CipherAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CipherAlgo::A50 => "A5/0",
            CipherAlgo::A51 => "A5/1",
            CipherAlgo::A53 => "A5/3",
        };
        f.pad(s)
    }
}

/// A set of supported ciphers, as carried in the MS classmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CipherSet(u8);

impl CipherSet {
    /// An empty set (claims no cipher support — forces A5/0).
    pub fn none() -> Self {
        Self(CipherAlgo::A50.mask_bit())
    }

    /// Every algorithm the simulator knows.
    pub fn all() -> Self {
        Self(0b111)
    }

    /// Builds a set from algorithms.
    pub fn of(algos: &[CipherAlgo]) -> Self {
        let mut mask = CipherAlgo::A50.mask_bit(); // A5/0 is always possible
        for a in algos {
            mask |= a.mask_bit();
        }
        Self(mask)
    }

    /// Whether `algo` is in the set.
    pub fn contains(&self, algo: CipherAlgo) -> bool {
        self.0 & algo.mask_bit() != 0
    }

    /// Raw bitmask, as sent over the air.
    pub fn mask(&self) -> u8 {
        self.0
    }

    /// Reconstructs a set from a raw mask (unknown bits ignored).
    pub fn from_mask(mask: u8) -> Self {
        Self((mask & 0b111) | CipherAlgo::A50.mask_bit())
    }

    /// Network-side selection: the strongest algorithm both the network
    /// preference list and the mobile's claimed set allow. The preference
    /// list is ordered strongest-first.
    pub fn negotiate(&self, network_preference: &[CipherAlgo]) -> CipherAlgo {
        network_preference
            .iter()
            .copied()
            .find(|a| self.contains(*a))
            .unwrap_or(CipherAlgo::A50)
    }
}

impl Default for CipherSet {
    fn default() -> Self {
        Self::all()
    }
}

/// A live ciphering context on one radio link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CipherContext {
    /// Negotiated algorithm.
    pub algo: CipherAlgo,
    /// Session key (meaningless under A5/0).
    pub kc: Kc,
}

impl CipherContext {
    /// A context that performs no encryption.
    pub fn plaintext() -> Self {
        Self { algo: CipherAlgo::A50, kc: Kc(0) }
    }

    /// Encrypts or decrypts `data` in place for the given TDMA frame.
    /// A5/0 leaves data untouched; A5/1 applies the real keystream; A5/3
    /// applies a frame-keyed byte permutation cipher that the cracker
    /// refuses to break.
    pub fn apply(&self, frame: u32, data: &mut [u8]) {
        match self.algo {
            CipherAlgo::A50 => {}
            CipherAlgo::A51 => crate::a5::a51::apply_keystream(self.kc, frame, data),
            CipherAlgo::A53 => {
                // Stand-in keystream: strong mixing of key + frame via a
                // splitmix-style generator. Not KASUMI, but opaque to every
                // attack implemented in this workspace.
                let mut state = self.kc.0 ^ (u64::from(frame).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                for b in data.iter_mut() {
                    state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                    *b ^= (z ^ (z >> 31)) as u8;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negotiation_prefers_strongest_supported() {
        let ms = CipherSet::of(&[CipherAlgo::A51]);
        let pick = ms.negotiate(&[CipherAlgo::A53, CipherAlgo::A51, CipherAlgo::A50]);
        assert_eq!(pick, CipherAlgo::A51);
    }

    #[test]
    fn negotiation_downgrade_attack() {
        // A fake terminal claims no cipher support: the network must fall
        // back to plaintext even when it prefers A5/3.
        let fake = CipherSet::none();
        let pick = fake.negotiate(&[CipherAlgo::A53, CipherAlgo::A51]);
        assert_eq!(pick, CipherAlgo::A50);
    }

    #[test]
    fn mask_roundtrip() {
        let set = CipherSet::of(&[CipherAlgo::A51, CipherAlgo::A53]);
        let back = CipherSet::from_mask(set.mask());
        assert!(back.contains(CipherAlgo::A51));
        assert!(back.contains(CipherAlgo::A53));
        assert!(back.contains(CipherAlgo::A50));
    }

    #[test]
    fn a50_leaves_plaintext() {
        let ctx = CipherContext::plaintext();
        let mut data = b"hello".to_vec();
        ctx.apply(7, &mut data);
        assert_eq!(data, b"hello");
    }

    #[test]
    fn a51_context_roundtrips() {
        let ctx = CipherContext { algo: CipherAlgo::A51, kc: Kc(0x1234_5678_9abc_def0) };
        let mut data = b"secret otp 123456".to_vec();
        ctx.apply(55, &mut data);
        assert_ne!(data, b"secret otp 123456");
        ctx.apply(55, &mut data);
        assert_eq!(data, b"secret otp 123456");
    }

    #[test]
    fn a53_context_roundtrips_and_differs_from_a51() {
        let kc = Kc(0x1234_5678_9abc_def0);
        let a53 = CipherContext { algo: CipherAlgo::A53, kc };
        let a51 = CipherContext { algo: CipherAlgo::A51, kc };
        let mut x = b"payload".to_vec();
        let mut y = b"payload".to_vec();
        a53.apply(9, &mut x);
        a51.apply(9, &mut y);
        assert_ne!(x, y);
        a53.apply(9, &mut x);
        assert_eq!(x, b"payload");
    }

    #[test]
    fn breakability_classification() {
        assert!(CipherAlgo::A50.is_breakable());
        assert!(CipherAlgo::A51.is_breakable());
        assert!(!CipherAlgo::A53.is_breakable());
    }
}
