//! The mobile station (victim handset) state machine.

use crate::a5::Kc;
use crate::cipher::{CipherContext, CipherSet};
use crate::identity::{Imsi, Msisdn, Tmsi};
use crate::pdu::ConcatInfo;
use crate::radio::{CellId, Position};
use crate::time::SimClock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A short message as seen by the handset after reassembly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReceivedSms {
    /// Sender as displayed (number or alphanumeric ID).
    pub originator: String,
    /// Decoded message body.
    pub text: String,
    /// Delivery time.
    pub time: SimClock,
    /// The raw SMS-DELIVER TPDU as received.
    pub raw_tpdu: Vec<u8>,
}

/// Radio access technologies a handset supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RatPreference {
    /// 2G only — always reachable over GSM.
    GsmOnly,
    /// Prefers LTE; falls back to GSM only when LTE is jammed or absent.
    /// SMS over LTE is out of reach for the paper's GSM attacks, which is
    /// why the active rig carries a 4G jammer.
    PreferLte,
}

/// Serving-cell attachment state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Camp {
    /// No service.
    Idle,
    /// Camped on a legitimate network cell.
    Real(CellId),
    /// Camped on an attacker's fake base station.
    Fake(CellId),
}

/// A simulated handset with a SIM.
#[derive(Debug, Clone)]
pub struct MobileStation {
    imsi: Imsi,
    msisdn: Msisdn,
    /// SIM secret used by the A3/A8 simulation.
    ki: u64,
    tmsi: Option<Tmsi>,
    classmark: CipherSet,
    rat: RatPreference,
    position: Position,
    camp: Camp,
    ctx: CipherContext,
    inbox: Vec<ReceivedSms>,
    /// Multipart messages awaiting missing parts, keyed by
    /// (originator, concat reference).
    partials: HashMap<(String, u8), PartialMessage>,
    lte_jammed: bool,
}

#[derive(Debug, Clone)]
struct PartialMessage {
    parts: Vec<Option<String>>,
    first_time: SimClock,
    first_raw: Vec<u8>,
}

impl MobileStation {
    /// Creates a handset for the given SIM identity.
    pub fn new(imsi: Imsi, msisdn: Msisdn, ki: u64) -> Self {
        Self {
            imsi,
            msisdn,
            ki,
            tmsi: None,
            classmark: CipherSet::all(),
            rat: RatPreference::PreferLte,
            position: Position::default(),
            camp: Camp::Idle,
            ctx: CipherContext::plaintext(),
            inbox: Vec::new(),
            partials: HashMap::new(),
            lte_jammed: false,
        }
    }

    /// The SIM's permanent identity.
    pub fn imsi(&self) -> Imsi {
        self.imsi
    }

    /// The subscriber's phone number.
    pub fn msisdn(&self) -> &Msisdn {
        &self.msisdn
    }

    /// Currently assigned TMSI, if any.
    pub fn tmsi(&self) -> Option<Tmsi> {
        self.tmsi
    }

    /// Assigns or clears the TMSI (network side of TMSI reallocation).
    pub fn set_tmsi(&mut self, tmsi: Option<Tmsi>) {
        self.tmsi = tmsi;
    }

    /// Cipher capabilities reported in the classmark.
    pub fn classmark(&self) -> CipherSet {
        self.classmark
    }

    /// Overrides the classmark (used to model handsets without A5/3).
    pub fn set_classmark(&mut self, classmark: CipherSet) {
        self.classmark = classmark;
    }

    /// Radio access preference.
    pub fn rat(&self) -> RatPreference {
        self.rat
    }

    /// Sets the radio access preference.
    pub fn set_rat(&mut self, rat: RatPreference) {
        self.rat = rat;
    }

    /// Whether the handset would use GSM right now: either it is 2G-only,
    /// or its LTE layer is jammed / unavailable.
    pub fn uses_gsm(&self, lte_available: bool) -> bool {
        match self.rat {
            RatPreference::GsmOnly => true,
            RatPreference::PreferLte => self.lte_jammed || !lte_available,
        }
    }

    /// Marks the LTE layer as jammed (the 4G-jammer downgrade step).
    pub fn set_lte_jammed(&mut self, jammed: bool) {
        self.lte_jammed = jammed;
    }

    /// Whether LTE is currently jammed for this handset.
    pub fn lte_jammed(&self) -> bool {
        self.lte_jammed
    }

    /// Current position.
    pub fn position(&self) -> Position {
        self.position
    }

    /// Moves the handset.
    pub fn set_position(&mut self, position: Position) {
        self.position = position;
    }

    /// Serving-cell state.
    pub fn camp(&self) -> Camp {
        self.camp
    }

    /// Sets the serving-cell state.
    pub fn set_camp(&mut self, camp: Camp) {
        self.camp = camp;
    }

    /// Active ciphering context for the current attachment.
    pub fn cipher_context(&self) -> CipherContext {
        self.ctx
    }

    /// Installs a ciphering context after cipher-mode negotiation.
    pub fn set_cipher_context(&mut self, ctx: CipherContext) {
        self.ctx = ctx;
    }

    /// A3: computes the signed response for an authentication challenge.
    /// (A deterministic keyed mix stands in for COMP128; the protocol
    /// behaviour — challenge/response with a SIM secret — is what matters.)
    pub fn a3_sres(&self, rand: u64) -> u32 {
        (mix(self.ki, rand) >> 32) as u32
    }

    /// A8: derives the session key for a challenge.
    pub fn a8_kc(&self, rand: u64) -> Kc {
        Kc(mix(self.ki.rotate_left(13), rand ^ 0xa8a8_a8a8_a8a8_a8a8))
    }

    /// Messages received so far, oldest first.
    pub fn inbox(&self) -> &[ReceivedSms] {
        &self.inbox
    }

    /// Appends a delivered message.
    pub fn push_sms(&mut self, sms: ReceivedSms) {
        self.inbox.push(sms);
    }

    /// Accepts one delivered (part of a) message: plain messages land in
    /// the inbox immediately; concatenated parts are buffered until every
    /// part arrived (in any order), then the reassembled message lands.
    pub fn receive_sms(&mut self, sms: ReceivedSms, concat: Option<ConcatInfo>) {
        let Some(info) = concat else {
            self.push_sms(sms);
            return;
        };
        let key = (sms.originator.clone(), info.reference);
        let entry = self.partials.entry(key.clone()).or_insert_with(|| PartialMessage {
            parts: vec![None; usize::from(info.total)],
            first_time: sms.time,
            first_raw: sms.raw_tpdu.clone(),
        });
        if entry.parts.len() != usize::from(info.total) {
            // Reference collision with a different total: restart.
            *entry = PartialMessage {
                parts: vec![None; usize::from(info.total)],
                first_time: sms.time,
                first_raw: sms.raw_tpdu.clone(),
            };
        }
        entry.parts[usize::from(info.seq) - 1] = Some(sms.text);
        if entry.parts.iter().all(Option::is_some) {
            let done = self.partials.remove(&key).expect("just inserted");
            let text: String = done.parts.into_iter().map(|p| p.expect("all present")).collect();
            self.inbox.push(ReceivedSms {
                originator: key.0,
                text,
                time: done.first_time,
                raw_tpdu: done.first_raw,
            });
        }
    }

    /// Number of multipart messages still waiting for parts.
    pub fn pending_multipart(&self) -> usize {
        self.partials.len()
    }

    /// Removes and returns all received messages.
    pub fn drain_inbox(&mut self) -> Vec<ReceivedSms> {
        std::mem::take(&mut self.inbox)
    }
}

/// Computes SRES/Kc material from the SIM secret and challenge (splitmix64
/// finaliser over the XOR of both).
fn mix(ki: u64, rand: u64) -> u64 {
    let mut z = ki ^ rand.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cipher::CipherAlgo;

    fn ms() -> MobileStation {
        MobileStation::new(
            Imsi::from_parts(460, 0, 42),
            Msisdn::new("13800138000").unwrap(),
            0xdead_beef_1234_5678,
        )
    }

    #[test]
    fn auth_is_deterministic_and_challenge_sensitive() {
        let ms = ms();
        assert_eq!(ms.a3_sres(1), ms.a3_sres(1));
        assert_ne!(ms.a3_sres(1), ms.a3_sres(2));
        assert_ne!(ms.a8_kc(1), ms.a8_kc(2));
    }

    #[test]
    fn different_sims_produce_different_responses() {
        let a = ms();
        let b = MobileStation::new(
            Imsi::from_parts(460, 0, 43),
            Msisdn::new("13800138001").unwrap(),
            0x1111_2222_3333_4444,
        );
        assert_ne!(a.a3_sres(99), b.a3_sres(99));
    }

    #[test]
    fn rat_downgrade_logic() {
        let mut ms = ms();
        ms.set_rat(RatPreference::PreferLte);
        assert!(!ms.uses_gsm(true), "LTE handset on healthy LTE stays off GSM");
        ms.set_lte_jammed(true);
        assert!(ms.uses_gsm(true), "jammed handset falls back to GSM");
        ms.set_lte_jammed(false);
        assert!(ms.uses_gsm(false), "no LTE coverage forces GSM");
        ms.set_rat(RatPreference::GsmOnly);
        assert!(ms.uses_gsm(true));
    }

    #[test]
    fn inbox_accumulates_and_drains() {
        let mut ms = ms();
        ms.push_sms(ReceivedSms {
            originator: "Google".into(),
            text: "G-786348".into(),
            time: SimClock::new(),
            raw_tpdu: vec![],
        });
        assert_eq!(ms.inbox().len(), 1);
        let drained = ms.drain_inbox();
        assert_eq!(drained.len(), 1);
        assert!(ms.inbox().is_empty());
    }

    #[test]
    fn cipher_context_defaults_to_plaintext() {
        let ms = ms();
        assert_eq!(ms.cipher_context().algo, CipherAlgo::A50);
    }
}
