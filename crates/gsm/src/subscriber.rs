//! Subscriber records (HLR-side state) and their indexed directory.
//!
//! Each record pairs the handset with the network's view of it: the
//! current attachment, the installed session key and any traffic a
//! MitM registration diverted. The directory maintains an MSISDN index
//! so number lookups are O(log n) instead of a scan over the whole
//! subscriber base.

use crate::a5::Kc;
use crate::cipher::CipherContext;
use crate::identity::{Msisdn, SubscriberId};
use crate::radio::CellId;
use crate::terminal::{MobileStation, ReceivedSms};
use std::collections::BTreeMap;

/// How a subscriber is currently reachable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Attachment {
    /// No service: traffic queues in the SMSC.
    None,
    /// Normally attached to a real cell under a negotiated cipher.
    Real {
        /// Serving cell.
        cell: CellId,
        /// Session cipher installed at attach.
        ctx: CipherContext,
    },
    /// An attacker's fake terminal registered under this identity; the
    /// real handset is parked on a fake cell and receives nothing.
    Spoofed {
        /// The (downgraded) cipher the spoofed registration runs.
        ctx: CipherContext,
    },
}

/// One provisioned subscriber: SIM + handset + network-side state.
#[derive(Debug)]
pub struct Subscriber {
    /// Human-readable name given at provisioning.
    pub name: String,
    /// The handset.
    pub ms: MobileStation,
    /// Current reachability.
    pub attachment: Attachment,
    /// Messages that a MitM registration diverted away from the victim.
    pub spoofed_inbox: Vec<ReceivedSms>,
    /// Session key currently installed network-side (None before auth).
    pub kc: Option<Kc>,
}

impl Subscriber {
    /// A freshly provisioned, unattached subscriber.
    pub fn new(name: String, ms: MobileStation) -> Self {
        Self { name, ms, attachment: Attachment::None, spoofed_inbox: Vec::new(), kc: None }
    }
}

/// The subscriber base with an MSISDN index.
#[derive(Debug, Default)]
pub struct SubscriberDirectory {
    subs: BTreeMap<u32, Subscriber>,
    by_msisdn: BTreeMap<Msisdn, u32>,
    next_id: u32,
}

impl SubscriberDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of provisioned subscribers.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// Whether nobody is provisioned.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Whether `msisdn` is already provisioned.
    pub fn contains_msisdn(&self, msisdn: &Msisdn) -> bool {
        self.by_msisdn.contains_key(msisdn)
    }

    /// The id the next [`SubscriberDirectory::insert`] will assign.
    pub fn next_id(&self) -> u32 {
        self.next_id
    }

    /// Inserts a subscriber under the next free id. The caller must
    /// have checked [`SubscriberDirectory::contains_msisdn`] first —
    /// the index maps one number to one record.
    pub fn insert(&mut self, sub: Subscriber) -> SubscriberId {
        let id = self.next_id;
        self.next_id += 1;
        debug_assert!(!self.by_msisdn.contains_key(sub.ms.msisdn()), "msisdn already indexed");
        self.by_msisdn.insert(sub.ms.msisdn().clone(), id);
        self.subs.insert(id, sub);
        SubscriberId(id)
    }

    /// Looks up a subscriber record.
    pub fn get(&self, id: SubscriberId) -> Option<&Subscriber> {
        self.subs.get(&id.0)
    }

    /// Mutable access to a subscriber record.
    pub fn get_mut(&mut self, id: SubscriberId) -> Option<&mut Subscriber> {
        self.subs.get_mut(&id.0)
    }

    /// Looks up a subscriber by phone number via the index.
    pub fn by_msisdn(&self, msisdn: &Msisdn) -> Option<SubscriberId> {
        self.by_msisdn.get(msisdn).copied().map(SubscriberId)
    }

    /// All subscriber ids in provisioning order, without allocating.
    pub fn ids(&self) -> impl Iterator<Item = SubscriberId> + '_ {
        self.subs.keys().map(|&k| SubscriberId(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::Imsi;

    fn sub(n: u64) -> Subscriber {
        let msisdn = Msisdn::new(&format!("1380013{n:04}")).unwrap();
        let imsi = Imsi::from_parts(460, 0, 1_000_000_000 + n);
        Subscriber::new(format!("sub{n}"), MobileStation::new(imsi, msisdn, 7))
    }

    #[test]
    fn msisdn_index_tracks_inserts() {
        let mut dir = SubscriberDirectory::new();
        let a = dir.insert(sub(1));
        let b = dir.insert(sub(2));
        assert_eq!(dir.by_msisdn(&Msisdn::new("13800130001").unwrap()), Some(a));
        assert_eq!(dir.by_msisdn(&Msisdn::new("13800130002").unwrap()), Some(b));
        assert_eq!(dir.by_msisdn(&Msisdn::new("13800139999").unwrap()), None);
        assert!(dir.contains_msisdn(&Msisdn::new("13800130001").unwrap()));
    }

    #[test]
    fn ids_iterate_in_provisioning_order() {
        let mut dir = SubscriberDirectory::new();
        let ids: Vec<SubscriberId> = (0..5).map(|n| dir.insert(sub(n))).collect();
        assert_eq!(dir.ids().collect::<Vec<_>>(), ids);
    }
}
