//! The passive SMS sniffer — the OsmocomBB/C118 rig of the paper.
//!
//! Each of the rig's receivers camps on one ARFCN; everything transmitted
//! within range on a monitored carrier is captured. Plaintext (A5/0)
//! traffic is read directly. A5/1 sessions are attacked for real: the
//! sniffer takes the ciphered SI5 padding frame (known plaintext), derives
//! keystream, and runs an exhaustive search over the weak-key subspace
//! with the genuine cipher — the reduced-form equivalent of a rainbow-
//! table lookup. Recovered keys decrypt the whole recorded session,
//! including the SMS-DELIVER carrying the one-time code.

use crate::a5::{Kc, RainbowTableModel, SubsetKeySearch, WEAK_KC_BASE};
use crate::arfcn::Arfcn;
use crate::cipher::{CipherAlgo, CipherContext};
use crate::error::GsmError;
use crate::network::GsmNetwork;
use crate::pdu::SmsDeliver;
use crate::radio::{AirFrame, AirMessage, CellId, Ether, Position};
use crate::time::SimClock;
use actfort_obs as obs;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A pluggable A5/1 key-recovery strategy fed with the keystream bits the
/// sniffer derives from a ciphered SI5 burst.
pub trait KeyCracker {
    /// Attempts recovery; returns the key and the simulated latency in
    /// milliseconds on success.
    fn crack(&mut self, frame_number: u32, keystream_bits: &[u8]) -> Option<(Kc, u64)>;
}

/// Exhaustive search over the weak-key subspace (the reduced-form
/// rainbow-table substitute; always succeeds when the key is in range).
#[derive(Debug, Clone)]
pub struct ExactSearchCracker {
    /// Keyspace bits to exhaust.
    pub bits: u32,
    /// Simulated search speed in keys per millisecond.
    pub keys_per_ms: u64,
}

impl KeyCracker for ExactSearchCracker {
    fn crack(&mut self, frame_number: u32, keystream_bits: &[u8]) -> Option<(Kc, u64)> {
        let search = SubsetKeySearch::new(Kc(WEAK_KC_BASE), self.bits);
        search
            .recover(frame_number, keystream_bits)
            .map(|(kc, tried)| (kc, tried / self.keys_per_ms.max(1)))
    }
}

/// Probabilistic rainbow-table lookup against *full-strength* session
/// keys. The published-table statistics (≈90% hit rate, seconds of
/// lookup) are drawn from [`RainbowTableModel`]; the substituted table
/// walk itself is stood in by a key oracle over the network's live
/// sessions — a candidate key only "hits" when it actually reproduces
/// the observed keystream, so the sniffer can never crack traffic it
/// did not correctly capture.
pub struct OracleTableCracker<'a> {
    net: &'a GsmNetwork,
    model: RainbowTableModel,
}

impl<'a> OracleTableCracker<'a> {
    /// Creates a cracker over the network's current sessions.
    pub fn new(net: &'a GsmNetwork, model: RainbowTableModel) -> Self {
        Self { net, model }
    }
}

impl KeyCracker for OracleTableCracker<'_> {
    fn crack(&mut self, frame_number: u32, keystream_bits: &[u8]) -> Option<(Kc, u64)> {
        for sub in self.net.subscriber_ids() {
            let Some(kc) = self.net.current_kc(sub) else { continue };
            // The model validates keystream consistency internally:
            // wrong candidates always miss, right ones hit at table rate.
            if let crate::a5::CrackOutcome::Recovered { kc, latency_ms } =
                self.model.crack(kc, frame_number, keystream_bits)
            {
                return Some((kc, latency_ms));
            }
        }
        None
    }
}

/// Sniffer rig configuration.
#[derive(Debug, Clone)]
pub struct SnifferConfig {
    /// Where the rig sits.
    pub position: Position,
    /// Receiver sensitivity radius in metres (the paper's attacks work
    /// "within hundreds of metres").
    pub range_m: f64,
    /// Number of single-carrier receivers (the paper uses 16 C118s).
    pub receivers: usize,
    /// Size (in bits) of the keyspace the cracker can exhaust — the
    /// attacker's "table coverage". Must be ≥ the network's
    /// `session_key_bits` for cracking to succeed.
    pub crack_bits: u32,
    /// Simulated search speed in keys per millisecond.
    pub crack_rate_keys_per_ms: u64,
}

impl Default for SnifferConfig {
    fn default() -> Self {
        Self {
            position: Position::default(),
            range_m: 600.0,
            receivers: 16,
            crack_bits: 20,
            crack_rate_keys_per_ms: 1_000,
        }
    }
}

/// One SMS recovered off the air.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SniffedSms {
    /// Cell the delivery was observed on.
    pub cell: CellId,
    /// Carrier it was captured from.
    pub arfcn: Arfcn,
    /// Capture time.
    pub time: SimClock,
    /// Displayed sender.
    pub originator: String,
    /// Recovered message text.
    pub text: String,
    /// Cipher the frame was protected with.
    pub cipher: CipherAlgo,
    /// Session key used for decryption, when one had to be cracked.
    pub cracked_key: Option<Kc>,
    /// Simulated key-search latency charged to this message (ms).
    pub crack_latency_ms: u64,
    /// Whether this was a mobile-originated submission (uplink) rather
    /// than a delivery; `originator` then names the *destination*.
    pub uplink: bool,
}

/// Outcome statistics of a sniffing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SnifferStats {
    /// Frames seen on monitored carriers within range.
    pub frames_captured: usize,
    /// Frames outside range or on unmonitored carriers.
    pub frames_missed: usize,
    /// A5/1 sessions whose key was recovered.
    pub sessions_cracked: usize,
    /// A5/1 or A5/3 sessions that stayed dark.
    pub sessions_dark: usize,
    /// SMS messages recovered.
    pub sms_recovered: usize,
}

/// Per-cell cracking state. Several subscribers share a cell, each with
/// their own session key, so the rig accumulates every key it recovers
/// and tries all of them against each ciphered frame.
#[derive(Debug, Clone, Default)]
struct CellState {
    /// Every session key recovered on this cell, with its crack latency.
    keys: Vec<(Kc, u64)>,
    /// SI5 keystreams that failed the search (strong keys) — avoids
    /// re-searching identical bursts.
    dark_marked: bool,
    /// Ciphered frames no known key decrypts yet.
    pending: Vec<AirFrame>,
}

/// A passive multi-carrier capture rig.
#[derive(Debug)]
pub struct PassiveSniffer {
    config: SnifferConfig,
    monitored: Vec<Arfcn>,
    cursor: u64,
    cells: HashMap<CellId, CellState>,
    captures: Vec<AirFrame>,
    sms: Vec<SniffedSms>,
    stats: SnifferStats,
}

impl PassiveSniffer {
    /// Creates an idle rig.
    pub fn new(config: SnifferConfig) -> Self {
        Self {
            config,
            monitored: Vec::new(),
            cursor: 0,
            cells: HashMap::new(),
            captures: Vec::new(),
            sms: Vec::new(),
            stats: SnifferStats::default(),
        }
    }

    /// Tunes a receiver to `arfcn`.
    ///
    /// # Errors
    ///
    /// Returns [`GsmError::SnifferCapacity`] once every receiver is busy.
    pub fn monitor(&mut self, arfcn: Arfcn) -> Result<(), GsmError> {
        if self.monitored.contains(&arfcn) {
            return Ok(());
        }
        if self.monitored.len() >= self.config.receivers {
            return Err(GsmError::SnifferCapacity { capacity: self.config.receivers });
        }
        self.monitored.push(arfcn);
        Ok(())
    }

    /// Currently monitored carriers.
    pub fn monitored(&self) -> &[Arfcn] {
        &self.monitored
    }

    /// Ingests everything new on the ether since the last poll, cracking
    /// weak keys by exhaustive search.
    pub fn poll(&mut self, ether: &Ether) {
        let mut cracker = ExactSearchCracker {
            bits: self.config.crack_bits,
            keys_per_ms: self.config.crack_rate_keys_per_ms,
        };
        self.poll_with(ether, &mut cracker);
    }

    /// Ingests new traffic, attacking A5/1 sessions with probabilistic
    /// rainbow-table lookups — works against full-strength keys, but a
    /// table miss leaves that session dark for good.
    pub fn poll_with_tables(&mut self, net: &GsmNetwork, model: RainbowTableModel) {
        // The borrow of `net.ether()` and the oracle over `net` are both
        // immutable; clone the frames up front to keep them disjoint.
        let mut cracker = OracleTableCracker::new(net, model);
        let frames: Vec<AirFrame> = net.ether().frames_since(self.cursor).to_vec();
        if let Some(last) = frames.last() {
            self.cursor = last.seq + 1;
        }
        for frame in frames {
            self.ingest(frame, &mut cracker);
        }
    }

    /// Ingests new traffic with a custom key-recovery strategy.
    pub fn poll_with(&mut self, ether: &Ether, cracker: &mut dyn KeyCracker) {
        let frames: Vec<AirFrame> = ether.frames_since(self.cursor).to_vec();
        if let Some(last) = frames.last() {
            self.cursor = last.seq + 1;
        }
        for frame in frames {
            self.ingest(frame, cracker);
        }
    }

    fn ingest(&mut self, frame: AirFrame, cracker: &mut dyn KeyCracker) {
        let in_range = frame.origin.distance(self.config.position) <= self.config.range_m;
        let tuned = self.monitored.contains(&frame.arfcn);
        if !in_range || !tuned {
            self.stats.frames_missed += 1;
            obs::add("gsm.sniffer.frames_missed", 1);
            return;
        }
        self.stats.frames_captured += 1;
        obs::add("gsm.sniffer.frames_captured", 1);
        self.captures.push(frame.clone());

        match frame.cipher {
            CipherAlgo::A50 => {
                if let Ok(msg) = frame.message_plaintext() {
                    self.handle_plain(&frame, &msg, None, 0);
                }
            }
            CipherAlgo::A51 => self.handle_ciphered(frame, cracker),
            CipherAlgo::A53 => {
                // Uncrackable: record the cell as dark once.
                let entry = self.cells.entry(frame.cell).or_default();
                if !entry.dark_marked {
                    entry.dark_marked = true;
                    self.stats.sessions_dark += 1;
                    obs::add("gsm.sniffer.sessions_dark", 1);
                }
            }
        }
    }

    fn handle_ciphered(&mut self, frame: AirFrame, cracker: &mut dyn KeyCracker) {
        let cell = frame.cell;
        let known_keys = self.cells.entry(cell).or_default().keys.clone();

        // Try every session key already recovered on this cell.
        for (kc, latency) in &known_keys {
            let ctx = CipherContext { algo: CipherAlgo::A51, kc: *kc };
            if let Ok(msg) = frame.message_with(&ctx) {
                self.handle_plain(&frame, &msg, Some(*kc), *latency);
                return;
            }
        }

        // Unknown key: try the frame as SI5 known plaintext
        // (keystream = ciphertext XOR the fixed padding).
        let plain = AirMessage::Si5Padding.encode();
        if frame.payload.len() == plain.len() {
            let keystream_bytes: Vec<u8> =
                frame.payload.iter().zip(&plain).map(|(c, p)| c ^ p).collect();
            let mut keystream_bits = Vec::with_capacity(keystream_bytes.len() * 8);
            for b in &keystream_bytes {
                for i in (0..8).rev() {
                    keystream_bits.push((b >> i) & 1);
                }
            }
            if let Some((kc, latency_ms)) = cracker.crack(frame.frame_number, &keystream_bits) {
                let state = self.cells.get_mut(&cell).expect("inserted above");
                state.keys.push((kc, latency_ms));
                self.stats.sessions_cracked += 1;
                obs::add("gsm.sniffer.sessions_cracked", 1);
                // Replay recorded frames the new key decrypts.
                let pending = std::mem::take(&mut state.pending);
                let ctx = CipherContext { algo: CipherAlgo::A51, kc };
                let mut still_pending = Vec::new();
                for old in pending {
                    match old.message_with(&ctx) {
                        Ok(msg) => self.handle_plain(&old, &msg, Some(kc), latency_ms),
                        Err(_) => still_pending.push(old),
                    }
                }
                self.cells.get_mut(&cell).expect("present").pending = still_pending;
                return;
            }
            // A well-formed SI5-length burst that yields no key: that
            // session stays dark (one SI5 burst marks one session).
            self.stats.sessions_dark += 1;
            obs::add("gsm.sniffer.sessions_dark", 1);
            return;
        }
        self.cells.get_mut(&cell).expect("inserted above").pending.push(frame);
    }

    fn handle_plain(&mut self, frame: &AirFrame, msg: &AirMessage, key: Option<Kc>, latency: u64) {
        match msg {
            AirMessage::SmsDeliverData { tpdu } => {
                if let Ok(deliver) = SmsDeliver::decode(tpdu) {
                    if let Ok(text) = deliver.text() {
                        self.sms.push(SniffedSms {
                            cell: frame.cell,
                            arfcn: frame.arfcn,
                            time: frame.time,
                            originator: deliver.originator.to_string(),
                            text,
                            cipher: frame.cipher,
                            cracked_key: key,
                            crack_latency_ms: latency,
                            uplink: false,
                        });
                        self.stats.sms_recovered += 1;
                        obs::add("gsm.sniffer.sms_recovered", 1);
                    }
                }
            }
            AirMessage::SmsSubmitData { tpdu } => {
                if let Ok(submit) = crate::pdu::SmsSubmit::decode(tpdu) {
                    if let Ok(text) = submit.text() {
                        self.sms.push(SniffedSms {
                            cell: frame.cell,
                            arfcn: frame.arfcn,
                            time: frame.time,
                            originator: submit.destination.to_string(),
                            text,
                            cipher: frame.cipher,
                            cracked_key: key,
                            crack_latency_ms: latency,
                            uplink: true,
                        });
                        self.stats.sms_recovered += 1;
                        obs::add("gsm.sniffer.sms_recovered", 1);
                    }
                }
            }
            _ => {}
        }
    }

    /// Everything captured so far, in order.
    pub fn captures(&self) -> &[AirFrame] {
        &self.captures
    }

    /// All SMS recovered so far.
    pub fn sms(&self) -> &[SniffedSms] {
        &self.sms
    }

    /// SMS whose text matches any of the given case-sensitive substrings —
    /// the Wireshark-style OTP display filter of Fig. 5.
    pub fn sms_matching<'a>(&'a self, needles: &'a [&'a str]) -> impl Iterator<Item = &'a SniffedSms> {
        self.sms.iter().filter(move |s| needles.iter().any(|n| s.text.contains(n)))
    }

    /// Run statistics.
    pub fn stats(&self) -> SnifferStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::Msisdn;
    use crate::network::{GsmNetwork, NetworkConfig};

    fn weak_net() -> GsmNetwork {
        GsmNetwork::new(NetworkConfig { session_key_bits: 16, ..Default::default() })
    }

    fn rig() -> PassiveSniffer {
        let mut s = PassiveSniffer::new(SnifferConfig {
            crack_bits: 16,
            ..SnifferConfig::default()
        });
        s.monitor(Arfcn(17)).unwrap();
        s
    }

    fn msisdn(s: &str) -> Msisdn {
        Msisdn::new(s).unwrap()
    }

    #[test]
    fn sniffs_plaintext_network_directly() {
        let mut net = GsmNetwork::new(NetworkConfig {
            cipher_preference: vec![CipherAlgo::A50],
            ..Default::default()
        });
        let id = net.provision_subscriber("v", msisdn("13800138000")).unwrap();
        net.attach(id).unwrap();
        net.send_sms(&msisdn("13800138000"), "G-786348 is your Google verification code.").unwrap();
        let mut sniffer = rig();
        sniffer.poll(net.ether());
        assert_eq!(sniffer.sms().len(), 1);
        assert_eq!(sniffer.sms()[0].cipher, CipherAlgo::A50);
        assert!(sniffer.sms()[0].cracked_key.is_none());
        assert!(sniffer.sms()[0].text.contains("G-786348"));
    }

    #[test]
    fn cracks_weak_a51_session_and_reads_otp() {
        let mut net = weak_net();
        let id = net.provision_subscriber("v", msisdn("13800138000")).unwrap();
        net.attach(id).unwrap();
        net.send_sms(&msisdn("13800138000"), "255436 is your Facebook password reset code").unwrap();
        let mut sniffer = rig();
        sniffer.poll(net.ether());
        assert_eq!(sniffer.stats().sessions_cracked, 1);
        assert_eq!(sniffer.sms().len(), 1);
        let sms = &sniffer.sms()[0];
        assert_eq!(sms.cipher, CipherAlgo::A51);
        assert_eq!(sms.cracked_key, net.current_kc(id), "recovered the true session key");
        assert!(sms.text.contains("255436"));
    }

    #[test]
    fn strong_keys_stay_dark() {
        let mut net = GsmNetwork::new(NetworkConfig { session_key_bits: 64, ..Default::default() });
        let id = net.provision_subscriber("v", msisdn("13800138000")).unwrap();
        net.attach(id).unwrap();
        net.send_sms(&msisdn("13800138000"), "secret 111222").unwrap();
        let mut sniffer = rig();
        sniffer.poll(net.ether());
        assert_eq!(sniffer.stats().sessions_cracked, 0);
        assert_eq!(sniffer.stats().sessions_dark, 1);
        assert!(sniffer.sms().is_empty());
    }

    #[test]
    fn a53_sessions_stay_dark() {
        let mut net = GsmNetwork::new(NetworkConfig {
            cipher_preference: vec![CipherAlgo::A53],
            session_key_bits: 16,
            ..Default::default()
        });
        let id = net.provision_subscriber("v", msisdn("13800138000")).unwrap();
        net.attach(id).unwrap();
        net.send_sms(&msisdn("13800138000"), "secret 333444").unwrap();
        let mut sniffer = rig();
        sniffer.poll(net.ether());
        assert!(sniffer.sms().is_empty());
    }

    #[test]
    fn out_of_range_traffic_is_missed() {
        let mut net = weak_net();
        let id = net.provision_subscriber("v", msisdn("13800138000")).unwrap();
        net.attach(id).unwrap();
        net.send_sms(&msisdn("13800138000"), "far away 555").unwrap();
        let mut sniffer = PassiveSniffer::new(SnifferConfig {
            position: Position::new(5_000.0, 5_000.0),
            crack_bits: 16,
            ..SnifferConfig::default()
        });
        sniffer.monitor(Arfcn(17)).unwrap();
        sniffer.poll(net.ether());
        assert_eq!(sniffer.stats().frames_captured, 0);
        assert!(sniffer.stats().frames_missed > 0);
        assert!(sniffer.sms().is_empty());
    }

    #[test]
    fn unmonitored_arfcn_is_missed() {
        let mut net = weak_net();
        let id = net.provision_subscriber("v", msisdn("13800138000")).unwrap();
        net.attach(id).unwrap();
        net.send_sms(&msisdn("13800138000"), "wrong channel 777").unwrap();
        let mut sniffer = PassiveSniffer::new(SnifferConfig::default());
        sniffer.monitor(Arfcn(99)).unwrap();
        sniffer.poll(net.ether());
        assert!(sniffer.sms().is_empty());
    }

    #[test]
    fn receiver_capacity_enforced() {
        let mut sniffer = PassiveSniffer::new(SnifferConfig { receivers: 2, ..Default::default() });
        sniffer.monitor(Arfcn(1)).unwrap();
        sniffer.monitor(Arfcn(2)).unwrap();
        assert!(matches!(sniffer.monitor(Arfcn(3)), Err(GsmError::SnifferCapacity { capacity: 2 })));
        // Re-monitoring an existing carrier is free.
        sniffer.monitor(Arfcn(1)).unwrap();
    }

    #[test]
    fn incremental_polling_does_not_duplicate() {
        let mut net = weak_net();
        let id = net.provision_subscriber("v", msisdn("13800138000")).unwrap();
        net.attach(id).unwrap();
        net.send_sms(&msisdn("13800138000"), "first 111").unwrap();
        let mut sniffer = rig();
        sniffer.poll(net.ether());
        let after_first = sniffer.sms().len();
        sniffer.poll(net.ether());
        assert_eq!(sniffer.sms().len(), after_first, "re-poll found nothing new");
        net.send_sms(&msisdn("13800138000"), "second 222").unwrap();
        sniffer.poll(net.ether());
        assert_eq!(sniffer.sms().len(), after_first + 1);
    }

    #[test]
    fn rainbow_tables_crack_full_strength_keys_probabilistically() {
        use crate::a5::RainbowTableModel;
        // Full 64-bit keys: exhaustive search is hopeless, tables are the
        // only way — exactly the published-table reality.
        let mut net = GsmNetwork::new(NetworkConfig::default());
        let id = net.provision_subscriber("v", msisdn("13800138000")).unwrap();
        net.attach(id).unwrap();
        net.send_sms(&msisdn("13800138000"), "424242 is your Google login code.").unwrap();

        // Exhaustive search (even generous) fails…
        let mut blind = rig();
        blind.poll(net.ether());
        assert_eq!(blind.stats().sessions_cracked, 0);

        // …a perfect table cracks it…
        let mut sniffer = PassiveSniffer::new(SnifferConfig::default());
        sniffer.monitor(Arfcn(17)).unwrap();
        sniffer.poll_with_tables(&net, RainbowTableModel::new(1).with_hit_rate(1.0));
        assert_eq!(sniffer.stats().sessions_cracked, 1);
        assert_eq!(sniffer.sms().len(), 1);
        assert!(sniffer.sms()[0].crack_latency_ms >= 2_000, "table lookups cost seconds");

        // …and an empty table leaves it dark.
        let mut missed = PassiveSniffer::new(SnifferConfig::default());
        missed.monitor(Arfcn(17)).unwrap();
        missed.poll_with_tables(&net, RainbowTableModel::new(1).with_hit_rate(0.0));
        assert_eq!(missed.stats().sessions_cracked, 0);
        assert!(missed.sms().is_empty());
    }

    #[test]
    fn rainbow_tables_miss_some_sessions_at_realistic_rates() {
        use crate::a5::RainbowTableModel;
        let mut net = GsmNetwork::new(NetworkConfig::default());
        for i in 0..30 {
            let m = msisdn(&format!("139{i:08}"));
            let id = net.provision_subscriber(&format!("u{i}"), m.clone()).unwrap();
            net.attach(id).unwrap();
        }
        let mut sniffer = PassiveSniffer::new(SnifferConfig::default());
        sniffer.monitor(Arfcn(17)).unwrap();
        sniffer.poll_with_tables(&net, RainbowTableModel::new(5));
        let s = sniffer.stats();
        assert_eq!(s.sessions_cracked + s.sessions_dark, 30);
        assert!(s.sessions_cracked >= 20, "~90%% hit rate, got {}", s.sessions_cracked);
        assert!(s.sessions_dark >= 1, "misses should occur across 30 sessions");
    }

    #[test]
    fn uplink_submissions_are_sniffed_too() {
        let mut net = weak_net();
        let a = net.provision_subscriber("a", msisdn("13800138000")).unwrap();
        let b = net.provision_subscriber("b", msisdn("13900139000")).unwrap();
        net.attach(a).unwrap();
        net.attach(b).unwrap();
        net.ms_send_sms(a, &Msisdn::new("13900139000").unwrap(), "my pin is 4421, don't share")
            .unwrap();
        let mut sniffer = rig();
        sniffer.poll(net.ether());
        let uplink: Vec<_> = sniffer.sms().iter().filter(|s| s.uplink).collect();
        assert_eq!(uplink.len(), 1, "captured the mobile-originated submit");
        assert!(uplink[0].text.contains("4421"));
        assert_eq!(uplink[0].originator, "13900139000", "records the destination");
        // The delivery leg was captured as well.
        assert!(sniffer.sms().iter().any(|s| !s.uplink && s.text.contains("4421")));
    }

    #[test]
    fn otp_display_filter() {
        let mut net = weak_net();
        let id = net.provision_subscriber("v", msisdn("13800138000")).unwrap();
        net.attach(id).unwrap();
        net.send_sms(&msisdn("13800138000"), "G-786348 is your Google verification code.").unwrap();
        net.send_sms(&msisdn("13800138000"), "lunch at noon?").unwrap();
        let mut sniffer = rig();
        sniffer.poll(net.ether());
        let hits: Vec<_> = sniffer.sms_matching(&["verification code", "reset code"]).collect();
        assert_eq!(hits.len(), 1);
        assert!(hits[0].text.contains("Google"));
    }
}
