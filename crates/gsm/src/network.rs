//! The legitimate GSM network: cells, HLR, authentication, paging and
//! SMS delivery over the shared ether.
//!
//! The network drives complete protocol transactions (location update,
//! authentication, cipher negotiation, SMS transfer) and emits every burst
//! into the [`Ether`], so passive sniffers and the MitM rig observe
//! byte-faithful traffic.

use crate::a5::Kc;
use crate::cipher::{CipherAlgo, CipherContext, CipherSet};
use crate::error::GsmError;
use crate::identity::{Imsi, Msisdn, SubscriberId, Tmsi};
use crate::pdu::{Address, Scts, SmsDeliver};
use crate::radio::{AirFrame, AirMessage, CellConfig, CellId, Direction, Ether, MsIdentity, Position};
use crate::smsc::SmsCenter;
use crate::terminal::{Camp, MobileStation, ReceivedSms};
use crate::time::SimClock;
use actfort_obs as obs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Network-wide configuration.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Cipher preference, strongest first. Real deployments the paper
    /// measured largely ran A5/1 (or nothing), hence the default.
    pub cipher_preference: Vec<CipherAlgo>,
    /// Whether TMSIs are reallocated at location update (privacy feature).
    pub tmsi_reallocation: bool,
    /// Whether an LTE overlay exists; handsets preferring LTE are
    /// unreachable over GSM until jammed when this is `true`.
    pub lte_available: bool,
    /// Page with IMSI instead of TMSI (a privacy misconfiguration that
    /// makes victim tracking trivial).
    pub page_by_imsi: bool,
    /// Air-interface frame loss in per-mille.
    pub frame_loss_per_mille: u16,
    /// Effective entropy of issued session keys. `64` means full-strength
    /// keys (uncrackable in-process); small values confine keys to the
    /// [`crate::a5::WEAK_KC_BASE`] subspace so sniffers can genuinely
    /// recover them by exhaustive search over the real cipher — the
    /// reduced-form stand-in for rainbow-table coverage.
    pub session_key_bits: u32,
    /// RNG seed controlling challenges, keys and TMSIs.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            cipher_preference: vec![CipherAlgo::A51, CipherAlgo::A50],
            tmsi_reallocation: true,
            lte_available: false,
            page_by_imsi: false,
            frame_loss_per_mille: 0,
            session_key_bits: 64,
            seed: 0x0ac7_f047,
        }
    }
}

/// How a subscriber is currently reachable.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Attachment {
    None,
    Real { cell: CellId, ctx: CipherContext },
    /// An attacker's fake terminal registered under this identity; the
    /// real handset is parked on a fake cell and receives nothing.
    Spoofed { ctx: CipherContext },
}

#[derive(Debug)]
struct Subscriber {
    name: String,
    ms: MobileStation,
    attachment: Attachment,
    /// Messages that a MitM registration diverted away from the victim.
    spoofed_inbox: Vec<ReceivedSms>,
    /// Session key currently installed network-side (None before auth).
    kc: Option<Kc>,
}

/// A complete simulated GSM network.
///
/// See the crate-level example for typical use.
#[derive(Debug)]
pub struct GsmNetwork {
    config: NetworkConfig,
    clock: SimClock,
    ether: Ether,
    cells: Vec<CellConfig>,
    subs: BTreeMap<u32, Subscriber>,
    smsc: SmsCenter,
    rng: StdRng,
    next_sub: u32,
    next_tmsi: u32,
    next_concat_ref: u8,
}

impl GsmNetwork {
    /// Creates a network with one default cell at the origin.
    pub fn new(config: NetworkConfig) -> Self {
        let ether = Ether::with_loss(config.frame_loss_per_mille);
        let rng = StdRng::seed_from_u64(config.seed);
        let default_cell = CellConfig {
            cipher_preference: config.cipher_preference.clone(),
            ..CellConfig::default()
        };
        Self {
            config,
            clock: SimClock::new(),
            ether,
            cells: vec![default_cell],
            subs: BTreeMap::new(),
            smsc: SmsCenter::default(),
            rng,
            next_sub: 0,
            next_tmsi: 0x0100_0000,
            next_concat_ref: 0,
        }
    }

    /// Adds a cell.
    ///
    /// # Errors
    ///
    /// Returns [`GsmError::ProtocolViolation`] on a duplicate cell id.
    pub fn add_cell(&mut self, cell: CellConfig) -> Result<CellId, GsmError> {
        if self.cells.iter().any(|c| c.id == cell.id) {
            return Err(GsmError::ProtocolViolation(format!("duplicate {}", cell.id)));
        }
        let id = cell.id;
        self.cells.push(cell);
        Ok(id)
    }

    /// All configured cells.
    pub fn cells(&self) -> &[CellConfig] {
        &self.cells
    }

    /// The shared air-interface capture log.
    pub fn ether(&self) -> &Ether {
        &self.ether
    }

    /// Current simulated time.
    pub fn clock(&self) -> SimClock {
        self.clock
    }

    /// Advances simulated time by `ms` milliseconds.
    pub fn advance_millis(&mut self, ms: u64) {
        self.clock.advance_millis(ms);
    }

    /// Provisions a SIM + handset for `msisdn`.
    ///
    /// # Errors
    ///
    /// Returns [`GsmError::ProtocolViolation`] when the number is already
    /// provisioned.
    pub fn provision_subscriber(
        &mut self,
        name: &str,
        msisdn: Msisdn,
    ) -> Result<SubscriberId, GsmError> {
        if self.subs.values().any(|s| s.ms.msisdn() == &msisdn) {
            return Err(GsmError::ProtocolViolation(format!("{msisdn} already provisioned")));
        }
        let id = self.next_sub;
        self.next_sub += 1;
        let imsi = Imsi::from_parts(460, 0, 1_000_000_000 + u64::from(id));
        let ki = self.rng.gen();
        let ms = MobileStation::new(imsi, msisdn, ki);
        self.subs.insert(
            id,
            Subscriber {
                name: name.to_owned(),
                ms,
                attachment: Attachment::None,
                spoofed_inbox: Vec::new(),
                kc: None,
            },
        );
        Ok(SubscriberId(id))
    }

    /// All provisioned subscriber ids, in provisioning order.
    pub fn subscriber_ids(&self) -> Vec<SubscriberId> {
        self.subs.keys().map(|&k| SubscriberId(k)).collect()
    }

    /// Looks up a subscriber by phone number.
    pub fn subscriber_by_msisdn(&self, msisdn: &Msisdn) -> Option<SubscriberId> {
        self.subs
            .iter()
            .find(|(_, s)| s.ms.msisdn() == msisdn)
            .map(|(&id, _)| SubscriberId(id))
    }

    /// Human-readable name given at provisioning.
    pub fn subscriber_name(&self, id: SubscriberId) -> Option<&str> {
        self.subs.get(&id.0).map(|s| s.name.as_str())
    }

    /// Read access to a subscriber's handset.
    pub fn terminal(&self, id: SubscriberId) -> Option<&MobileStation> {
        self.subs.get(&id.0).map(|s| &s.ms)
    }

    /// Mutable access to a subscriber's handset (moving it, changing RAT
    /// preference or classmark, jamming its LTE layer).
    pub fn terminal_mut(&mut self, id: SubscriberId) -> Option<&mut MobileStation> {
        self.subs.get_mut(&id.0).map(|s| &mut s.ms)
    }

    /// The session key currently installed for a subscriber, if any.
    /// (Test/oracle hook: the rainbow-table model validates recovered keys
    /// against this.)
    pub fn current_kc(&self, id: SubscriberId) -> Option<Kc> {
        self.subs.get(&id.0).and_then(|s| s.kc)
    }

    /// Messages diverted by a spoofed (MitM) registration for `id`.
    pub fn spoofed_inbox(&self, id: SubscriberId) -> &[ReceivedSms] {
        self.subs.get(&id.0).map(|s| s.spoofed_inbox.as_slice()).unwrap_or(&[])
    }

    /// Confines a session key to the configured weak-key subspace.
    fn weaken(&self, kc: Kc) -> Kc {
        let bits = self.config.session_key_bits.min(64);
        if bits >= 64 {
            return kc;
        }
        let mask = (1u64 << bits) - 1;
        Kc((kc.0 & mask) | (crate::a5::WEAK_KC_BASE & !mask))
    }

    fn cell_for(&self, pos: Position) -> Option<&CellConfig> {
        self.cells
            .iter()
            .filter(|c| c.position.distance(pos) <= c.range_m)
            .min_by(|a, b| {
                a.position
                    .distance(pos)
                    .partial_cmp(&b.position.distance(pos))
                    .expect("distances are finite")
            })
    }

    /// Transmits one burst; returns `false` when the loss model swallowed
    /// it (the frame then reaches neither receivers nor sniffers).
    fn transmit(
        &mut self,
        cell: &CellConfig,
        direction: Direction,
        cipher: CipherAlgo,
        ctx: Option<&CipherContext>,
        origin: Position,
        msg: &AirMessage,
    ) -> bool {
        self.clock.advance_frame();
        let frame_number = self.clock.frame_number();
        let mut payload = msg.encode();
        if let Some(ctx) = ctx {
            ctx.apply(frame_number, &mut payload);
        }
        self.ether.transmit(AirFrame {
            seq: 0,
            time: self.clock,
            frame_number,
            arfcn: cell.arfcn,
            cell: cell.id,
            direction,
            cipher,
            origin,
            payload,
        })
    }

    /// Performs a full location update for `id` on the best covering cell:
    /// LAU request, authentication, cipher-mode negotiation and TMSI
    /// reallocation. On success the subscriber becomes reachable for SMS.
    ///
    /// # Errors
    ///
    /// - [`GsmError::UnknownSubscriber`] for an unknown id.
    /// - [`GsmError::ProtocolViolation`] when the handset is out of every
    ///   cell's range, or is camped on LTE (jam it first).
    pub fn attach(&mut self, id: SubscriberId) -> Result<CellId, GsmError> {
        let sub = self.subs.get(&id.0).ok_or_else(|| GsmError::UnknownSubscriber(id.to_string()))?;
        if !sub.ms.uses_gsm(self.config.lte_available) {
            return Err(GsmError::ProtocolViolation("handset is camped on LTE".into()));
        }
        let pos = sub.ms.position();
        let cell = self
            .cell_for(pos)
            .cloned()
            .ok_or_else(|| GsmError::ProtocolViolation("no cell covers the handset".into()))?;
        let ms_pos = pos;
        let bts_pos = cell.position;

        // Uplink LAU request with current identity (TMSI if held).
        let (identity, classmark) = {
            let sub = self.subs.get(&id.0).expect("checked above");
            let identity = match sub.ms.tmsi() {
                Some(t) => MsIdentity::Tmsi(t),
                None => MsIdentity::Imsi(sub.ms.imsi()),
            };
            (identity, sub.ms.classmark())
        };
        self.transmit(
            &cell,
            Direction::Uplink,
            CipherAlgo::A50,
            None,
            ms_pos,
            &AirMessage::LocationUpdateRequest { id: identity, classmark: classmark.mask() },
        );

        // Challenge-response authentication.
        let rand: u64 = self.rng.gen();
        self.transmit(
            &cell,
            Direction::Downlink,
            CipherAlgo::A50,
            None,
            bts_pos,
            &AirMessage::AuthRequest { rand },
        );
        let (sres, kc) = {
            let sub = self.subs.get(&id.0).expect("checked above");
            (sub.ms.a3_sres(rand), self.weaken(sub.ms.a8_kc(rand)))
        };
        self.transmit(
            &cell,
            Direction::Uplink,
            CipherAlgo::A50,
            None,
            ms_pos,
            &AirMessage::AuthResponse { sres },
        );

        // Cipher mode: strongest algorithm the classmark and the cell allow.
        let algo = classmark.negotiate(&cell.cipher_preference);
        self.transmit(
            &cell,
            Direction::Downlink,
            CipherAlgo::A50,
            None,
            bts_pos,
            &AirMessage::CipherModeCommand { algo },
        );
        let ctx = CipherContext { algo, kc };
        self.transmit(
            &cell,
            Direction::Uplink,
            algo,
            Some(&ctx),
            ms_pos,
            &AirMessage::CipherModeComplete,
        );

        // Predictable SI5 padding inside the ciphered channel — the known
        // plaintext real-world A5/1 cracking feeds on.
        self.transmit(&cell, Direction::Downlink, algo, Some(&ctx), bts_pos, &AirMessage::Si5Padding);

        // TMSI reallocation inside the ciphered channel.
        let new_tmsi = if self.config.tmsi_reallocation {
            self.next_tmsi += 1;
            Some(Tmsi(self.next_tmsi))
        } else {
            None
        };
        self.transmit(
            &cell,
            Direction::Downlink,
            algo,
            Some(&ctx),
            bts_pos,
            &AirMessage::LocationUpdateAccept { new_tmsi },
        );

        let sub = self.subs.get_mut(&id.0).expect("checked above");
        if let Some(t) = new_tmsi {
            sub.ms.set_tmsi(Some(t));
        }
        sub.ms.set_camp(Camp::Real(cell.id));
        sub.ms.set_cipher_context(ctx);
        sub.attachment = Attachment::Real { cell: cell.id, ctx };
        sub.kc = Some(kc);
        obs::add("gsm.network.attaches", 1);
        Ok(cell.id)
    }

    /// Detaches a subscriber (handset loses service).
    pub fn detach(&mut self, id: SubscriberId) {
        if let Some(sub) = self.subs.get_mut(&id.0) {
            sub.attachment = Attachment::None;
            sub.ms.set_camp(Camp::Idle);
        }
    }

    /// Registers an attacker-controlled fake terminal under the victim's
    /// identity (Fig. 10 of the paper). `auth_relay` receives the network's
    /// RAND and must return the victim's SRES — in the real attack the
    /// fake base station relays the challenge to the captive victim.
    ///
    /// On success the victim's SMS traffic is diverted to the spoofed
    /// registration (readable via [`GsmNetwork::spoofed_inbox`]) under the
    /// negotiated cipher, which the attacker downgraded to A5/0 by
    /// claiming an empty classmark.
    ///
    /// # Errors
    ///
    /// - [`GsmError::UnknownSubscriber`] for an unknown victim.
    /// - [`GsmError::ProtocolViolation`] when the relayed SRES is wrong or
    ///   the negotiated cipher is one the attacker cannot run (the spoof
    ///   must force A5/0).
    pub fn register_spoofed<F>(
        &mut self,
        victim: SubscriberId,
        attacker_pos: Position,
        classmark: CipherSet,
        mut auth_relay: F,
    ) -> Result<CipherContext, GsmError>
    where
        F: FnMut(u64) -> u32,
    {
        let sub = self
            .subs
            .get(&victim.0)
            .ok_or_else(|| GsmError::UnknownSubscriber(victim.to_string()))?;
        let imsi = sub.ms.imsi();
        let cell = self
            .cell_for(attacker_pos)
            .cloned()
            .ok_or_else(|| GsmError::ProtocolViolation("no cell covers the attacker".into()))?;
        let bts_pos = cell.position;

        self.transmit(
            &cell,
            Direction::Uplink,
            CipherAlgo::A50,
            None,
            attacker_pos,
            &AirMessage::LocationUpdateRequest {
                id: MsIdentity::Imsi(imsi),
                classmark: classmark.mask(),
            },
        );
        let rand: u64 = self.rng.gen();
        self.transmit(
            &cell,
            Direction::Downlink,
            CipherAlgo::A50,
            None,
            bts_pos,
            &AirMessage::AuthRequest { rand },
        );
        let relayed_sres = auth_relay(rand);
        self.transmit(
            &cell,
            Direction::Uplink,
            CipherAlgo::A50,
            None,
            attacker_pos,
            &AirMessage::AuthResponse { sres: relayed_sres },
        );
        let (expected_sres, kc) = {
            let sub = self.subs.get(&victim.0).expect("checked above");
            (sub.ms.a3_sres(rand), self.weaken(sub.ms.a8_kc(rand)))
        };
        if relayed_sres != expected_sres {
            return Err(GsmError::ProtocolViolation("authentication failed (bad SRES)".into()));
        }
        let algo = classmark.negotiate(&cell.cipher_preference);
        self.transmit(
            &cell,
            Direction::Downlink,
            CipherAlgo::A50,
            None,
            bts_pos,
            &AirMessage::CipherModeCommand { algo },
        );
        if algo != CipherAlgo::A50 {
            // The attacker does not hold Kc; only a successful downgrade
            // to plaintext lets the spoofed registration proceed.
            return Err(GsmError::ProtocolViolation(format!(
                "network insisted on {algo}; spoofed registration impossible"
            )));
        }
        let ctx = CipherContext::plaintext();
        self.transmit(
            &cell,
            Direction::Uplink,
            algo,
            Some(&ctx),
            attacker_pos,
            &AirMessage::CipherModeComplete,
        );
        self.transmit(
            &cell,
            Direction::Downlink,
            algo,
            Some(&ctx),
            bts_pos,
            &AirMessage::LocationUpdateAccept { new_tmsi: None },
        );
        let sub = self.subs.get_mut(&victim.0).expect("checked above");
        sub.attachment = Attachment::Spoofed { ctx };
        sub.kc = Some(kc);
        obs::add("gsm.network.spoofed_registrations", 1);
        Ok(ctx)
    }

    /// Submits an SMS from a service shortcode to `to`, then attempts
    /// immediate delivery.
    ///
    /// # Errors
    ///
    /// Returns [`GsmError::UnknownSubscriber`] when no subscriber holds
    /// the number, or an SMSC error when the queue is full.
    pub fn send_sms(&mut self, to: &Msisdn, text: &str) -> Result<(), GsmError> {
        let from = Address::numeric("10690000", crate::pdu::TypeOfNumber::National)
            .expect("static shortcode is valid");
        self.send_sms_from(from, to, text)
    }

    /// Submits an SMS with an explicit originating address. Long texts
    /// are split into concatenated parts and reassembled by the handset.
    ///
    /// # Errors
    ///
    /// See [`GsmNetwork::send_sms`].
    pub fn send_sms_from(&mut self, from: Address, to: &Msisdn, text: &str) -> Result<(), GsmError> {
        if self.subscriber_by_msisdn(to).is_none() {
            return Err(GsmError::UnknownSubscriber(to.to_string()));
        }
        obs::add("gsm.network.sms_submitted", 1);
        self.next_concat_ref = self.next_concat_ref.wrapping_add(1);
        let parts = crate::pdu::split_deliver(&from, text, self.next_concat_ref)?;
        let ts = Scts::from_sim_millis(self.clock.millis());
        for part in parts {
            self.smsc.submit(to.clone(), part.with_timestamp(ts), self.clock)?;
        }
        self.deliver_pending();
        Ok(())
    }

    /// Delivers queued SMS to every reachable subscriber and advances the
    /// clock past the resulting transactions.
    pub fn run_until_idle(&mut self) {
        self.deliver_pending();
        self.clock.advance_millis(50);
    }

    fn deliver_pending(&mut self) {
        for dest in self.smsc.pending_destinations() {
            let Some(id) = self.subscriber_by_msisdn(&dest) else { continue };
            while let Some(msg) = self.smsc.take_for(&dest) {
                match self.deliver_one(id, &msg.tpdu) {
                    Ok(()) => self.smsc.confirm(msg),
                    Err(_) => {
                        self.smsc.requeue(msg);
                        break;
                    }
                }
            }
        }
    }

    fn deliver_one(&mut self, id: SubscriberId, tpdu: &SmsDeliver) -> Result<(), GsmError> {
        let sub = self.subs.get(&id.0).ok_or_else(|| GsmError::UnknownSubscriber(id.to_string()))?;
        match sub.attachment {
            Attachment::None => Err(GsmError::NotAttached),
            Attachment::Real { cell, ctx } => {
                let cell = self
                    .cells
                    .iter()
                    .find(|c| c.id == cell)
                    .cloned()
                    .ok_or(GsmError::UnknownCell(cell.0))?;
                let (identity, ms_pos) = {
                    let sub = self.subs.get(&id.0).expect("checked above");
                    let identity = if self.config.page_by_imsi {
                        MsIdentity::Imsi(sub.ms.imsi())
                    } else {
                        match sub.ms.tmsi() {
                            Some(t) => MsIdentity::Tmsi(t),
                            None => MsIdentity::Imsi(sub.ms.imsi()),
                        }
                    };
                    (identity, sub.ms.position())
                };
                let bts_pos = cell.position;
                self.transmit(
                    &cell,
                    Direction::Downlink,
                    CipherAlgo::A50,
                    None,
                    bts_pos,
                    &AirMessage::PagingRequest { id: identity },
                );
                self.transmit(
                    &cell,
                    Direction::Uplink,
                    CipherAlgo::A50,
                    None,
                    ms_pos,
                    &AirMessage::PagingResponse { id: identity },
                );
                let landed = self.transmit(
                    &cell,
                    Direction::Downlink,
                    ctx.algo,
                    Some(&ctx),
                    bts_pos,
                    &AirMessage::SmsDeliverData { tpdu: tpdu.encode() },
                );
                if !landed {
                    // The burst faded; the handset never acknowledges and
                    // the SMSC will retry.
                    return Err(GsmError::ProtocolViolation("delivery burst lost on the air".into()));
                }
                self.transmit(
                    &cell,
                    Direction::Uplink,
                    ctx.algo,
                    Some(&ctx),
                    ms_pos,
                    &AirMessage::SmsAck,
                );
                let received = ReceivedSms {
                    originator: tpdu.originator.to_string(),
                    text: tpdu.text()?,
                    time: self.clock,
                    raw_tpdu: tpdu.encode(),
                };
                let sub = self.subs.get_mut(&id.0).expect("checked above");
                sub.ms.receive_sms(received, tpdu.concat);
                Ok(())
            }
            Attachment::Spoofed { ctx } => {
                // Traffic goes to the attacker's registration; the cell is
                // whichever covers the attacker — reuse the first cell for
                // the transmission record.
                let cell = self.cells.first().cloned().ok_or(GsmError::UnknownCell(0))?;
                let bts_pos = cell.position;
                let imsi = {
                    let sub = self.subs.get(&id.0).expect("checked above");
                    sub.ms.imsi()
                };
                self.transmit(
                    &cell,
                    Direction::Downlink,
                    CipherAlgo::A50,
                    None,
                    bts_pos,
                    &AirMessage::PagingRequest { id: MsIdentity::Imsi(imsi) },
                );
                self.transmit(
                    &cell,
                    Direction::Downlink,
                    ctx.algo,
                    Some(&ctx),
                    bts_pos,
                    &AirMessage::SmsDeliverData { tpdu: tpdu.encode() },
                );
                let received = ReceivedSms {
                    originator: tpdu.originator.to_string(),
                    text: tpdu.text()?,
                    time: self.clock,
                    raw_tpdu: tpdu.encode(),
                };
                let sub = self.subs.get_mut(&id.0).expect("checked above");
                sub.spoofed_inbox.push(received);
                Ok(())
            }
        }
    }

    /// Sends a person-to-person SMS from an attached subscriber's
    /// handset: the SMS-SUBMIT crosses the air uplink (ciphered under the
    /// sender's session), the SMSC stores it, and delivery to the
    /// recipient proceeds as usual.
    ///
    /// # Errors
    ///
    /// - [`GsmError::NotAttached`] when the sender has no service.
    /// - [`GsmError::UnknownSubscriber`] for sender or recipient.
    /// - [`GsmError::PduEncode`] when the text needs more than one PDU
    ///   (mobile-originated concatenation is not modelled).
    pub fn ms_send_sms(
        &mut self,
        from: SubscriberId,
        to: &Msisdn,
        text: &str,
    ) -> Result<(), GsmError> {
        let sub = self
            .subs
            .get(&from.0)
            .ok_or_else(|| GsmError::UnknownSubscriber(from.to_string()))?;
        let Attachment::Real { cell, ctx } = sub.attachment else {
            return Err(GsmError::NotAttached);
        };
        if self.subscriber_by_msisdn(to).is_none() {
            return Err(GsmError::UnknownSubscriber(to.to_string()));
        }
        let sender_msisdn = sub.ms.msisdn().clone();
        let ms_pos = sub.ms.position();
        let cell = self
            .cells
            .iter()
            .find(|c| c.id == cell)
            .cloned()
            .ok_or(GsmError::UnknownCell(cell.0))?;
        let destination = crate::pdu::Address::from_msisdn(to);
        let submit = crate::pdu::SmsSubmit::new(self.rng.gen(), destination, text)?;
        self.transmit(
            &cell,
            Direction::Uplink,
            ctx.algo,
            Some(&ctx),
            ms_pos,
            &AirMessage::SmsSubmitData { tpdu: submit.encode() },
        );
        self.transmit(
            &cell,
            Direction::Downlink,
            ctx.algo,
            Some(&ctx),
            cell.position,
            &AirMessage::SmsAck,
        );
        // Store-and-forward toward the recipient.
        obs::add("gsm.network.sms_mobile_originated", 1);
        self.send_sms_from(crate::pdu::Address::from_msisdn(&sender_msisdn), to, text)
    }

    /// Pending (undelivered) messages in the SMS centre.
    pub fn smsc_pending(&self) -> usize {
        self.smsc.pending()
    }

    /// Transmits a frame on behalf of equipment that is *not* part of the
    /// legitimate network — the fake base station and fake terminal of the
    /// active MitM rig. The frame lands in the same ether all receivers
    /// and sniffers read.
    pub fn transmit_on(
        &mut self,
        cell: &CellConfig,
        direction: Direction,
        cipher: CipherAlgo,
        ctx: Option<&CipherContext>,
        origin: Position,
        msg: &AirMessage,
    ) {
        self.transmit(cell, direction, cipher, ctx, origin, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terminal::RatPreference;

    fn net() -> GsmNetwork {
        GsmNetwork::new(NetworkConfig::default())
    }

    fn msisdn(s: &str) -> Msisdn {
        Msisdn::new(s).unwrap()
    }

    #[test]
    fn provision_attach_and_deliver() {
        let mut net = net();
        let id = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
        net.attach(id).unwrap();
        net.send_sms(&msisdn("13800138000"), "123456 is your code").unwrap();
        let ms = net.terminal(id).unwrap();
        assert_eq!(ms.inbox().len(), 1);
        assert_eq!(ms.inbox()[0].text, "123456 is your code");
    }

    #[test]
    fn duplicate_msisdn_rejected() {
        let mut net = net();
        net.provision_subscriber("a", msisdn("13800138000")).unwrap();
        assert!(net.provision_subscriber("b", msisdn("13800138000")).is_err());
    }

    #[test]
    fn sms_to_unknown_number_fails() {
        let mut net = net();
        assert!(matches!(
            net.send_sms(&msisdn("19999999999"), "x"),
            Err(GsmError::UnknownSubscriber(_))
        ));
    }

    #[test]
    fn sms_queues_until_attach() {
        let mut net = net();
        let id = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
        net.send_sms(&msisdn("13800138000"), "early").unwrap();
        assert_eq!(net.smsc_pending(), 1);
        assert!(net.terminal(id).unwrap().inbox().is_empty());
        net.attach(id).unwrap();
        net.run_until_idle();
        assert_eq!(net.smsc_pending(), 0);
        assert_eq!(net.terminal(id).unwrap().inbox().len(), 1);
    }

    #[test]
    fn attach_negotiates_a51_by_default() {
        let mut net = net();
        let id = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
        net.attach(id).unwrap();
        assert_eq!(net.terminal(id).unwrap().cipher_context().algo, CipherAlgo::A51);
        assert!(net.current_kc(id).is_some());
    }

    #[test]
    fn attach_fails_when_handset_on_lte() {
        let mut net = GsmNetwork::new(NetworkConfig { lte_available: true, ..Default::default() });
        let id = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
        net.terminal_mut(id).unwrap().set_rat(RatPreference::PreferLte);
        assert!(net.attach(id).is_err());
        // Jamming LTE forces the GSM fallback.
        net.terminal_mut(id).unwrap().set_lte_jammed(true);
        assert!(net.attach(id).is_ok());
    }

    #[test]
    fn attach_fails_out_of_coverage() {
        let mut net = net();
        let id = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
        net.terminal_mut(id).unwrap().set_position(Position::new(10_000.0, 10_000.0));
        assert!(net.attach(id).is_err());
    }

    #[test]
    fn attach_emits_expected_transaction_on_air() {
        let mut net = net();
        let id = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
        net.attach(id).unwrap();
        let kinds: Vec<u8> =
            net.ether().frames().iter().map(|f| f.payload.first().copied().unwrap_or(0)).collect();
        // LAU request, auth request, auth response and cipher-mode command
        // are all plaintext; the final three (cipher-mode complete, SI5
        // padding, LAU accept) are ciphered, so their tags are opaque.
        assert_eq!(kinds[0], 0x03);
        assert_eq!(kinds[1], 0x07);
        assert_eq!(kinds[2], 0x08);
        assert_eq!(kinds[3], 0x09);
        assert_eq!(net.ether().frames().len(), 7);
    }

    #[test]
    fn tmsi_is_reallocated_on_attach() {
        let mut net = net();
        let id = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
        assert!(net.terminal(id).unwrap().tmsi().is_none());
        net.attach(id).unwrap();
        let first = net.terminal(id).unwrap().tmsi().unwrap();
        net.attach(id).unwrap();
        let second = net.terminal(id).unwrap().tmsi().unwrap();
        assert_ne!(first, second);
    }

    #[test]
    fn delivered_sms_frames_are_ciphered_under_a51() {
        let mut net = net();
        let id = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
        net.attach(id).unwrap();
        let before = net.ether().frames().len();
        net.send_sms(&msisdn("13800138000"), "sensitive otp 555666").unwrap();
        let frames = &net.ether().frames()[before..];
        let sms_frame = frames
            .iter()
            .find(|f| f.cipher == CipherAlgo::A51 && f.direction == Direction::Downlink)
            .expect("ciphered downlink SMS frame");
        // Without the key the payload must not parse as an SMS deliver.
        let parsed = sms_frame.message_plaintext();
        assert!(!matches!(parsed, Ok(AirMessage::SmsDeliverData { .. })));
        // With the victim's context it parses fine.
        let ctx = net.terminal(id).unwrap().cipher_context();
        assert!(matches!(sms_frame.message_with(&ctx), Ok(AirMessage::SmsDeliverData { .. })));
    }

    #[test]
    fn spoofed_registration_diverts_sms() {
        let mut net = net();
        let id = net.provision_subscriber("victim", msisdn("13800138000")).unwrap();
        net.attach(id).unwrap();
        // The attacker relays the victim's true SRES (fake BTS capture).
        let victim_ms = net.terminal(id).unwrap().clone();
        net.register_spoofed(id, Position::new(50.0, 0.0), CipherSet::none(), |rand| {
            victim_ms.a3_sres(rand)
        })
        .unwrap();
        net.send_sms(&msisdn("13800138000"), "OTP 999000").unwrap();
        assert_eq!(net.spoofed_inbox(id).len(), 1, "attacker got the message");
        assert_eq!(net.terminal(id).unwrap().inbox().len(), 0, "victim got nothing");
        assert_eq!(net.spoofed_inbox(id)[0].text, "OTP 999000");
    }

    #[test]
    fn spoofed_registration_rejects_wrong_sres() {
        let mut net = net();
        let id = net.provision_subscriber("victim", msisdn("13800138000")).unwrap();
        let err = net.register_spoofed(id, Position::new(0.0, 0.0), CipherSet::none(), |_| 0xbad);
        assert!(matches!(err, Err(GsmError::ProtocolViolation(_))));
    }

    #[test]
    fn spoofed_registration_requires_downgrade() {
        // If the network mandates A5/3 the spoof cannot complete.
        let mut net = GsmNetwork::new(NetworkConfig {
            cipher_preference: vec![CipherAlgo::A53],
            ..Default::default()
        });
        let id = net.provision_subscriber("victim", msisdn("13800138000")).unwrap();
        let victim_ms = net.terminal(id).unwrap().clone();
        // Even claiming full support, the attacker has no Kc; and claiming
        // none is refused by a network whose preference list lacks A5/0?
        // Preference [A53] + classmark none negotiates A5/0 fallback, so
        // configure preference to only offer A5/3 — negotiate() falls back
        // to A50 by design, mirroring real networks that accept it. Spoof
        // therefore succeeds only because the network tolerates A5/0:
        let res = net.register_spoofed(id, Position::new(0.0, 0.0), CipherSet::none(), |rand| {
            victim_ms.a3_sres(rand)
        });
        assert!(res.is_ok(), "downgrade-tolerant network accepts A5/0 spoof");
        // A network that *refuses* A5/0 blocks the spoof: model by putting
        // A5/3 first and having the attacker claim A5/3 support (it still
        // lacks Kc, so the registration must fail).
        let mut strict = GsmNetwork::new(NetworkConfig {
            cipher_preference: vec![CipherAlgo::A53, CipherAlgo::A51],
            ..Default::default()
        });
        let id2 = strict.provision_subscriber("victim2", msisdn("13900000000")).unwrap();
        let ms2 = strict.terminal(id2).unwrap().clone();
        let err = strict.register_spoofed(id2, Position::new(0.0, 0.0), CipherSet::all(), |rand| {
            ms2.a3_sres(rand)
        });
        assert!(matches!(err, Err(GsmError::ProtocolViolation(_))));
    }

    #[test]
    fn person_to_person_sms_flows_both_ways() {
        let mut net = net();
        let a = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
        let b = net.provision_subscriber("bob", msisdn("13900139000")).unwrap();
        net.attach(a).unwrap();
        net.attach(b).unwrap();
        net.ms_send_sms(a, &msisdn("13900139000"), "dinner at 8?").unwrap();
        let bob = net.terminal(b).unwrap();
        assert_eq!(bob.inbox().len(), 1);
        assert_eq!(bob.inbox()[0].text, "dinner at 8?");
        assert_eq!(bob.inbox()[0].originator, "13800138000");
        // The uplink SMS-SUBMIT crossed the air ciphered.
        assert!(net
            .ether()
            .frames()
            .iter()
            .any(|f| f.direction == Direction::Uplink && f.cipher == CipherAlgo::A51));
    }

    #[test]
    fn ms_send_requires_attachment() {
        let mut net = net();
        let a = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
        let _b = net.provision_subscriber("bob", msisdn("13900139000")).unwrap();
        assert!(matches!(
            net.ms_send_sms(a, &msisdn("13900139000"), "hi"),
            Err(GsmError::NotAttached)
        ));
        net.attach(a).unwrap();
        assert!(matches!(
            net.ms_send_sms(a, &msisdn("19999999999"), "hi"),
            Err(GsmError::UnknownSubscriber(_))
        ));
    }

    #[test]
    fn long_sms_is_split_and_reassembled() {
        let mut net = net();
        let id = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
        net.attach(id).unwrap();
        let text = "Your statement is ready. ".repeat(12); // > 160 septets
        net.send_sms(&msisdn("13800138000"), &text).unwrap();
        let ms = net.terminal(id).unwrap();
        assert_eq!(ms.inbox().len(), 1, "parts reassembled into one message");
        assert_eq!(ms.inbox()[0].text, text);
        assert_eq!(ms.pending_multipart(), 0);
        // More than one SMS-DELIVER frame crossed the air.
        let deliver_frames = net
            .ether()
            .frames()
            .iter()
            .filter(|f| f.direction == Direction::Downlink && f.cipher == CipherAlgo::A51)
            .count();
        assert!(deliver_frames >= 2, "expected multiple ciphered parts, saw {deliver_frames}");
    }

    #[test]
    fn interleaved_multipart_messages_reassemble_independently() {
        let mut net = net();
        let a = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
        net.attach(a).unwrap();
        let text1 = "AAAA ".repeat(40);
        let text2 = "BBBB ".repeat(40);
        net.send_sms(&msisdn("13800138000"), &text1).unwrap();
        net.send_sms(&msisdn("13800138000"), &text2).unwrap();
        let ms = net.terminal(a).unwrap();
        assert_eq!(ms.inbox().len(), 2);
        assert_eq!(ms.inbox()[0].text, text1);
        assert_eq!(ms.inbox()[1].text, text2);
    }

    #[test]
    fn detach_makes_subscriber_unreachable() {
        let mut net = net();
        let id = net.provision_subscriber("alice", msisdn("13800138000")).unwrap();
        net.attach(id).unwrap();
        net.detach(id);
        net.send_sms(&msisdn("13800138000"), "late").unwrap();
        assert!(net.terminal(id).unwrap().inbox().is_empty());
        assert_eq!(net.smsc_pending(), 1);
    }
}
