//! The legitimate GSM network: cells, HLR, authentication, paging and
//! SMS delivery over the shared ether.
//!
//! The network drives complete protocol transactions (location update,
//! authentication, cipher negotiation, SMS transfer) and emits every burst
//! into the [`Ether`], so passive sniffers and the MitM rig observe
//! byte-faithful traffic. Cell inventory and the subscriber base live in
//! indexed directories ([`crate::cell`], [`crate::subscriber`]); delivery
//! retries run through the discrete-event wheel in [`crate::scheduler`].

use crate::a5::Kc;
use crate::cell::CellDirectory;
use crate::cipher::CipherAlgo;
use crate::error::GsmError;
use crate::identity::{Imsi, Msisdn, SubscriberId};
use crate::pdu::{Address, Scts};
use crate::radio::{CellConfig, CellId, Ether};
use crate::scheduler::{DrainReport, EventWheel};
use crate::smsc::SmsCenter;
use crate::subscriber::{Attachment, Subscriber, SubscriberDirectory};
use crate::terminal::{Camp, MobileStation, ReceivedSms};
use crate::time::SimClock;
use actfort_obs as obs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default iteration budget for [`GsmNetwork::run_until_idle`] — far
/// above any legitimate drain, low enough to stop a runaway chain.
pub const DEFAULT_DRAIN_BUDGET: u64 = 100_000;

/// Delay before the SMSC retries a failed delivery.
const RETRY_INTERVAL_US: u64 = 250_000;

/// Network-wide configuration.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Cipher preference, strongest first. Real deployments the paper
    /// measured largely ran A5/1 (or nothing), hence the default.
    pub cipher_preference: Vec<CipherAlgo>,
    /// Whether TMSIs are reallocated at location update (privacy feature).
    pub tmsi_reallocation: bool,
    /// Whether an LTE overlay exists; handsets preferring LTE are
    /// unreachable over GSM until jammed when this is `true`.
    pub lte_available: bool,
    /// Page with IMSI instead of TMSI (a privacy misconfiguration that
    /// makes victim tracking trivial).
    pub page_by_imsi: bool,
    /// Air-interface frame loss in per-mille.
    pub frame_loss_per_mille: u16,
    /// Effective entropy of issued session keys. `64` means full-strength
    /// keys (uncrackable in-process); small values confine keys to the
    /// [`crate::a5::WEAK_KC_BASE`] subspace so sniffers can genuinely
    /// recover them by exhaustive search over the real cipher — the
    /// reduced-form stand-in for rainbow-table coverage.
    pub session_key_bits: u32,
    /// SMSC retry budget per message before it expires.
    pub smsc_max_attempts: u8,
    /// RNG seed controlling challenges, keys and TMSIs.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            cipher_preference: vec![CipherAlgo::A51, CipherAlgo::A50],
            tmsi_reallocation: true,
            lte_available: false,
            page_by_imsi: false,
            frame_loss_per_mille: 0,
            session_key_bits: 64,
            smsc_max_attempts: 5,
            seed: 0x0ac7_f047,
        }
    }
}

/// Events the network schedules on its own wheel.
#[derive(Debug, Clone)]
enum NetEvent {
    /// Attempt delivery of the queue for one destination.
    Deliver(Msisdn),
}

/// A complete simulated GSM network.
///
/// See the crate-level example for typical use.
#[derive(Debug)]
pub struct GsmNetwork {
    pub(crate) config: NetworkConfig,
    pub(crate) clock: SimClock,
    pub(crate) ether: Ether,
    pub(crate) cells: CellDirectory,
    pub(crate) subs: SubscriberDirectory,
    pub(crate) smsc: SmsCenter,
    wheel: EventWheel<NetEvent>,
    pub(crate) rng: StdRng,
    pub(crate) next_tmsi: u32,
    next_concat_ref: u8,
}

impl GsmNetwork {
    /// Creates a network with one default cell at the origin.
    pub fn new(config: NetworkConfig) -> Self {
        let ether = Ether::with_loss(config.frame_loss_per_mille);
        let rng = StdRng::seed_from_u64(config.seed);
        let default_cell = CellConfig {
            cipher_preference: config.cipher_preference.clone(),
            ..CellConfig::default()
        };
        let mut cells = CellDirectory::new();
        cells.insert(default_cell).expect("first cell cannot collide");
        let smsc = SmsCenter::new(10_000, config.smsc_max_attempts);
        Self {
            config,
            clock: SimClock::new(),
            ether,
            cells,
            subs: SubscriberDirectory::new(),
            smsc,
            wheel: EventWheel::new(),
            rng,
            next_tmsi: 0x0100_0000,
            next_concat_ref: 0,
        }
    }

    /// Adds a cell.
    ///
    /// # Errors
    ///
    /// Returns [`GsmError::ProtocolViolation`] on a duplicate cell id.
    pub fn add_cell(&mut self, cell: CellConfig) -> Result<CellId, GsmError> {
        self.cells.insert(cell)
    }

    /// All configured cells.
    pub fn cells(&self) -> &[CellConfig] {
        self.cells.all()
    }

    /// The shared air-interface capture log.
    pub fn ether(&self) -> &Ether {
        &self.ether
    }

    /// Current simulated time.
    pub fn clock(&self) -> SimClock {
        self.clock
    }

    /// Advances simulated time by `ms` milliseconds.
    pub fn advance_millis(&mut self, ms: u64) {
        self.clock.advance_millis(ms);
    }

    /// Provisions a SIM + handset for `msisdn`.
    ///
    /// # Errors
    ///
    /// Returns [`GsmError::ProtocolViolation`] when the number is already
    /// provisioned.
    pub fn provision_subscriber(
        &mut self,
        name: &str,
        msisdn: Msisdn,
    ) -> Result<SubscriberId, GsmError> {
        if self.subs.contains_msisdn(&msisdn) {
            return Err(GsmError::ProtocolViolation(format!("{msisdn} already provisioned")));
        }
        let imsi = Imsi::from_parts(460, 0, 1_000_000_000 + u64::from(self.subs.next_id()));
        let ki = self.rng.gen();
        let ms = MobileStation::new(imsi, msisdn, ki);
        Ok(self.subs.insert(Subscriber::new(name.to_owned(), ms)))
    }

    /// All provisioned subscriber ids, in provisioning order. Borrows
    /// the directory instead of allocating; collect when mutation is
    /// needed mid-iteration.
    pub fn subscriber_ids(&self) -> impl Iterator<Item = SubscriberId> + '_ {
        self.subs.ids()
    }

    /// Looks up a subscriber by phone number (O(log n) via the index).
    pub fn subscriber_by_msisdn(&self, msisdn: &Msisdn) -> Option<SubscriberId> {
        self.subs.by_msisdn(msisdn)
    }

    /// Human-readable name given at provisioning.
    pub fn subscriber_name(&self, id: SubscriberId) -> Option<&str> {
        self.subs.get(id).map(|s| s.name.as_str())
    }

    /// Read access to a subscriber's handset.
    pub fn terminal(&self, id: SubscriberId) -> Option<&MobileStation> {
        self.subs.get(id).map(|s| &s.ms)
    }

    /// Mutable access to a subscriber's handset (moving it, changing RAT
    /// preference or classmark, jamming its LTE layer).
    pub fn terminal_mut(&mut self, id: SubscriberId) -> Option<&mut MobileStation> {
        self.subs.get_mut(id).map(|s| &mut s.ms)
    }

    /// The session key currently installed for a subscriber, if any.
    /// (Test/oracle hook: the rainbow-table model validates recovered keys
    /// against this.)
    pub fn current_kc(&self, id: SubscriberId) -> Option<Kc> {
        self.subs.get(id).and_then(|s| s.kc)
    }

    /// Messages diverted by a spoofed (MitM) registration for `id`.
    pub fn spoofed_inbox(&self, id: SubscriberId) -> &[ReceivedSms] {
        self.subs.get(id).map(|s| s.spoofed_inbox.as_slice()).unwrap_or(&[])
    }

    /// Detaches a subscriber (handset loses service).
    pub fn detach(&mut self, id: SubscriberId) {
        if let Some(sub) = self.subs.get_mut(id) {
            sub.attachment = Attachment::None;
            sub.ms.set_camp(Camp::Idle);
        }
    }

    /// Submits an SMS from a service shortcode to `to`, then attempts
    /// immediate delivery.
    ///
    /// # Errors
    ///
    /// Returns [`GsmError::UnknownSubscriber`] when no subscriber holds
    /// the number, or an SMSC error when the queue is full.
    pub fn send_sms(&mut self, to: &Msisdn, text: &str) -> Result<(), GsmError> {
        let from = Address::numeric("10690000", crate::pdu::TypeOfNumber::National)
            .expect("static shortcode is valid");
        self.send_sms_from(from, to, text)
    }

    /// Submits an SMS with an explicit originating address. Long texts
    /// are split into concatenated parts and reassembled by the handset.
    ///
    /// # Errors
    ///
    /// See [`GsmNetwork::send_sms`].
    pub fn send_sms_from(&mut self, from: Address, to: &Msisdn, text: &str) -> Result<(), GsmError> {
        if self.subscriber_by_msisdn(to).is_none() {
            return Err(GsmError::UnknownSubscriber(to.to_string()));
        }
        obs::add("gsm.network.sms_submitted", 1);
        self.next_concat_ref = self.next_concat_ref.wrapping_add(1);
        let parts = crate::pdu::split_deliver(&from, text, self.next_concat_ref)?;
        let ts = Scts::from_sim_millis(self.clock.millis());
        for part in parts {
            self.smsc.submit(to.clone(), part.with_timestamp(ts), self.clock)?;
        }
        self.deliver_pending();
        Ok(())
    }

    /// Delivers queued SMS to every reachable subscriber by draining the
    /// event wheel under the default iteration budget, then advances the
    /// clock past the resulting transactions. Failed attempts are retried
    /// on the wheel until the SMSC expires the message.
    pub fn run_until_idle(&mut self) -> DrainReport {
        self.run_until_idle_with(DEFAULT_DRAIN_BUDGET)
    }

    /// [`GsmNetwork::run_until_idle`] with an explicit iteration budget.
    /// The report's `exhausted` flag is set when the budget ran out with
    /// events still queued — a self-rescheduling chain cannot hang the
    /// caller.
    pub fn run_until_idle_with(&mut self, budget: u64) -> DrainReport {
        // Seed one delivery event per destination with pending traffic.
        for dest in self.smsc.pending_destinations() {
            self.wheel.schedule(self.clock.micros(), NetEvent::Deliver(dest));
        }
        let mut report = DrainReport::default();
        while report.events_processed < budget {
            let Some((at, event)) = self.wheel.pop() else { break };
            if at > self.clock.micros() {
                self.clock.advance_micros(at - self.clock.micros());
            }
            report.events_processed += 1;
            match event {
                NetEvent::Deliver(dest) => self.deliver_destination(&dest),
            }
            report.end_us = self.clock.micros();
        }
        report.residual = self.wheel.len();
        report.exhausted = report.events_processed == budget && !self.wheel.is_empty();
        self.clock.advance_millis(50);
        report
    }

    /// One immediate delivery sweep over every pending destination (no
    /// retry scheduling) — the fast path behind `send_sms`.
    fn deliver_pending(&mut self) {
        for dest in self.smsc.pending_destinations() {
            let Some(id) = self.subscriber_by_msisdn(&dest) else { continue };
            while let Some(msg) = self.smsc.take_for(&dest) {
                match self.deliver_one(id, &msg.tpdu) {
                    Ok(()) => self.smsc.confirm(msg),
                    Err(_) => {
                        self.smsc.requeue(msg);
                        break;
                    }
                }
            }
        }
    }

    /// Drains the SMSC queue for one destination; a failed attempt leaves
    /// the queue and schedules a retry unless the SMSC expired the
    /// message.
    fn deliver_destination(&mut self, dest: &Msisdn) {
        let Some(id) = self.subscriber_by_msisdn(dest) else { return };
        while let Some(msg) = self.smsc.take_for(dest) {
            match self.deliver_one(id, &msg.tpdu) {
                Ok(()) => self.smsc.confirm(msg),
                Err(_) => {
                    self.smsc.requeue(msg);
                    if self.smsc.pending_for(dest) > 0 {
                        self.wheel.schedule(
                            self.clock.micros() + RETRY_INTERVAL_US,
                            NetEvent::Deliver(dest.clone()),
                        );
                    }
                    break;
                }
            }
        }
    }

    /// Pending (undelivered) messages in the SMS centre.
    pub fn smsc_pending(&self) -> usize {
        self.smsc.pending()
    }
}
