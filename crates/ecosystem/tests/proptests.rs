//! Property-based tests for the ecosystem's data model and generators.

use actfort_ecosystem::factor::CredentialFactor;
use actfort_ecosystem::info::{is_fully_recovered, merge_masked, Masking};
use actfort_ecosystem::policy::{PathClass, Platform, Purpose};
use actfort_ecosystem::population::PopulationBuilder;
use actfort_ecosystem::synth::{generate, SynthConfig};
use proptest::prelude::*;

fn masking_strategy() -> impl Strategy<Value = Masking> {
    prop_oneof![
        Just(Masking::Clear),
        Just(Masking::Hidden),
        (0u8..20, 0u8..20).prop_map(|(prefix, suffix)| Masking::Partial { prefix, suffix }),
    ]
}

fn value_strategy() -> impl Strategy<Value = String> {
    // Digit strings like IDs/cards/phones; no '*' so masks are unambiguous.
    proptest::collection::vec(proptest::sample::select(('0'..='9').collect::<Vec<_>>()), 1..24)
        .prop_map(|v| v.into_iter().collect())
}

proptest! {
    /// Masking preserves length and never reveals hidden positions that
    /// were not in the visible prefix/suffix.
    #[test]
    fn masking_preserves_length_and_edges(value in value_strategy(), m in masking_strategy()) {
        let masked = m.apply(&value);
        prop_assert_eq!(masked.chars().count(), value.chars().count());
        if let Masking::Partial { prefix, suffix } = m {
            let n = value.chars().count();
            let p = usize::from(prefix).min(n);
            let s = usize::from(suffix).min(n - p);
            let mv: Vec<char> = masked.chars().collect();
            let vv: Vec<char> = value.chars().collect();
            for i in 0..p {
                prop_assert_eq!(mv[i], vv[i]);
            }
            for i in (n - s)..n {
                prop_assert_eq!(mv[i], vv[i]);
            }
            for &c in &mv[p..(n - s)] {
                prop_assert_eq!(c, '*');
            }
        }
    }

    /// Views of the SAME value under any maskings always merge without
    /// conflict, and every recovered position matches the true value.
    #[test]
    fn merging_views_of_one_value_never_conflicts(
        value in value_strategy(),
        masks in proptest::collection::vec(masking_strategy(), 1..6),
    ) {
        let views: Vec<String> = masks.iter().map(|m| m.apply(&value)).collect();
        let merged = merge_masked(&views).expect("same-value views are consistent");
        for (m, v) in merged.chars().zip(value.chars()) {
            prop_assert!(m == '*' || m == v);
        }
        // Full recovery iff some position-cover union is complete:
        if views.iter().any(|w| !w.contains('*')) {
            prop_assert!(is_fully_recovered(&merged));
        }
        if is_fully_recovered(&merged) {
            prop_assert_eq!(merged, value);
        }
    }

    /// Path classification is stable under factor order.
    #[test]
    fn path_class_is_order_invariant(perm in proptest::sample::subsequence(
        vec![
            CredentialFactor::SmsCode,
            CredentialFactor::Password,
            CredentialFactor::CitizenId,
            CredentialFactor::Biometric,
            CredentialFactor::EmailCode,
            CredentialFactor::BankcardNumber,
        ],
        1..6,
    )) {
        let forward = PathClass::classify(&perm);
        let mut rev = perm.clone();
        rev.reverse();
        prop_assert_eq!(forward, PathClass::classify(&rev));
        // Robust factor always dominates.
        let mut with_bio = perm.clone();
        with_bio.push(CredentialFactor::Biometric);
        prop_assert_eq!(PathClass::classify(&with_bio), PathClass::Unique);
    }

    /// The generator always yields structurally valid populations.
    #[test]
    fn synth_population_is_well_formed(seed in any::<u64>(), n in 1usize..80) {
        let pop = generate(n, seed, &SynthConfig::default());
        prop_assert_eq!(pop.len(), n);
        let mut ids: Vec<&str> = pop.iter().map(|s| s.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n, "duplicate service ids");
        for s in &pop {
            prop_assert!(s.has_web || s.has_mobile);
            for platform in [Platform::Web, Platform::MobileApp] {
                let present = match platform {
                    Platform::Web => s.has_web,
                    Platform::MobileApp => s.has_mobile,
                };
                if present {
                    prop_assert!(!s.paths_for(platform, Purpose::SignIn).is_empty());
                    prop_assert!(!s.paths_for(platform, Purpose::PasswordReset).is_empty());
                } else {
                    prop_assert!(s.paths_on(platform).is_empty());
                }
            }
        }
    }

    /// Construction invariant: an SMS-only quick sign-in only exists on
    /// platforms whose reset is already SMS-only (keeps the direct
    /// fraction pinned to the reset calibration).
    #[test]
    fn sms_signin_implies_sms_reset(seed in any::<u64>()) {
        let pop = generate(60, seed, &SynthConfig::default());
        for s in &pop {
            for platform in [Platform::Web, Platform::MobileApp] {
                let signin_sms =
                    s.paths_for(platform, Purpose::SignIn).iter().any(|p| p.is_sms_only());
                let reset_sms =
                    s.paths_for(platform, Purpose::PasswordReset).iter().any(|p| p.is_sms_only());
                if signin_sms {
                    prop_assert!(reset_sms, "{} on {platform}", s.id);
                }
            }
        }
    }

    /// Generated people are well-formed and mutually distinct.
    #[test]
    fn population_people_are_distinct(seed in any::<u64>(), n in 2usize..60) {
        let pop = PopulationBuilder::new(seed).population(n);
        let mut phones: Vec<&str> = pop.iter().map(|p| p.phone.digits()).collect();
        phones.sort_unstable();
        phones.dedup();
        prop_assert_eq!(phones.len(), n, "duplicate phone numbers");
        for p in &pop {
            prop_assert_eq!(p.citizen_id.len(), 18);
            prop_assert_eq!(p.bankcard.len(), 16);
            prop_assert!(p.email.contains('@'));
        }
    }
}
