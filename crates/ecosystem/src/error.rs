//! Error types for the ecosystem simulator.

use std::fmt;

/// Errors produced by the Online Account Ecosystem simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EcosystemError {
    /// The referenced service is not registered.
    UnknownService(String),
    /// The referenced person does not exist.
    UnknownPerson(u32),
    /// No account matches the locator at this service.
    UnknownAccount(String),
    /// The referenced pending challenge does not exist or was consumed.
    UnknownChallenge(u64),
    /// The chosen authentication path index is out of range.
    NoSuchPath {
        /// Requested index.
        index: usize,
        /// Number of paths actually available.
        available: usize,
    },
    /// A presented factor failed verification; carries a description.
    FactorRejected(String),
    /// The responses do not cover every required factor.
    MissingFactor(String),
    /// The session token is invalid or expired.
    InvalidSession,
    /// An underlying authentication-service failure.
    Auth(actfort_authsvc::AuthError),
    /// An underlying GSM failure.
    Gsm(actfort_gsm::GsmError),
    /// The operation conflicts with service state (duplicate account, …).
    Conflict(String),
}

impl fmt::Display for EcosystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcosystemError::UnknownService(s) => write!(f, "unknown service: {s}"),
            EcosystemError::UnknownPerson(p) => write!(f, "unknown person #{p}"),
            EcosystemError::UnknownAccount(s) => write!(f, "no account matches {s}"),
            EcosystemError::UnknownChallenge(c) => write!(f, "unknown challenge #{c}"),
            EcosystemError::NoSuchPath { index, available } => {
                write!(f, "authentication path {index} out of range ({available} available)")
            }
            EcosystemError::FactorRejected(s) => write!(f, "factor rejected: {s}"),
            EcosystemError::MissingFactor(s) => write!(f, "missing required factor: {s}"),
            EcosystemError::InvalidSession => f.write_str("invalid or expired session"),
            EcosystemError::Auth(e) => write!(f, "authentication service: {e}"),
            EcosystemError::Gsm(e) => write!(f, "gsm: {e}"),
            EcosystemError::Conflict(s) => write!(f, "conflict: {s}"),
        }
    }
}

impl std::error::Error for EcosystemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EcosystemError::Auth(e) => Some(e),
            EcosystemError::Gsm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<actfort_authsvc::AuthError> for EcosystemError {
    fn from(e: actfort_authsvc::AuthError) -> Self {
        EcosystemError::Auth(e)
    }
}

impl From<actfort_gsm::GsmError> for EcosystemError {
    fn from(e: actfort_gsm::GsmError) -> Self {
        EcosystemError::Gsm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EcosystemError>();
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e = EcosystemError::Auth(actfort_authsvc::AuthError::WrongCode);
        assert!(e.source().is_some());
        assert!(EcosystemError::InvalidSession.source().is_none());
    }
}
