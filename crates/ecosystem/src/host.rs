//! The ecosystem host: the world every experiment runs in.
//!
//! An [`Ecosystem`] owns the shared substrates (GSM network, mail system,
//! push authenticator), the victim population and every executable
//! service, and mediates authentication flows between them.

use crate::error::EcosystemError;
use crate::factor::ServiceId;
use crate::policy::{Platform, Purpose};
use crate::population::{Person, PersonId};
use crate::service::{
    AccountId, AccountLocator, AuthOutcome, Challenge, FactorResponse, OnlineService,
};
use crate::spec::ServiceSpec;
use actfort_authsvc::email::MailSystem;
use actfort_authsvc::push::PushAuthenticator;
use actfort_gsm::network::{GsmNetwork, NetworkConfig};
use std::collections::BTreeMap;

/// The complete simulated world.
#[derive(Debug)]
pub struct Ecosystem {
    /// The cellular substrate every SMS code crosses.
    pub gsm: GsmNetwork,
    /// The mail substrate for email codes and links.
    pub mail: MailSystem,
    /// The push-authentication countermeasure service.
    pub push: PushAuthenticator,
    services: BTreeMap<ServiceId, OnlineService>,
    people: BTreeMap<u32, Person>,
    clock_ms: u64,
    seed: u64,
}

impl Ecosystem {
    /// Creates a world over a default GSM network.
    pub fn new(seed: u64) -> Self {
        Self::with_network(seed, NetworkConfig::default())
    }

    /// Creates a world over a custom GSM network (e.g. weak session keys
    /// for sniffing experiments).
    pub fn with_network(seed: u64, config: NetworkConfig) -> Self {
        Self {
            gsm: GsmNetwork::new(config),
            mail: MailSystem::new(),
            push: PushAuthenticator::new(),
            services: BTreeMap::new(),
            people: BTreeMap::new(),
            clock_ms: 0,
            seed,
        }
    }

    /// Current simulated wall-clock in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.clock_ms
    }

    /// Advances simulated time (both the host clock and the GSM clock).
    pub fn advance_ms(&mut self, ms: u64) {
        self.clock_ms += ms;
        self.gsm.advance_millis(ms);
    }

    /// Adds a person to the world: provisions their SIM, attaches the
    /// handset and registers their mailbox.
    ///
    /// # Errors
    ///
    /// Propagates GSM provisioning failures (duplicate number).
    pub fn add_person(&mut self, person: Person) -> Result<PersonId, EcosystemError> {
        let id = person.id;
        let sub = self.gsm.provision_subscriber(&person.real_name, person.phone.clone())?;
        self.gsm.attach(sub)?;
        self.mail.register(&person.email);
        self.people.insert(id.0, person);
        Ok(id)
    }

    /// Looks up a person.
    pub fn person(&self, id: PersonId) -> Option<&Person> {
        self.people.get(&id.0)
    }

    /// All people in the world.
    pub fn people(&self) -> impl Iterator<Item = &Person> {
        self.people.values()
    }

    /// Instantiates a service from its spec.
    ///
    /// # Errors
    ///
    /// Returns [`EcosystemError::Conflict`] on a duplicate id.
    pub fn add_service(&mut self, spec: ServiceSpec) -> Result<ServiceId, EcosystemError> {
        let id = spec.id.clone();
        if self.services.contains_key(&id) {
            return Err(EcosystemError::Conflict(format!("service {id} already exists")));
        }
        let seed = self.seed ^ fxhash(id.as_str());
        self.services.insert(id.clone(), OnlineService::new(spec, seed));
        Ok(id)
    }

    /// Read access to a service.
    pub fn service(&self, id: &ServiceId) -> Option<&OnlineService> {
        self.services.get(id)
    }

    /// Mutable access to a service.
    pub fn service_mut(&mut self, id: &ServiceId) -> Option<&mut OnlineService> {
        self.services.get_mut(id)
    }

    /// All service specs (what ActFort consumes).
    pub fn specs(&self) -> Vec<&ServiceSpec> {
        self.services.values().map(|s| s.spec()).collect()
    }

    /// Ids of all services.
    pub fn service_ids(&self) -> Vec<ServiceId> {
        self.services.keys().cloned().collect()
    }

    /// Registers a person at a service with a generated password.
    ///
    /// # Errors
    ///
    /// Propagates unknown ids and registration conflicts.
    pub fn register_account(
        &mut self,
        person: PersonId,
        service: &ServiceId,
    ) -> Result<AccountId, EcosystemError> {
        let p = self
            .people
            .get(&person.0)
            .ok_or(EcosystemError::UnknownPerson(person.0))?
            .clone();
        let svc = self
            .services
            .get_mut(service)
            .ok_or_else(|| EcosystemError::UnknownService(service.to_string()))?;
        let password = format!("user-pw-{}-{}", service.as_str(), person.0);
        let name = svc.spec().name.clone();
        let account = svc.register(&p, &password, None)?;
        // The welcome mail every real service sends — and exactly what
        // lets an attacker who owns the mailbox enumerate the victim's
        // accounts (§IV-B2, "emails are the gateway").
        self.mail
            .deliver(
                &p.email,
                service.as_str(),
                &format!("Welcome to {name}"),
                &format!("Hi {}, thanks for signing up for {name}.", p.real_name),
                self.clock_ms,
            )
            .ok();
        Ok(account)
    }

    /// Registers every person at every service (measurement setup).
    ///
    /// # Errors
    ///
    /// Propagates the first failure.
    pub fn enroll_everyone(&mut self) -> Result<(), EcosystemError> {
        let people: Vec<PersonId> = self.people.values().map(|p| p.id).collect();
        let services = self.service_ids();
        for person in people {
            for service in &services {
                self.register_account(person, service)?;
            }
        }
        Ok(())
    }

    /// Starts an authentication flow; SMS/email side effects hit the
    /// shared substrates.
    ///
    /// # Errors
    ///
    /// See [`OnlineService::begin_auth`].
    pub fn begin_auth(
        &mut self,
        service: &ServiceId,
        locator: &AccountLocator,
        platform: Platform,
        purpose: Purpose,
        path_index: usize,
    ) -> Result<Challenge, EcosystemError> {
        let now = self.clock_ms;
        let svc = self
            .services
            .get_mut(service)
            .ok_or_else(|| EcosystemError::UnknownService(service.to_string()))?;
        let account = svc
            .find_account(locator)
            .ok_or_else(|| EcosystemError::UnknownAccount(format!("{locator:?} at {service}")))?;
        svc.begin_auth(account, platform, purpose, path_index, &mut self.gsm, &mut self.mail, now)
    }

    /// Freezes every account the person holds (the victim noticed the
    /// attack and called every provider). Returns how many accounts were
    /// locked.
    pub fn freeze_person_everywhere(&mut self, person: PersonId) -> usize {
        let Some(phone) = self.people.get(&person.0).map(|p| p.phone.clone()) else {
            return 0;
        };
        let mut frozen = 0;
        for svc in self.services.values_mut() {
            if let Some(account) = svc.find_account(&AccountLocator::Phone(phone.clone())) {
                svc.freeze(account);
                frozen += 1;
            }
        }
        frozen
    }

    /// Looks up the person owning a phone number.
    pub fn person_by_phone(&self, phone: &actfort_gsm::identity::Msisdn) -> Option<PersonId> {
        self.people.values().find(|p| &p.phone == phone).map(|p| p.id)
    }

    /// Simulates ordinary user activity for `rounds` rounds: every
    /// person signs into a random service via its SMS quick-login when
    /// one exists, generating realistic one-time-code traffic on the
    /// air — the background a real sniffing rig must filter through.
    ///
    /// Returns the number of successful sign-ins performed.
    pub fn simulate_background_activity(&mut self, rounds: usize, seed: u64) -> usize {
        use crate::factor::CredentialFactor;
        use crate::service::FactorResponse;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let people: Vec<(PersonId, actfort_gsm::identity::Msisdn)> =
            self.people.values().map(|p| (p.id, p.phone.clone())).collect();
        let services = self.service_ids();
        let mut logins = 0usize;
        for _ in 0..rounds {
            for (_pid, phone) in &people {
                let service = &services[rng.gen_range(0..services.len().max(1))];
                let Some(svc) = self.services.get(service) else { continue };
                let spec = svc.spec().clone();
                let platform = if spec.has_mobile { Platform::MobileApp } else { Platform::Web };
                let Some(index) = spec
                    .paths_for(platform, Purpose::SignIn)
                    .iter()
                    .position(|p| p.is_sms_only())
                else {
                    continue;
                };
                let path = spec.paths_for(platform, Purpose::SignIn)[index].clone();
                let Ok(challenge) = self.begin_auth(
                    service,
                    &AccountLocator::Phone(phone.clone()),
                    platform,
                    Purpose::SignIn,
                    index,
                ) else {
                    continue;
                };
                // The legitimate user reads the code off their own phone.
                let Some(sub) = self.gsm.subscriber_by_msisdn(phone) else { continue };
                let Some(code) = self
                    .gsm
                    .terminal(sub)
                    .and_then(|t| t.inbox().last())
                    .and_then(|sms| {
                        sms.text
                            .chars()
                            .take_while(|c| c.is_ascii_digit())
                            .collect::<String>()
                            .into()
                    })
                else {
                    continue;
                };
                let mut responses = vec![FactorResponse::SmsCode(code)];
                if path.factors.contains(&CredentialFactor::CellphoneNumber) {
                    responses.push(FactorResponse::CellphoneNumber(phone.digits().to_owned()));
                }
                if self.complete_auth(service, challenge.id, &responses, &[]).is_ok() {
                    logins += 1;
                }
            }
            // Space rounds out past the OTP issue rate limit.
            self.advance_ms(61_000);
        }
        logins
    }

    /// Completes an authentication flow.
    ///
    /// # Errors
    ///
    /// See [`OnlineService::complete_auth`].
    pub fn complete_auth(
        &mut self,
        service: &ServiceId,
        challenge_id: u64,
        responses: &[FactorResponse],
        live_links: &[ServiceId],
    ) -> Result<AuthOutcome, EcosystemError> {
        let now = self.clock_ms;
        let svc = self
            .services
            .get_mut(service)
            .ok_or_else(|| EcosystemError::UnknownService(service.to_string()))?;
        svc.complete_auth(challenge_id, responses, live_links, now)
    }
}

/// Tiny FNV-style hash for deriving per-service seeds.
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::CredentialFactor as F;
    use crate::population::PopulationBuilder;
    use crate::spec::ServiceDomain;

    fn world() -> (Ecosystem, PersonId, ServiceId) {
        let mut eco = Ecosystem::new(1);
        let person = PopulationBuilder::new(2).person();
        let pid = eco.add_person(person).unwrap();
        let spec = ServiceSpec::builder("svc", "Svc", ServiceDomain::Other)
            .path(Purpose::SignIn, Platform::Web, &[F::SmsCode])
            .build();
        let sid = eco.add_service(spec).unwrap();
        (eco, pid, sid)
    }

    #[test]
    fn end_to_end_sms_login_through_host() {
        let (mut eco, pid, sid) = world();
        eco.register_account(pid, &sid).unwrap();
        let phone = eco.person(pid).unwrap().phone.clone();
        let ch = eco
            .begin_auth(&sid, &AccountLocator::Phone(phone.clone()), Platform::Web, Purpose::SignIn, 0)
            .unwrap();
        // The code really crossed the GSM network.
        let sub = eco.gsm.subscriber_by_msisdn(&phone).unwrap();
        let code: String = eco.gsm.terminal(sub).unwrap().inbox()[0]
            .text
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        eco.advance_ms(1_000);
        let outcome = eco
            .complete_auth(&sid, ch.id, &[FactorResponse::SmsCode(code)], &[])
            .unwrap();
        assert!(matches!(outcome, AuthOutcome::Session(_)));
    }

    #[test]
    fn duplicate_service_rejected() {
        let (mut eco, _pid, _sid) = world();
        let spec = ServiceSpec::builder("svc", "Svc", ServiceDomain::Other)
            .path(Purpose::SignIn, Platform::Web, &[F::Password])
            .build();
        assert!(matches!(eco.add_service(spec), Err(EcosystemError::Conflict(_))));
    }

    #[test]
    fn unknown_targets_error() {
        let (mut eco, pid, _sid) = world();
        let ghost = ServiceId::new("ghost");
        assert!(matches!(
            eco.register_account(pid, &ghost),
            Err(EcosystemError::UnknownService(_))
        ));
        assert!(matches!(
            eco.begin_auth(
                &ghost,
                &AccountLocator::Username("x".into()),
                Platform::Web,
                Purpose::SignIn,
                0
            ),
            Err(EcosystemError::UnknownService(_))
        ));
    }

    #[test]
    fn enroll_everyone_registers_cross_product() {
        let mut eco = Ecosystem::new(9);
        let people = PopulationBuilder::new(3).population(4);
        for p in people {
            eco.add_person(p).unwrap();
        }
        for i in 0..3 {
            let spec = ServiceSpec::builder(&format!("s{i}"), &format!("S{i}"), ServiceDomain::Other)
                .path(Purpose::SignIn, Platform::Web, &[F::Password])
                .build();
            eco.add_service(spec).unwrap();
        }
        eco.enroll_everyone().unwrap();
        for sid in eco.service_ids() {
            assert_eq!(eco.service(&sid).unwrap().account_count(), 4);
        }
    }

    #[test]
    fn background_activity_is_a_noop_without_sms_quick_logins() {
        let mut eco = Ecosystem::new(10);
        let person = PopulationBuilder::new(44).person();
        eco.add_person(person).unwrap();
        let spec = ServiceSpec::builder("pwonly", "PwOnly", ServiceDomain::Other)
            .path(Purpose::SignIn, Platform::Web, &[F::Password])
            .path(Purpose::PasswordReset, Platform::Web, &[F::EmailCode])
            .build();
        eco.add_service(spec).unwrap();
        eco.enroll_everyone().unwrap();
        let frames_before = eco.gsm.ether().len();
        assert_eq!(eco.simulate_background_activity(3, 1), 0);
        assert_eq!(eco.gsm.ether().len(), frames_before, "no OTP traffic generated");
    }

    #[test]
    fn clock_advances_both_layers() {
        let (mut eco, _p, _s) = world();
        let gsm_before = eco.gsm.clock().millis();
        eco.advance_ms(500);
        assert_eq!(eco.now_ms(), 500);
        assert_eq!(eco.gsm.clock().millis(), gsm_before + 500);
    }
}
