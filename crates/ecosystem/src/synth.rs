//! Calibrated synthetic service generation.
//!
//! The paper measures 201 top-Alexa services; we have 44 curated
//! profiles. The generator extrapolates to any population size with
//! aggregate statistics calibrated to the paper's published numbers
//! (Fig. 3, Table I, the in-text path-class and dependency-depth
//! percentages), so population-level experiments reproduce the measured
//! *distributions* rather than inventing them.

use crate::factor::CredentialFactor as F;
use crate::info::{ExposedField, Masking, PersonalInfoKind as K};
use crate::policy::{Platform, Purpose};
use crate::spec::{ServiceDomain, ServiceSpec, ServiceSpecBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Calibration constants, defaulting to the paper's measurements.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// P(service resets with phone+SMS only) on the web — the paper's
    /// 74.13% direct-compromise figure is dominated by this.
    pub reset_sms_only_web: f64,
    /// Same on mobile (75.56%).
    pub reset_sms_only_mobile: f64,
    /// P(sign-in offers an SMS-only path) on the web — "significantly
    /// lower than for password resetting".
    pub signin_sms_only_web: f64,
    /// Same on mobile.
    pub signin_sms_only_mobile: f64,
    /// P(a non-SMS-only reset path requires personal info) — drives the
    /// info-path share (13.45% web / 17% mobile).
    pub info_path_rate: f64,
    /// P(service has a unique path: biometric / U2F / device) —
    /// 16.35% web / 17% mobile.
    pub unique_path_rate: f64,
    /// P(a web client offers an extra email code/link reset) — drives the
    /// paper's one-middle-layer share on the web (9.83%).
    pub email_reset_rate_web: f64,
    /// Same on mobile (26.47% one-middle-layer).
    pub email_reset_rate_mobile: f64,
    /// Table I exposure probabilities on the web, in
    /// [`K::table1`] order.
    pub exposure_web: [f64; 9],
    /// Table I exposure probabilities on mobile.
    pub exposure_mobile: [f64; 9],
    /// P(bankcard number exposed, masked) web / mobile — the paper notes
    /// bankcards are the best-protected field.
    pub bankcard_exposure: (f64, f64),
    /// P(a generated service ships a mobile app).
    pub has_mobile_rate: f64,
    /// P(a generated service has a website).
    pub has_web_rate: f64,
    /// P(a mobile app offers a biometric quick sign-in) — drives the
    /// unique-path share (~17% of paths in the paper).
    pub mobile_biometric_signin: f64,
    /// P(a website offers a U2F/device-bound sign-in).
    pub web_unique_signin: f64,
    /// Share of *non-direct* services whose only viable entry is SSO into
    /// an earlier email-gated service — creates the two-layer
    /// full-capacity chains the paper measures at 5.20% (web) / 20.59%
    /// (mobile).
    pub sso_gated_share: f64,
    /// Share of *non-direct* services resetting with SMS + bankcard —
    /// combined with complementary bankcard masks on email-gated Fintech
    /// services this creates the two-layer half-capacity (couple) chains
    /// (2.89% / 8.82%).
    pub bankcard_gated_share: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            reset_sms_only_web: 0.7413,
            reset_sms_only_mobile: 0.7556,
            signin_sms_only_web: 0.38,
            signin_sms_only_mobile: 0.48,
            info_path_rate: 0.16,
            unique_path_rate: 0.165,
            email_reset_rate_web: 0.10,
            email_reset_rate_mobile: 0.28,
            // Table I, web column (percent → probability).
            exposure_web: [0.4920, 0.1176, 0.5401, 0.5936, 0.5134, 0.4599, 0.4492, 0.3209, 0.1497],
            // Table I, mobile column.
            exposure_mobile: [0.7500, 0.4107, 0.8750, 0.6429, 0.6429, 0.6071, 0.5714, 0.6607, 0.3571],
            bankcard_exposure: (0.08, 0.15),
            has_mobile_rate: 0.90,
            has_web_rate: 0.93,
            mobile_biometric_signin: 0.38,
            web_unique_signin: 0.18,
            sso_gated_share: 0.30,
            bankcard_gated_share: 0.15,
        }
    }
}

const DOMAIN_POOL: &[(ServiceDomain, u32)] = &[
    (ServiceDomain::Ecommerce, 20),
    (ServiceDomain::SocialNetwork, 16),
    (ServiceDomain::News, 14),
    (ServiceDomain::Video, 14),
    (ServiceDomain::LocalServices, 10),
    (ServiceDomain::Travel, 8),
    (ServiceDomain::Fintech, 8),
    (ServiceDomain::Email, 4),
    (ServiceDomain::CloudStorage, 4),
    (ServiceDomain::Other, 12),
];

/// Cross-service state threaded through generation so later services can
/// depend on earlier ones (SSO links, mask-merging card providers).
#[derive(Debug, Default)]
struct GenState {
    /// Ids of services whose reset is gated on email (round-2 nodes).
    email_gated: Vec<String>,
    /// Ids of email-gated Fintech services exposing complementary
    /// bankcard masks; alternates head/tail masks.
    card_providers: Vec<String>,
}

/// Generates `n` synthetic service specs calibrated by `config`.
pub fn generate(n: usize, seed: u64, config: &SynthConfig) -> Vec<ServiceSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = GenState::default();
    (0..n).map(|i| generate_one(i, &mut rng, config, &mut state)).collect()
}

/// Generates the paper's population: the 44 curated services plus enough
/// synthetic ones to reach 201 total.
pub fn paper_population(seed: u64) -> Vec<ServiceSpec> {
    let mut all = crate::dataset::curated_services();
    let need = 201usize.saturating_sub(all.len());
    all.extend(generate(need, seed, &SynthConfig::default()));
    all
}

fn pick_domain(rng: &mut StdRng) -> ServiceDomain {
    let total: u32 = DOMAIN_POOL.iter().map(|(_, w)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for (d, w) in DOMAIN_POOL {
        if roll < *w {
            return *d;
        }
        roll -= w;
    }
    ServiceDomain::Other
}

fn info_factor(rng: &mut StdRng) -> F {
    match rng.gen_range(0..4u8) {
        0 => F::RealName,
        1 => F::CitizenId,
        2 => F::BankcardNumber,
        _ => F::SecurityQuestion,
    }
}

fn unique_factor(rng: &mut StdRng) -> F {
    match rng.gen_range(0..3u8) {
        0 => F::Biometric,
        1 => F::U2fKey,
        _ => F::DeviceCheck,
    }
}

fn generate_one(
    index: usize,
    rng: &mut StdRng,
    cfg: &SynthConfig,
    state: &mut GenState,
) -> ServiceSpec {
    let domain = pick_domain(rng);
    let id = format!("synth-{index:03}");
    let name = format!("Service {index:03}");
    let has_mobile = rng.gen_bool(cfg.has_mobile_rate);
    let has_web = rng.gen_bool(cfg.has_web_rate) || !has_mobile;

    let mut b = ServiceSpec::builder(&id, &name, domain);
    if !has_mobile {
        b = b.web_only();
    } else if !has_web {
        b = b.mobile_only();
    }

    // Cross-service dependency decisions apply per service, not per
    // platform, so the two clients agree on them. They only take effect
    // on platforms whose reset draw lands in the non-direct branch.
    let roll: f64 = rng.gen();
    let sso_target = if roll < cfg.sso_gated_share && !state.email_gated.is_empty() {
        Some(state.email_gated[rng.gen_range(0..state.email_gated.len())].clone())
    } else {
        None
    };
    let bankcard_reset = sso_target.is_none()
        && roll < cfg.sso_gated_share + cfg.bankcard_gated_share
        && state.card_providers.len() >= 2;

    // Card-binding services (payments, shopping, travel) that are
    // email-gated leak complementary halves of the bound bankcard on the
    // gated platform — the inconsistent-masking weakness of §IV-B2.
    let binds_cards = matches!(
        domain,
        ServiceDomain::Fintech | ServiceDomain::Ecommerce | ServiceDomain::Travel
    );
    let card_mask = if index % 2 == 0 {
        Masking::Partial { prefix: 9, suffix: 0 }
    } else {
        Masking::Partial { prefix: 0, suffix: 9 }
    };

    let mut email_gated_any = false;
    for (platform, present) in [(Platform::Web, has_web), (Platform::MobileApp, has_mobile)] {
        if !present {
            continue;
        }
        let (b2, gated) = platform_paths(
            b,
            platform,
            rng,
            cfg,
            domain,
            sso_target.as_deref(),
            bankcard_reset,
            binds_cards,
        );
        b = platform_exposure(b2, platform, rng, cfg);
        if gated && binds_cards {
            let field = ExposedField { kind: K::BankcardNumber, masking: card_mask };
            b = match platform {
                Platform::Web => b.expose_web(field),
                Platform::MobileApp => b.expose_mobile(field),
            };
        }
        email_gated_any |= gated;
    }

    if email_gated_any && binds_cards {
        state.card_providers.push(id.clone());
    }
    if email_gated_any {
        state.email_gated.push(id.clone());
    }
    b.build()
}

#[allow(clippy::too_many_arguments)]
fn platform_paths(
    mut b: ServiceSpecBuilder,
    platform: Platform,
    rng: &mut StdRng,
    cfg: &SynthConfig,
    domain: ServiceDomain,
    sso_target: Option<&str>,
    bankcard_reset: bool,
    binds_cards: bool,
) -> (ServiceSpecBuilder, bool) {
    let (signin_sms, mut reset_sms) = match platform {
        Platform::Web => (cfg.signin_sms_only_web, cfg.reset_sms_only_web),
        Platform::MobileApp => (cfg.signin_sms_only_mobile, cfg.reset_sms_only_mobile),
    };
    // §IV-B2: Fintech deploys the strictest authentication.
    if domain == ServiceDomain::Fintech {
        reset_sms *= 0.55;
    }

    // Reset: the core calibration. Either SMS alone suffices, or the
    // service layers info / email / bankcard factors on top, or (for the
    // deep-dependency shapes) hides behind SSO / bankcard gates.
    let reset_direct = rng.gen_bool(reset_sms);
    let mut email_gated = false;
    let mut deep_gated = false;
    if reset_direct {
        b = b.path(Purpose::PasswordReset, platform, &[F::CellphoneNumber, F::SmsCode]);
    } else if sso_target.is_some() {
        // Security questions make the reset unusable to the attacker;
        // the SSO sign-in below is the only way in.
        b = b.path(Purpose::PasswordReset, platform, &[F::SmsCode, F::SecurityQuestion]);
        deep_gated = true;
    } else if bankcard_reset {
        b = b.path(Purpose::PasswordReset, platform, &[F::SmsCode, F::BankcardNumber]);
        deep_gated = true;
    } else if rng.gen_bool(if binds_cards { 0.2 } else { 0.5 }) {
        b = b.path(Purpose::PasswordReset, platform, &[F::SmsCode, info_factor(rng)]);
    } else {
        // Card-binding services lean on email resets, so the email
        // gateway also guards the card-mask providers.
        b = b.path(Purpose::PasswordReset, platform, &[F::SmsCode, F::EmailCode]);
        email_gated = true;
    }

    // Sign-in: everyone has a password; a calibrated fraction adds an
    // SMS-only quick login. SMS-only sign-in is confined to services
    // whose reset is already SMS-only, so the *direct compromise*
    // fraction stays pinned to the reset calibration (the paper's
    // dominant figure) while the sign-in bar stays lower.
    b = b.path(Purpose::SignIn, platform, &[F::Password]);
    if reset_direct && rng.gen_bool((signin_sms / reset_sms).min(1.0)) {
        b = b.path(Purpose::SignIn, platform, &[F::CellphoneNumber, F::SmsCode]);
    }
    if let Some(target) = sso_target {
        b = b.path(Purpose::SignIn, platform, &[F::LinkedAccount(target.into())]);
    }
    // Unique paths: biometric quick login on mobile, U2F/device binding
    // on the web, plus hardened reset variants.
    let unique_signin = match platform {
        Platform::MobileApp => cfg.mobile_biometric_signin,
        Platform::Web => cfg.web_unique_signin,
    };
    if rng.gen_bool(unique_signin) {
        let factor = match platform {
            Platform::MobileApp => F::Biometric,
            Platform::Web => unique_factor(rng),
        };
        b = b.path(Purpose::SignIn, platform, &[F::Password, factor]);
    }
    let email_fallback = match platform {
        Platform::Web => cfg.email_reset_rate_web,
        Platform::MobileApp => cfg.email_reset_rate_mobile,
    };
    if !deep_gated && rng.gen_bool(email_fallback) {
        // Deep-gated services get no email fallback, or they would fall a
        // round earlier and erase the two-layer structure.
        b = b.path(Purpose::PasswordReset, platform, &[F::EmailCode]);
    }
    let unique_rate = if domain == ServiceDomain::Fintech {
        (cfg.unique_path_rate * 2.0).min(1.0)
    } else {
        cfg.unique_path_rate
    };
    if rng.gen_bool(unique_rate) {
        b = b.path(Purpose::PasswordReset, platform, &[F::SmsCode, unique_factor(rng)]);
    }
    // Fintech layers a payment path.
    if domain == ServiceDomain::Fintech {
        b = b.path(Purpose::Payment, platform, &[F::SmsCode, info_factor(rng)]);
    }
    (b, email_gated && !reset_direct)
}

fn platform_exposure(
    mut b: ServiceSpecBuilder,
    platform: Platform,
    rng: &mut StdRng,
    cfg: &SynthConfig,
) -> ServiceSpecBuilder {
    let probs = match platform {
        Platform::Web => &cfg.exposure_web,
        Platform::MobileApp => &cfg.exposure_mobile,
    };
    for (kind, &p) in K::table1().iter().zip(probs) {
        if rng.gen_bool(p) {
            let masking = match kind {
                K::CellphoneNumber => Masking::Partial { prefix: 3, suffix: 4 },
                K::CitizenId => {
                    // Services disagree on which digits to hide — the
                    // mask-merging weakness.
                    match rng.gen_range(0..3u8) {
                        0 => Masking::Partial { prefix: 10, suffix: 0 },
                        1 => Masking::Partial { prefix: 0, suffix: 8 },
                        _ => Masking::Partial { prefix: 6, suffix: 4 },
                    }
                }
                K::EmailAddress => {
                    if rng.gen_bool(0.3) {
                        Masking::Partial { prefix: 2, suffix: 8 }
                    } else {
                        Masking::Clear
                    }
                }
                _ => Masking::Clear,
            };
            let field = ExposedField { kind: *kind, masking };
            b = match platform {
                Platform::Web => b.expose_web(field),
                Platform::MobileApp => b.expose_mobile(field),
            };
        }
    }
    let (card_web, card_mobile) = cfg.bankcard_exposure;
    let card_p = match platform {
        Platform::Web => card_web,
        Platform::MobileApp => card_mobile,
    };
    if rng.gen_bool(card_p) {
        let field = ExposedField::partial(K::BankcardNumber, 0, 4);
        b = match platform {
            Platform::Web => b.expose_web(field),
            Platform::MobileApp => b.expose_mobile(field),
        };
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(50, 7, &SynthConfig::default());
        let b = generate(50, 7, &SynthConfig::default());
        assert_eq!(a, b);
        let c = generate(50, 8, &SynthConfig::default());
        assert_ne!(a, c);
    }

    #[test]
    fn paper_population_has_201_services() {
        let pop = paper_population(1);
        assert_eq!(pop.len(), 201);
        // Curated set leads; ids unique throughout.
        let mut ids: Vec<&str> = pop.iter().map(|s| s.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 201);
    }

    #[test]
    fn reset_sms_only_fraction_matches_calibration() {
        let pop = generate(400, 3, &SynthConfig::default());
        let web: Vec<_> = pop.iter().filter(|s| s.has_web).collect();
        let direct = web
            .iter()
            .filter(|s| {
                s.paths_for(Platform::Web, Purpose::PasswordReset)
                    .iter()
                    .any(|p| p.is_sms_only())
            })
            .count();
        let frac = direct as f64 / web.len() as f64;
        assert!((0.68..=0.80).contains(&frac), "web reset SMS-only fraction {frac}");
    }

    #[test]
    fn mobile_exposes_more_than_web() {
        // Table I: every kind is more exposed on mobile.
        let pop = generate(400, 5, &SynthConfig::default());
        let count = |platform: Platform, kind: K| {
            pop.iter()
                .filter(|s| match platform {
                    Platform::Web => s.has_web,
                    Platform::MobileApp => s.has_mobile,
                })
                .filter(|s| s.exposes(platform, kind))
                .count() as f64
        };
        for kind in [K::RealName, K::CellphoneNumber, K::CitizenId, K::DeviceType] {
            let w = count(Platform::Web, kind);
            let m = count(Platform::MobileApp, kind);
            assert!(m > w, "{kind} should be more exposed on mobile ({m} vs {w})");
        }
    }

    #[test]
    fn every_generated_service_has_signin_and_reset() {
        for s in generate(100, 9, &SynthConfig::default()) {
            let platforms: Vec<Platform> = [Platform::Web, Platform::MobileApp]
                .into_iter()
                .filter(|&p| match p {
                    Platform::Web => s.has_web,
                    Platform::MobileApp => s.has_mobile,
                })
                .collect();
            assert!(!platforms.is_empty());
            for p in platforms {
                assert!(!s.paths_for(p, Purpose::SignIn).is_empty(), "{} lacks sign-in on {p}", s.id);
                assert!(
                    !s.paths_for(p, Purpose::PasswordReset).is_empty(),
                    "{} lacks reset on {p}",
                    s.id
                );
            }
        }
    }

    #[test]
    fn sms_factor_dominates() {
        // Fig. 3: SMS appears in over 80% of services' authentication.
        let pop = generate(300, 11, &SynthConfig::default());
        let with_sms = pop
            .iter()
            .filter(|s| s.paths.iter().any(|p| p.uses_sms()))
            .count();
        let frac = with_sms as f64 / pop.len() as f64;
        assert!(frac > 0.80, "SMS usage fraction {frac}");
    }
}
