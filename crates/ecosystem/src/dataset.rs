//! The curated service dataset: every service the paper names, with
//! authentication paths and exposure rules encoded from §IV–§V.
//!
//! These 44 profiles are the reproduction's stand-in for the paper's
//! manual probing of live sites (Fig. 4 draws the connection graph of 44
//! accounts). Where the paper states a concrete fact — "Ctrip exposes
//! the citizen ID behind the EDIT button", "Gmail resets with only an
//! SMS code", "Alipay's web and app ends differ" — that fact is encoded
//! here verbatim; surrounding details are filled in with typical
//! industry practice.
//!
//! Beyond the login-path columns, each profile carries a *recovery
//! policy*: flows under the recovery-class purposes (`PasswordReset`,
//! `RecoveryFallback`, `SupportReset`, `MfaDisable`). The added
//! recovery flows are analysis-neutral for the unfiltered (`All`)
//! view — each one either duplicates the factor set of an existing
//! path under a recovery purpose or is gated behind a robust factor —
//! so they only become visible when a query filters by edge class.

use crate::factor::CredentialFactor as F;
use crate::info::{ExposedField, PersonalInfoKind as K};
use crate::policy::{Platform::*, Purpose::*};
use crate::spec::{ServiceDomain as D, ServiceSpec};

fn clear(kind: K) -> ExposedField {
    ExposedField::clear(kind)
}

fn part(kind: K, prefix: u8, suffix: u8) -> ExposedField {
    ExposedField::partial(kind, prefix, suffix)
}

/// Builds the full curated dataset (44 services).
pub fn curated_services() -> Vec<ServiceSpec> {
    let mut v = Vec::with_capacity(44);

    // ------------------------------------------------------------------
    // Email providers — §IV-B: "all of these accounts could be verified
    // with only SMS Code"; the gateway nodes of the ecosystem.
    // ------------------------------------------------------------------
    for (id, name) in [
        ("gmail", "Gmail"),
        ("netease-163", "NetEase 163 Mail"),
        ("outlook", "Outlook"),
        ("aliyun-mail", "Aliyun Mail"),
    ] {
        v.push(
            ServiceSpec::builder(id, name, D::Email)
                .path_both(SignIn, &[F::Password])
                .path_both(SignIn, &[F::CellphoneNumber, F::SmsCode])
                .path_both(PasswordReset, &[F::CellphoneNumber, F::SmsCode])
                // Recovery policy: the SMS fallback doubles as the
                // lost-password recovery channel, same factor set.
                .path_both(RecoveryFallback, &[F::CellphoneNumber, F::SmsCode])
                .expose_both(clear(K::EmailAddress))
                .expose_both(part(K::CellphoneNumber, 3, 4))
                .expose_both(clear(K::BindingAccount))
                .expose_both(clear(K::HistoryRecords))
                .expose_mobile(clear(K::DeviceType))
                .build(),
        );
    }

    // ------------------------------------------------------------------
    // Fintech — strictest authentication, the attack's final targets.
    // ------------------------------------------------------------------
    // PayPal (Case II): reset requires SMS code AND email code.
    v.push(
        ServiceSpec::builder("paypal", "PayPal", D::Fintech)
            .path_both(SignIn, &[F::Password])
            .path_both(PasswordReset, &[F::SmsCode, F::EmailCode])
            .path_both(RecoveryFallback, &[F::SmsCode, F::EmailCode])
            .expose_both(clear(K::RealName))
            .expose_both(clear(K::EmailAddress))
            .expose_both(part(K::BankcardNumber, 0, 4))
            .expose_both(clear(K::Address))
            .build(),
    );
    // Alipay (Case III): asymmetric web vs mobile. The app resets with
    // SMS + one of {face, bankcard, citizen ID, security question}; the
    // weak link is SMS + citizen ID. The web end wants SMS + bankcard or
    // human customer service.
    v.push(
        ServiceSpec::builder("alipay", "Alipay", D::Fintech)
            .path_both(SignIn, &[F::Password])
            .path(SignIn, MobileApp, &[F::CellphoneNumber, F::SmsCode, F::DeviceCheck])
            .path(PasswordReset, MobileApp, &[F::SmsCode, F::Biometric])
            .path(PasswordReset, MobileApp, &[F::SmsCode, F::BankcardNumber])
            .path(PasswordReset, MobileApp, &[F::SmsCode, F::CitizenId])
            .path(PasswordReset, MobileApp, &[F::SmsCode, F::SecurityQuestion])
            .path(Payment, MobileApp, &[F::SmsCode, F::CitizenId])
            .path(PasswordReset, Web, &[F::SmsCode, F::BankcardNumber])
            .path(PasswordReset, Web, &[F::CustomerService])
            // Recovery policy: support-channel reset mirrors the human
            // customer-service flow; MFA disable reuses the weak
            // SMS + citizen-ID combination the payment flow accepts.
            .path(SupportReset, Web, &[F::CustomerService])
            .path(MfaDisable, MobileApp, &[F::SmsCode, F::CitizenId])
            .expose_mobile(clear(K::RealName))
            .expose_web(part(K::RealName, 1, 0))
            .expose_both(part(K::CitizenId, 4, 4))
            .expose_both(part(K::BankcardNumber, 4, 4))
            .expose_both(part(K::CellphoneNumber, 3, 4))
            .expose_mobile(clear(K::Address))
            .build(),
    );
    // Baidu Wallet (Case I): SMS code as a one-time login token; QR
    // payments straight from the session.
    v.push(
        ServiceSpec::builder("baidu-wallet", "Baidu Wallet", D::Fintech)
            .path_both(SignIn, &[F::CellphoneNumber, F::SmsCode])
            .path_both(PasswordReset, &[F::CellphoneNumber, F::SmsCode])
            .expose_both(clear(K::RealName))
            .expose_both(part(K::CellphoneNumber, 3, 4))
            .expose_mobile(part(K::BankcardNumber, 0, 4))
            .build(),
    );
    // WeChat Pay: device binding makes it robust.
    v.push(
        ServiceSpec::builder("wechat-pay", "WeChat Pay", D::Fintech)
            .mobile_only()
            .path(SignIn, MobileApp, &[F::Password, F::DeviceCheck])
            .path(PasswordReset, MobileApp, &[F::SmsCode, F::BankcardNumber, F::DeviceCheck])
            .path(MfaDisable, MobileApp, &[F::SmsCode, F::BankcardNumber, F::DeviceCheck])
            .expose_mobile(clear(K::RealName))
            .expose_mobile(part(K::BankcardNumber, 0, 4))
            .build(),
    );
    // A U2F-protected bank — the paper's "most secure node".
    v.push(
        ServiceSpec::builder("union-bank", "Union Bank", D::Fintech)
            .path(SignIn, Web, &[F::Password, F::U2fKey])
            .path(PasswordReset, Web, &[F::U2fKey, F::CitizenId, F::BankcardNumber])
            .path(SignIn, MobileApp, &[F::Password, F::Biometric])
            .path(PasswordReset, MobileApp, &[F::Biometric, F::BankcardNumber])
            // Recovery policy: disabling MFA is gated behind the same
            // robust factors as a reset — no weak recovery channel.
            .path(MfaDisable, Web, &[F::U2fKey, F::CitizenId, F::BankcardNumber])
            .path(MfaDisable, MobileApp, &[F::Biometric, F::BankcardNumber])
            .expose_both(part(K::RealName, 1, 0))
            .expose_both(part(K::BankcardNumber, 0, 4))
            .build(),
    );
    // A brokerage with TOTP.
    v.push(
        ServiceSpec::builder("east-securities", "East Securities", D::Fintech)
            .path_both(SignIn, &[F::Password, F::TotpCode])
            .path_both(PasswordReset, &[F::CitizenId, F::BankcardNumber, F::SmsCode])
            .expose_both(part(K::CitizenId, 6, 2))
            .expose_both(clear(K::RealName))
            .build(),
    );

    // ------------------------------------------------------------------
    // Travel — the citizen-ID leak cluster (§IV-B, Case III).
    // ------------------------------------------------------------------
    // Ctrip: SMS one-time login; citizen ID in full behind "EDIT".
    v.push(
        ServiceSpec::builder("ctrip", "Ctrip", D::Travel)
            .path_both(SignIn, &[F::CellphoneNumber, F::SmsCode])
            .path_both(PasswordReset, &[F::CellphoneNumber, F::SmsCode])
            .path_both(PasswordReset, &[F::EmailCode])
            .path_both(RecoveryFallback, &[F::EmailCode])
            .expose_both(clear(K::CitizenId))
            .expose_both(clear(K::RealName))
            .expose_both(part(K::CellphoneNumber, 3, 4))
            .expose_both(clear(K::HistoryRecords))
            .build(),
    );
    // China Railway 12306: exposes the vital tail of the citizen ID.
    v.push(
        ServiceSpec::builder("china-railway-12306", "China Railway 12306", D::Travel)
            .path_both(SignIn, &[F::Password, F::SmsCode])
            .path_both(PasswordReset, &[F::SmsCode, F::CitizenId])
            .expose_both(part(K::CitizenId, 0, 8))
            .expose_both(clear(K::RealName))
            .expose_both(clear(K::HistoryRecords))
            .build(),
    );
    // Xiaozhu: SMS or email login; exposes the head of the citizen ID —
    // complementary to 12306, enabling the mask-merging attack.
    v.push(
        ServiceSpec::builder("xiaozhu", "Xiaozhu", D::Travel)
            .path_both(SignIn, &[F::CellphoneNumber, F::SmsCode])
            .path_both(SignIn, &[F::EmailCode])
            .path_both(PasswordReset, &[F::CellphoneNumber, F::SmsCode])
            .expose_both(part(K::CitizenId, 10, 0))
            .expose_both(clear(K::RealName))
            .expose_both(clear(K::Address))
            .build(),
    );
    v.push(
        ServiceSpec::builder("expedia", "Expedia", D::Travel)
            .path_both(SignIn, &[F::Password])
            .path_both(SignIn, &[F::LinkedAccount("gmail".into())])
            .path_both(PasswordReset, &[F::EmailLink])
            .expose_both(clear(K::RealName))
            .expose_both(clear(K::HistoryRecords))
            .expose_both(clear(K::EmailAddress))
            .build(),
    );
    v.push(
        ServiceSpec::builder("airbnb", "Airbnb", D::Travel)
            .path_both(SignIn, &[F::Password])
            .path_both(SignIn, &[F::LinkedAccount("gmail".into())])
            .path_both(PasswordReset, &[F::EmailLink])
            .path_both(PasswordReset, &[F::SmsCode])
            .path_both(RecoveryFallback, &[F::SmsCode])
            .expose_both(clear(K::RealName))
            .expose_both(clear(K::Address))
            .expose_mobile(clear(K::DeviceType))
            .build(),
    );
    v.push(
        ServiceSpec::builder("booking", "Booking.com", D::Travel)
            .path_both(SignIn, &[F::Password])
            .path_both(PasswordReset, &[F::EmailLink])
            .expose_both(clear(K::RealName))
            .expose_both(part(K::BankcardNumber, 0, 4))
            .expose_both(clear(K::Address))
            .build(),
    );

    // ------------------------------------------------------------------
    // E-commerce.
    // ------------------------------------------------------------------
    // JD: "provided a mass of" device type and acquaintance info.
    v.push(
        ServiceSpec::builder("jd", "JD", D::Ecommerce)
            .path_both(SignIn, &[F::CellphoneNumber, F::SmsCode])
            .path_both(SignIn, &[F::Password])
            .path_both(PasswordReset, &[F::CellphoneNumber, F::SmsCode])
            .expose_both(clear(K::DeviceType))
            .expose_both(clear(K::AcquaintanceInfo))
            .expose_both(clear(K::Address))
            .expose_both(clear(K::RealName))
            .expose_both(part(K::CellphoneNumber, 3, 4))
            .expose_both(clear(K::HistoryRecords))
            .build(),
    );
    v.push(
        ServiceSpec::builder("taobao", "Taobao", D::Ecommerce)
            .path_both(SignIn, &[F::Password, F::DeviceCheck])
            .path_both(SignIn, &[F::CellphoneNumber, F::SmsCode])
            .path_both(PasswordReset, &[F::CellphoneNumber, F::SmsCode])
            .expose_both(clear(K::Address))
            .expose_both(clear(K::RealName))
            .expose_both(part(K::CellphoneNumber, 3, 4))
            .expose_both(clear(K::HistoryRecords))
            .build(),
    );
    v.push(
        ServiceSpec::builder("amazon", "Amazon", D::Ecommerce)
            .path_both(SignIn, &[F::Password])
            .path_both(PasswordReset, &[F::EmailLink])
            .path_both(PasswordReset, &[F::SmsCode])
            .path_both(RecoveryFallback, &[F::SmsCode])
            .path_both(SupportReset, &[F::EmailLink])
            .expose_both(clear(K::Address))
            .expose_both(clear(K::RealName))
            .expose_both(part(K::BankcardNumber, 0, 4))
            .build(),
    );
    // Gome: the web/mobile asymmetry example — web masks the SSN part
    // that mobile shows in the clear.
    v.push(
        ServiceSpec::builder("gome", "Gome", D::Ecommerce)
            .path_both(SignIn, &[F::CellphoneNumber, F::SmsCode])
            .path_both(PasswordReset, &[F::CellphoneNumber, F::SmsCode])
            .expose_web(part(K::CitizenId, 4, 4))
            .expose_mobile(clear(K::CitizenId))
            .expose_both(clear(K::RealName))
            .build(),
    );
    v.push(
        ServiceSpec::builder("pinduoduo", "Pinduoduo", D::Ecommerce)
            .mobile_only()
            .path(SignIn, MobileApp, &[F::CellphoneNumber, F::SmsCode])
            .path(PasswordReset, MobileApp, &[F::CellphoneNumber, F::SmsCode])
            .expose_mobile(clear(K::Address))
            .expose_mobile(clear(K::RealName))
            .expose_mobile(part(K::CellphoneNumber, 3, 4))
            .build(),
    );
    // ------------------------------------------------------------------
    // Social networks.
    // ------------------------------------------------------------------
    // LinkedIn: acquaintance + device info trove.
    v.push(
        ServiceSpec::builder("linkedin", "LinkedIn", D::SocialNetwork)
            .path_both(SignIn, &[F::Password])
            .path_both(PasswordReset, &[F::EmailLink])
            .path_both(PasswordReset, &[F::SmsCode])
            .path_both(RecoveryFallback, &[F::SmsCode])
            .expose_both(clear(K::AcquaintanceInfo))
            .expose_both(clear(K::DeviceType))
            .expose_both(clear(K::RealName))
            .expose_both(clear(K::EmailAddress))
            .build(),
    );
    v.push(
        ServiceSpec::builder("facebook", "Facebook", D::SocialNetwork)
            .path_both(SignIn, &[F::Password])
            .path_both(PasswordReset, &[F::SmsCode])
            .path_both(PasswordReset, &[F::EmailLink])
            .path_both(SupportReset, &[F::SmsCode])
            .expose_both(clear(K::RealName))
            .expose_both(clear(K::AcquaintanceInfo))
            .expose_both(part(K::EmailAddress, 2, 8))
            .build(),
    );
    v.push(
        ServiceSpec::builder("weibo", "Weibo", D::SocialNetwork)
            .path_both(SignIn, &[F::CellphoneNumber, F::SmsCode])
            .path_both(PasswordReset, &[F::CellphoneNumber, F::SmsCode])
            .expose_both(clear(K::RealName))
            .expose_both(part(K::CellphoneNumber, 3, 4))
            .expose_both(clear(K::AcquaintanceInfo))
            .expose_both(clear(K::UserId))
            .build(),
    );
    v.push(
        ServiceSpec::builder("wechat", "WeChat", D::SocialNetwork)
            .mobile_only()
            .path(SignIn, MobileApp, &[F::CellphoneNumber, F::SmsCode])
            .path(PasswordReset, MobileApp, &[F::SmsCode, F::SecurityQuestion])
            .expose_mobile(clear(K::AcquaintanceInfo))
            .expose_mobile(clear(K::UserId))
            .expose_mobile(part(K::CellphoneNumber, 3, 4))
            .build(),
    );
    v.push(
        ServiceSpec::builder("twitter", "Twitter", D::SocialNetwork)
            .path_both(SignIn, &[F::Password])
            .path_both(PasswordReset, &[F::SmsCode])
            .path_both(PasswordReset, &[F::EmailCode])
            .path_both(RecoveryFallback, &[F::EmailCode])
            .expose_both(clear(K::UserId))
            .expose_both(part(K::EmailAddress, 2, 6))
            .expose_both(part(K::CellphoneNumber, 0, 2))
            .build(),
    );
    v.push(
        ServiceSpec::builder("instagram", "Instagram", D::SocialNetwork)
            .path_both(SignIn, &[F::Password])
            .path_both(PasswordReset, &[F::EmailLink])
            .path_both(PasswordReset, &[F::SmsCode])
            .expose_both(clear(K::UserId))
            .expose_both(clear(K::AcquaintanceInfo))
            .build(),
    );
    v.push(
        ServiceSpec::builder("zhihu", "Zhihu", D::SocialNetwork)
            .path_both(SignIn, &[F::CellphoneNumber, F::SmsCode])
            .path_both(PasswordReset, &[F::CellphoneNumber, F::SmsCode])
            .expose_both(clear(K::UserId))
            .expose_both(part(K::CellphoneNumber, 3, 4))
            .build(),
    );

    // ------------------------------------------------------------------
    // Cloud storage — photo/ID backup leak cluster.
    // ------------------------------------------------------------------
    v.push(
        ServiceSpec::builder("dropbox", "Dropbox", D::CloudStorage)
            .path_both(SignIn, &[F::Password])
            .path_both(PasswordReset, &[F::EmailCode])
            .path_both(RecoveryFallback, &[F::EmailCode])
            .expose_both(clear(K::Photos))
            .expose_both(clear(K::EmailAddress))
            .expose_mobile(clear(K::DeviceType))
            .build(),
    );
    v.push(
        ServiceSpec::builder("baidu-pan", "Baidu Pan", D::CloudStorage)
            .path_both(SignIn, &[F::CellphoneNumber, F::SmsCode])
            .path_both(SignIn, &[F::EmailCode])
            .path_both(PasswordReset, &[F::CellphoneNumber, F::SmsCode])
            .expose_both(clear(K::Photos))
            .expose_both(part(K::CellphoneNumber, 3, 4))
            .build(),
    );
    v.push(
        ServiceSpec::builder("icloud-drive", "iCloud Drive", D::CloudStorage)
            .path_both(SignIn, &[F::Password, F::DeviceCheck])
            .path_both(PasswordReset, &[F::DeviceCheck, F::SmsCode])
            .path_both(MfaDisable, &[F::DeviceCheck, F::SmsCode])
            .expose_both(clear(K::Photos))
            .expose_both(clear(K::DeviceType))
            .build(),
    );

    // ------------------------------------------------------------------
    // Local services / transport.
    // ------------------------------------------------------------------
    v.push(
        ServiceSpec::builder("didi", "Didi", D::LocalServices)
            .mobile_only()
            .path(SignIn, MobileApp, &[F::CellphoneNumber, F::SmsCode])
            .path(PasswordReset, MobileApp, &[F::CellphoneNumber, F::SmsCode])
            .expose_mobile(clear(K::Address))
            .expose_mobile(clear(K::HistoryRecords))
            .expose_mobile(part(K::CellphoneNumber, 3, 4))
            .build(),
    );
    v.push(
        ServiceSpec::builder("meituan", "Meituan", D::LocalServices)
            .path_both(SignIn, &[F::CellphoneNumber, F::SmsCode])
            .path_both(PasswordReset, &[F::CellphoneNumber, F::SmsCode])
            .expose_both(clear(K::Address))
            .expose_both(clear(K::HistoryRecords))
            .build(),
    );
    v.push(
        ServiceSpec::builder("eleme", "Ele.me", D::LocalServices)
            .mobile_only()
            .path(SignIn, MobileApp, &[F::CellphoneNumber, F::SmsCode])
            .path(PasswordReset, MobileApp, &[F::CellphoneNumber, F::SmsCode])
            .expose_mobile(clear(K::Address))
            .expose_mobile(part(K::RealName, 1, 0))
            .build(),
    );
    v.push(
        ServiceSpec::builder("uber", "Uber", D::LocalServices)
            .path_both(SignIn, &[F::CellphoneNumber, F::SmsCode])
            .path_both(PasswordReset, &[F::EmailLink])
            .expose_both(clear(K::HistoryRecords))
            .expose_both(part(K::BankcardNumber, 0, 4))
            .build(),
    );

    // ------------------------------------------------------------------
    // Video / news / misc.
    // ------------------------------------------------------------------
    v.push(
        ServiceSpec::builder("bilibili", "Bilibili", D::Video)
            .path_both(SignIn, &[F::CellphoneNumber, F::SmsCode])
            .path_both(PasswordReset, &[F::CellphoneNumber, F::SmsCode])
            .expose_both(clear(K::UserId))
            .expose_both(part(K::CellphoneNumber, 3, 4))
            .build(),
    );
    v.push(
        ServiceSpec::builder("iqiyi", "iQIYI", D::Video)
            .path_both(SignIn, &[F::CellphoneNumber, F::SmsCode])
            .path_both(PasswordReset, &[F::CellphoneNumber, F::SmsCode])
            .expose_both(clear(K::UserId))
            .build(),
    );
    v.push(
        ServiceSpec::builder("youku", "Youku", D::Video)
            .path_both(SignIn, &[F::CellphoneNumber, F::SmsCode])
            .path_both(SignIn, &[F::LinkedAccount("alipay".into())])
            .path_both(PasswordReset, &[F::CellphoneNumber, F::SmsCode])
            .expose_both(clear(K::UserId))
            .build(),
    );
    v.push(
        ServiceSpec::builder("netflix", "Netflix", D::Video)
            .path_both(SignIn, &[F::Password])
            .path_both(PasswordReset, &[F::EmailLink])
            .path_both(PasswordReset, &[F::SmsCode])
            .path_both(RecoveryFallback, &[F::SmsCode])
            .expose_both(part(K::BankcardNumber, 0, 4))
            .expose_both(clear(K::EmailAddress))
            .build(),
    );
    v.push(
        ServiceSpec::builder("toutiao", "Toutiao", D::News)
            .path_both(SignIn, &[F::CellphoneNumber, F::SmsCode])
            .path_both(PasswordReset, &[F::CellphoneNumber, F::SmsCode])
            .expose_both(clear(K::UserId))
            .expose_both(clear(K::DeviceType))
            .build(),
    );
    // GitHub with U2F — a second robust node.
    v.push(
        ServiceSpec::builder("github", "GitHub", D::Other)
            .path_both(SignIn, &[F::Password, F::U2fKey])
            .path_both(PasswordReset, &[F::EmailLink, F::U2fKey])
            // Recovery policy: MFA can only be disabled with the key
            // present — recovery is as robust as the login path.
            .path_both(MfaDisable, &[F::EmailLink, F::U2fKey])
            .expose_both(clear(K::EmailAddress))
            .expose_both(clear(K::UserId))
            .build(),
    );
    v.push(
        ServiceSpec::builder("steam", "Steam", D::Other)
            .path_both(SignIn, &[F::Password, F::TotpCode])
            .path_both(PasswordReset, &[F::EmailCode])
            .expose_both(clear(K::UserId))
            .expose_both(part(K::EmailAddress, 2, 8))
            .build(),
    );
    v.push(
        ServiceSpec::builder("58-tongcheng", "58.com", D::Other)
            .path_both(SignIn, &[F::CellphoneNumber, F::SmsCode])
            .path_both(PasswordReset, &[F::CellphoneNumber, F::SmsCode])
            .expose_both(clear(K::Address))
            .expose_both(part(K::CellphoneNumber, 3, 4))
            .build(),
    );
    v.push(
        ServiceSpec::builder("government-portal", "Citizen Services Portal", D::Other)
            .web_only()
            .path(SignIn, Web, &[F::Password, F::CitizenId, F::SmsCode])
            .path(PasswordReset, Web, &[F::CitizenId, F::RealName, F::SmsCode, F::Biometric])
            .path(SupportReset, Web, &[F::CitizenId, F::RealName, F::SmsCode, F::Biometric])
            .expose_web(part(K::CitizenId, 6, 0))
            .expose_web(clear(K::RealName))
            .expose_web(clear(K::Address))
            .build(),
    );

    v
}

/// The 44-service subset drawn in Fig. 4 — here, the whole curated set.
pub fn fig4_services() -> Vec<ServiceSpec> {
    curated_services()
}

/// Looks up a curated service by id.
pub fn curated(id: &str) -> Option<ServiceSpec> {
    curated_services().into_iter().find(|s| s.id.as_str() == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Platform, Purpose};

    #[test]
    fn dataset_has_44_services_with_unique_ids() {
        let all = curated_services();
        assert_eq!(all.len(), 44);
        let mut ids: Vec<&str> = all.iter().map(|s| s.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 44, "duplicate service ids");
    }

    #[test]
    fn email_providers_reset_with_sms_only() {
        for id in ["gmail", "netease-163", "outlook", "aliyun-mail"] {
            let s = curated(id).unwrap();
            let resets = s.paths_for(Platform::Web, Purpose::PasswordReset);
            assert!(
                resets.iter().any(|p| p.is_sms_only()),
                "{id} must reset with SMS only (paper §IV-B)"
            );
        }
    }

    #[test]
    fn ctrip_exposes_full_citizen_id() {
        let s = curated("ctrip").unwrap();
        let field = s
            .web_exposure
            .iter()
            .find(|f| f.kind == K::CitizenId)
            .expect("ctrip exposes citizen ID");
        assert!(field.reveals_fully());
    }

    #[test]
    fn alipay_web_mobile_asymmetry() {
        let s = curated("alipay").unwrap();
        let mobile_resets = s.paths_for(Platform::MobileApp, Purpose::PasswordReset);
        let web_resets = s.paths_for(Platform::Web, Purpose::PasswordReset);
        // The weak mobile link: SMS + citizen ID.
        assert!(mobile_resets
            .iter()
            .any(|p| p.factors.contains(&F::SmsCode) && p.factors.contains(&F::CitizenId)));
        // The web end never accepts citizen ID — it wants the bankcard.
        assert!(web_resets.iter().all(|p| !p.factors.contains(&F::CitizenId)));
        assert!(web_resets
            .iter()
            .any(|p| p.factors.contains(&F::BankcardNumber)));
    }

    #[test]
    fn gome_masks_web_but_not_mobile() {
        let s = curated("gome").unwrap();
        let web = s.web_exposure.iter().find(|f| f.kind == K::CitizenId).unwrap();
        let mobile = s.mobile_exposure.iter().find(|f| f.kind == K::CitizenId).unwrap();
        assert!(!web.reveals_fully());
        assert!(mobile.reveals_fully());
    }

    #[test]
    fn citizen_id_masks_are_complementary_across_travel_sites() {
        use crate::info::{is_fully_recovered, merge_masked};
        let cid = "110101199003078515";
        let x = curated("xiaozhu").unwrap();
        let r = curated("china-railway-12306").unwrap();
        let xm = x.web_exposure.iter().find(|f| f.kind == K::CitizenId).unwrap().masking.apply(cid);
        let rm = r.web_exposure.iter().find(|f| f.kind == K::CitizenId).unwrap().masking.apply(cid);
        let merged = merge_masked(&[xm, rm]).unwrap();
        assert!(is_fully_recovered(&merged), "merged mask views recover the full ID");
        assert_eq!(merged, cid);
    }

    #[test]
    fn robust_nodes_have_no_weak_path() {
        for id in ["union-bank", "github"] {
            let s = curated(id).unwrap();
            assert!(!s.has_sms_only_path(), "{id} must not fall to SMS alone");
            for p in &s.paths {
                assert!(
                    p.factors.iter().any(|f| f.is_robust()),
                    "{id} path {p} lacks a robust factor"
                );
            }
        }
    }

    #[test]
    fn dataset_covers_all_domains() {
        use std::collections::BTreeSet;
        let domains: BTreeSet<String> =
            curated_services().iter().map(|s| s.domain.to_string()).collect();
        assert!(domains.len() >= 8, "expected broad domain coverage, got {domains:?}");
    }

    #[test]
    fn recovery_policy_columns_are_present() {
        let all = curated_services();
        let with = |purpose: Purpose| -> usize {
            all.iter().filter(|s| s.paths.iter().any(|p| p.purpose == purpose)).count()
        };
        assert!(with(Purpose::RecoveryFallback) >= 10, "fallback flows sparse");
        assert!(with(Purpose::SupportReset) >= 4, "support-reset flows sparse");
        assert!(with(Purpose::MfaDisable) >= 4, "mfa-disable flows sparse");
        // Every service still models a reset; counts stay at 44.
        assert_eq!(all.len(), 44);
    }

    #[test]
    fn added_recovery_flows_are_analysis_neutral() {
        // Each flow under a *new* recovery purpose (everything beyond
        // PasswordReset) either repeats the factor set of another path
        // on the same platform or demands a robust factor — so the
        // unfiltered dependency analysis cannot change.
        for s in curated_services() {
            for p in &s.paths {
                if !p.purpose.is_recovery() || p.purpose == Purpose::PasswordReset {
                    continue;
                }
                let duplicated = s.paths.iter().any(|q| {
                    q.purpose != p.purpose && q.platform == p.platform && q.factors == p.factors
                });
                let robust = p.factors.iter().any(|f| f.is_robust());
                assert!(
                    duplicated || robust,
                    "{}: recovery flow {p} could shift the unfiltered analysis",
                    s.id
                );
            }
        }
    }

    #[test]
    fn robust_nodes_gate_mfa_disable_behind_robust_factors() {
        for id in ["union-bank", "github"] {
            let s = curated(id).unwrap();
            let disables: Vec<_> =
                s.paths.iter().filter(|p| p.purpose == Purpose::MfaDisable).collect();
            assert!(!disables.is_empty(), "{id} models an MFA-disable flow");
            for p in disables {
                assert!(p.factors.iter().any(|f| f.is_robust()), "{id}: weak MFA disable {p}");
            }
        }
    }

    #[test]
    fn majority_of_dataset_is_sms_compromisable() {
        let all = curated_services();
        let direct = all.iter().filter(|s| s.has_sms_only_path()).count();
        let frac = direct as f64 / all.len() as f64;
        // The paper measures ~74–76% directly compromisable.
        assert!((0.55..=0.90).contains(&frac), "direct fraction {frac}");
    }
}
