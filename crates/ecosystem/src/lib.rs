//! The Online Account Ecosystem simulator.
//!
//! The paper's central object of study is the *ecosystem*: hundreds of
//! online services whose authentication paths and personal-information
//! exposure interlock into a dependency graph. This crate provides:
//!
//! - [`spec`] — static service profiles ([`spec::ServiceSpec`]): every
//!   authentication path per platform and purpose, every exposed field
//!   with its masking. This is what ActFort analyses.
//! - [`service`] — *executable* services: registration, SMS/email
//!   challenge issuance over the real substrates, factor verification,
//!   sessions, password resets, payments and masked profile pages.
//! - [`host`] — the [`host::Ecosystem`] world object tying services to
//!   the GSM network, mail system and victim population.
//! - [`dataset`] — 44 curated profiles encoding every concrete fact the
//!   paper states about named services (Gmail, Alipay, Ctrip, …).
//! - [`synth`] — a generator calibrated to the paper's aggregate
//!   measurements (Fig. 3, Table I) for population-scale experiments.
//! - [`population`] — generated victims, leak databases, phishing Wi-Fi.
//! - [`info`], [`factor`], [`policy`] — the vocabulary: information
//!   kinds and masking, credential factors, authentication paths and the
//!   general/info/unique path taxonomy.
//!
//! # Example
//!
//! ```
//! use actfort_ecosystem::dataset::curated;
//! use actfort_ecosystem::policy::{Platform, Purpose};
//!
//! let ctrip = curated("ctrip").expect("in the dataset");
//! // The paper's finding: Ctrip signs in with just phone + SMS code…
//! assert!(ctrip
//!     .paths_for(Platform::Web, Purpose::SignIn)
//!     .iter()
//!     .any(|p| p.is_sms_only()));
//! // …and exposes the full citizen ID after login.
//! assert!(ctrip.exposes(Platform::Web, actfort_ecosystem::PersonalInfoKind::CitizenId));
//! ```

pub mod dataset;
pub mod error;
pub mod factor;
pub mod host;
pub mod info;
pub mod policy;
pub mod population;
pub mod service;
pub mod spec;
pub mod synth;

pub use error::EcosystemError;
pub use factor::{CredentialFactor, ServiceId};
pub use host::Ecosystem;
pub use info::PersonalInfoKind;
pub use policy::{AuthPath, EdgeClass, PathClass, Platform, Purpose};
pub use spec::{RecoveryPolicy, ServiceDomain, ServiceSpec};
