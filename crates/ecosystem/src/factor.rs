//! Credential factors — the inputs authentication paths demand.

use crate::info::PersonalInfoKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a service within the ecosystem (stable slug).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServiceId(pub String);

impl ServiceId {
    /// Creates a service id from a slug.
    pub fn new(slug: &str) -> Self {
        Self(slug.to_owned())
    }

    /// The slug.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(&self.0)
    }
}

impl From<&str> for ServiceId {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}

/// A credential factor an authentication path can require.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CredentialFactor {
    /// The account password.
    Password,
    /// A one-time code texted to the bound phone.
    SmsCode,
    /// A one-time code mailed to the bound address.
    EmailCode,
    /// A reset link mailed to the bound address.
    EmailLink,
    /// Knowledge of the cellphone number itself (as an identifier).
    CellphoneNumber,
    /// The user's legal name.
    RealName,
    /// The user's citizen ID / SSN.
    CitizenId,
    /// A bound bank card number.
    BankcardNumber,
    /// Answer to a security question.
    SecurityQuestion,
    /// Face / fingerprint verification on a trusted device.
    Biometric,
    /// A U2F hardware key assertion.
    U2fKey,
    /// The attempt must come from a previously-seen device.
    DeviceCheck,
    /// Human customer service accepting a dossier of personal information
    /// (the social-engineering path on Alipay web).
    CustomerService,
    /// A live session on a linked account (SSO).
    LinkedAccount(ServiceId),
    /// TOTP authenticator app code.
    TotpCode,
    /// OS-level push approval on the registered device — the paper's
    /// built-in-authentication countermeasure (§VII-A2). Never crosses
    /// GSM, so it cannot be intercepted.
    PushApproval,
    /// WebAuthn passkey assertion bound to the origin — phishing- and
    /// interception-resistant; the passkey-enrollment countermeasure
    /// plants it on recovery paths to sever recovery edges.
    Passkey,
}

impl CredentialFactor {
    /// The personal-information kind that *satisfies* this factor when
    /// harvested from another account, if any. This is the paper's
    /// "reciprocal transformation of sensitive personal information and
    /// authentication credential factors".
    pub fn satisfied_by_info(&self) -> Option<PersonalInfoKind> {
        match self {
            CredentialFactor::CellphoneNumber => Some(PersonalInfoKind::CellphoneNumber),
            CredentialFactor::RealName => Some(PersonalInfoKind::RealName),
            CredentialFactor::CitizenId => Some(PersonalInfoKind::CitizenId),
            CredentialFactor::BankcardNumber => Some(PersonalInfoKind::BankcardNumber),
            CredentialFactor::SecurityQuestion => Some(PersonalInfoKind::SecurityAnswers),
            _ => None,
        }
    }

    /// Whether an attacker profile capability (rather than harvested
    /// info) can satisfy the factor: SMS interception covers `SmsCode`,
    /// a compromised mailbox covers `EmailCode`/`EmailLink`, etc.
    pub fn is_interceptable_channel(&self) -> bool {
        matches!(
            self,
            CredentialFactor::SmsCode | CredentialFactor::EmailCode | CredentialFactor::EmailLink
        )
    }

    /// Factors the paper classifies as effectively unattackable
    /// (biometrics, U2F, trusted-device checks).
    pub fn is_robust(&self) -> bool {
        matches!(
            self,
            CredentialFactor::Biometric
                | CredentialFactor::U2fKey
                | CredentialFactor::DeviceCheck
                | CredentialFactor::PushApproval
                | CredentialFactor::Passkey
        )
    }
}

impl fmt::Display for CredentialFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CredentialFactor::Password => f.write_str("password"),
            CredentialFactor::SmsCode => f.write_str("SMS code"),
            CredentialFactor::EmailCode => f.write_str("email code"),
            CredentialFactor::EmailLink => f.write_str("email link"),
            CredentialFactor::CellphoneNumber => f.write_str("cellphone number"),
            CredentialFactor::RealName => f.write_str("real name"),
            CredentialFactor::CitizenId => f.write_str("citizen ID"),
            CredentialFactor::BankcardNumber => f.write_str("bankcard number"),
            CredentialFactor::SecurityQuestion => f.write_str("security question"),
            CredentialFactor::Biometric => f.write_str("biometric"),
            CredentialFactor::U2fKey => f.write_str("U2F key"),
            CredentialFactor::DeviceCheck => f.write_str("device check"),
            CredentialFactor::CustomerService => f.write_str("customer service"),
            CredentialFactor::LinkedAccount(s) => write!(f, "linked account ({s})"),
            CredentialFactor::TotpCode => f.write_str("TOTP code"),
            CredentialFactor::PushApproval => f.write_str("push approval"),
            CredentialFactor::Passkey => f.write_str("passkey"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn info_transformation_mapping() {
        assert_eq!(
            CredentialFactor::CitizenId.satisfied_by_info(),
            Some(PersonalInfoKind::CitizenId)
        );
        assert_eq!(CredentialFactor::SmsCode.satisfied_by_info(), None);
        assert_eq!(CredentialFactor::Biometric.satisfied_by_info(), None);
    }

    #[test]
    fn channel_and_robust_classification() {
        assert!(CredentialFactor::SmsCode.is_interceptable_channel());
        assert!(CredentialFactor::EmailLink.is_interceptable_channel());
        assert!(!CredentialFactor::Password.is_interceptable_channel());
        assert!(CredentialFactor::U2fKey.is_robust());
        assert!(!CredentialFactor::SmsCode.is_robust());
    }

    #[test]
    fn service_id_display() {
        let id = ServiceId::from("gmail");
        assert_eq!(id.to_string(), "gmail");
        assert_eq!(CredentialFactor::LinkedAccount(id).to_string(), "linked account (gmail)");
    }
}
