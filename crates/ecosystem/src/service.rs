//! Executable online services: registration, challenge issuance, factor
//! verification, sessions, password reset and profile exposure.
//!
//! An [`OnlineService`] is a [`crate::spec::ServiceSpec`] brought to life:
//! its authentication paths actually issue SMS codes over the simulated
//! GSM network and email codes through the mail system, verify presented
//! factors against the account's stored truth, and expose masked personal
//! information post-login — so the Chain Reaction Attack can be *run*,
//! not just predicted.

use crate::error::EcosystemError;
use crate::factor::{CredentialFactor, ServiceId};
use crate::info::PersonalInfoKind;
use crate::policy::{AuthPath, Platform, Purpose};
use crate::population::{Person, PersonId};
use crate::spec::{ServiceDomain, ServiceSpec};
use actfort_authsvc::email::MailSystem;
use actfort_authsvc::otp::{OtpIssuer, OtpPolicy};
use actfort_authsvc::password::PasswordStore;
use actfort_authsvc::sms_gateway::SmsOtpGateway;
use actfort_authsvc::totp::TotpKey;
use actfort_authsvc::u2f::{Assertion, KeyHandle};
use actfort_gsm::identity::Msisdn;
use actfort_gsm::network::GsmNetwork;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Per-service account identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AccountId(pub u32);

impl fmt::Display for AccountId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "acct#{}", self.0)
    }
}

/// An authenticated session token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SessionToken(pub u64);

/// Ways to name an account when starting authentication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccountLocator {
    /// By bound phone number.
    Phone(Msisdn),
    /// By bound email address.
    Email(String),
    /// By username.
    Username(String),
}

/// A pending multi-factor challenge.
#[derive(Debug, Clone, PartialEq)]
pub struct Challenge {
    /// Challenge id, to be passed to [`OnlineService::complete_auth`].
    pub id: u64,
    /// Account under authentication.
    pub account: AccountId,
    /// The path being exercised.
    pub path: AuthPath,
    /// Random challenge for U2F assertions, when the path needs one.
    pub u2f_challenge: u64,
}

/// Factor responses presented to complete a challenge.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FactorResponse {
    /// The account password.
    Password(String),
    /// Code received by SMS.
    SmsCode(String),
    /// Code received by email.
    EmailCode(String),
    /// Token clicked in a reset link.
    EmailLink(String),
    /// The phone number itself.
    CellphoneNumber(String),
    /// Legal name.
    RealName(String),
    /// Citizen ID.
    CitizenId(String),
    /// Bank card number.
    BankcardNumber(String),
    /// Security-question answer.
    SecurityAnswer(String),
    /// Biometric proof — only the genuine person can produce it, so it
    /// carries the person id and is checked against the account owner.
    Biometric(PersonId),
    /// A U2F assertion over the challenge's nonce.
    U2f(Assertion),
    /// TOTP authenticator code.
    Totp(String),
    /// A dossier presented to human customer service.
    CustomerService(Vec<(PersonalInfoKind, String)>),
    /// Claim of a live session on a linked service (validated by the
    /// ecosystem host before verification).
    LinkedAccount(ServiceId),
}

/// The result of completing a challenge.
#[derive(Debug, Clone, PartialEq)]
pub enum AuthOutcome {
    /// Signed in.
    Session(SessionToken),
    /// Password reset authorised; redeem with [`OnlineService::apply_reset`].
    ResetGranted(ResetGrant),
    /// Payment authorised (Fintech `Payment` purpose).
    PaymentAuthorised(SessionToken),
}

/// One-time grant to set a new password.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResetGrant {
    /// The account whose password may be set.
    pub account: AccountId,
    grant_id: u64,
}

#[derive(Debug, Clone)]
struct Account {
    id: AccountId,
    person: PersonId,
    username: String,
    phone: Option<Msisdn>,
    email: Option<String>,
    stored: BTreeMap<PersonalInfoKind, String>,
    u2f: Option<KeyHandle>,
    totp: Option<TotpKey>,
    /// Other service accounts bound for SSO sign-in.
    bindings: std::collections::BTreeSet<ServiceId>,
    /// Set when the owner notices suspicious activity and locks the
    /// account (every authentication flow is then refused).
    frozen: bool,
    payments_made: u32,
}

/// An executable online service.
#[derive(Debug)]
pub struct OnlineService {
    spec: ServiceSpec,
    accounts: BTreeMap<u32, Account>,
    passwords: PasswordStore,
    sms: SmsOtpGateway,
    email_otp: OtpIssuer,
    challenges: BTreeMap<u64, Challenge>,
    sessions: BTreeMap<u64, AccountId>,
    grants: BTreeMap<u64, AccountId>,
    next_account: u32,
    next_challenge: u64,
    next_session: u64,
    next_grant: u64,
}

impl OnlineService {
    /// Brings a spec to life. `seed` controls this service's OTP streams.
    pub fn new(spec: ServiceSpec, seed: u64) -> Self {
        let sms = SmsOtpGateway::new(&spec.name, OtpPolicy::default(), seed);
        Self {
            spec,
            accounts: BTreeMap::new(),
            // Low KDF cost keeps population-scale simulations fast.
            passwords: PasswordStore::with_iterations(16),
            sms,
            email_otp: OtpIssuer::new(OtpPolicy::default(), seed.wrapping_add(1)),
            challenges: BTreeMap::new(),
            sessions: BTreeMap::new(),
            grants: BTreeMap::new(),
            next_account: 0,
            next_challenge: 0,
            next_session: 0,
            next_grant: 0,
        }
    }

    /// The static profile.
    pub fn spec(&self) -> &ServiceSpec {
        &self.spec
    }

    /// This service's id.
    pub fn id(&self) -> &ServiceId {
        &self.spec.id
    }

    /// Registers `person`, binding phone and email and storing every
    /// information kind the service exposes or requires as a factor.
    ///
    /// # Errors
    ///
    /// Returns [`EcosystemError::Conflict`] when the phone is already
    /// bound to another account.
    pub fn register(
        &mut self,
        person: &Person,
        password: &str,
        u2f: Option<KeyHandle>,
    ) -> Result<AccountId, EcosystemError> {
        if self
            .accounts
            .values()
            .any(|a| a.phone.as_ref() == Some(&person.phone))
        {
            return Err(EcosystemError::Conflict(format!(
                "{} already bound at {}",
                person.phone, self.spec.name
            )));
        }
        let id = AccountId(self.next_account);
        self.next_account += 1;
        let username = format!("{}_{}", self.spec.id.as_str(), person.id.0);

        let mut needed: Vec<PersonalInfoKind> = Vec::new();
        for platform in [Platform::Web, Platform::MobileApp] {
            for f in self.spec.exposure_on(platform) {
                if !needed.contains(&f.kind) {
                    needed.push(f.kind);
                }
            }
        }
        for f in self.spec.factor_universe() {
            if let Some(kind) = f.satisfied_by_info() {
                if !needed.contains(&kind) {
                    needed.push(kind);
                }
            }
        }
        let mut stored = BTreeMap::new();
        for kind in needed {
            stored.insert(kind, truth_value(person, kind, &username));
        }

        // Services whose paths use TOTP enrol an authenticator app at
        // registration; the secret never leaves device and service.
        let totp = if self.spec.factor_universe().contains(&CredentialFactor::TotpCode) {
            Some(TotpKey::new(
                format!("totp:{}:{}", self.spec.id.as_str(), person.id.0).into_bytes(),
            ))
        } else {
            None
        };

        // Accounts created through "sign in with X" arrive pre-bound to
        // every linked service the spec's paths reference.
        let bindings: std::collections::BTreeSet<ServiceId> = self
            .spec
            .factor_universe()
            .into_iter()
            .filter_map(|f| match f {
                CredentialFactor::LinkedAccount(s) => Some(s),
                _ => None,
            })
            .collect();

        self.passwords.set(&username, password);
        self.accounts.insert(
            id.0,
            Account {
                id,
                person: person.id,
                username,
                phone: Some(person.phone.clone()),
                email: Some(person.email.clone()),
                stored,
                u2f,
                totp,
                bindings,
                frozen: false,
                payments_made: 0,
            },
        );
        Ok(id)
    }

    /// Locks an account after the owner reports suspicious activity:
    /// every subsequent authentication flow is refused until support
    /// unfreezes it.
    pub fn freeze(&mut self, id: AccountId) {
        if let Some(a) = self.accounts.get_mut(&id.0) {
            a.frozen = true;
        }
    }

    /// Lifts a freeze (customer support after identity verification).
    pub fn unfreeze(&mut self, id: AccountId) {
        if let Some(a) = self.accounts.get_mut(&id.0) {
            a.frozen = false;
        }
    }

    /// Whether an account is currently frozen.
    pub fn is_frozen(&self, id: AccountId) -> bool {
        self.accounts.get(&id.0).map(|a| a.frozen).unwrap_or(false)
    }

    /// Binds another service account for SSO sign-in (done from inside a
    /// live session, as real account-settings pages require).
    ///
    /// # Errors
    ///
    /// Returns [`EcosystemError::InvalidSession`] for a bad token.
    pub fn bind_account(&mut self, token: SessionToken, target: &ServiceId) -> Result<(), EcosystemError> {
        let account = *self.sessions.get(&token.0).ok_or(EcosystemError::InvalidSession)?;
        let acct = self.accounts.get_mut(&account.0).ok_or(EcosystemError::InvalidSession)?;
        acct.bindings.insert(target.clone());
        Ok(())
    }

    /// Removes an SSO binding.
    ///
    /// # Errors
    ///
    /// Returns [`EcosystemError::InvalidSession`] for a bad token.
    pub fn unbind_account(
        &mut self,
        token: SessionToken,
        target: &ServiceId,
    ) -> Result<(), EcosystemError> {
        let account = *self.sessions.get(&token.0).ok_or(EcosystemError::InvalidSession)?;
        let acct = self.accounts.get_mut(&account.0).ok_or(EcosystemError::InvalidSession)?;
        acct.bindings.remove(target);
        Ok(())
    }

    /// The services an account is bound to.
    pub fn bindings(&self, id: AccountId) -> Vec<ServiceId> {
        self.accounts
            .get(&id.0)
            .map(|a| a.bindings.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// The TOTP key enrolled for an account, if its service uses one.
    /// (This models the *user's* authenticator app; attackers have no
    /// access to it.)
    pub fn totp_key(&self, id: AccountId) -> Option<&TotpKey> {
        self.accounts.get(&id.0).and_then(|a| a.totp.as_ref())
    }

    /// Finds an account by locator.
    pub fn find_account(&self, locator: &AccountLocator) -> Option<AccountId> {
        self.accounts
            .values()
            .find(|a| match locator {
                AccountLocator::Phone(p) => a.phone.as_ref() == Some(p),
                AccountLocator::Email(e) => a.email.as_deref() == Some(e.as_str()),
                AccountLocator::Username(u) => &a.username == u,
            })
            .map(|a| a.id)
    }

    /// The person who owns an account.
    pub fn account_owner(&self, id: AccountId) -> Option<PersonId> {
        self.accounts.get(&id.0).map(|a| a.person)
    }

    /// Number of registered accounts.
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Starts authentication on path `path_index` of (`platform`,
    /// `purpose`). Side effects: sends the SMS code over `gsm` and/or the
    /// email code through `mail` when the path demands them.
    ///
    /// # Errors
    ///
    /// - [`EcosystemError::UnknownAccount`] / [`EcosystemError::NoSuchPath`].
    /// - Delivery errors from the substrates.
    #[allow(clippy::too_many_arguments)]
    pub fn begin_auth(
        &mut self,
        account: AccountId,
        platform: Platform,
        purpose: Purpose,
        path_index: usize,
        gsm: &mut GsmNetwork,
        mail: &mut MailSystem,
        now_ms: u64,
    ) -> Result<Challenge, EcosystemError> {
        let acct = self
            .accounts
            .get(&account.0)
            .ok_or_else(|| EcosystemError::UnknownAccount(account.to_string()))?;
        if acct.frozen {
            return Err(EcosystemError::Conflict(format!(
                "{account} is frozen after a fraud report"
            )));
        }
        let paths = self.spec.paths_for(platform, purpose);
        let path = paths
            .get(path_index)
            .copied()
            .ok_or(EcosystemError::NoSuchPath { index: path_index, available: paths.len() })?
            .clone();

        let purpose_key = purpose_key(purpose);
        if path.factors.contains(&CredentialFactor::SmsCode) {
            let phone = acct.phone.clone().ok_or_else(|| {
                EcosystemError::FactorRejected("no phone bound for SMS code".into())
            })?;
            self.sms.send_code(gsm, &phone, purpose_key, now_ms)?;
        }
        if path.factors.contains(&CredentialFactor::EmailCode)
            || path.factors.contains(&CredentialFactor::EmailLink)
        {
            let email = acct.email.clone().ok_or_else(|| {
                EcosystemError::FactorRejected("no email bound for email code".into())
            })?;
            let key = format!("{email}:{purpose_key}");
            let code = self.email_otp.issue(&key, now_ms)?;
            let body = if path.factors.contains(&CredentialFactor::EmailLink) {
                format!(
                    "{code} is your {name} {purpose_key} code or reset here: https://{slug}.example/l/{code}",
                    name = self.spec.name,
                    slug = self.spec.id.as_str()
                )
            } else {
                format!("{code} is your {name} {purpose_key} code.", name = self.spec.name)
            };
            mail.deliver(&email, self.spec.id.as_str(), &format!("{} security code", self.spec.name), &body, now_ms)?;
        }

        self.next_challenge += 1;
        let challenge = Challenge {
            id: self.next_challenge,
            account,
            path,
            u2f_challenge: self
                .next_challenge
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(now_ms),
        };
        self.challenges.insert(challenge.id, challenge.clone());
        Ok(challenge)
    }

    /// Completes a pending challenge with factor responses.
    /// `live_links` names services the presenter holds live sessions on
    /// (for `LinkedAccount` factors; the host validates them).
    ///
    /// A challenge survives failed attempts (users retype codes), so
    /// repeated wrong guesses accumulate toward the OTP lockout; it is
    /// consumed on success.
    ///
    /// # Errors
    ///
    /// - [`EcosystemError::UnknownChallenge`] for a bad or consumed id.
    /// - [`EcosystemError::MissingFactor`] / [`EcosystemError::FactorRejected`].
    pub fn complete_auth(
        &mut self,
        challenge_id: u64,
        responses: &[FactorResponse],
        live_links: &[ServiceId],
        now_ms: u64,
    ) -> Result<AuthOutcome, EcosystemError> {
        let challenge = self
            .challenges
            .get(&challenge_id)
            .cloned()
            .ok_or(EcosystemError::UnknownChallenge(challenge_id))?;
        let acct = self
            .accounts
            .get(&challenge.account.0)
            .ok_or_else(|| EcosystemError::UnknownAccount(challenge.account.to_string()))?
            .clone();
        let purpose_key = purpose_key(challenge.path.purpose);

        for factor in &challenge.path.factors {
            self.verify_factor(factor, &challenge, &acct, responses, live_links, purpose_key, now_ms)?;
        }
        self.challenges.remove(&challenge_id);

        match challenge.path.purpose {
            Purpose::SignIn => {
                self.next_session += 1;
                let token = SessionToken(self.next_session);
                self.sessions.insert(token.0, challenge.account);
                Ok(AuthOutcome::Session(token))
            }
            // Every recovery flow ends in a takeover-grade grant: the
            // fallback and support channels restore credentials, and an
            // MFA-disable leaves the account one password reset away.
            Purpose::PasswordReset
            | Purpose::RecoveryFallback
            | Purpose::SupportReset
            | Purpose::MfaDisable => {
                self.next_grant += 1;
                self.grants.insert(self.next_grant, challenge.account);
                Ok(AuthOutcome::ResetGranted(ResetGrant {
                    account: challenge.account,
                    grant_id: self.next_grant,
                }))
            }
            Purpose::Payment => {
                self.next_session += 1;
                let token = SessionToken(self.next_session);
                self.sessions.insert(token.0, challenge.account);
                if let Some(a) = self.accounts.get_mut(&challenge.account.0) {
                    a.payments_made += 1;
                }
                Ok(AuthOutcome::PaymentAuthorised(token))
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn verify_factor(
        &mut self,
        factor: &CredentialFactor,
        challenge: &Challenge,
        acct: &Account,
        responses: &[FactorResponse],
        live_links: &[ServiceId],
        purpose_key: &str,
        now_ms: u64,
    ) -> Result<(), EcosystemError> {
        let missing = || EcosystemError::MissingFactor(factor.to_string());
        let rejected = |why: &str| EcosystemError::FactorRejected(format!("{factor}: {why}"));
        match factor {
            CredentialFactor::Password => {
                let pw = responses
                    .iter()
                    .find_map(|r| match r {
                        FactorResponse::Password(p) => Some(p),
                        _ => None,
                    })
                    .ok_or_else(missing)?;
                self.passwords
                    .verify(&acct.username, pw)
                    .map_err(|_| rejected("wrong password"))
            }
            CredentialFactor::SmsCode => {
                let code = responses
                    .iter()
                    .find_map(|r| match r {
                        FactorResponse::SmsCode(c) => Some(c),
                        _ => None,
                    })
                    .ok_or_else(missing)?;
                let phone = acct.phone.as_ref().ok_or_else(|| rejected("no phone bound"))?;
                self.sms
                    .verify(phone, purpose_key, code, now_ms)
                    .map_err(|e| rejected(&e.to_string()))
            }
            CredentialFactor::EmailCode | CredentialFactor::EmailLink => {
                let code = responses
                    .iter()
                    .find_map(|r| match r {
                        FactorResponse::EmailCode(c) | FactorResponse::EmailLink(c) => Some(c),
                        _ => None,
                    })
                    .ok_or_else(missing)?;
                let email = acct.email.as_ref().ok_or_else(|| rejected("no email bound"))?;
                self.email_otp
                    .verify(&format!("{email}:{purpose_key}"), code, now_ms)
                    .map_err(|e| rejected(&e.to_string()))
            }
            CredentialFactor::CellphoneNumber => {
                let num = responses
                    .iter()
                    .find_map(|r| match r {
                        FactorResponse::CellphoneNumber(n) => Some(n),
                        _ => None,
                    })
                    .ok_or_else(missing)?;
                match &acct.phone {
                    Some(p) if p.digits() == num => Ok(()),
                    _ => Err(rejected("number mismatch")),
                }
            }
            CredentialFactor::RealName
            | CredentialFactor::CitizenId
            | CredentialFactor::BankcardNumber
            | CredentialFactor::SecurityQuestion => {
                let (kind, presented) = responses
                    .iter()
                    .find_map(|r| match (factor, r) {
                        (CredentialFactor::RealName, FactorResponse::RealName(v)) => {
                            Some((PersonalInfoKind::RealName, v))
                        }
                        (CredentialFactor::CitizenId, FactorResponse::CitizenId(v)) => {
                            Some((PersonalInfoKind::CitizenId, v))
                        }
                        (CredentialFactor::BankcardNumber, FactorResponse::BankcardNumber(v)) => {
                            Some((PersonalInfoKind::BankcardNumber, v))
                        }
                        (CredentialFactor::SecurityQuestion, FactorResponse::SecurityAnswer(v)) => {
                            Some((PersonalInfoKind::SecurityAnswers, v))
                        }
                        _ => None,
                    })
                    .ok_or_else(missing)?;
                match acct.stored.get(&kind) {
                    Some(truth) if truth == presented => Ok(()),
                    Some(_) => Err(rejected("value mismatch")),
                    None => Err(rejected("service holds no such value")),
                }
            }
            CredentialFactor::Biometric => {
                let person = responses
                    .iter()
                    .find_map(|r| match r {
                        FactorResponse::Biometric(p) => Some(*p),
                        _ => None,
                    })
                    .ok_or_else(missing)?;
                if person == acct.person {
                    Ok(())
                } else {
                    Err(rejected("biometric mismatch"))
                }
            }
            CredentialFactor::U2fKey => {
                let assertion = responses
                    .iter()
                    .find_map(|r| match r {
                        FactorResponse::U2f(a) => Some(a),
                        _ => None,
                    })
                    .ok_or_else(missing)?;
                let handle = acct.u2f.as_ref().ok_or_else(|| rejected("no key enrolled"))?;
                handle
                    .verify(assertion, challenge.u2f_challenge)
                    .map_err(|e| rejected(&e.to_string()))
            }
            CredentialFactor::DeviceCheck
            | CredentialFactor::PushApproval
            | CredentialFactor::Passkey => {
                // Trusted-device binding: only the genuine person's device
                // passes; modelled like biometrics.
                let person = responses
                    .iter()
                    .find_map(|r| match r {
                        FactorResponse::Biometric(p) => Some(*p),
                        _ => None,
                    })
                    .ok_or_else(missing)?;
                if person == acct.person {
                    Ok(())
                } else {
                    Err(rejected("unrecognised device"))
                }
            }
            CredentialFactor::TotpCode => {
                let code = responses
                    .iter()
                    .find_map(|r| match r {
                        FactorResponse::Totp(c) => Some(c),
                        _ => None,
                    })
                    .ok_or_else(missing)?;
                let key = acct.totp.as_ref().ok_or_else(|| rejected("no authenticator enrolled"))?;
                if key.verify(code, now_ms, 1) {
                    Ok(())
                } else {
                    Err(rejected("wrong TOTP code"))
                }
            }
            CredentialFactor::CustomerService => {
                let dossier = responses
                    .iter()
                    .find_map(|r| match r {
                        FactorResponse::CustomerService(d) => Some(d),
                        _ => None,
                    })
                    .ok_or_else(missing)?;
                let correct = dossier
                    .iter()
                    .filter(|(kind, value)| acct.stored.get(kind).map(|t| t == value).unwrap_or(false))
                    .count();
                if correct >= 3 {
                    Ok(())
                } else {
                    Err(rejected(&format!("{correct} verified facts, need 3")))
                }
            }
            CredentialFactor::LinkedAccount(service) => {
                let claimed = responses.iter().any(|r| matches!(r, FactorResponse::LinkedAccount(s) if s == service));
                if !acct.bindings.contains(service) {
                    Err(rejected("account is not bound to that service"))
                } else if claimed && live_links.contains(service) {
                    Ok(())
                } else {
                    Err(rejected("no live linked session"))
                }
            }
        }
    }

    /// Redeems a reset grant, setting a new password and returning a
    /// fresh session (account takeover complete).
    ///
    /// # Errors
    ///
    /// Returns [`EcosystemError::UnknownChallenge`] for a consumed or
    /// forged grant.
    pub fn apply_reset(
        &mut self,
        grant: ResetGrant,
        new_password: &str,
    ) -> Result<SessionToken, EcosystemError> {
        let account = self
            .grants
            .remove(&grant.grant_id)
            .ok_or(EcosystemError::UnknownChallenge(grant.grant_id))?;
        let username = self
            .accounts
            .get(&account.0)
            .ok_or_else(|| EcosystemError::UnknownAccount(account.to_string()))?
            .username
            .clone();
        self.passwords.set(&username, new_password);
        self.next_session += 1;
        let token = SessionToken(self.next_session);
        self.sessions.insert(token.0, account);
        Ok(token)
    }

    /// The account behind a session.
    pub fn session_account(&self, token: SessionToken) -> Option<AccountId> {
        self.sessions.get(&token.0).copied()
    }

    /// Renders the account page: every exposed field with the service's
    /// masking applied — what a logged-in user (or attacker) sees.
    ///
    /// # Errors
    ///
    /// Returns [`EcosystemError::InvalidSession`] for a bad token.
    pub fn view_profile(
        &self,
        token: SessionToken,
        platform: Platform,
    ) -> Result<Vec<(PersonalInfoKind, String)>, EcosystemError> {
        let account = self.sessions.get(&token.0).ok_or(EcosystemError::InvalidSession)?;
        let acct = self
            .accounts
            .get(&account.0)
            .ok_or(EcosystemError::InvalidSession)?;
        Ok(self
            .spec
            .exposure_on(platform)
            .iter()
            .filter_map(|f| {
                acct.stored
                    .get(&f.kind)
                    .map(|truth| (f.kind, f.masking.apply(truth)))
            })
            .collect())
    }

    /// Makes a payment inside a session (Fintech impact demonstration).
    ///
    /// # Errors
    ///
    /// - [`EcosystemError::InvalidSession`] for a bad token.
    /// - [`EcosystemError::Conflict`] when the service is not a Fintech
    ///   service.
    pub fn make_payment(&mut self, token: SessionToken, amount_cents: u64) -> Result<String, EcosystemError> {
        if self.spec.domain != ServiceDomain::Fintech {
            return Err(EcosystemError::Conflict(format!(
                "{} does not process payments",
                self.spec.name
            )));
        }
        let account = *self.sessions.get(&token.0).ok_or(EcosystemError::InvalidSession)?;
        let acct = self.accounts.get_mut(&account.0).ok_or(EcosystemError::InvalidSession)?;
        acct.payments_made += 1;
        Ok(format!(
            "receipt: {} paid {}.{:02} from {}",
            self.spec.name,
            amount_cents / 100,
            amount_cents % 100,
            acct.username
        ))
    }

    /// Payments made from an account (attack-impact metric).
    pub fn payments_made(&self, id: AccountId) -> u32 {
        self.accounts.get(&id.0).map(|a| a.payments_made).unwrap_or(0)
    }

    /// Verifies a direct password login without challenges (used by
    /// legitimate-user simulations).
    ///
    /// # Errors
    ///
    /// Returns [`EcosystemError::FactorRejected`] on a wrong password and
    /// [`EcosystemError::UnknownAccount`] for a missing account.
    pub fn password_login(
        &mut self,
        account: AccountId,
        password: &str,
    ) -> Result<SessionToken, EcosystemError> {
        let username = self
            .accounts
            .get(&account.0)
            .ok_or_else(|| EcosystemError::UnknownAccount(account.to_string()))?
            .username
            .clone();
        self.passwords
            .verify(&username, password)
            .map_err(|_| EcosystemError::FactorRejected("password: wrong password".into()))?;
        self.next_session += 1;
        let token = SessionToken(self.next_session);
        self.sessions.insert(token.0, account);
        Ok(token)
    }
}

fn purpose_key(purpose: Purpose) -> &'static str {
    match purpose {
        Purpose::SignIn => "login",
        Purpose::PasswordReset => "reset",
        Purpose::Payment => "payment",
        Purpose::RecoveryFallback => "recovery",
        Purpose::SupportReset => "support",
        Purpose::MfaDisable => "mfa-disable",
    }
}

fn truth_value(person: &Person, kind: PersonalInfoKind, username: &str) -> String {
    match kind {
        PersonalInfoKind::RealName => person.real_name.clone(),
        PersonalInfoKind::CitizenId => person.citizen_id.clone(),
        PersonalInfoKind::CellphoneNumber => person.phone.digits().to_owned(),
        PersonalInfoKind::EmailAddress => person.email.clone(),
        PersonalInfoKind::Address => person.address.clone(),
        PersonalInfoKind::UserId => username.to_owned(),
        PersonalInfoKind::BindingAccount => person.email.clone(),
        PersonalInfoKind::AcquaintanceInfo => person.acquaintances.join(", "),
        PersonalInfoKind::DeviceType => person.device_type.clone(),
        PersonalInfoKind::BankcardNumber => person.bankcard.clone(),
        PersonalInfoKind::Photos => {
            if person.has_id_photo_in_cloud {
                format!("photo-archive-with-id-card:{}", person.citizen_id)
            } else {
                "photo-archive".to_owned()
            }
        }
        PersonalInfoKind::HistoryRecords => format!("orders by {}", person.real_name),
        PersonalInfoKind::SecurityAnswers => person.security_answer.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::CredentialFactor as F;
    use crate::info::{ExposedField, Masking};
    use crate::population::PopulationBuilder;
    use actfort_gsm::network::NetworkConfig;

    fn substrate() -> (GsmNetwork, MailSystem) {
        (GsmNetwork::new(NetworkConfig::default()), MailSystem::new())
    }

    fn spec() -> ServiceSpec {
        ServiceSpec::builder("testpay", "TestPay", ServiceDomain::Fintech)
            .path(Purpose::SignIn, Platform::MobileApp, &[F::SmsCode])
            .path(Purpose::PasswordReset, Platform::MobileApp, &[F::SmsCode, F::CitizenId])
            .path(Purpose::SignIn, Platform::Web, &[F::Password])
            .expose_both(ExposedField::clear(PersonalInfoKind::RealName))
            .expose_both(ExposedField {
                kind: PersonalInfoKind::CitizenId,
                masking: Masking::Partial { prefix: 4, suffix: 4 },
            })
            .build()
    }

    fn setup() -> (OnlineService, GsmNetwork, MailSystem, Person) {
        let (mut gsm, mail) = substrate();
        let person = PopulationBuilder::new(11).person();
        let sub = gsm.provision_subscriber(&person.real_name, person.phone.clone()).unwrap();
        gsm.attach(sub).unwrap();
        let svc = OnlineService::new(spec(), 99);
        (svc, gsm, mail, person)
    }

    fn code_from_inbox(gsm: &GsmNetwork, phone: &Msisdn) -> String {
        let id = gsm.subscriber_by_msisdn(phone).unwrap();
        let sms = gsm.terminal(id).unwrap().inbox().last().unwrap().clone();
        sms.text.chars().take_while(|c| c.is_ascii_digit()).collect()
    }

    #[test]
    fn register_and_sms_login_flow() {
        let (mut svc, mut gsm, mut mail, person) = setup();
        let acct = svc.register(&person, "initial-pw", None).unwrap();
        let ch = svc
            .begin_auth(acct, Platform::MobileApp, Purpose::SignIn, 0, &mut gsm, &mut mail, 0)
            .unwrap();
        let code = code_from_inbox(&gsm, &person.phone);
        let outcome = svc
            .complete_auth(ch.id, &[FactorResponse::SmsCode(code)], &[], 1_000)
            .unwrap();
        let AuthOutcome::Session(token) = outcome else { panic!("expected session") };
        let profile = svc.view_profile(token, Platform::MobileApp).unwrap();
        assert!(profile.iter().any(|(k, v)| *k == PersonalInfoKind::RealName && v == &person.real_name));
        // Citizen ID is masked on the page.
        let (_, cid) = profile.iter().find(|(k, _)| *k == PersonalInfoKind::CitizenId).unwrap();
        assert!(cid.contains('*'));
        assert!(cid.starts_with(&person.citizen_id[..4]));
    }

    #[test]
    fn reset_needs_every_factor() {
        let (mut svc, mut gsm, mut mail, person) = setup();
        let acct = svc.register(&person, "initial-pw", None).unwrap();
        let ch = svc
            .begin_auth(acct, Platform::MobileApp, Purpose::PasswordReset, 0, &mut gsm, &mut mail, 0)
            .unwrap();
        let code = code_from_inbox(&gsm, &person.phone);
        // SMS code alone is not enough: the path also demands citizen ID.
        let err = svc.complete_auth(ch.id, &[FactorResponse::SmsCode(code)], &[], 1_000);
        assert!(matches!(err, Err(EcosystemError::MissingFactor(_))));
    }

    #[test]
    fn full_reset_takeover_and_payment() {
        let (mut svc, mut gsm, mut mail, person) = setup();
        let acct = svc.register(&person, "initial-pw", None).unwrap();
        let ch = svc
            .begin_auth(acct, Platform::MobileApp, Purpose::PasswordReset, 0, &mut gsm, &mut mail, 0)
            .unwrap();
        let code = code_from_inbox(&gsm, &person.phone);
        let outcome = svc
            .complete_auth(
                ch.id,
                &[
                    FactorResponse::SmsCode(code),
                    FactorResponse::CitizenId(person.citizen_id.clone()),
                ],
                &[],
                1_000,
            )
            .unwrap();
        let AuthOutcome::ResetGranted(grant) = outcome else { panic!("expected grant") };
        let token = svc.apply_reset(grant, "attacker-pw").unwrap();
        // Old password is dead, new one works.
        assert!(svc.password_login(acct, "initial-pw").is_err());
        assert!(svc.password_login(acct, "attacker-pw").is_ok());
        // Payments flow from the stolen session.
        let receipt = svc.make_payment(token, 12_345).unwrap();
        assert!(receipt.contains("123.45"));
        assert_eq!(svc.payments_made(acct), 1);
    }

    #[test]
    fn wrong_citizen_id_rejected() {
        let (mut svc, mut gsm, mut mail, person) = setup();
        let acct = svc.register(&person, "pw", None).unwrap();
        let ch = svc
            .begin_auth(acct, Platform::MobileApp, Purpose::PasswordReset, 0, &mut gsm, &mut mail, 0)
            .unwrap();
        let code = code_from_inbox(&gsm, &person.phone);
        let err = svc.complete_auth(
            ch.id,
            &[
                FactorResponse::SmsCode(code),
                FactorResponse::CitizenId("110101199001010011".into()),
            ],
            &[],
            1_000,
        );
        assert!(matches!(err, Err(EcosystemError::FactorRejected(_))));
    }

    #[test]
    fn challenge_is_single_use() {
        let (mut svc, mut gsm, mut mail, person) = setup();
        let acct = svc.register(&person, "pw", None).unwrap();
        let ch = svc
            .begin_auth(acct, Platform::MobileApp, Purpose::SignIn, 0, &mut gsm, &mut mail, 0)
            .unwrap();
        let code = code_from_inbox(&gsm, &person.phone);
        svc.complete_auth(ch.id, &[FactorResponse::SmsCode(code.clone())], &[], 1).unwrap();
        assert!(matches!(
            svc.complete_auth(ch.id, &[FactorResponse::SmsCode(code)], &[], 2),
            Err(EcosystemError::UnknownChallenge(_))
        ));
    }

    #[test]
    fn duplicate_registration_conflicts() {
        let (mut svc, _gsm, _mail, person) = setup();
        svc.register(&person, "pw", None).unwrap();
        assert!(matches!(svc.register(&person, "pw2", None), Err(EcosystemError::Conflict(_))));
    }

    #[test]
    fn locators_resolve() {
        let (mut svc, _gsm, _mail, person) = setup();
        let acct = svc.register(&person, "pw", None).unwrap();
        assert_eq!(svc.find_account(&AccountLocator::Phone(person.phone.clone())), Some(acct));
        assert_eq!(svc.find_account(&AccountLocator::Email(person.email.clone())), Some(acct));
        assert_eq!(
            svc.find_account(&AccountLocator::Username(format!("testpay_{}", person.id.0))),
            Some(acct)
        );
        assert_eq!(svc.find_account(&AccountLocator::Email("none@x.com".into())), None);
    }

    #[test]
    fn grant_is_single_use() {
        let (mut svc, mut gsm, mut mail, person) = setup();
        let acct = svc.register(&person, "pw", None).unwrap();
        let ch = svc
            .begin_auth(acct, Platform::MobileApp, Purpose::PasswordReset, 0, &mut gsm, &mut mail, 0)
            .unwrap();
        let code = code_from_inbox(&gsm, &person.phone);
        let AuthOutcome::ResetGranted(grant) = svc
            .complete_auth(
                ch.id,
                &[FactorResponse::SmsCode(code), FactorResponse::CitizenId(person.citizen_id.clone())],
                &[],
                1,
            )
            .unwrap()
        else {
            panic!()
        };
        svc.apply_reset(grant, "pw2").unwrap();
        assert!(svc.apply_reset(grant, "pw3").is_err());
    }

    #[test]
    fn sso_requires_binding_and_live_session() {
        let (mut gsm, mut mail) = substrate();
        let person = PopulationBuilder::new(14).person();
        let sub = gsm.provision_subscriber("p", person.phone.clone()).unwrap();
        gsm.attach(sub).unwrap();
        let spec = ServiceSpec::builder("booker", "Booker", ServiceDomain::Travel)
            .path(Purpose::SignIn, Platform::Web, &[F::Password])
            .path(Purpose::SignIn, Platform::Web, &[F::LinkedAccount("gmail".into())])
            .build();
        let mut svc = OnlineService::new(spec, 4);
        let acct = svc.register(&person, "pw", None).unwrap();
        // Registered with a pre-seeded gmail binding: SSO works with a
        // live link…
        let ch = svc.begin_auth(acct, Platform::Web, Purpose::SignIn, 1, &mut gsm, &mut mail, 0).unwrap();
        let ok = svc.complete_auth(
            ch.id,
            &[FactorResponse::LinkedAccount("gmail".into())],
            &["gmail".into()],
            0,
        );
        assert!(matches!(ok, Ok(AuthOutcome::Session(_))));
        // …then the user unbinds it from their settings page, and SSO
        // stops working even with a live link.
        let token = svc.password_login(acct, "pw").unwrap();
        svc.unbind_account(token, &"gmail".into()).unwrap();
        assert!(svc.bindings(acct).is_empty());
        let ch = svc.begin_auth(acct, Platform::Web, Purpose::SignIn, 1, &mut gsm, &mut mail, 1).unwrap();
        let err = svc.complete_auth(
            ch.id,
            &[FactorResponse::LinkedAccount("gmail".into())],
            &["gmail".into()],
            1,
        );
        assert!(matches!(err, Err(EcosystemError::FactorRejected(_))));
        // Re-binding restores it.
        svc.bind_account(token, &"gmail".into()).unwrap();
        let ch = svc.begin_auth(acct, Platform::Web, Purpose::SignIn, 1, &mut gsm, &mut mail, 2).unwrap();
        assert!(svc
            .complete_auth(
                ch.id,
                &[FactorResponse::LinkedAccount("gmail".into())],
                &["gmail".into()],
                2
            )
            .is_ok());
    }

    #[test]
    fn totp_signin_works_for_owner_and_resists_guessing() {
        let (mut gsm, mut mail) = substrate();
        let person = PopulationBuilder::new(13).person();
        let sub = gsm.provision_subscriber("p", person.phone.clone()).unwrap();
        gsm.attach(sub).unwrap();
        let spec = ServiceSpec::builder("brokerage", "Brokerage", ServiceDomain::Fintech)
            .path(Purpose::SignIn, Platform::Web, &[F::Password, F::TotpCode])
            .build();
        let mut svc = OnlineService::new(spec, 3);
        let acct = svc.register(&person, "pw", None).unwrap();
        let now = 90_000u64;
        // The legitimate user reads the code off their authenticator app.
        let code = svc.totp_key(acct).expect("enrolled").code_at(now);
        let ch = svc.begin_auth(acct, Platform::Web, Purpose::SignIn, 0, &mut gsm, &mut mail, now).unwrap();
        let outcome = svc
            .complete_auth(
                ch.id,
                &[FactorResponse::Password("pw".into()), FactorResponse::Totp(code)],
                &[],
                now,
            )
            .unwrap();
        assert!(matches!(outcome, AuthOutcome::Session(_)));
        // A guessed code fails.
        let ch = svc.begin_auth(acct, Platform::Web, Purpose::SignIn, 0, &mut gsm, &mut mail, now).unwrap();
        let err = svc.complete_auth(
            ch.id,
            &[FactorResponse::Password("pw".into()), FactorResponse::Totp("000000".into())],
            &[],
            now,
        );
        assert!(matches!(err, Err(EcosystemError::FactorRejected(_))));
    }

    #[test]
    fn frozen_accounts_refuse_all_flows_until_unfrozen() {
        let (mut svc, mut gsm, mut mail, person) = setup();
        let acct = svc.register(&person, "pw", None).unwrap();
        svc.freeze(acct);
        assert!(svc.is_frozen(acct));
        let err = svc.begin_auth(acct, Platform::MobileApp, Purpose::SignIn, 0, &mut gsm, &mut mail, 0);
        assert!(matches!(err, Err(EcosystemError::Conflict(_))));
        svc.unfreeze(acct);
        assert!(!svc.is_frozen(acct));
        assert!(svc
            .begin_auth(acct, Platform::MobileApp, Purpose::SignIn, 0, &mut gsm, &mut mail, 0)
            .is_ok());
    }

    #[test]
    fn payment_requires_fintech_domain() {
        let (mut gsm, mut mail) = substrate();
        let person = PopulationBuilder::new(12).person();
        let sub = gsm.provision_subscriber("p", person.phone.clone()).unwrap();
        gsm.attach(sub).unwrap();
        let nonfintech = ServiceSpec::builder("blog", "Blog", ServiceDomain::News)
            .path(Purpose::SignIn, Platform::Web, &[F::SmsCode])
            .build();
        let mut svc = OnlineService::new(nonfintech, 5);
        let acct = svc.register(&person, "pw", None).unwrap();
        let ch = svc.begin_auth(acct, Platform::Web, Purpose::SignIn, 0, &mut gsm, &mut mail, 0).unwrap();
        let id = gsm.subscriber_by_msisdn(&person.phone).unwrap();
        let code: String = gsm.terminal(id).unwrap().inbox()[0]
            .text
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        let AuthOutcome::Session(token) =
            svc.complete_auth(ch.id, &[FactorResponse::SmsCode(code)], &[], 1).unwrap()
        else {
            panic!()
        };
        assert!(matches!(svc.make_payment(token, 100), Err(EcosystemError::Conflict(_))));
    }
}
