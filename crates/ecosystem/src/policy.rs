//! Authentication paths and their classification.
//!
//! §IV-B1 of the paper divides the 405 measured paths into *general*
//! (basic factors only), *info* (requiring personal information like real
//! names or citizen IDs) and *unique* (biometrics, U2F, device binding,
//! human review).

use crate::factor::CredentialFactor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What the path authenticates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Purpose {
    /// Ordinary sign-in.
    SignIn,
    /// Password reset / account recovery — the paper's main attack
    /// surface, consistently weaker than sign-in.
    PasswordReset,
    /// Authorising a payment (resetting the payment code on Fintech apps).
    Payment,
}

impl fmt::Display for Purpose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Purpose::SignIn => "sign-in",
            Purpose::PasswordReset => "password reset",
            Purpose::Payment => "payment",
        };
        f.pad(s)
    }
}

/// Which client the path exists on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// The web site.
    Web,
    /// The mobile application.
    MobileApp,
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Platform::Web => f.pad("web"),
            Platform::MobileApp => f.pad("mobile"),
        }
    }
}

/// The paper's three path classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PathClass {
    /// Only basic factors (password, SMS/email codes, phone number).
    General,
    /// Requires harvestable personal information.
    Info,
    /// Requires a robust factor (biometric, U2F, device, human review).
    Unique,
}

impl PathClass {
    /// Classifies a factor set. The phone number counts as a *basic*
    /// factor (it identifies the account, like a username), so paths of
    /// phone + SMS stay in the general class, matching the paper's
    /// taxonomy.
    pub fn classify(factors: &[CredentialFactor]) -> Self {
        if factors
            .iter()
            .any(|f| f.is_robust() || matches!(f, CredentialFactor::CustomerService))
        {
            PathClass::Unique
        } else if factors.iter().any(|f| {
            matches!(
                f,
                CredentialFactor::RealName
                    | CredentialFactor::CitizenId
                    | CredentialFactor::BankcardNumber
                    | CredentialFactor::SecurityQuestion
            )
        }) {
            PathClass::Info
        } else {
            PathClass::General
        }
    }
}

impl fmt::Display for PathClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PathClass::General => "general",
            PathClass::Info => "info",
            PathClass::Unique => "unique",
        };
        f.pad(s)
    }
}

/// One authentication path: a factor set valid for a purpose on a platform.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AuthPath {
    /// What it authenticates.
    pub purpose: Purpose,
    /// Which client offers it.
    pub platform: Platform,
    /// Every factor that must be presented (conjunction).
    pub factors: Vec<CredentialFactor>,
}

impl AuthPath {
    /// Creates a path.
    ///
    /// # Panics
    ///
    /// Panics on an empty factor set — a no-factor path would mean an
    /// open account.
    pub fn new(purpose: Purpose, platform: Platform, factors: Vec<CredentialFactor>) -> Self {
        assert!(!factors.is_empty(), "authentication path needs at least one factor");
        Self { purpose, platform, factors }
    }

    /// The path's class per the paper's taxonomy.
    pub fn class(&self) -> PathClass {
        PathClass::classify(&self.factors)
    }

    /// Whether the path needs *only* phone number + SMS code (the paper's
    /// fringe-node condition, Fig. 4).
    pub fn is_sms_only(&self) -> bool {
        self.factors.iter().all(|f| {
            matches!(f, CredentialFactor::SmsCode | CredentialFactor::CellphoneNumber)
        }) && self.factors.contains(&CredentialFactor::SmsCode)
    }

    /// Whether the path uses more than one distinct factor.
    pub fn is_multi_factor(&self) -> bool {
        self.factors.len() > 1
    }

    /// Whether any factor is an SMS code.
    pub fn uses_sms(&self) -> bool {
        self.factors.contains(&CredentialFactor::SmsCode)
    }
}

impl fmt::Display for AuthPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {} via [", self.purpose, self.platform)?;
        for (i, factor) in self.factors.iter().enumerate() {
            if i > 0 {
                f.write_str(" + ")?;
            }
            write!(f, "{factor}")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::CredentialFactor as F;

    #[test]
    fn classification_matches_paper_taxonomy() {
        assert_eq!(PathClass::classify(&[F::SmsCode]), PathClass::General);
        assert_eq!(PathClass::classify(&[F::Password, F::SmsCode]), PathClass::General);
        assert_eq!(PathClass::classify(&[F::SmsCode, F::CitizenId]), PathClass::Info);
        assert_eq!(PathClass::classify(&[F::SmsCode, F::RealName]), PathClass::Info);
        assert_eq!(PathClass::classify(&[F::SmsCode, F::Biometric]), PathClass::Unique);
        assert_eq!(PathClass::classify(&[F::U2fKey]), PathClass::Unique);
        assert_eq!(PathClass::classify(&[F::CustomerService]), PathClass::Unique);
        // Robust factor dominates info factors.
        assert_eq!(PathClass::classify(&[F::CitizenId, F::Biometric]), PathClass::Unique);
    }

    #[test]
    fn sms_only_detection() {
        assert!(AuthPath::new(Purpose::SignIn, Platform::Web, vec![F::SmsCode]).is_sms_only());
        assert!(AuthPath::new(
            Purpose::PasswordReset,
            Platform::Web,
            vec![F::CellphoneNumber, F::SmsCode]
        )
        .is_sms_only());
        assert!(!AuthPath::new(Purpose::SignIn, Platform::Web, vec![F::SmsCode, F::CitizenId])
            .is_sms_only());
        assert!(!AuthPath::new(Purpose::SignIn, Platform::Web, vec![F::CellphoneNumber])
            .is_sms_only());
    }

    #[test]
    fn multi_factor_and_sms_usage() {
        let p = AuthPath::new(Purpose::PasswordReset, Platform::MobileApp, vec![F::SmsCode, F::CitizenId]);
        assert!(p.is_multi_factor());
        assert!(p.uses_sms());
        assert_eq!(p.class(), PathClass::Info);
    }

    #[test]
    #[should_panic(expected = "at least one factor")]
    fn empty_path_panics() {
        AuthPath::new(Purpose::SignIn, Platform::Web, vec![]);
    }

    #[test]
    fn display_is_readable() {
        let p = AuthPath::new(Purpose::PasswordReset, Platform::Web, vec![F::SmsCode, F::EmailCode]);
        assert_eq!(p.to_string(), "password reset on web via [SMS code + email code]");
    }
}
