//! Authentication paths and their classification.
//!
//! §IV-B1 of the paper divides the 405 measured paths into *general*
//! (basic factors only), *info* (requiring personal information like real
//! names or citizen IDs) and *unique* (biometrics, U2F, device binding,
//! human review).

use crate::factor::CredentialFactor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What the path authenticates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Purpose {
    /// Ordinary sign-in.
    SignIn,
    /// Password reset / account recovery — the paper's main attack
    /// surface, consistently weaker than sign-in.
    PasswordReset,
    /// Authorising a payment (resetting the payment code on Fintech apps).
    Payment,
    /// SMS-or-email fallback when the primary second factor is
    /// unavailable ("lost my phone" recovery).
    RecoveryFallback,
    /// Support-channel reset: a human agent restores access after an
    /// identity interview.
    SupportReset,
    /// Disabling or unenrolling MFA on the account — Amft et al.'s
    /// "We've Disabled MFA for You" flow.
    MfaDisable,
}

impl Purpose {
    /// Every purpose, in canonical (`Ord`) order.
    pub fn all() -> [Purpose; 6] {
        [
            Purpose::SignIn,
            Purpose::PasswordReset,
            Purpose::Payment,
            Purpose::RecoveryFallback,
            Purpose::SupportReset,
            Purpose::MfaDisable,
        ]
    }

    /// Whether the purpose is a *recovery* flow — regaining access
    /// rather than exercising it. Recovery paths form their own
    /// directivity class in the TDG (see [`EdgeClass`]).
    pub fn is_recovery(&self) -> bool {
        matches!(
            self,
            Purpose::PasswordReset
                | Purpose::RecoveryFallback
                | Purpose::SupportReset
                | Purpose::MfaDisable
        )
    }
}

impl fmt::Display for Purpose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Purpose::SignIn => "sign-in",
            Purpose::PasswordReset => "password reset",
            Purpose::Payment => "payment",
            Purpose::RecoveryFallback => "recovery fallback",
            Purpose::SupportReset => "support reset",
            Purpose::MfaDisable => "MFA disable",
        };
        f.pad(s)
    }
}

/// Which directivity class of auth-path edges a query considers.
///
/// Every attack path is either a *login* edge (exercising access:
/// sign-in, payment) or a *recovery* edge (regaining access: password
/// reset, recovery fallback, support reset, MFA disable — see
/// [`Purpose::is_recovery`]). Filtering a forward/backward/score/what-if
/// query to one class answers questions like "which accounts fall
/// *only* through recovery". `All` is the historical behaviour and the
/// default everywhere.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EdgeClass {
    /// Every attackable path — the unfiltered historical behaviour.
    #[default]
    All,
    /// Only login-class paths (sign-in, payment).
    LoginOnly,
    /// Only recovery-class paths (password reset, recovery fallback,
    /// support reset, MFA disable).
    RecoveryOnly,
}

impl EdgeClass {
    /// Every class, in wire order.
    pub fn all() -> [EdgeClass; 3] {
        [EdgeClass::All, EdgeClass::LoginOnly, EdgeClass::RecoveryOnly]
    }

    /// Whether a path of this purpose passes the filter.
    pub fn admits(self, purpose: Purpose) -> bool {
        self.admits_recovery(purpose.is_recovery())
    }

    /// Whether a path with the given recovery-class bit passes the
    /// filter (the compiled-path form: `CPath` caches
    /// `purpose.is_recovery()` as a tag).
    pub fn admits_recovery(self, is_recovery: bool) -> bool {
        match self {
            EdgeClass::All => true,
            EdgeClass::LoginOnly => !is_recovery,
            EdgeClass::RecoveryOnly => is_recovery,
        }
    }

    /// The stable wire spelling (`edge_class` request field).
    pub fn wire_name(self) -> &'static str {
        match self {
            EdgeClass::All => "all",
            EdgeClass::LoginOnly => "login_only",
            EdgeClass::RecoveryOnly => "recovery_only",
        }
    }

    /// Parses a wire spelling.
    pub fn parse(name: &str) -> Option<Self> {
        Self::all().into_iter().find(|c| c.wire_name() == name)
    }
}

impl fmt::Display for EdgeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.wire_name())
    }
}

/// Which client the path exists on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// The web site.
    Web,
    /// The mobile application.
    MobileApp,
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Platform::Web => f.pad("web"),
            Platform::MobileApp => f.pad("mobile"),
        }
    }
}

/// The paper's three path classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PathClass {
    /// Only basic factors (password, SMS/email codes, phone number).
    General,
    /// Requires harvestable personal information.
    Info,
    /// Requires a robust factor (biometric, U2F, device, human review).
    Unique,
}

impl PathClass {
    /// Classifies a factor set. The phone number counts as a *basic*
    /// factor (it identifies the account, like a username), so paths of
    /// phone + SMS stay in the general class, matching the paper's
    /// taxonomy.
    pub fn classify(factors: &[CredentialFactor]) -> Self {
        if factors
            .iter()
            .any(|f| f.is_robust() || matches!(f, CredentialFactor::CustomerService))
        {
            PathClass::Unique
        } else if factors.iter().any(|f| {
            matches!(
                f,
                CredentialFactor::RealName
                    | CredentialFactor::CitizenId
                    | CredentialFactor::BankcardNumber
                    | CredentialFactor::SecurityQuestion
            )
        }) {
            PathClass::Info
        } else {
            PathClass::General
        }
    }
}

impl fmt::Display for PathClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PathClass::General => "general",
            PathClass::Info => "info",
            PathClass::Unique => "unique",
        };
        f.pad(s)
    }
}

/// One authentication path: a factor set valid for a purpose on a platform.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AuthPath {
    /// What it authenticates.
    pub purpose: Purpose,
    /// Which client offers it.
    pub platform: Platform,
    /// Every factor that must be presented (conjunction).
    pub factors: Vec<CredentialFactor>,
}

impl AuthPath {
    /// Creates a path.
    ///
    /// # Panics
    ///
    /// Panics on an empty factor set — a no-factor path would mean an
    /// open account.
    pub fn new(purpose: Purpose, platform: Platform, factors: Vec<CredentialFactor>) -> Self {
        assert!(!factors.is_empty(), "authentication path needs at least one factor");
        Self { purpose, platform, factors }
    }

    /// The path's class per the paper's taxonomy.
    pub fn class(&self) -> PathClass {
        PathClass::classify(&self.factors)
    }

    /// Whether the path needs *only* phone number + SMS code (the paper's
    /// fringe-node condition, Fig. 4).
    pub fn is_sms_only(&self) -> bool {
        self.factors.iter().all(|f| {
            matches!(f, CredentialFactor::SmsCode | CredentialFactor::CellphoneNumber)
        }) && self.factors.contains(&CredentialFactor::SmsCode)
    }

    /// Whether the path uses more than one distinct factor.
    pub fn is_multi_factor(&self) -> bool {
        self.factors.len() > 1
    }

    /// Whether any factor is an SMS code.
    pub fn uses_sms(&self) -> bool {
        self.factors.contains(&CredentialFactor::SmsCode)
    }
}

impl fmt::Display for AuthPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {} via [", self.purpose, self.platform)?;
        for (i, factor) in self.factors.iter().enumerate() {
            if i > 0 {
                f.write_str(" + ")?;
            }
            write!(f, "{factor}")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::CredentialFactor as F;

    #[test]
    fn classification_matches_paper_taxonomy() {
        assert_eq!(PathClass::classify(&[F::SmsCode]), PathClass::General);
        assert_eq!(PathClass::classify(&[F::Password, F::SmsCode]), PathClass::General);
        assert_eq!(PathClass::classify(&[F::SmsCode, F::CitizenId]), PathClass::Info);
        assert_eq!(PathClass::classify(&[F::SmsCode, F::RealName]), PathClass::Info);
        assert_eq!(PathClass::classify(&[F::SmsCode, F::Biometric]), PathClass::Unique);
        assert_eq!(PathClass::classify(&[F::U2fKey]), PathClass::Unique);
        assert_eq!(PathClass::classify(&[F::CustomerService]), PathClass::Unique);
        // Robust factor dominates info factors.
        assert_eq!(PathClass::classify(&[F::CitizenId, F::Biometric]), PathClass::Unique);
    }

    #[test]
    fn sms_only_detection() {
        assert!(AuthPath::new(Purpose::SignIn, Platform::Web, vec![F::SmsCode]).is_sms_only());
        assert!(AuthPath::new(
            Purpose::PasswordReset,
            Platform::Web,
            vec![F::CellphoneNumber, F::SmsCode]
        )
        .is_sms_only());
        assert!(!AuthPath::new(Purpose::SignIn, Platform::Web, vec![F::SmsCode, F::CitizenId])
            .is_sms_only());
        assert!(!AuthPath::new(Purpose::SignIn, Platform::Web, vec![F::CellphoneNumber])
            .is_sms_only());
    }

    #[test]
    fn multi_factor_and_sms_usage() {
        let p = AuthPath::new(Purpose::PasswordReset, Platform::MobileApp, vec![F::SmsCode, F::CitizenId]);
        assert!(p.is_multi_factor());
        assert!(p.uses_sms());
        assert_eq!(p.class(), PathClass::Info);
    }

    #[test]
    #[should_panic(expected = "at least one factor")]
    fn empty_path_panics() {
        AuthPath::new(Purpose::SignIn, Platform::Web, vec![]);
    }

    #[test]
    fn display_is_readable() {
        let p = AuthPath::new(Purpose::PasswordReset, Platform::Web, vec![F::SmsCode, F::EmailCode]);
        assert_eq!(p.to_string(), "password reset on web via [SMS code + email code]");
    }
}
