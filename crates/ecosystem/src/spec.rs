//! Static service profiles — what ActFort analyses.
//!
//! A [`ServiceSpec`] captures everything the paper's Authentication
//! Process and Personal Information Collection record about a service:
//! its authentication paths per platform and purpose, and which
//! information its account pages expose under which masking.

use crate::factor::{CredentialFactor, ServiceId};
use crate::info::{ExposedField, PersonalInfoKind};
use crate::policy::{AuthPath, EdgeClass, Platform, Purpose};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A service's recovery-policy columns: which recovery deployments it
/// offers and how they are gated. Derived from the recovery-class
/// authentication paths ([`Purpose::is_recovery`]) so the dataset keeps
/// a single source of truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// A recovery path accepts an SMS code (SMS fallback).
    pub sms_fallback: bool,
    /// A recovery path accepts an email code or link (email fallback).
    pub email_fallback: bool,
    /// A recovery path goes through human support (customer service, or
    /// an explicit support-reset flow).
    pub support_reset: bool,
    /// The service offers an MFA-disable flow.
    pub mfa_disable: bool,
    /// Every recovery path requires a robust factor — recovery is no
    /// weaker than login.
    pub robust_recovery: bool,
}

/// Business domain of a service (the paper splits its measurement by
/// these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ServiceDomain {
    /// Payment / banking / finance.
    Fintech,
    /// Mail providers.
    Email,
    /// Social networks and messaging.
    SocialNetwork,
    /// Online shopping.
    Ecommerce,
    /// Travel booking, rail, lodging.
    Travel,
    /// Cloud storage.
    CloudStorage,
    /// News and media.
    News,
    /// Video / streaming.
    Video,
    /// Transport / local services.
    LocalServices,
    /// Everything else.
    Other,
}

impl fmt::Display for ServiceDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ServiceDomain::Fintech => "fintech",
            ServiceDomain::Email => "email",
            ServiceDomain::SocialNetwork => "social network",
            ServiceDomain::Ecommerce => "e-commerce",
            ServiceDomain::Travel => "travel",
            ServiceDomain::CloudStorage => "cloud storage",
            ServiceDomain::News => "news",
            ServiceDomain::Video => "video",
            ServiceDomain::LocalServices => "local services",
            ServiceDomain::Other => "other",
        };
        f.pad(s)
    }
}

/// A complete static profile of one online service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSpec {
    /// Stable identifier.
    pub id: ServiceId,
    /// Display name.
    pub name: String,
    /// Business domain.
    pub domain: ServiceDomain,
    /// Every authentication path, across platforms and purposes.
    pub paths: Vec<AuthPath>,
    /// Information exposed post-login on the web client.
    pub web_exposure: Vec<ExposedField>,
    /// Information exposed post-login in the mobile app.
    pub mobile_exposure: Vec<ExposedField>,
    /// Whether the service exists as a website.
    pub has_web: bool,
    /// Whether the service ships a mobile app.
    pub has_mobile: bool,
}

impl ServiceSpec {
    /// Starts a builder for a service.
    pub fn builder(id: &str, name: &str, domain: ServiceDomain) -> ServiceSpecBuilder {
        ServiceSpecBuilder {
            spec: ServiceSpec {
                id: ServiceId::new(id),
                name: name.to_owned(),
                domain,
                paths: Vec::new(),
                web_exposure: Vec::new(),
                mobile_exposure: Vec::new(),
                has_web: true,
                has_mobile: true,
            },
        }
    }

    /// Paths available on `platform` for `purpose`.
    pub fn paths_for(&self, platform: Platform, purpose: Purpose) -> Vec<&AuthPath> {
        self.paths
            .iter()
            .filter(|p| p.platform == platform && p.purpose == purpose)
            .collect()
    }

    /// All paths on a platform.
    pub fn paths_on(&self, platform: Platform) -> Vec<&AuthPath> {
        self.paths.iter().filter(|p| p.platform == platform).collect()
    }

    /// Paths on a platform in the given edge class.
    pub fn paths_in(&self, platform: Platform, class: EdgeClass) -> Vec<&AuthPath> {
        self.paths
            .iter()
            .filter(|p| p.platform == platform && class.admits(p.purpose))
            .collect()
    }

    /// The service's recovery-policy columns, derived from its
    /// recovery-class paths across both platforms.
    pub fn recovery_policy(&self) -> RecoveryPolicy {
        let mut policy = RecoveryPolicy { robust_recovery: true, ..RecoveryPolicy::default() };
        let mut any = false;
        for p in self.paths.iter().filter(|p| p.purpose.is_recovery()) {
            any = true;
            for f in &p.factors {
                match f {
                    CredentialFactor::SmsCode => policy.sms_fallback = true,
                    CredentialFactor::EmailCode | CredentialFactor::EmailLink => {
                        policy.email_fallback = true
                    }
                    CredentialFactor::CustomerService => policy.support_reset = true,
                    _ => {}
                }
            }
            if p.purpose == Purpose::SupportReset {
                policy.support_reset = true;
            }
            if p.purpose == Purpose::MfaDisable {
                policy.mfa_disable = true;
            }
            if !p.factors.iter().any(|f| f.is_robust()) {
                policy.robust_recovery = false;
            }
        }
        policy.robust_recovery &= any;
        policy
    }

    /// Exposure list for a platform.
    pub fn exposure_on(&self, platform: Platform) -> &[ExposedField] {
        match platform {
            Platform::Web => &self.web_exposure,
            Platform::MobileApp => &self.mobile_exposure,
        }
    }

    /// Whether any path on any platform is phone+SMS only (fringe node).
    pub fn has_sms_only_path(&self) -> bool {
        self.paths.iter().any(|p| p.is_sms_only())
    }

    /// Whether the service exposes `kind` on `platform` at all.
    pub fn exposes(&self, platform: Platform, kind: PersonalInfoKind) -> bool {
        self.exposure_on(platform).iter().any(|e| e.kind == kind)
    }

    /// The factors used anywhere in this service's paths, deduplicated.
    pub fn factor_universe(&self) -> Vec<CredentialFactor> {
        let mut out: Vec<CredentialFactor> = Vec::new();
        for p in &self.paths {
            for f in &p.factors {
                if !out.contains(f) {
                    out.push(f.clone());
                }
            }
        }
        out
    }
}

/// Builder for [`ServiceSpec`].
#[derive(Debug, Clone)]
pub struct ServiceSpecBuilder {
    spec: ServiceSpec,
}

impl ServiceSpecBuilder {
    /// Adds an authentication path.
    pub fn path(
        mut self,
        purpose: Purpose,
        platform: Platform,
        factors: &[CredentialFactor],
    ) -> Self {
        self.spec.paths.push(AuthPath::new(purpose, platform, factors.to_vec()));
        self
    }

    /// Adds the same path on both platforms.
    pub fn path_both(mut self, purpose: Purpose, factors: &[CredentialFactor]) -> Self {
        self.spec.paths.push(AuthPath::new(purpose, Platform::Web, factors.to_vec()));
        self.spec
            .paths
            .push(AuthPath::new(purpose, Platform::MobileApp, factors.to_vec()));
        self
    }

    /// Adds a web-exposed field.
    pub fn expose_web(mut self, field: ExposedField) -> Self {
        self.spec.web_exposure.push(field);
        self
    }

    /// Adds a mobile-exposed field.
    pub fn expose_mobile(mut self, field: ExposedField) -> Self {
        self.spec.mobile_exposure.push(field);
        self
    }

    /// Adds a field exposed identically on both platforms.
    pub fn expose_both(mut self, field: ExposedField) -> Self {
        self.spec.web_exposure.push(field);
        self.spec.mobile_exposure.push(field);
        self
    }

    /// Marks the service web-only.
    pub fn web_only(mut self) -> Self {
        self.spec.has_mobile = false;
        self
    }

    /// Marks the service mobile-only.
    pub fn mobile_only(mut self) -> Self {
        self.spec.has_web = false;
        self
    }

    /// Finalises the spec.
    ///
    /// # Panics
    ///
    /// Panics when no authentication path was added.
    pub fn build(self) -> ServiceSpec {
        assert!(!self.spec.paths.is_empty(), "service needs at least one authentication path");
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::CredentialFactor as F;
    use crate::info::Masking;

    fn sample() -> ServiceSpec {
        ServiceSpec::builder("ctrip", "Ctrip", ServiceDomain::Travel)
            .path_both(Purpose::SignIn, &[F::SmsCode])
            .path(Purpose::PasswordReset, Platform::Web, &[F::SmsCode])
            .path(Purpose::PasswordReset, Platform::MobileApp, &[F::EmailCode])
            .expose_both(ExposedField::clear(PersonalInfoKind::CitizenId))
            .expose_web(ExposedField {
                kind: PersonalInfoKind::CellphoneNumber,
                masking: Masking::Partial { prefix: 3, suffix: 4 },
            })
            .build()
    }

    #[test]
    fn builder_produces_queryable_spec() {
        let s = sample();
        assert_eq!(s.paths.len(), 4);
        assert_eq!(s.paths_for(Platform::Web, Purpose::SignIn).len(), 1);
        assert_eq!(s.paths_for(Platform::MobileApp, Purpose::PasswordReset).len(), 1);
        assert!(s.has_sms_only_path());
        assert!(s.exposes(Platform::Web, PersonalInfoKind::CitizenId));
        assert!(s.exposes(Platform::Web, PersonalInfoKind::CellphoneNumber));
        assert!(!s.exposes(Platform::MobileApp, PersonalInfoKind::CellphoneNumber));
    }

    #[test]
    fn factor_universe_dedups() {
        let s = sample();
        let u = s.factor_universe();
        assert_eq!(u.iter().filter(|f| **f == F::SmsCode).count(), 1);
        assert!(u.contains(&F::EmailCode));
    }

    #[test]
    #[should_panic(expected = "at least one authentication path")]
    fn empty_spec_panics() {
        ServiceSpec::builder("x", "X", ServiceDomain::Other).build();
    }
}
