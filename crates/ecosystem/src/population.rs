//! The victim population: generated people, leak databases and the
//! phishing Wi-Fi access point used for random-target acquisition.

use actfort_gsm::identity::Msisdn;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a simulated person.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PersonId(pub u32);

impl fmt::Display for PersonId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "person#{}", self.0)
    }
}

/// A simulated person with the complete ground-truth profile that
/// services store pieces of.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Person {
    /// Identifier.
    pub id: PersonId,
    /// Legal name.
    pub real_name: String,
    /// 18-digit citizen ID.
    pub citizen_id: String,
    /// Phone number.
    pub phone: Msisdn,
    /// Primary email address.
    pub email: String,
    /// Home address.
    pub address: String,
    /// Primary bank card number (16 digits).
    pub bankcard: String,
    /// Handset model in use.
    pub device_type: String,
    /// Names of acquaintances (other people in the population).
    pub acquaintances: Vec<String>,
    /// Canonical security-question answer.
    pub security_answer: String,
    /// Whether the person backs up an ID-card photo to cloud storage
    /// (the paper's Baidu Pan / Dropbox observation).
    pub has_id_photo_in_cloud: bool,
}

const GIVEN: &[&str] = &[
    "Wei", "Fang", "Min", "Jing", "Lei", "Yan", "Tao", "Juan", "Chao", "Na", "Qiang", "Xiu", "Gang",
    "Ying", "Ping", "Jun", "Hong", "Bo", "Li", "Mei",
];
const FAMILY: &[&str] = &[
    "Wang", "Li", "Zhang", "Liu", "Chen", "Yang", "Huang", "Zhao", "Wu", "Zhou", "Xu", "Sun", "Ma",
    "Zhu", "Hu", "Guo", "He", "Lin", "Luo", "Zheng",
];
const DEVICES: &[&str] = &[
    "iPhone 12", "Huawei P40", "Xiaomi 11", "OPPO Find X3", "vivo X60", "Samsung S21",
    "iPhone SE", "Honor 50",
];
const STREETS: &[&str] = &[
    "Wensan Rd", "Binjiang Ave", "Xixi Rd", "Huanglong St", "Kejiyuan Rd", "Jiangnan Ave",
    "Zijingang Rd", "Yuhangtang Rd",
];
const CITIES: &[&str] = &["Hangzhou", "Shanghai", "Beijing", "Shenzhen", "Nanjing", "Chengdu"];

/// Deterministic generator for a victim population.
#[derive(Debug)]
pub struct PopulationBuilder {
    rng: StdRng,
    next_id: u32,
    used_phones: std::collections::BTreeSet<String>,
}

impl PopulationBuilder {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), next_id: 0, used_phones: Default::default() }
    }

    /// Generates one person.
    pub fn person(&mut self) -> Person {
        let id = PersonId(self.next_id);
        self.next_id += 1;
        let given = GIVEN[self.rng.gen_range(0..GIVEN.len())];
        let family = FAMILY[self.rng.gen_range(0..FAMILY.len())];
        let real_name = format!("{family} {given}");
        let phone_digits = loop {
            let candidate = format!("13{:09}", self.rng.gen_range(0..1_000_000_000u64));
            if self.used_phones.insert(candidate.clone()) {
                break candidate;
            }
        };
        let phone = Msisdn::new(&phone_digits).expect("generated digits are valid");
        let birth_year = self.rng.gen_range(1960..2003);
        let citizen_id = format!(
            "3301{:02}{:04}{:02}{:02}{:03}{}",
            self.rng.gen_range(1..19u8),
            birth_year,
            self.rng.gen_range(1..13u8),
            self.rng.gen_range(1..29u8),
            self.rng.gen_range(0..1000u16),
            self.rng.gen_range(0..10u8),
        );
        let email = format!(
            "{}.{}{}@{}",
            given.to_lowercase(),
            family.to_lowercase(),
            self.rng.gen_range(0..100u8),
            ["gmail.com", "163.com", "outlook.com", "aliyun.com"][self.rng.gen_range(0..4)]
        );
        let address = format!(
            "{} {} #{}, {}",
            self.rng.gen_range(1..999u16),
            STREETS[self.rng.gen_range(0..STREETS.len())],
            self.rng.gen_range(101..2500u16),
            CITIES[self.rng.gen_range(0..CITIES.len())],
        );
        let bankcard = format!("6222{:012}", self.rng.gen_range(0..1_000_000_000_000u64));
        Person {
            id,
            real_name,
            citizen_id,
            phone,
            email,
            address,
            bankcard,
            device_type: DEVICES[self.rng.gen_range(0..DEVICES.len())].to_owned(),
            acquaintances: Vec::new(),
            security_answer: format!("{} middle school", CITIES[self.rng.gen_range(0..CITIES.len())]),
            has_id_photo_in_cloud: self.rng.gen_bool(0.6),
        }
    }

    /// Generates `n` people and wires up acquaintance links among them.
    pub fn population(&mut self, n: usize) -> Vec<Person> {
        let mut people: Vec<Person> = (0..n).map(|_| self.person()).collect();
        let names: Vec<String> = people.iter().map(|p| p.real_name.clone()).collect();
        for (i, p) in people.iter_mut().enumerate() {
            for k in 1..=3usize {
                let j = (i + k * 7 + 1) % names.len().max(1);
                if j != i {
                    p.acquaintances.push(names[j].clone());
                }
            }
        }
        people
    }
}

/// A black-market leak database mapping phone numbers to identity data
/// (the paper's targeted-attack prerequisite, citing real 2016 leak
/// reports).
#[derive(Debug, Clone, Default)]
pub struct LeakDatabase {
    entries: BTreeMap<String, LeakEntry>,
}

/// One leaked record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeakEntry {
    /// Leaked legal name.
    pub real_name: String,
    /// Leaked home address.
    pub address: String,
    /// Phone number, the lookup key.
    pub phone: String,
}

impl LeakDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the database from a breached slice of the population
    /// (`fraction` in 0..=1, deterministic by index).
    pub fn from_breach(population: &[Person], fraction: f64) -> Self {
        let keep_every = if fraction <= 0.0 {
            usize::MAX
        } else {
            (1.0 / fraction.min(1.0)).round() as usize
        };
        let mut db = Self::new();
        for (i, p) in population.iter().enumerate() {
            if keep_every != usize::MAX && i % keep_every == 0 {
                db.entries.insert(
                    p.phone.digits().to_owned(),
                    LeakEntry {
                        real_name: p.real_name.clone(),
                        address: p.address.clone(),
                        phone: p.phone.digits().to_owned(),
                    },
                );
            }
        }
        db
    }

    /// Looks up a phone number.
    pub fn lookup(&self, phone: &Msisdn) -> Option<&LeakEntry> {
        self.entries.get(phone.digits())
    }

    /// Finds the phone number for a person by name (targeted attack prep).
    pub fn find_by_name(&self, name: &str) -> Option<&LeakEntry> {
        self.entries.values().find(|e| e.real_name == name)
    }

    /// Number of leaked records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A phishing Wi-Fi access point harvesting phone numbers from passers-by
/// (the paper's random-attack target acquisition at airports/stations).
#[derive(Debug, Clone)]
pub struct PhishingWifi {
    /// Captive-portal SSID shown to victims.
    pub ssid: String,
    harvested: Vec<Msisdn>,
}

impl PhishingWifi {
    /// Deploys an access point with a plausible SSID.
    pub fn deploy(ssid: &str) -> Self {
        Self { ssid: ssid.to_owned(), harvested: Vec::new() }
    }

    /// A passer-by connects and "verifies" with their phone number, as
    /// captive portals demand; the AP records it.
    pub fn victim_connects(&mut self, person: &Person) {
        if !self.harvested.contains(&person.phone) {
            self.harvested.push(person.phone.clone());
        }
    }

    /// Numbers harvested so far.
    pub fn harvested(&self) -> &[Msisdn] {
        &self.harvested
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_deterministic() {
        let a = PopulationBuilder::new(1).population(10);
        let b = PopulationBuilder::new(1).population(10);
        assert_eq!(a, b);
        let c = PopulationBuilder::new(2).population(10);
        assert_ne!(a, c);
    }

    #[test]
    fn person_fields_are_well_formed() {
        let p = PopulationBuilder::new(7).person();
        assert_eq!(p.citizen_id.len(), 18);
        assert_eq!(p.bankcard.len(), 16);
        assert!(p.phone.digits().starts_with("13"));
        assert!(p.email.contains('@'));
    }

    #[test]
    fn acquaintances_are_other_people() {
        let pop = PopulationBuilder::new(3).population(20);
        for p in &pop {
            assert!(!p.acquaintances.is_empty());
            for a in &p.acquaintances {
                assert_ne!(a, &p.real_name);
            }
        }
    }

    #[test]
    fn leak_database_fraction() {
        let pop = PopulationBuilder::new(5).population(100);
        let db = LeakDatabase::from_breach(&pop, 0.5);
        assert_eq!(db.len(), 50);
        let full = LeakDatabase::from_breach(&pop, 1.0);
        assert_eq!(full.len(), 100);
        assert!(full.lookup(&pop[3].phone).is_some());
        let none = LeakDatabase::from_breach(&pop, 0.0);
        assert!(none.is_empty());
    }

    #[test]
    fn leak_lookup_by_name() {
        let pop = PopulationBuilder::new(5).population(10);
        let db = LeakDatabase::from_breach(&pop, 1.0);
        let target = &pop[4];
        let entry = db.find_by_name(&target.real_name).unwrap();
        assert_eq!(entry.phone, target.phone.digits());
    }

    #[test]
    fn phishing_wifi_dedups() {
        let pop = PopulationBuilder::new(9).population(3);
        let mut ap = PhishingWifi::deploy("Airport-Free-WiFi");
        ap.victim_connects(&pop[0]);
        ap.victim_connects(&pop[0]);
        ap.victim_connects(&pop[1]);
        assert_eq!(ap.harvested().len(), 2);
    }
}
