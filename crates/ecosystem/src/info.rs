//! Personal information kinds, masking rules and mask-combination.
//!
//! §III-C of the paper classifies the information exposed on account
//! pages; Table I measures how often each kind is visible. A key insight
//! (§IV-B2) is that services mask *different* digits of the same SSN or
//! bankcard number, so an attacker who compromises several accounts can
//! merge the masked views and recover the full value — implemented here
//! as [`merge_masked`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Kinds of personal information an account can hold or expose.
///
/// These are the paper's five categories flattened into concrete fields
/// (identity, account, social, property, history).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PersonalInfoKind {
    /// Legal name.
    RealName,
    /// SSN / citizen ID number.
    CitizenId,
    /// Phone number.
    CellphoneNumber,
    /// Email address.
    EmailAddress,
    /// Home or shipping address.
    Address,
    /// Site-local user ID / username.
    UserId,
    /// Which other accounts are bound (SSO links, bound services).
    BindingAccount,
    /// Names of friends / frequent contacts.
    AcquaintanceInfo,
    /// Device model / type used for login.
    DeviceType,
    /// Bank card number.
    BankcardNumber,
    /// Stored photos (cloud backups often include ID-card photos).
    Photos,
    /// Order / travel / chat history.
    HistoryRecords,
    /// Answers to security questions.
    SecurityAnswers,
}

impl PersonalInfoKind {
    /// All kinds, in Table I order followed by the extended kinds.
    pub fn all() -> &'static [PersonalInfoKind] {
        use PersonalInfoKind::*;
        &[
            RealName,
            CitizenId,
            CellphoneNumber,
            EmailAddress,
            Address,
            UserId,
            BindingAccount,
            AcquaintanceInfo,
            DeviceType,
            BankcardNumber,
            Photos,
            HistoryRecords,
            SecurityAnswers,
        ]
    }

    /// The nine kinds measured in Table I of the paper.
    pub fn table1() -> &'static [PersonalInfoKind] {
        use PersonalInfoKind::*;
        &[
            RealName,
            CitizenId,
            CellphoneNumber,
            EmailAddress,
            Address,
            UserId,
            BindingAccount,
            AcquaintanceInfo,
            DeviceType,
        ]
    }
}

impl fmt::Display for PersonalInfoKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PersonalInfoKind::RealName => "real name",
            PersonalInfoKind::CitizenId => "citizen ID",
            PersonalInfoKind::CellphoneNumber => "cellphone number",
            PersonalInfoKind::EmailAddress => "e-mail address",
            PersonalInfoKind::Address => "address",
            PersonalInfoKind::UserId => "user ID",
            PersonalInfoKind::BindingAccount => "binding account",
            PersonalInfoKind::AcquaintanceInfo => "acquaintance info",
            PersonalInfoKind::DeviceType => "device type",
            PersonalInfoKind::BankcardNumber => "bankcard number",
            PersonalInfoKind::Photos => "photos",
            PersonalInfoKind::HistoryRecords => "history records",
            PersonalInfoKind::SecurityAnswers => "security answers",
        };
        f.pad(s)
    }
}

/// How a service masks a field on its account page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Masking {
    /// Shown in full.
    Clear,
    /// Middle hidden: first `prefix` and last `suffix` characters visible.
    Partial {
        /// Visible leading characters.
        prefix: u8,
        /// Visible trailing characters.
        suffix: u8,
    },
    /// Fully hidden (only existence is revealed).
    Hidden,
}

impl Masking {
    /// Applies the mask, replacing hidden characters with `*`.
    pub fn apply(&self, value: &str) -> String {
        let chars: Vec<char> = value.chars().collect();
        match *self {
            Masking::Clear => value.to_owned(),
            Masking::Hidden => "*".repeat(chars.len()),
            Masking::Partial { prefix, suffix } => {
                let p = usize::from(prefix).min(chars.len());
                let s = usize::from(suffix).min(chars.len() - p);
                let hidden = chars.len() - p - s;
                let mut out = String::with_capacity(chars.len());
                out.extend(&chars[..p]);
                out.extend(std::iter::repeat('*').take(hidden));
                out.extend(&chars[chars.len() - s..]);
                out
            }
        }
    }
}

/// One field a service exposes post-login.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExposedField {
    /// What is exposed.
    pub kind: PersonalInfoKind,
    /// How it is masked.
    pub masking: Masking,
}

impl ExposedField {
    /// A fully visible field.
    pub fn clear(kind: PersonalInfoKind) -> Self {
        Self { kind, masking: Masking::Clear }
    }

    /// A partially masked field.
    pub fn partial(kind: PersonalInfoKind, prefix: u8, suffix: u8) -> Self {
        Self { kind, masking: Masking::Partial { prefix, suffix } }
    }

    /// Whether an attacker reading the page learns the full value.
    pub fn reveals_fully(&self) -> bool {
        self.masking == Masking::Clear
    }
}

/// Merges differently-masked views of the same underlying value.
///
/// Returns the combined view with every position known from at least one
/// view filled in; positions still unknown stay `*`. Returns `None` when
/// the views disagree on a visible position or on length — evidence they
/// are *not* the same underlying value.
///
/// ```
/// use actfort_ecosystem::info::merge_masked;
/// let full = merge_masked(&["6222***********888", "62220231*******888"]).unwrap();
/// assert_eq!(full, "62220231*******888");
/// ```
pub fn merge_masked<S: AsRef<str>>(views: &[S]) -> Option<String> {
    let mut merged: Option<Vec<char>> = None;
    for view in views {
        let chars: Vec<char> = view.as_ref().chars().collect();
        match &mut merged {
            None => merged = Some(chars),
            Some(acc) => {
                if acc.len() != chars.len() {
                    return None;
                }
                for (a, c) in acc.iter_mut().zip(chars) {
                    match (*a, c) {
                        (_, '*') => {}
                        ('*', known) => *a = known,
                        (x, y) if x == y => {}
                        _ => return None,
                    }
                }
            }
        }
    }
    merged.map(|v| v.into_iter().collect())
}

/// Whether a merged view is fully recovered (no `*` remains).
pub fn is_fully_recovered(merged: &str) -> bool {
    !merged.contains('*')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_partial() {
        let m = Masking::Partial { prefix: 3, suffix: 4 };
        assert_eq!(m.apply("110101199003078515"), "110***********8515");
    }

    #[test]
    fn masking_edge_lengths() {
        let m = Masking::Partial { prefix: 3, suffix: 4 };
        assert_eq!(m.apply("abcdefg"), "abcdefg"); // shorter than prefix+suffix
        assert_eq!(m.apply(""), "");
        assert_eq!(Masking::Hidden.apply("secret"), "******");
        assert_eq!(Masking::Clear.apply("x"), "x");
    }

    #[test]
    fn merge_recovers_full_value_from_complementary_masks() {
        // Ctrip shows the head, 12306 shows the tail.
        let a = Masking::Partial { prefix: 10, suffix: 0 }.apply("110101199003078515");
        let b = Masking::Partial { prefix: 0, suffix: 8 }.apply("110101199003078515");
        let merged = merge_masked(&[a, b]).unwrap();
        assert!(is_fully_recovered(&merged));
        assert_eq!(merged, "110101199003078515");
    }

    #[test]
    fn merge_detects_conflicts() {
        assert_eq!(merge_masked(&["12**", "13**"]), None);
        assert_eq!(merge_masked(&["12*", "12**"]), None, "length mismatch");
    }

    #[test]
    fn merge_partial_leaves_stars() {
        let merged = merge_masked(&["1***", "1*3*"]).unwrap();
        assert_eq!(merged, "1*3*");
        assert!(!is_fully_recovered(&merged));
    }

    #[test]
    fn merge_empty_input() {
        assert_eq!(merge_masked::<&str>(&[]), None);
    }

    #[test]
    fn table1_kinds_are_nine() {
        assert_eq!(PersonalInfoKind::table1().len(), 9);
    }
}
