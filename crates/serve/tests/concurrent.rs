//! Integration tests for the concurrent serving contract:
//!
//! 1. N threads issuing the same forward query all receive
//!    byte-identical JSON bodies, and the cache-hit path returns bytes
//!    equal to the miss path;
//! 2. a snapshot hot-swap mid-stream never serves a torn response —
//!    every body is internally consistent with the generation it names;
//! 3. the bounded queue sheds load with `503` + `Retry-After` when
//!    saturated;
//! 4. deadlines cut long backward searches and the cut is visible at
//!    `/metrics`;
//! 5. wire errors carry the unified stable discriminants.
//!
//! The obs recorder is process-global, so tests that assert on metrics
//! serialize behind one mutex.

use actfort_core::obs::json::{self, Json};
use actfort_serve::{start, Client, Dataset, ServerConfig};
use std::sync::{Arc, Mutex, MutexGuard};

/// Serializes tests: the obs recorder is global and several tests
/// enable/reset it.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn obs_reset_enabled() {
    actfort_core::obs::reset();
    actfort_core::obs::set_enabled(true);
}

#[test]
fn concurrent_identical_queries_get_identical_bytes() {
    let _g = lock();
    obs_reset_enabled();
    // Explicit sizing: the burst below must never trip backpressure,
    // whatever this machine's core count probes to.
    let config =
        ServerConfig { threads: Some(4), queue_capacity: Some(64), ..ServerConfig::default() };
    let handle = start(config).expect("server starts");
    let addr = handle.addr();

    const THREADS: usize = 8;
    const PER_THREAD: usize = 4;
    let body = br#"{"seeds":["gmail","taobao"]}"#;
    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                (0..PER_THREAD)
                    .map(|_| {
                        let resp = client.post("/v1/forward", body).expect("request");
                        assert_eq!(resp.status, 200, "{}", resp.text());
                        let cache = resp.header("x-actfort-cache").expect("cache header").to_owned();
                        (cache, resp.body)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    let mut hits = 0usize;
    let mut misses = 0usize;
    let mut bodies: Vec<Vec<u8>> = Vec::new();
    for worker in workers {
        for (cache, body) in worker.join().expect("worker") {
            match cache.as_str() {
                "hit" => hits += 1,
                "miss" => misses += 1,
                other => panic!("unexpected cache header {other:?}"),
            }
            bodies.push(body);
        }
    }
    assert_eq!(hits + misses, THREADS * PER_THREAD);
    assert!(misses >= 1, "first responder must miss");
    assert!(hits >= 1, "32 identical queries must hit the cache");
    let first = &bodies[0];
    assert!(
        bodies.iter().all(|b| b == first),
        "hit and miss paths must serve byte-identical bodies"
    );
    handle.shutdown();
    actfort_core::obs::set_enabled(false);
}

/// Parses a forward body and checks internal consistency against the
/// population size its generation implies. Returns (generation, body).
fn check_consistent(body: &[u8], size_of_generation: impl Fn(u64) -> usize) -> u64 {
    let text = std::str::from_utf8(body).expect("utf-8");
    let doc = json::parse(text).expect("valid JSON");
    let generation = doc.get("generation").and_then(Json::as_num).expect("generation") as u64;
    let records = match doc.get("records") {
        Some(Json::Obj(m)) => m.len(),
        other => panic!("records must be an object, got {other:?}"),
    };
    let uncompromised = match doc.get("uncompromised") {
        Some(Json::Arr(items)) => items.len(),
        other => panic!("uncompromised must be an array, got {other:?}"),
    };
    let expected = size_of_generation(generation);
    assert_eq!(
        records + uncompromised,
        expected,
        "torn response: generation {generation} should cover {expected} services"
    );
    generation
}

#[test]
fn hot_swap_mid_stream_never_serves_a_torn_response() {
    let _g = lock();
    obs_reset_enabled();
    let config =
        ServerConfig { threads: Some(4), queue_capacity: Some(64), ..ServerConfig::default() };
    let handle = start(config).expect("server starts");
    let addr = handle.addr();
    // A forward result covers exactly the platform-eligible services;
    // compute each dataset's expected coverage out of band with the
    // same facade the server uses.
    let eligible = |dataset: Dataset| {
        let specs = dataset.specs();
        let result = actfort_core::Analysis::over(
            &specs,
            actfort_ecosystem::policy::Platform::Web,
            actfort_core::profile::AttackerProfile::paper_default(),
        )
        .forward(&[])
        .run()
        .expect("reference run");
        result.records.len() + result.uncompromised.len()
    };
    let curated_len = eligible(Dataset::Curated);
    let paper_len = eligible(Dataset::Paper(3));
    assert_ne!(curated_len, paper_len, "swap must change the population size");

    // Generations alternate curated (odd) and paper (even): generation
    // 1 is the boot snapshot, each reload bumps by one.
    let size_of = move |generation: u64| {
        if generation % 2 == 1 {
            curated_len
        } else {
            paper_len
        }
    };

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let reloader = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let mut next_is_paper = true;
            let mut reloads = 0usize;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                let dataset = if next_is_paper { "paper:3" } else { "curated" };
                next_is_paper = !next_is_paper;
                let body = format!("{{\"dataset\":\"{dataset}\"}}");
                let resp = client.post("/admin/reload", body.as_bytes()).expect("reload");
                assert_eq!(resp.status, 200, "{}", resp.text());
                reloads += 1;
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            reloads
        })
    };

    let readers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut generations = std::collections::BTreeSet::new();
                let mut by_generation: std::collections::BTreeMap<u64, Vec<u8>> = Default::default();
                for _ in 0..40 {
                    let resp = client.post("/v1/forward", b"{}").expect("request");
                    assert_eq!(resp.status, 200, "{}", resp.text());
                    let generation = check_consistent(&resp.body, size_of);
                    generations.insert(generation);
                    // Same generation ⇒ same bytes, even across swaps.
                    let entry = by_generation.entry(generation).or_insert_with(|| resp.body.clone());
                    assert_eq!(*entry, resp.body, "generation {generation} served two variants");
                }
                generations
            })
        })
        .collect();

    let mut observed = std::collections::BTreeSet::new();
    for reader in readers {
        observed.extend(reader.join().expect("reader"));
    }
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let reloads = reloader.join().expect("reloader");
    assert!(reloads >= 2, "reloader must have swapped at least twice");
    assert!(
        observed.len() >= 2,
        "readers should observe multiple generations, saw {observed:?}"
    );
    handle.shutdown();
    actfort_core::obs::set_enabled(false);
}

#[test]
fn saturated_queue_sheds_load_with_503() {
    let _g = lock();
    obs_reset_enabled();
    let config = ServerConfig {
        dataset: Dataset::Paper(2021),
        threads: Some(1),
        queue_capacity: Some(1),
        ..ServerConfig::default()
    };
    let handle = start(config).expect("server starts");
    let addr = handle.addr();

    const BURST: usize = 10;
    let mut saw_503 = false;
    'attempts: for _attempt in 0..5 {
        let workers: Vec<_> = (0..BURST)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    // Distinct seeds + naive engine: every request is a
                    // cache miss doing real work.
                    let body = format!("{{\"seeds\":[],\"engine\":\"naive\",\"memo\":{}}}",
                        i % 2 == 0);
                    let resp = client.post("/v1/forward", body.as_bytes()).expect("request");
                    (resp.status, resp.header("retry-after").map(str::to_owned))
                })
            })
            .collect();
        for worker in workers {
            let (status, retry_after) = worker.join().expect("worker");
            match status {
                200 => {}
                503 => {
                    assert_eq!(retry_after.as_deref(), Some("1"), "503 must carry Retry-After");
                    saw_503 = true;
                }
                other => panic!("unexpected status {other}"),
            }
        }
        if saw_503 {
            break 'attempts;
        }
    }
    assert!(saw_503, "a 1-worker/1-slot queue must shed part of a {BURST}-wide burst");

    // The refusals are visible on the metrics endpoint.
    let mut client = Client::connect(addr).expect("connect");
    let metrics = client.get("/metrics").expect("metrics");
    let doc = json::parse(metrics.text()).expect("metrics JSON");
    let rejected = doc
        .get("counters")
        .and_then(|c| c.get("serve.queue.rejected"))
        .and_then(Json::as_num)
        .unwrap_or(0.0);
    assert!(rejected >= 1.0, "serve.queue.rejected must record the shed load");
    handle.shutdown();
    actfort_core::obs::set_enabled(false);
}

#[test]
fn deadline_cuts_backward_search_and_shows_in_metrics() {
    let _g = lock();
    obs_reset_enabled();
    // Calibrate 1 ms == 2 partial states so a 1 ms deadline cannot
    // finish paypal's search on the curated graph.
    let config = ServerConfig { deadline_partials_per_ms: 2, ..ServerConfig::default() };
    let handle = start(config).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let resp = client
        .post("/v1/backward", br#"{"target":"paypal","deadline_ms":1}"#)
        .expect("request");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let doc = json::parse(resp.text()).expect("JSON");
    assert_eq!(doc.get("exhaustive"), Some(&Json::Bool(false)), "{}", resp.text());

    // Without a deadline the same query is exhaustive and finds chains.
    let resp = client.post("/v1/backward", br#"{"target":"paypal"}"#).expect("request");
    let doc = json::parse(resp.text()).expect("JSON");
    assert_eq!(doc.get("exhaustive"), Some(&Json::Bool(true)));
    assert!(matches!(doc.get("chains"), Some(Json::Arr(chains)) if !chains.is_empty()));

    let metrics = client.get("/metrics").expect("metrics");
    let doc = json::parse(metrics.text()).expect("metrics JSON");
    let expired = doc
        .get("counters")
        .and_then(|c| c.get("serve.deadline.expired"))
        .and_then(Json::as_num)
        .unwrap_or(0.0);
    assert!(expired >= 1.0, "the deadline cut must be counted");
    handle.shutdown();
    actfort_core::obs::set_enabled(false);
}

#[test]
fn wire_errors_carry_stable_codes_and_drain_is_graceful() {
    let _g = lock();
    obs_reset_enabled();
    let handle = start(ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Unknown seed → 400 with the UnknownService discriminant.
    let resp = client.post("/v1/forward", br#"{"seeds":["ghost"]}"#).expect("request");
    assert_eq!(resp.status, 400);
    let doc = json::parse(resp.text()).expect("JSON");
    assert_eq!(
        doc.get("error").and_then(|e| e.get("code")).and_then(Json::as_num),
        Some(f64::from(actfort_core::error::CODE_UNKNOWN_SERVICE))
    );

    // Malformed JSON → 400 with the Query discriminant.
    let resp = client.post("/v1/backward", b"{{{{").expect("request");
    assert_eq!(resp.status, 400);
    let doc = json::parse(resp.text()).expect("JSON");
    assert_eq!(
        doc.get("error").and_then(|e| e.get("code")).and_then(Json::as_num),
        Some(f64::from(actfort_core::error::CODE_QUERY))
    );

    // Unknown endpoint → 404; known endpoint, wrong method → 405.
    assert_eq!(client.get("/nope").expect("request").status, 404);
    assert_eq!(client.get("/v1/forward").expect("request").status, 405);

    // Health speaks.
    let resp = client.get("/healthz").expect("request");
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("\"status\":\"ok\""));

    // POST /admin/shutdown answers before draining; join() returning
    // at all is the graceful-drain assertion (accept loop, connection
    // threads and the work queue all wound down).
    let resp = client.post("/admin/shutdown", b"").expect("request");
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("draining"));
    handle.join();
    actfort_core::obs::set_enabled(false);
}
