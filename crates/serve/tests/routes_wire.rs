//! Integration tests for the versioned route table:
//!
//! 1. every analysis endpoint answers at both spellings (`/x` and
//!    `/v1/x`) with identical bodies — the two are one route, not two;
//! 2. infrastructure routes exist only bare (`/v1/healthz` is a 404);
//! 3. a version-shaped prefix this server does not speak is a `400`
//!    with the stable `CODE_SERVE_UNKNOWN_VERSION` discriminant and
//!    `"unknown_version"` kind — distinct from a typo'd path's 404;
//! 4. the shared `edge_class` envelope field parses on every endpoint,
//!    rejects unknown spellings with the query discriminant, and a
//!    `recovery_only` forward differs from the unfiltered one on the
//!    curated dataset (the recovery surface is real, not a no-op
//!    filter).
//!
//! The obs recorder is process-global, so tests serialize behind one
//! mutex.

use actfort_core::obs::json::{self, Json};
use actfort_serve::{start, Client, ServerConfig, CODE_SERVE_UNKNOWN_VERSION};
use std::sync::{Mutex, MutexGuard};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn obs_reset_enabled() {
    actfort_core::obs::reset();
    actfort_core::obs::set_enabled(true);
}

fn error_field(resp: &actfort_serve::ClientResponse, field: &str) -> Json {
    json::parse(resp.text())
        .expect("error body parses")
        .get("error")
        .and_then(|e| e.get(field))
        .cloned()
        .expect("error field present")
}

#[test]
fn every_analysis_endpoint_answers_at_both_spellings() {
    let _g = lock();
    obs_reset_enabled();
    let handle = start(ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");

    for (tail, body) in [
        ("forward", &br#"{"seeds":["gmail"]}"#[..]),
        ("backward", br#"{"target":"alipay","max_chains":2}"#),
        ("score", br#"{"profiles":[{"services":["gmail","taobao"]}]}"#),
        ("whatif", br#"{"countermeasures":["built_in_push"]}"#),
    ] {
        let bare = client.post(&format!("/{tail}"), body).expect("bare spelling");
        assert_eq!(bare.status, 200, "/{tail}: {}", bare.text());
        let versioned = client.post(&format!("/v1/{tail}"), body).expect("v1 spelling");
        assert_eq!(versioned.status, 200, "/v1/{tail}: {}", versioned.text());
        // One route, one cache entry, identical bytes.
        assert_eq!(bare.body, versioned.body, "/{tail} vs /v1/{tail}");
        assert_eq!(versioned.header("x-actfort-cache"), Some("hit"), "/v1/{tail}");
    }

    // Infrastructure routes are deliberately unversioned.
    assert_eq!(client.get("/healthz").expect("healthz").status, 200);
    assert_eq!(client.get("/v1/healthz").expect("v1 healthz").status, 404);
    assert_eq!(client.get("/v1/metrics").expect("v1 metrics").status, 404);

    // Wrong method on either spelling is 405, not 404.
    assert_eq!(client.get("/forward").expect("GET bare").status, 405);
    assert_eq!(client.get("/v1/forward").expect("GET v1").status, 405);

    handle.shutdown();
    actfort_core::obs::set_enabled(false);
}

#[test]
fn unknown_versions_reject_with_a_stable_discriminant() {
    let _g = lock();
    obs_reset_enabled();
    let handle = start(ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");

    for path in ["/v2/forward", "/v0/healthz", "/v99/whatif"] {
        let resp = client.post(path, b"{}").expect("request");
        assert_eq!(resp.status, 400, "{path}: {}", resp.text());
        assert_eq!(
            error_field(&resp, "code").as_num(),
            Some(f64::from(CODE_SERVE_UNKNOWN_VERSION)),
            "{path}"
        );
        assert_eq!(error_field(&resp, "kind").as_str(), Some("unknown_version"), "{path}");
    }
    // Not version-shaped: ordinary 404s, untouched by the version split.
    assert_eq!(client.post("/version", b"{}").expect("request").status, 404);
    assert_eq!(client.post("/v1", b"{}").expect("request").status, 404);

    handle.shutdown();
    actfort_core::obs::set_enabled(false);
}

#[test]
fn edge_class_filters_over_the_wire_and_rejects_unknown_spellings() {
    let _g = lock();
    obs_reset_enabled();
    let handle = start(ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let compromised = |resp: &actfort_serve::ClientResponse| {
        json::parse(resp.text())
            .expect("forward JSON")
            .get("compromised")
            .and_then(Json::as_num)
            .expect("compromised count")
    };

    // An explicit "all" is the default spelled out: identical bytes.
    let default = client.post("/forward", b"{}").expect("default");
    assert_eq!(default.status, 200, "{}", default.text());
    let all = client.post("/forward", br#"{"edge_class":"all"}"#).expect("all");
    assert_eq!(default.body, all.body, "explicit all must be the identity");
    assert_eq!(all.header("x-actfort-cache"), Some("hit"), "and share the cache entry");

    // The login-only view drops recovery-reachable accounts, and the
    // recovery-only view is non-empty on the curated dataset: some
    // accounts fall *only* through recovery flows.
    let login =
        client.post("/forward", br#"{"edge_class":"login_only"}"#).expect("login_only");
    assert_eq!(login.status, 200, "{}", login.text());
    let recovery =
        client.post("/forward", br#"{"edge_class":"recovery_only"}"#).expect("recovery_only");
    assert_eq!(recovery.status, 200, "{}", recovery.text());
    assert!(
        compromised(&login) < compromised(&default),
        "curated dataset must have recovery-reachable accounts"
    );
    assert!(
        compromised(&recovery) > 0.0,
        "curated dataset must have recovery-only falls"
    );
    assert_ne!(default.body, recovery.body);

    // Every endpoint rejects an unknown class with the stable message.
    for (path, body) in [
        ("/forward", &br#"{"edge_class":"sideways"}"#[..]),
        ("/backward", br#"{"target":"alipay","edge_class":"sideways"}"#),
        ("/score", br#"{"profiles":[],"edge_class":"sideways"}"#),
        ("/whatif", br#"{"edge_class":"sideways"}"#),
    ] {
        let resp = client.post(path, body).expect("request");
        assert_eq!(resp.status, 400, "{path}: {}", resp.text());
        assert_eq!(
            error_field(&resp, "code").as_num(),
            Some(f64::from(actfort_core::error::CODE_QUERY)),
            "{path}"
        );
    }

    // The filter reaches backward too: the recovery-only view excludes
    // taobao's direct login chain, so its chain set differs from the
    // full one.
    let full = client
        .post("/backward", br#"{"target":"taobao","max_chains":4}"#)
        .expect("backward");
    assert_eq!(full.status, 200, "{}", full.text());
    let filtered = client
        .post("/backward", br#"{"target":"taobao","max_chains":4,"edge_class":"recovery_only"}"#)
        .expect("backward filtered");
    assert_eq!(filtered.status, 200, "{}", filtered.text());
    assert_ne!(full.body, filtered.body, "filter must reach the chain search");

    handle.shutdown();
    actfort_core::obs::set_enabled(false);
}
