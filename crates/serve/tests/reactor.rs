//! Adversarial-client tests for the epoll reactor: slow-loris framing,
//! pipelined bursts, mid-response disconnects, token-reuse hammering,
//! drain-under-load, and the backward-cache regression.
//!
//! Everything here talks to the server over real sockets; raw
//! `TcpStream`s are used where the shaped traffic (byte-at-a-time
//! writes, abrupt disconnects) is the point, and [`Client`] where the
//! protocol is.

use actfort_serve::{start, Client, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn server(config: ServerConfig) -> actfort_serve::ServerHandle {
    start(config).expect("server starts")
}

/// A slow-loris client that dribbles a valid request one byte at a time
/// still gets served: partial reads buffer until the request completes.
#[test]
fn slow_loris_byte_at_a_time_header_is_served() {
    let handle = server(ServerConfig::default());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let raw = b"GET /healthz HTTP/1.1\r\nhost: actfort\r\ncontent-length: 0\r\n\r\n";
    for &byte in raw {
        stream.write_all(&[byte]).expect("write one byte");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut response = Vec::new();
    let mut buf = [0u8; 1024];
    while !response.windows(4).any(|w| w == b"\r\n\r\n") {
        let n = stream.read(&mut buf).expect("read");
        assert!(n > 0, "server closed before responding to a complete request");
        response.extend_from_slice(&buf[..n]);
    }
    let text = String::from_utf8_lossy(&response);
    assert!(text.starts_with("HTTP/1.1 200"), "expected 200, got {text}");
    handle.shutdown();
}

/// A slow-loris client that *stalls* mid-request is disconnected by the
/// stall timer instead of holding its socket forever.
#[test]
fn stalled_mid_request_connection_is_timed_out() {
    let handle = server(ServerConfig {
        stall_timeout: Duration::from_millis(150),
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    // Half a request head, then silence.
    stream.write_all(b"GET /healthz HTTP/1.1\r\nhost: act").expect("write");
    stream.flush().expect("flush");
    let started = Instant::now();
    let mut buf = [0u8; 64];
    let n = stream.read(&mut buf).expect("read should see EOF, not error");
    assert_eq!(n, 0, "server must close a stalled connection");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "close must come from the stall timer, not the idle timeout"
    );
    handle.shutdown();
}

/// Eight connections pipelining the same request sequence all receive
/// responses byte-identical to the sequential golden bodies, in order.
#[test]
fn pipelined_bursts_match_sequential_golden_bytes_8_way() {
    let handle =
        server(ServerConfig { threads: Some(2), queue_capacity: Some(64), ..ServerConfig::default() });
    let addr = handle.addr();
    let queries: Vec<(&str, &[u8])> = vec![
        ("/v1/forward", br#"{"seeds":["gmail"]}"#),
        ("/v1/forward", br#"{"seeds":["taobao","gmail"]}"#),
        ("/v1/backward", br#"{"target":"paypal"}"#),
        ("/v1/forward", br#"{"seeds":[]}"#),
        ("/v1/backward", br#"{"target":"amazon","max_chains":3}"#),
        ("/v1/forward", br#"{"seeds":["gmail"]}"#),
    ];

    // Golden: the same sequence, sequential request/response.
    let golden: Vec<Vec<u8>> = {
        let mut client = Client::connect(addr).expect("connect");
        queries
            .iter()
            .map(|(path, body)| {
                let resp = client.post(path, body).expect("golden request");
                assert_eq!(resp.status, 200, "{}", resp.text());
                resp.body
            })
            .collect()
    };

    let workers: Vec<_> = (0..8)
        .map(|_| {
            let queries = queries.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let responses = client.pipeline_post(&queries).expect("pipelined burst");
                responses.into_iter().map(|r| {
                    assert_eq!(r.status, 200, "{}", r.text());
                    r.body
                }).collect::<Vec<_>>()
            })
        })
        .collect();
    for worker in workers {
        let bodies = worker.join().expect("pipeline worker");
        assert_eq!(bodies.len(), golden.len());
        for (got, want) in bodies.iter().zip(&golden) {
            assert_eq!(got, want, "pipelined response must be byte-identical to sequential");
        }
    }
    handle.shutdown();
}

/// Clients that vanish mid-exchange (request written, connection
/// dropped before the response) never wedge the server, including under
/// rapid token reuse; stale worker completions are discarded by the
/// connection-generation check.
#[test]
fn mid_response_disconnects_and_token_reuse_do_not_wedge_the_server() {
    let handle = server(ServerConfig::default());
    let addr = handle.addr();
    for i in 0..30 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        // A compute-bound request whose worker will complete after the
        // socket is gone (distinct bodies dodge the response cache).
        let body = format!("{{\"seeds\":[],\"engine\":\"naive\",\"memo\":{}}}", i % 2 == 0);
        let raw = format!(
            "POST /v1/forward HTTP/1.1\r\nhost: actfort\r\ncontent-length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        stream.write_all(raw.as_bytes()).expect("write");
        drop(stream); // Vanish before the response.
    }
    // The server still answers promptly on a fresh connection.
    let mut client = Client::connect(addr).expect("connect");
    let resp = client.get("/healthz").expect("healthz after disconnect storm");
    assert_eq!(resp.status, 200);
    let resp = client.post("/v1/forward", br#"{"seeds":["gmail"]}"#).expect("forward");
    assert_eq!(resp.status, 200, "{}", resp.text());
    handle.shutdown();
}

/// Graceful drain completes every request the server had accepted —
/// a pipelined burst in flight when shutdown lands loses nothing.
#[test]
fn drain_during_pipelined_burst_loses_zero_accepted_requests() {
    let handle =
        server(ServerConfig { threads: Some(2), queue_capacity: Some(64), ..ServerConfig::default() });
    let addr = handle.addr();

    const BURST: usize = 16;
    let mut bursting = Client::connect(addr).expect("connect");

    let reader = std::thread::spawn(move || {
        // Alternating memo + naive engine keeps every request a cache
        // miss at dispatch time, so each one is real in-flight work
        // when shutdown lands.
        let queries: Vec<String> = (0..BURST)
            .map(|i| format!("{{\"seeds\":[\"gmail\"],\"engine\":\"naive\",\"memo\":{}}}", i % 2 == 0))
            .collect();
        let borrowed: Vec<(&str, &[u8])> =
            queries.iter().map(|b| ("/v1/forward", b.as_bytes())).collect();
        let responses = bursting.pipeline_post(&borrowed).expect("burst answered in full");
        responses
            .iter()
            .for_each(|r| assert_eq!(r.status, 200, "burst request failed: {}", r.text()));
        responses.len()
    });

    // Let the reactor accept and start the burst, then drain.
    std::thread::sleep(Duration::from_millis(20));
    let mut admin = Client::connect(addr).expect("connect admin");
    let resp = admin.post("/admin/shutdown", b"").expect("shutdown");
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("draining"));

    assert_eq!(reader.join().expect("burst reader"), BURST, "drain dropped accepted requests");
    handle.join();

    // And the listener is really gone: new connections are refused (or
    // reset before a response).
    let denied = TcpStream::connect(addr)
        .and_then(|mut s| {
            s.set_read_timeout(Some(Duration::from_secs(2)))?;
            s.write_all(b"GET /healthz HTTP/1.1\r\ncontent-length: 0\r\n\r\n")?;
            let mut buf = [0u8; 16];
            s.read(&mut buf)
        })
        .map(|n| n == 0)
        .unwrap_or(true);
    assert!(denied, "a drained server must not serve new connections");
}

/// Regression (the backward 0% hit-rate bug): the second identical
/// backward query is a cache hit with a byte-identical body. Guards the
/// handler actually consulting the cache and the key canonicalization.
#[test]
fn second_identical_backward_query_hits_the_cache() {
    let handle = server(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).expect("connect");

    let body = br#"{"target":"paypal","max_chains":4}"#;
    let first = client.post("/v1/backward", body).expect("first backward");
    assert_eq!(first.status, 200, "{}", first.text());
    assert_eq!(first.header("x-actfort-cache"), Some("miss"), "first query must miss");

    let second = client.post("/v1/backward", body).expect("second backward");
    assert_eq!(second.status, 200, "{}", second.text());
    assert_eq!(
        second.header("x-actfort-cache"),
        Some("hit"),
        "the second identical backward query must hit the rendered-body cache"
    );
    assert_eq!(first.body, second.body, "hit must serve the exact bytes the miss rendered");

    // An explicit budget and the equivalent deadline spelling share one
    // entry (the key stores the *effective* budget).
    let explicit = client
        .post("/v1/backward", br#"{"target":"amazon","budget":2000}"#)
        .expect("explicit budget");
    assert_eq!(explicit.header("x-actfort-cache"), Some("miss"));
    let via_deadline = client
        .post("/v1/backward", br#"{"target":"amazon","deadline_ms":1}"#)
        .expect("deadline-derived budget");
    assert_eq!(
        via_deadline.header("x-actfort-cache"),
        Some("hit"),
        "deadline-derived budget must share the explicit-budget cache entry"
    );
    assert_eq!(explicit.body, via_deadline.body);

    // A different bound is a different entry.
    let other = client
        .post("/v1/backward", br#"{"target":"paypal","max_chains":2}"#)
        .expect("different bound");
    assert_eq!(other.header("x-actfort-cache"), Some("miss"));
    handle.shutdown();
}
