//! Integration tests for the `POST /whatif` contract:
//!
//! 1. malformed bodies are rejected with the stable error
//!    discriminants (unknown countermeasure names, sweep+list
//!    contradiction, oversized severed caps);
//! 2. a single-set evaluation matches the core `counter::evaluate`
//!    reference and an identical request — in any spelling order —
//!    is served from the rendered-body cache;
//! 3. the sweep mode returns every countermeasure subset
//!    (`2^|all()|` of them) in one response
//!    **without compiling a single new substrate** (the
//!    `engine.prepares` counter is flat across the request — the
//!    tentpole's observable);
//! 4. the baseline (empty set) report has `before == after`.
//!
//! The obs recorder is process-global, so tests serialize behind one
//! mutex.

use actfort_core::obs::json::{self, Json};
use actfort_serve::{start, Client, ServerConfig};
use std::sync::{Mutex, MutexGuard};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn obs_reset_enabled() {
    actfort_core::obs::reset();
    actfort_core::obs::set_enabled(true);
}

fn error_code(resp: &actfort_serve::ClientResponse) -> f64 {
    json::parse(resp.text())
        .expect("error body parses")
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_num)
        .expect("error code present")
}

fn counter(client: &mut Client, name: &str) -> f64 {
    let metrics = client.get("/metrics").expect("metrics");
    json::parse(metrics.text())
        .expect("metrics JSON")
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_num)
        .unwrap_or(0.0)
}

#[test]
fn malformed_whatif_bodies_reject_with_stable_discriminants() {
    let _g = lock();
    obs_reset_enabled();
    let handle = start(ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let query = f64::from(actfort_core::error::CODE_QUERY);

    for body in [
        &br#"{"countermeasures":"built_in_push"}"#[..],
        br#"{"countermeasures":[42]}"#,
        br#"{"countermeasures":["warp_drive"]}"#,
        br#"{"sweep":"yes"}"#,
        br#"{"sweep":true,"countermeasures":["built_in_push"]}"#,
        br#"{"severed_chains":65}"#,
        b"not json at all",
    ] {
        let resp = client.post("/whatif", body).expect("request");
        assert_eq!(resp.status, 400, "{}", resp.text());
        assert_eq!(error_code(&resp), query, "{}", resp.text());
    }

    // Wrong method on both spellings → 405, not 404.
    assert_eq!(client.get("/whatif").expect("request").status, 405);
    assert_eq!(client.get("/v1/whatif").expect("request").status, 405);
    handle.shutdown();
    actfort_core::obs::set_enabled(false);
}

#[test]
fn single_set_matches_reference_and_canonicalized_spellings_hit_the_cache() {
    let _g = lock();
    obs_reset_enabled();
    let handle = start(ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let body = br#"{"countermeasures":["built_in_push","unified_masking"]}"#;
    let first = client.post("/whatif", body).expect("request");
    assert_eq!(first.status, 200, "{}", first.text());
    assert_eq!(first.header("x-actfort-cache"), Some("miss"));
    let doc = json::parse(first.text()).expect("whatif JSON");
    let Some(Json::Arr(reports)) = doc.get("reports") else { panic!("reports array") };
    assert_eq!(reports.len(), 1);
    let report = &reports[0];
    // Canonical order in the body regardless of request spelling.
    let Some(Json::Arr(cms)) = report.get("countermeasures") else { panic!("cms array") };
    assert_eq!(cms[0].as_str(), Some("unified_masking"));
    assert_eq!(cms[1].as_str(), Some("built_in_push"));

    // The breakdown matches the core spec-rewrite reference (the server
    // boots on curated + Web).
    let specs = actfort_ecosystem::dataset::curated_services();
    let reference = actfort_core::counter::evaluate(
        &specs,
        &[
            actfort_core::Countermeasure::BuiltInPush,
            actfort_core::Countermeasure::UnifiedMasking,
        ],
        actfort_ecosystem::policy::Platform::Web,
        &actfort_core::AttackerProfile::paper_default(),
    );
    let pct = |side: &str, field: &str| {
        report.get(side).and_then(|b| b.get(field)).and_then(Json::as_num).expect("pct")
    };
    assert_eq!(pct("before", "direct_pct"), reference.before.direct_pct);
    assert_eq!(pct("after", "direct_pct"), reference.after.direct_pct);
    assert_eq!(pct("after", "uncompromisable_pct"), reference.after.uncompromisable_pct);
    // Push removes SMS fringes: strictly fewer direct compromises.
    assert!(reference.after.direct_pct < reference.before.direct_pct);

    // Identical request → rendered-body cache hit with identical bytes.
    let second = client.post("/whatif", body).expect("request");
    assert_eq!(second.header("x-actfort-cache"), Some("hit"));
    assert_eq!(first.body, second.body);

    // Any spelling order (and duplicates) of the same set is the same
    // cache entry — the canonical-key satellite.
    let respelled =
        br#"{"countermeasures":["unified_masking","built_in_push","unified_masking"]}"#;
    let third = client.post("/v1/whatif", respelled).expect("request");
    assert_eq!(third.header("x-actfort-cache"), Some("hit"), "canonicalized key must hit");
    assert_eq!(first.body, third.body);

    handle.shutdown();
    actfort_core::obs::set_enabled(false);
}

#[test]
fn sweep_returns_every_subset_without_recompiling_a_substrate() {
    let _g = lock();
    obs_reset_enabled();
    let handle = start(ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let prepares_before = counter(&mut client, "engine.prepares");
    let resp = client.post("/whatif", br#"{"sweep":true,"severed_chains":2}"#).expect("sweep");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let prepares_after = counter(&mut client, "engine.prepares");
    assert_eq!(
        prepares_after, prepares_before,
        "the sweep must run on compiled patches, never a fresh Prepared"
    );
    // But it did compile patches (at most one per non-empty subset,
    // fewer when the per-countermeasure union already hit the cache).
    assert!(counter(&mut client, "engine.patches") >= 1.0, "patch compilation must be counted");

    let subset_count = 1usize << actfort_core::Countermeasure::all().len();
    let doc = json::parse(resp.text()).expect("sweep JSON");
    let Some(Json::Arr(reports)) = doc.get("reports") else { panic!("reports array") };
    assert_eq!(reports.len(), subset_count, "2^|all()| subsets");
    // Subsets are enumerated mask-ascending: the first is the baseline
    // and must be a no-op; every report shares the same `before`.
    let first = &reports[0];
    assert_eq!(first.get("label").and_then(Json::as_str), Some("baseline"));
    assert_eq!(first.get("before"), first.get("after"), "empty set must change nothing");
    let Some(Json::Arr(protected)) = first.get("protected") else { panic!("protected") };
    assert!(protected.is_empty());
    let base_before = first.get("before").expect("before");
    let mut labels = std::collections::BTreeSet::new();
    for report in reports {
        assert_eq!(report.get("before"), Some(base_before), "one base population");
        labels.insert(report.get("label").and_then(Json::as_str).expect("label").to_owned());
    }
    assert_eq!(labels.len(), subset_count, "every subset evaluated exactly once");

    // The full stack (last report, everything applied) matches the core
    // reference byte-for-byte on percentages.
    let all = actfort_core::Countermeasure::all().to_vec();
    let reference = actfort_core::counter::evaluate(
        &actfort_ecosystem::dataset::curated_services(),
        &all,
        actfort_ecosystem::policy::Platform::Web,
        &actfort_core::AttackerProfile::paper_default(),
    );
    let last = &reports[subset_count - 1];
    assert_eq!(
        last.get("after").and_then(|b| b.get("direct_pct")).and_then(Json::as_num),
        Some(reference.after.direct_pct)
    );

    // A repeated sweep is a rendered-body cache hit.
    let again = client.post("/whatif", br#"{"sweep":true,"severed_chains":2}"#).expect("sweep");
    assert_eq!(again.header("x-actfort-cache"), Some("hit"));
    assert_eq!(resp.body, again.body);
    handle.shutdown();
    actfort_core::obs::set_enabled(false);
}
