//! Integration tests for the `POST /score` contract:
//!
//! 1. malformed profiles are rejected with the unified stable error
//!    discriminants (mistyped batches, unknown factor names, unknown
//!    services, oversized batches);
//! 2. a second identical batch is served from the rendered-body cache
//!    (hit pinned via the `x-actfort-cache` header *and* the metrics
//!    counters, like the backward-cache regression test);
//! 3. 8 threads issuing the same batch concurrently all receive
//!    byte-identical bodies under the reactor;
//! 4. the response itself is in input order and consistent with the
//!    plain forward result for a full-profile user.
//!
//! The obs recorder is process-global, so tests serialize behind one
//! mutex.

use actfort_core::obs::json::{self, Json};
use actfort_serve::{start, Client, ServerConfig};
use std::sync::{Mutex, MutexGuard};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn obs_reset_enabled() {
    actfort_core::obs::reset();
    actfort_core::obs::set_enabled(true);
}

fn error_code(resp: &actfort_serve::ClientResponse) -> f64 {
    json::parse(resp.text())
        .expect("error body parses")
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_num)
        .expect("error code present")
}

#[test]
fn malformed_profiles_reject_with_stable_discriminants() {
    let _g = lock();
    obs_reset_enabled();
    let handle = start(ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let query = f64::from(actfort_core::error::CODE_QUERY);

    // Shape errors → CODE_QUERY (11).
    for body in [
        &b"{}"[..],
        br#"{"profiles":"gmail"}"#,
        br#"{"profiles":[42]}"#,
        br#"{"profiles":[{"services":"gmail"}]}"#,
        br#"{"profiles":[{"services":[1]}]}"#,
        br#"{"profiles":[{"services":[],"factors":"sms_code"}]}"#,
        br#"{"profiles":[{"services":[],"factors":["warp_drive"]}]}"#,
        br#"{"profiles":[],"engine":"warp"}"#,
        b"not json at all",
    ] {
        let resp = client.post("/score", body).expect("request");
        assert_eq!(resp.status, 400, "{}", resp.text());
        assert_eq!(error_code(&resp), query, "{}", resp.text());
    }

    // A profile naming a service outside the population →
    // CODE_UNKNOWN_SERVICE (12), the same discriminant forward seeds
    // get.
    let resp = client
        .post("/score", br#"{"profiles":[{"services":["ghost-service"]}]}"#)
        .expect("request");
    assert_eq!(resp.status, 400, "{}", resp.text());
    assert_eq!(
        error_code(&resp),
        f64::from(actfort_core::error::CODE_UNKNOWN_SERVICE),
        "{}",
        resp.text()
    );

    // An oversized batch is refused up front.
    let oversized = format!(
        r#"{{"profiles":[{}]}}"#,
        vec![r#"{"services":[]}"#; actfort_serve::wire::MAX_SCORE_PROFILES + 1].join(",")
    );
    let resp = client.post("/score", oversized.as_bytes()).expect("request");
    assert_eq!(resp.status, 400, "{}", resp.text());
    assert_eq!(error_code(&resp), query);

    // Wrong method on a known path → 405, and the /v1 alias serves the
    // same contract.
    assert_eq!(client.get("/score").expect("request").status, 405);
    assert_eq!(client.get("/v1/score").expect("request").status, 405);
    handle.shutdown();
    actfort_core::obs::set_enabled(false);
}

#[test]
fn second_identical_batch_hits_the_rendered_body_cache() {
    let _g = lock();
    obs_reset_enabled();
    let handle = start(ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let body = br#"{"profiles":[
        {"services":["gmail","taobao"],"factors":["sms_code","email_code"]},
        {"services":["gmail"]},
        {"services":[]}]}"#;
    let first = client.post("/score", body).expect("request");
    assert_eq!(first.status, 200, "{}", first.text());
    assert_eq!(first.header("x-actfort-cache"), Some("miss"));

    let second = client.post("/score", body).expect("request");
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-actfort-cache"), Some("hit"), "identical batch must hit");
    assert_eq!(first.body, second.body, "hit must serve the miss's exact bytes");

    // Same batch, service spelling canonicalized within a profile:
    // still a hit. Reordered *across* profiles: a different response
    // (scores are positional), so a miss.
    let respelled = br#"{"profiles":[
        {"services":["taobao","gmail","gmail"],"factors":["sms_code","email_code"]},
        {"services":["gmail"]},
        {"services":[]}]}"#;
    let third = client.post("/score", respelled).expect("request");
    assert_eq!(third.header("x-actfort-cache"), Some("hit"), "within-profile canonicalization");
    assert_eq!(first.body, third.body);
    let reordered = br#"{"profiles":[
        {"services":[]},
        {"services":["gmail"]},
        {"services":["gmail","taobao"],"factors":["sms_code","email_code"]}]}"#;
    let fourth = client.post("/score", reordered).expect("request");
    assert_eq!(fourth.header("x-actfort-cache"), Some("miss"), "batch order is significant");

    // The hits are visible on /metrics too.
    let metrics = client.get("/metrics").expect("metrics");
    let doc = json::parse(metrics.text()).expect("metrics JSON");
    let hits = doc
        .get("counters")
        .and_then(|c| c.get("serve.cache.hits"))
        .and_then(Json::as_num)
        .unwrap_or(0.0);
    assert!(hits >= 2.0, "cache hits must be counted, saw {hits}");
    handle.shutdown();
    actfort_core::obs::set_enabled(false);
}

#[test]
fn eight_way_concurrent_batches_get_identical_bytes() {
    let _g = lock();
    obs_reset_enabled();
    let config =
        ServerConfig { threads: Some(4), queue_capacity: Some(64), ..ServerConfig::default() };
    let handle = start(config).expect("server starts");
    let addr = handle.addr();

    const THREADS: usize = 8;
    const PER_THREAD: usize = 4;
    let body: &[u8] = br#"{"profiles":[
        {"services":["gmail","taobao","alipay"]},
        {"services":["gmail"],"factors":["email_code","email_link"]},
        {"services":[],"factors":[]}],"engine":"prepared"}"#;
    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                (0..PER_THREAD)
                    .map(|_| {
                        let resp = client.post("/v1/score", body).expect("request");
                        assert_eq!(resp.status, 200, "{}", resp.text());
                        let cache =
                            resp.header("x-actfort-cache").expect("cache header").to_owned();
                        (cache, resp.body)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    let mut hits = 0usize;
    let mut misses = 0usize;
    let mut bodies: Vec<Vec<u8>> = Vec::new();
    for worker in workers {
        for (cache, body) in worker.join().expect("worker") {
            match cache.as_str() {
                "hit" => hits += 1,
                "miss" => misses += 1,
                other => panic!("unexpected cache header {other:?}"),
            }
            bodies.push(body);
        }
    }
    assert_eq!(hits + misses, THREADS * PER_THREAD);
    assert!(misses >= 1, "first responder must miss");
    assert!(hits >= 1, "32 identical batches must hit the cache");
    let first = &bodies[0];
    assert!(
        bodies.iter().all(|b| b == first),
        "hit and miss paths must serve byte-identical score bodies"
    );
    handle.shutdown();
    actfort_core::obs::set_enabled(false);
}

#[test]
fn scores_come_back_in_input_order_and_match_forward() {
    let _g = lock();
    obs_reset_enabled();
    let handle = start(ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // The server boots on the curated dataset over Platform::Web; a
    // user holding every eligible service with all factors reproduces
    // the plain forward result. Pull the eligible set from forward
    // itself so the batch never names an ineligible service.
    let forward = client.post("/v1/forward", b"{}").expect("forward");
    assert_eq!(forward.status, 200);
    let doc = json::parse(forward.text()).expect("forward JSON");
    let compromised =
        doc.get("compromised").and_then(Json::as_num).expect("compromised count") as u64;
    let mut eligible: Vec<String> = match doc.get("records") {
        Some(Json::Obj(m)) => m.keys().cloned().collect(),
        other => panic!("records must be an object, got {other:?}"),
    };
    if let Some(Json::Arr(items)) = doc.get("uncompromised") {
        eligible.extend(items.iter().filter_map(|i| i.as_str().map(str::to_owned)));
    }
    let services =
        eligible.iter().map(|s| format!("{s:?}")).collect::<Vec<_>>().join(",");
    let body = format!(
        r#"{{"profiles":[{{"services":[{services}]}},{{"services":[]}}]}}"#
    );
    let resp = client.post("/score", body.as_bytes()).expect("score");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let doc = json::parse(resp.text()).expect("score JSON");
    assert_eq!(doc.get("users").and_then(Json::as_num), Some(2.0));
    let Some(Json::Arr(scores)) = doc.get("scores") else { panic!("scores array") };
    // User 0 (everything held) matches forward's compromised count;
    // user 1 (nothing held) scores zero — input order, not sorted.
    assert_eq!(
        scores[0].get("blast_radius").and_then(Json::as_num),
        Some(compromised as f64),
        "full user's blast radius must equal the forward compromised count"
    );
    assert_eq!(scores[1].get("blast_radius").and_then(Json::as_num), Some(0.0));
    assert_eq!(scores[1].get("weakest_chain").and_then(Json::as_num), Some(0.0));
    handle.shutdown();
    actfort_core::obs::set_enabled(false);
}
