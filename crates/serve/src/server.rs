//! Routing and lifecycle (start → serve → drain → join) on top of the
//! [`reactor`](crate::reactor).
//!
//! Threading model: one reactor thread owns the listener and every
//! client socket ([`crate::reactor::Reactor`]); it parses requests and
//! hands each one to [`Svc`], which answers cheap endpoints (health,
//! metrics, admin, cache hits) inline on the reactor thread and pushes
//! analysis work onto the bounded [`WorkQueue`]. Workers complete
//! responses back through the reactor's wakeup fd, so no thread ever
//! blocks on another request's compute. Responses are built from
//! exactly one [`Snapshot`] loaded at request start, so a concurrent
//! hot-swap can never tear a response.

use crate::cache::{CacheKey, ResponseCache};
use crate::http::{self, Request, Response};
use crate::obs_names;
use crate::queue::WorkQueue;
use crate::reactor::{CompletionSender, Handler, Reactor, ReactorConfig, ResponseSlot};
use crate::snapshot::{Dataset, SnapshotStore};
use crate::wire;
use actfort_core::engine::BatchAnalyzer;
use actfort_core::profile::AttackerProfile;
use actfort_core::query::{Analysis, Engine};
use actfort_core::{obs, Error};
use actfort_ecosystem::policy::Platform;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Wire discriminant for server-layer faults (bind failures, …); the
/// 24xx block follows the per-crate ranges documented in
/// `actfort_core::error`.
pub const CODE_SERVE_IO: u16 = 2400;
/// Wire discriminant for queue-full backpressure refusals.
pub const CODE_SERVE_OVERLOADED: u16 = 2401;
/// Wire discriminant for requests under an API version this server
/// does not speak (`/v2/forward`, …). Distinct from a plain 404: the
/// path would exist under `/v1`, so clients can detect a version skew
/// rather than a typo.
pub const CODE_SERVE_UNKNOWN_VERSION: u16 = 2402;

/// Server configuration. `Default` serves the curated dataset on an
/// ephemeral localhost port with environment-probed worker sizing.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Initial dataset.
    pub dataset: Dataset,
    /// Platform the dependency graph is classified under.
    pub platform: Platform,
    /// Attacker profile the graph is classified against.
    pub profile: AttackerProfile,
    /// Analysis worker count; `None` follows
    /// [`BatchAnalyzer::from_env`] (the `ACTFORT_THREADS` contract).
    pub threads: Option<usize>,
    /// Bounded queue capacity; `None` means four jobs per worker.
    pub queue_capacity: Option<usize>,
    /// Response cache capacity (rendered bodies, forward + backward).
    pub cache_capacity: usize,
    /// How long an idle keep-alive connection is kept open.
    pub idle_timeout: Duration,
    /// How long a peer may stall mid-request (or with responses in
    /// flight) before the connection is closed.
    pub stall_timeout: Duration,
    /// Maximum pipelined requests in flight per connection.
    pub max_pipeline: usize,
    /// Deadline → partial-budget calibration
    /// ([`wire::DEADLINE_PARTIALS_PER_MS`] by default).
    pub deadline_partials_per_ms: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            dataset: Dataset::Curated,
            platform: Platform::Web,
            profile: AttackerProfile::paper_default(),
            threads: None,
            queue_capacity: None,
            cache_capacity: 1024,
            idle_timeout: Duration::from_secs(60),
            stall_timeout: http::MID_REQUEST_STALL,
            max_pipeline: 32,
            deadline_partials_per_ms: wire::DEADLINE_PARTIALS_PER_MS,
        }
    }
}

struct Shared {
    store: SnapshotStore,
    cache: ResponseCache,
    queue: WorkQueue,
    shutdown: Arc<AtomicBool>,
    deadline_partials_per_ms: usize,
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    waker: CompletionSender,
    reactor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and blocks until the reactor has drained every
    /// in-flight connection and the work queue is empty.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Blocks until the server stops on its own (a `POST
    /// /admin/shutdown` request).
    pub fn join(mut self) {
        if let Some(reactor) = self.reactor.take() {
            reactor.join().expect("reactor thread panicked");
        }
        self.shared.queue.drain();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(reactor) = self.reactor.take() {
            reactor.join().expect("reactor thread panicked");
        }
        self.shared.queue.drain();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Builds the initial snapshot, binds the listener and starts serving.
///
/// # Errors
///
/// [`Error::Config`] for a malformed `ACTFORT_THREADS`, or an
/// [`Error::Upstream`] with [`CODE_SERVE_IO`] when the bind or reactor
/// setup fails.
pub fn start(config: ServerConfig) -> Result<ServerHandle, Error> {
    let workers = match config.threads {
        Some(n) => n.max(1),
        None => BatchAnalyzer::from_env()?.threads(),
    };
    let queue_capacity = config.queue_capacity.unwrap_or(workers * 4);
    let listener = TcpListener::bind(&config.addr).map_err(|e| Error::Upstream {
        layer: "serve",
        code: CODE_SERVE_IO,
        message: format!("binding {}: {e}", config.addr),
    })?;
    let addr = listener.local_addr().map_err(|e| Error::Upstream {
        layer: "serve",
        code: CODE_SERVE_IO,
        message: format!("resolving bound address: {e}"),
    })?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let reactor = Reactor::new(
        listener,
        ReactorConfig {
            idle_timeout: config.idle_timeout,
            stall_timeout: config.stall_timeout,
            max_pipeline: config.max_pipeline.max(1),
        },
        Arc::clone(&shutdown),
    )
    .map_err(|e| Error::Upstream {
        layer: "serve",
        code: CODE_SERVE_IO,
        message: format!("initializing reactor: {e}"),
    })?;
    let waker = reactor.waker();

    let shared = Arc::new(Shared {
        store: SnapshotStore::new(config.dataset, config.platform, config.profile),
        cache: ResponseCache::new(config.cache_capacity),
        queue: WorkQueue::new(workers, queue_capacity),
        shutdown,
        deadline_partials_per_ms: config.deadline_partials_per_ms.max(1),
    });

    let svc = Svc { shared: Arc::clone(&shared) };
    let reactor_thread = std::thread::Builder::new()
        .name("actfort-serve-reactor".to_owned())
        .spawn(move || reactor.run(svc))
        .expect("spawn reactor thread");

    Ok(ServerHandle { shared, addr, waker, reactor: Some(reactor_thread) })
}

/// One row of the route table: a method + path tail and the handler
/// that serves it. `versioned` routes answer at both spellings —
/// `/<tail>` and `/v1/<tail>` — so wire evolution has a place to land;
/// infrastructure routes (`versioned: false`) exist only at their bare
/// spelling (`/v1/healthz` is a 404, not an alias).
struct Route {
    method: &'static str,
    tail: &'static str,
    versioned: bool,
    handler: fn(&Arc<Shared>, &Request, Instant, ResponseSlot),
}

/// The complete route table — adding an endpoint is one row here, and
/// the 404/405/version split below follows from the table rather than
/// from hand-maintained path lists.
const ROUTES: [Route; 8] = [
    Route { method: "GET", tail: "healthz", versioned: false, handler: healthz },
    Route { method: "GET", tail: "metrics", versioned: false, handler: metrics },
    Route { method: "POST", tail: "forward", versioned: true, handler: forward },
    Route { method: "POST", tail: "backward", versioned: true, handler: backward },
    Route { method: "POST", tail: "score", versioned: true, handler: score },
    Route { method: "POST", tail: "whatif", versioned: true, handler: whatif },
    Route { method: "POST", tail: "admin/reload", versioned: false, handler: reload },
    Route { method: "POST", tail: "admin/shutdown", versioned: false, handler: admin_shutdown },
];

/// A request path, split at its version prefix.
enum PathVersion<'a> {
    /// No version prefix: `/forward`, `/healthz`.
    Bare(&'a str),
    /// The version this server speaks: `/v1/forward`.
    V1(&'a str),
    /// A version-shaped prefix this server does not speak (`/v2/...`).
    Unknown,
}

fn split_version(path: &str) -> PathVersion<'_> {
    if let Some(tail) = path.strip_prefix("/v1/") {
        return PathVersion::V1(tail);
    }
    // Version-shaped but not v1: "/v<digits>/...". Anything else under
    // "/v" ("/version", "/v1" with no slash) is an ordinary bare path.
    if let Some(rest) = path.strip_prefix("/v") {
        if let Some((digits, _)) = rest.split_once('/') {
            if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
                return PathVersion::Unknown;
            }
        }
    }
    PathVersion::Bare(path.strip_prefix('/').unwrap_or(path))
}

/// The application half of the server: protocol-independent routing.
/// Runs on the reactor thread; anything CPU-bound moves to the pool.
struct Svc {
    shared: Arc<Shared>,
}

impl Handler for Svc {
    fn handle(&self, request: Request, slot: ResponseSlot) {
        obs::add(obs_names::REQUESTS, 1);
        let shared = &self.shared;
        let start = Instant::now();
        let (tail, v1) = match split_version(&request.path) {
            PathVersion::Unknown => {
                return finish(
                    obs_names::OTHER_LATENCY,
                    start,
                    slot,
                    unknown_version(&request.path),
                );
            }
            PathVersion::Bare(tail) => (tail, false),
            PathVersion::V1(tail) => (tail, true),
        };
        let candidates = ROUTES.iter().filter(|r| r.tail == tail && (!v1 || r.versioned));
        let mut tail_known = false;
        for route in candidates {
            if route.method == request.method {
                return (route.handler)(shared, &request, start, slot);
            }
            tail_known = true;
        }
        let response = if tail_known {
            Response::json(
                405,
                br#"{"error":{"code":11,"kind":"query","message":"method not allowed"}}"#.to_vec(),
            )
        } else {
            not_found(&request.path)
        };
        finish(obs_names::OTHER_LATENCY, start, slot, response);
    }

    fn malformed(&self, message: &str) -> Response {
        error_response(&Error::Query(message.to_owned()))
    }
}

/// Records the endpoint's wall latency and completes the response.
fn finish(histogram: &'static str, start: Instant, slot: ResponseSlot, response: Response) {
    obs::record_ns(histogram, elapsed_ns(start));
    slot.fill(response);
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn error_response(err: &Error) -> Response {
    let (status, body) = wire::render_error(err);
    Response::json(status, body)
}

fn overloaded(depth: usize) -> Response {
    let body = format!(
        "{{\"error\":{{\"code\":{CODE_SERVE_OVERLOADED},\"kind\":\"overloaded\",\
         \"message\":\"analysis queue full ({depth} pending); retry shortly\"}}}}"
    );
    Response::json(503, body.into_bytes()).with_header("retry-after", "1")
}

fn not_found(path: &str) -> Response {
    let mut body = String::from("{\"error\":{\"code\":11,\"kind\":\"query\",\"message\":");
    actfort_core::obs::json::write_str(&mut body, &format!("no such endpoint {path}"));
    body.push_str("}}");
    Response::json(404, body.into_bytes())
}

fn unknown_version(path: &str) -> Response {
    let mut body = format!(
        "{{\"error\":{{\"code\":{CODE_SERVE_UNKNOWN_VERSION},\"kind\":\"unknown_version\",\
         \"message\":"
    );
    actfort_core::obs::json::write_str(
        &mut body,
        &format!("unsupported API version in {path}; this server speaks /v1"),
    );
    body.push_str("}}");
    Response::json(400, body.into_bytes())
}

fn healthz(shared: &Arc<Shared>, _request: &Request, start: Instant, slot: ResponseSlot) {
    let snapshot = shared.store.load();
    let body = format!(
        "{{\"status\":\"ok\",\"generation\":{},\"dataset\":\"{}\",\"services\":{}}}",
        snapshot.generation,
        snapshot.dataset.name(),
        snapshot.specs.len()
    );
    finish(obs_names::HEALTHZ_LATENCY, start, slot, Response::json(200, body.into_bytes()));
}

fn metrics(_shared: &Arc<Shared>, _request: &Request, start: Instant, slot: ResponseSlot) {
    let response = Response::json(200, obs::snapshot().to_json().into_bytes());
    finish(obs_names::METRICS_LATENCY, start, slot, response);
}

/// Moves `job` (which owns the response slot) onto the worker pool,
/// shedding with `503` + `Retry-After` when the bounded queue is full.
/// The slot travels through a shared cell so a refused submission can
/// still answer: [`WorkQueue::submit`] consumes the job either way, but
/// only a queued one ever runs.
fn submit_or_shed(
    shared: &Arc<Shared>,
    histogram: &'static str,
    start: Instant,
    slot: ResponseSlot,
    job: impl FnOnce(ResponseSlot) + Send + 'static,
) {
    let cell = Arc::new(Mutex::new(Some(slot)));
    let job_cell = Arc::clone(&cell);
    let enqueued = Instant::now();
    let submitted = shared.queue.submit(Box::new(move || {
        obs::record_ns(obs_names::QUEUE_WAIT_NS, elapsed_ns(enqueued));
        if let Some(slot) = job_cell.lock().expect("slot cell poisoned").take() {
            job(slot);
        }
    }));
    if let Err(full) = submitted {
        if let Some(slot) = cell.lock().expect("slot cell poisoned").take() {
            finish(histogram, start, slot, overloaded(full.depth));
        }
    }
}

fn forward(shared: &Arc<Shared>, request: &Request, start: Instant, slot: ResponseSlot) {
    let request = match wire::parse_forward(&request.body) {
        Ok(r) => r,
        Err(e) => return finish(obs_names::FORWARD_LATENCY, start, slot, error_response(&e)),
    };
    let snapshot = shared.store.load();
    let key = CacheKey::forward(
        snapshot.generation,
        wire::engine_name(request.common.engine),
        request.common.edge_class,
        request.memo,
        &request.seeds,
    );
    if let Some(cached) = shared.cache.get(&key) {
        let response =
            Response::json(200, cached.as_ref().clone()).with_header("x-actfort-cache", "hit");
        return finish(obs_names::FORWARD_LATENCY, start, slot, response);
    }
    let generation = snapshot.generation;
    let job_shared = Arc::clone(shared);
    submit_or_shed(shared, obs_names::FORWARD_LATENCY, start, slot, move |slot| {
        let result = (|| {
            let _span = obs::span(obs_names::FORWARD_SPAN);
            let compute_started = Instant::now();
            let result = {
                let _compute = obs::span(obs_names::COMPUTE_SPAN);
                Analysis::of(&snapshot.tdg)
                    .forward(&request.seeds)
                    .engine(request.common.engine)
                    .edge_class(request.common.edge_class)
                    .memo(request.memo)
                    .run()?
            };
            obs::record_ns(obs_names::COMPUTE_NS, elapsed_ns(compute_started));
            let render_started = Instant::now();
            let _render = obs::span(obs_names::RENDER_SPAN);
            let rendered = wire::render_forward(generation, request.common.engine, &result);
            obs::record_ns(obs_names::RENDER_NS, elapsed_ns(render_started));
            Ok::<_, Error>(rendered)
        })();
        let response = match result {
            Err(e) => error_response(&e),
            Ok(rendered) => {
                // Serve the cache's canonical bytes so a racing miss of
                // the same query returns the identical body.
                let canonical = job_shared.cache.insert(key, Arc::new(rendered));
                Response::json(200, canonical.as_ref().clone())
                    .with_header("x-actfort-cache", "miss")
            }
        };
        finish(obs_names::FORWARD_LATENCY, start, slot, response);
    });
}

fn backward(shared: &Arc<Shared>, request: &Request, start: Instant, slot: ResponseSlot) {
    let request = match wire::parse_backward(&request.body) {
        Ok(r) => r,
        Err(e) => return finish(obs_names::BACKWARD_LATENCY, start, slot, error_response(&e)),
    };
    let snapshot = shared.store.load();
    // The cache key carries the *effective* budget, so an explicit
    // budget and the equivalent deadline-derived one share an entry —
    // and repeated identical backward queries actually hit (the old
    // handler skipped the cache entirely; see `cache.rs`).
    let budget = request.common.effective_budget(shared.deadline_partials_per_ms);
    let key = CacheKey::backward(
        snapshot.generation,
        wire::engine_name(request.common.engine),
        request.common.edge_class,
        &request.target,
        request.max_chains,
        budget,
    );
    if let Some(cached) = shared.cache.get(&key) {
        let response =
            Response::json(200, cached.as_ref().clone()).with_header("x-actfort-cache", "hit");
        return finish(obs_names::BACKWARD_LATENCY, start, slot, response);
    }
    let generation = snapshot.generation;
    let job_shared = Arc::clone(shared);
    submit_or_shed(shared, obs_names::BACKWARD_LATENCY, start, slot, move |slot| {
        let result = (|| {
            let _span = obs::span(obs_names::BACKWARD_SPAN);
            let compute_started = Instant::now();
            let (chains, exhaustive) = {
                let _compute = obs::span(obs_names::COMPUTE_SPAN);
                let mut query = Analysis::of(&snapshot.tdg)
                    .backward(&request.target)
                    .max_chains(request.max_chains)
                    .engine(request.common.engine)
                    .edge_class(request.common.edge_class);
                if request.common.engine != Engine::Naive {
                    // The snapshot's prewarmed engine amortizes graph
                    // flattening and the fringe-support memo.
                    query = query.via(&snapshot.backward);
                }
                if let Some(budget) = budget {
                    query = query.budget(budget);
                }
                query.run_bounded()?
            };
            obs::record_ns(obs_names::COMPUTE_NS, elapsed_ns(compute_started));
            // Attribute the cut to the deadline only when the deadline
            // supplied the budget (an explicit budget takes precedence).
            if !exhaustive
                && request.common.budget.is_none()
                && request.common.deadline_ms.is_some()
            {
                obs::add(obs_names::DEADLINE_EXPIRED, 1);
            }
            let render_started = Instant::now();
            let _render = obs::span(obs_names::RENDER_SPAN);
            let rendered = wire::render_backward(
                generation,
                request.common.engine,
                &request.target,
                &chains,
                exhaustive,
            );
            obs::record_ns(obs_names::RENDER_NS, elapsed_ns(render_started));
            Ok::<_, Error>(rendered)
        })();
        let response = match result {
            Err(e) => error_response(&e),
            Ok(rendered) => {
                let canonical = job_shared.cache.insert(key, Arc::new(rendered));
                Response::json(200, canonical.as_ref().clone())
                    .with_header("x-actfort-cache", "miss")
            }
        };
        finish(obs_names::BACKWARD_LATENCY, start, slot, response);
    });
}

fn score(shared: &Arc<Shared>, request: &Request, start: Instant, slot: ResponseSlot) {
    let request = match wire::parse_score(&request.body) {
        Ok(r) => r,
        Err(e) => return finish(obs_names::SCORE_LATENCY, start, slot, error_response(&e)),
    };
    let snapshot = shared.store.load();
    let key = CacheKey::score(
        snapshot.generation,
        wire::engine_name(request.common.engine),
        request.common.edge_class,
        &request.profiles,
    );
    if let Some(cached) = shared.cache.get(&key) {
        let response =
            Response::json(200, cached.as_ref().clone()).with_header("x-actfort-cache", "hit");
        return finish(obs_names::SCORE_LATENCY, start, slot, response);
    }
    let generation = snapshot.generation;
    let job_shared = Arc::clone(shared);
    submit_or_shed(shared, obs_names::SCORE_LATENCY, start, slot, move |slot| {
        let result = (|| {
            let _span = obs::span(obs_names::SCORE_SPAN);
            let compute_started = Instant::now();
            let scores = {
                let _compute = obs::span(obs_names::COMPUTE_SPAN);
                // The graph source borrows the snapshot's prepared
                // substrate — one compilation per generation, shared by
                // every batch and every user in it.
                Analysis::of(&snapshot.tdg)
                    .score_users(&request.profiles)
                    .engine(request.common.engine)
                    .edge_class(request.common.edge_class)
                    .run()?
            };
            obs::record_ns(obs_names::COMPUTE_NS, elapsed_ns(compute_started));
            let render_started = Instant::now();
            let _render = obs::span(obs_names::RENDER_SPAN);
            let rendered = wire::render_score(generation, request.common.engine, &scores);
            obs::record_ns(obs_names::RENDER_NS, elapsed_ns(render_started));
            Ok::<_, Error>(rendered)
        })();
        let response = match result {
            Err(e) => error_response(&e),
            Ok(rendered) => {
                let canonical = job_shared.cache.insert(key, Arc::new(rendered));
                Response::json(200, canonical.as_ref().clone())
                    .with_header("x-actfort-cache", "miss")
            }
        };
        finish(obs_names::SCORE_LATENCY, start, slot, response);
    });
}

fn whatif(shared: &Arc<Shared>, request: &Request, start: Instant, slot: ResponseSlot) {
    let request = match wire::parse_whatif(&request.body) {
        Ok(r) => r,
        Err(e) => return finish(obs_names::WHATIF_LATENCY, start, slot, error_response(&e)),
    };
    let snapshot = shared.store.load();
    let key = CacheKey::whatif(
        snapshot.generation,
        request.common.edge_class,
        &request.countermeasures,
        request.sweep,
        request.severed_chains,
    );
    if let Some(cached) = shared.cache.get(&key) {
        let response =
            Response::json(200, cached.as_ref().clone()).with_header("x-actfort-cache", "hit");
        return finish(obs_names::WHATIF_LATENCY, start, slot, response);
    }
    let generation = snapshot.generation;
    let job_shared = Arc::clone(shared);
    submit_or_shed(shared, obs_names::WHATIF_LATENCY, start, slot, move |slot| {
        let result = (|| {
            let _span = obs::span(obs_names::WHATIF_SPAN);
            let compute_started = Instant::now();
            let reports = {
                let _compute = obs::span(obs_names::COMPUTE_SPAN);
                // Both modes route through the snapshot's shared patcher
                // (compiled-patch cache) and prewarmed backward engine:
                // nothing here ever recompiles the prepared substrate.
                let evaluate = |set: &[actfort_core::Countermeasure]| {
                    Analysis::of(&snapshot.tdg)
                        .whatif(set)
                        .patcher(&snapshot.patcher)
                        .via(&snapshot.backward)
                        .edge_class(request.common.edge_class)
                        .max_severed(request.severed_chains)
                        .run()
                };
                if request.sweep {
                    let all = actfort_core::Countermeasure::all();
                    let mut reports = Vec::with_capacity(1 << all.len());
                    for mask in 0u32..(1 << all.len()) {
                        let set: Vec<actfort_core::Countermeasure> = all
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| mask & (1 << i) != 0)
                            .map(|(_, cm)| *cm)
                            .collect();
                        reports.push(evaluate(&set)?);
                    }
                    reports
                } else {
                    vec![evaluate(&request.countermeasures)?]
                }
            };
            obs::record_ns(obs_names::COMPUTE_NS, elapsed_ns(compute_started));
            let render_started = Instant::now();
            let _render = obs::span(obs_names::RENDER_SPAN);
            let rendered = wire::render_whatif(generation, &reports);
            obs::record_ns(obs_names::RENDER_NS, elapsed_ns(render_started));
            Ok::<_, Error>(rendered)
        })();
        let response = match result {
            Err(e) => error_response(&e),
            Ok(rendered) => {
                let canonical = job_shared.cache.insert(key, Arc::new(rendered));
                Response::json(200, canonical.as_ref().clone())
                    .with_header("x-actfort-cache", "miss")
            }
        };
        finish(obs_names::WHATIF_LATENCY, start, slot, response);
    });
}

fn reload(shared: &Arc<Shared>, request: &Request, start: Instant, slot: ResponseSlot) {
    let response = (|| {
        let request = match wire::parse_reload(&request.body) {
            Ok(r) => r,
            Err(e) => return error_response(&e),
        };
        let dataset = match Dataset::parse(&request.dataset) {
            Ok(d) => d,
            Err(e) => return error_response(&e),
        };
        let snapshot = shared.store.reload(dataset);
        obs::add(obs_names::RELOADS, 1);
        let response_body = format!(
            "{{\"generation\":{},\"dataset\":\"{}\",\"services\":{}}}",
            snapshot.generation,
            snapshot.dataset.name(),
            snapshot.specs.len()
        );
        Response::json(200, response_body.into_bytes())
    })();
    finish(obs_names::ADMIN_LATENCY, start, slot, response);
}

fn admin_shutdown(shared: &Arc<Shared>, _request: &Request, start: Instant, slot: ResponseSlot) {
    // The reactor re-checks the flag after completions apply, so the
    // drain starts in the same loop iteration that writes this reply.
    shared.shutdown.store(true, Ordering::SeqCst);
    let response = Response::json(200, br#"{"status":"draining"}"#.to_vec());
    finish(obs_names::ADMIN_LATENCY, start, slot, response);
}
