//! The concurrent query server: accept loop, connection handling,
//! routing, and the lifecycle (start → serve → drain → join).
//!
//! Threading model: one accept thread polls a non-blocking listener and
//! spawns a thread per connection; connection threads only do protocol
//! work and block on a result channel while the bounded [`WorkQueue`]
//! runs the CPU-bound analysis on its fixed worker pool. Responses are
//! built from exactly one [`Snapshot`] loaded at request start, so a
//! concurrent hot-swap can never tear a response.

use crate::cache::{CacheKey, ResponseCache};
use crate::http::{self, ReadOutcome, Request, Response};
use crate::obs_names;
use crate::queue::WorkQueue;
use crate::snapshot::{Dataset, Snapshot, SnapshotStore};
use crate::wire;
use actfort_core::engine::BatchAnalyzer;
use actfort_core::profile::AttackerProfile;
use actfort_core::query::{Analysis, Engine};
use actfort_core::{obs, Error};
use actfort_ecosystem::policy::Platform;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Wire discriminant for server-layer faults (bind failures, …); the
/// 24xx block follows the per-crate ranges documented in
/// `actfort_core::error`.
pub const CODE_SERVE_IO: u16 = 2400;
/// Wire discriminant for queue-full backpressure refusals.
pub const CODE_SERVE_OVERLOADED: u16 = 2401;

/// Server configuration. `Default` serves the curated dataset on an
/// ephemeral localhost port with environment-probed worker sizing.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Initial dataset.
    pub dataset: Dataset,
    /// Platform the dependency graph is classified under.
    pub platform: Platform,
    /// Attacker profile the graph is classified against.
    pub profile: AttackerProfile,
    /// Analysis worker count; `None` follows
    /// [`BatchAnalyzer::from_env`] (the `ACTFORT_THREADS` contract).
    pub threads: Option<usize>,
    /// Bounded queue capacity; `None` means four jobs per worker.
    pub queue_capacity: Option<usize>,
    /// Forward-response cache capacity (rendered bodies).
    pub cache_capacity: usize,
    /// Keep-alive read timeout; idle connections poll the shutdown flag
    /// at this cadence.
    pub read_timeout: Duration,
    /// Deadline → partial-budget calibration
    /// ([`wire::DEADLINE_PARTIALS_PER_MS`] by default).
    pub deadline_partials_per_ms: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            dataset: Dataset::Curated,
            platform: Platform::Web,
            profile: AttackerProfile::paper_default(),
            threads: None,
            queue_capacity: None,
            cache_capacity: 1024,
            read_timeout: Duration::from_millis(25),
            deadline_partials_per_ms: wire::DEADLINE_PARTIALS_PER_MS,
        }
    }
}

struct Shared {
    store: SnapshotStore,
    cache: ResponseCache,
    queue: WorkQueue,
    shutdown: AtomicBool,
    read_timeout: Duration,
    deadline_partials_per_ms: usize,
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and blocks until the accept loop, every
    /// connection and the work queue have drained.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Blocks until the server stops on its own (a `POST
    /// /admin/shutdown` request).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            accept.join().expect("accept thread panicked");
        }
        self.shared.queue.drain();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            accept.join().expect("accept thread panicked");
        }
        self.shared.queue.drain();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Builds the initial snapshot, binds the listener and starts serving.
///
/// # Errors
///
/// [`Error::Config`] for a malformed `ACTFORT_THREADS`, or an
/// [`Error::Upstream`] with [`CODE_SERVE_IO`] when the bind fails.
pub fn start(config: ServerConfig) -> Result<ServerHandle, Error> {
    let workers = match config.threads {
        Some(n) => n.max(1),
        None => BatchAnalyzer::from_env()?.threads(),
    };
    let queue_capacity = config.queue_capacity.unwrap_or(workers * 4);
    let listener = TcpListener::bind(&config.addr).map_err(|e| Error::Upstream {
        layer: "serve",
        code: CODE_SERVE_IO,
        message: format!("binding {}: {e}", config.addr),
    })?;
    let addr = listener.local_addr().map_err(|e| Error::Upstream {
        layer: "serve",
        code: CODE_SERVE_IO,
        message: format!("resolving bound address: {e}"),
    })?;
    listener.set_nonblocking(true).map_err(|e| Error::Upstream {
        layer: "serve",
        code: CODE_SERVE_IO,
        message: format!("setting nonblocking accept: {e}"),
    })?;

    let shared = Arc::new(Shared {
        store: SnapshotStore::new(config.dataset, config.platform, config.profile),
        cache: ResponseCache::new(config.cache_capacity),
        queue: WorkQueue::new(workers, queue_capacity),
        shutdown: AtomicBool::new(false),
        read_timeout: config.read_timeout,
        deadline_partials_per_ms: config.deadline_partials_per_ms.max(1),
    });

    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new()
        .name("actfort-serve-accept".to_owned())
        .spawn(move || accept_loop(&listener, &accept_shared))
        .expect("spawn accept thread");

    Ok(ServerHandle { shared, addr, accept: Some(accept) })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("actfort-serve-conn".to_owned())
                    .spawn(move || connection_loop(stream, &conn_shared))
                    .expect("spawn connection thread");
                connections.push(handle);
                connections.retain(|c| !c.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    for conn in connections {
        let _ = conn.join();
    }
}

fn connection_loop(mut stream: TcpStream, shared: &Arc<Shared>) {
    if stream.set_read_timeout(Some(shared.read_timeout)).is_err() {
        return;
    }
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match http::read_request(&mut stream) {
            Ok(ReadOutcome::IdleTimeout) => continue,
            Ok(ReadOutcome::Closed) | Err(_) => return,
            Ok(ReadOutcome::Malformed(msg)) => {
                let (_, body) = wire::render_error(&Error::Query(msg));
                let _ = http::write_response(&mut stream, &Response::json(400, body), true);
                return;
            }
            Ok(ReadOutcome::Complete(request)) => {
                obs::add(obs_names::REQUESTS, 1);
                let response = route(shared, &request);
                let close = request.wants_close() || shared.shutdown.load(Ordering::SeqCst);
                if http::write_response(&mut stream, &response, close).is_err() || close {
                    return;
                }
            }
        }
    }
}

/// Every route the server serves (used to split 404 from 405).
const KNOWN_PATHS: [&str; 6] =
    ["/healthz", "/metrics", "/v1/forward", "/v1/backward", "/admin/reload", "/admin/shutdown"];

fn route(shared: &Arc<Shared>, request: &Request) -> Response {
    let start = Instant::now();
    let (histogram, response) = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (obs_names::HEALTHZ_LATENCY, healthz(shared)),
        ("GET", "/metrics") => (obs_names::METRICS_LATENCY, metrics()),
        ("POST", "/v1/forward") => (obs_names::FORWARD_LATENCY, forward(shared, &request.body)),
        ("POST", "/v1/backward") => (obs_names::BACKWARD_LATENCY, backward(shared, &request.body)),
        ("POST", "/admin/reload") => (obs_names::ADMIN_LATENCY, reload(shared, &request.body)),
        ("POST", "/admin/shutdown") => (obs_names::ADMIN_LATENCY, admin_shutdown(shared)),
        (_, path) if KNOWN_PATHS.contains(&path) => (
            obs_names::OTHER_LATENCY,
            Response::json(
                405,
                br#"{"error":{"code":11,"kind":"query","message":"method not allowed"}}"#.to_vec(),
            ),
        ),
        _ => (obs_names::OTHER_LATENCY, not_found(&request.path)),
    };
    obs::record_ns(histogram, elapsed_ns(start));
    response
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn error_response(err: &Error) -> Response {
    let (status, body) = wire::render_error(err);
    Response::json(status, body)
}

fn overloaded(depth: usize) -> Response {
    let body = format!(
        "{{\"error\":{{\"code\":{CODE_SERVE_OVERLOADED},\"kind\":\"overloaded\",\
         \"message\":\"analysis queue full ({depth} pending); retry shortly\"}}}}"
    );
    Response::json(503, body.into_bytes()).with_header("retry-after", "1")
}

fn not_found(path: &str) -> Response {
    let mut body = String::from("{\"error\":{\"code\":11,\"kind\":\"query\",\"message\":");
    actfort_core::obs::json::write_str(&mut body, &format!("no such endpoint {path}"));
    body.push_str("}}");
    Response::json(404, body.into_bytes())
}

fn healthz(shared: &Arc<Shared>) -> Response {
    let snapshot = shared.store.load();
    let body = format!(
        "{{\"status\":\"ok\",\"generation\":{},\"dataset\":\"{}\",\"services\":{}}}",
        snapshot.generation,
        snapshot.dataset.name(),
        snapshot.specs.len()
    );
    Response::json(200, body.into_bytes())
}

fn metrics() -> Response {
    Response::json(200, obs::snapshot().to_json().into_bytes())
}

/// Runs `job` on the worker pool and blocks for its rendered body.
/// The enqueue → job-start gap is recorded as
/// [`obs_names::QUEUE_WAIT_NS`], so wall latency decomposes into
/// queue-wait + compute + render (the handlers record the other two).
fn run_on_pool(
    shared: &Arc<Shared>,
    job: impl FnOnce(&Snapshot) -> Result<Vec<u8>, Error> + Send + 'static,
    snapshot: Arc<Snapshot>,
) -> Result<Result<Vec<u8>, Error>, Response> {
    let (tx, rx) = mpsc::channel();
    let enqueued = Instant::now();
    let submitted = shared.queue.submit(Box::new(move || {
        obs::record_ns(obs_names::QUEUE_WAIT_NS, elapsed_ns(enqueued));
        let _ = tx.send(job(&snapshot));
    }));
    if let Err(full) = submitted {
        return Err(overloaded(full.depth));
    }
    rx.recv().map_err(|_| {
        error_response(&Error::Upstream {
            layer: "serve",
            code: CODE_SERVE_IO,
            message: "analysis worker dropped the result channel".into(),
        })
    })
}

fn forward(shared: &Arc<Shared>, body: &[u8]) -> Response {
    let request = match wire::parse_forward(body) {
        Ok(r) => r,
        Err(e) => return error_response(&e),
    };
    let snapshot = shared.store.load();
    let key = CacheKey::new(
        snapshot.generation,
        wire::engine_name(request.engine),
        request.memo,
        &request.seeds,
    );
    if let Some(cached) = shared.cache.get(&key) {
        return Response::json(200, cached.as_ref().clone()).with_header("x-actfort-cache", "hit");
    }
    let generation = snapshot.generation;
    let outcome = run_on_pool(
        shared,
        move |snap| {
            let _span = obs::span(obs_names::FORWARD_SPAN);
            let compute_started = Instant::now();
            let result = {
                let _compute = obs::span(obs_names::COMPUTE_SPAN);
                Analysis::of(&snap.tdg)
                    .forward(&request.seeds)
                    .engine(request.engine)
                    .memo(request.memo)
                    .run()?
            };
            obs::record_ns(obs_names::COMPUTE_NS, elapsed_ns(compute_started));
            let render_started = Instant::now();
            let _render = obs::span(obs_names::RENDER_SPAN);
            let rendered = wire::render_forward(generation, request.engine, &result);
            obs::record_ns(obs_names::RENDER_NS, elapsed_ns(render_started));
            Ok(rendered)
        },
        Arc::clone(&snapshot),
    );
    match outcome {
        Err(shed) => shed,
        Ok(Err(e)) => error_response(&e),
        Ok(Ok(rendered)) => {
            // Serve the cache's canonical bytes so a racing miss of the
            // same query returns the identical body.
            let canonical = shared.cache.insert(key, Arc::new(rendered));
            Response::json(200, canonical.as_ref().clone()).with_header("x-actfort-cache", "miss")
        }
    }
}

fn backward(shared: &Arc<Shared>, body: &[u8]) -> Response {
    let request = match wire::parse_backward(body) {
        Ok(r) => r,
        Err(e) => return error_response(&e),
    };
    let snapshot = shared.store.load();
    let generation = snapshot.generation;
    let partials_per_ms = shared.deadline_partials_per_ms;
    let outcome = run_on_pool(
        shared,
        move |snap| {
            let _span = obs::span(obs_names::BACKWARD_SPAN);
            let compute_started = Instant::now();
            let (chains, exhaustive) = {
                let _compute = obs::span(obs_names::COMPUTE_SPAN);
                let mut query = Analysis::of(&snap.tdg)
                    .backward(&request.target)
                    .max_chains(request.max_chains)
                    .engine(request.engine);
                if request.engine != Engine::Naive {
                    // The snapshot's prewarmed engine amortizes graph
                    // flattening and the fringe-support memo.
                    query = query.via(&snap.backward);
                }
                if let Some(budget) = request.effective_budget(partials_per_ms) {
                    query = query.budget(budget);
                }
                query.run_bounded()?
            };
            obs::record_ns(obs_names::COMPUTE_NS, elapsed_ns(compute_started));
            // Attribute the cut to the deadline only when the deadline
            // supplied the budget (an explicit budget takes precedence).
            if !exhaustive && request.budget.is_none() && request.deadline_ms.is_some() {
                obs::add(obs_names::DEADLINE_EXPIRED, 1);
            }
            let render_started = Instant::now();
            let _render = obs::span(obs_names::RENDER_SPAN);
            let rendered = wire::render_backward(
                generation,
                request.engine,
                &request.target,
                &chains,
                exhaustive,
            );
            obs::record_ns(obs_names::RENDER_NS, elapsed_ns(render_started));
            Ok(rendered)
        },
        snapshot,
    );
    match outcome {
        Err(shed) => shed,
        Ok(Err(e)) => error_response(&e),
        Ok(Ok(rendered)) => Response::json(200, rendered),
    }
}

fn reload(shared: &Arc<Shared>, body: &[u8]) -> Response {
    let request = match wire::parse_reload(body) {
        Ok(r) => r,
        Err(e) => return error_response(&e),
    };
    let dataset = match Dataset::parse(&request.dataset) {
        Ok(d) => d,
        Err(e) => return error_response(&e),
    };
    let snapshot = shared.store.reload(dataset);
    obs::add(obs_names::RELOADS, 1);
    let response_body = format!(
        "{{\"generation\":{},\"dataset\":\"{}\",\"services\":{}}}",
        snapshot.generation,
        snapshot.dataset.name(),
        snapshot.specs.len()
    );
    Response::json(200, response_body.into_bytes())
}

fn admin_shutdown(shared: &Arc<Shared>) -> Response {
    shared.shutdown.store(true, Ordering::SeqCst);
    Response::json(200, br#"{"status":"draining"}"#.to_vec())
}
