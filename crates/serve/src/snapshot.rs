//! Immutable ecosystem snapshots with atomic hot-swap.
//!
//! A [`Snapshot`] freezes everything a query needs — the service specs,
//! the built [`Tdg`] and a prewarmed [`BackwardEngine`] — under one
//! monotonically increasing generation number. Handlers grab an
//! `Arc<Snapshot>` once per request and use only that, so a concurrent
//! reload can never produce a torn response: every byte of a response is
//! derived from a single generation, which the response body names.

use actfort_core::backward::BackwardEngine;
use actfort_core::profile::AttackerProfile;
use actfort_core::tdg::Tdg;
use actfort_core::{Error, Patcher};
use actfort_ecosystem::dataset::curated_services;
use actfort_ecosystem::policy::Platform;
use actfort_ecosystem::spec::ServiceSpec;
use actfort_ecosystem::synth::paper_population;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Which population a snapshot is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// The 44 curated real-service profiles.
    Curated,
    /// The 201-service synthetic population calibrated to the paper's
    /// measurement study, generated from the given seed.
    Paper(u64),
}

impl Dataset {
    /// Parses `"curated"` or `"paper:<seed>"` (bare `"paper"` defaults
    /// to seed 2021, the experiment standard).
    ///
    /// # Errors
    ///
    /// [`Error::Query`] on any other spelling.
    pub fn parse(text: &str) -> Result<Self, Error> {
        match text {
            "curated" => Ok(Dataset::Curated),
            "paper" => Ok(Dataset::Paper(2021)),
            other => match other.strip_prefix("paper:").map(str::parse) {
                Some(Ok(seed)) => Ok(Dataset::Paper(seed)),
                _ => Err(Error::Query(format!(
                    "unknown dataset {text:?} (expected \"curated\" or \"paper:<seed>\")"
                ))),
            },
        }
    }

    /// Materializes the population.
    pub fn specs(&self) -> Vec<ServiceSpec> {
        match *self {
            Dataset::Curated => curated_services(),
            Dataset::Paper(seed) => paper_population(seed),
        }
    }

    /// Canonical spelling, inverse of [`Dataset::parse`].
    pub fn name(&self) -> String {
        match *self {
            Dataset::Curated => "curated".to_owned(),
            Dataset::Paper(seed) => format!("paper:{seed}"),
        }
    }
}

/// One immutable generation of the served ecosystem.
pub struct Snapshot {
    /// Monotonic generation number; bumped on every successful reload.
    pub generation: u64,
    /// The dataset this generation was built from.
    pub dataset: Dataset,
    /// The platform the graph was classified under.
    pub platform: Platform,
    /// The attacker profile the graph was classified against.
    pub profile: AttackerProfile,
    /// The service population.
    pub specs: Vec<ServiceSpec>,
    /// The dependency graph, built once per generation.
    pub tdg: Tdg,
    /// A prewarmed backward engine; queries route through it via the
    /// facade's `via()` so graph flattening and the fringe-support memo
    /// amortize across requests.
    pub backward: BackwardEngine,
    /// A countermeasure patcher over the graph's prepared substrate:
    /// `/whatif` queries route through it so blast-radius planning and
    /// the compiled-patch cache (every subset) amortize across
    /// requests — no request ever recompiles the substrate.
    pub patcher: Patcher,
}

impl Snapshot {
    /// Builds generation `generation` from `dataset` under `platform`
    /// and `profile`.
    pub fn build(
        dataset: Dataset,
        platform: Platform,
        profile: AttackerProfile,
        generation: u64,
    ) -> Self {
        let specs = dataset.specs();
        let tdg = Tdg::build(&specs, platform, profile);
        let backward = BackwardEngine::new(&tdg);
        let patcher = Patcher::new(Arc::clone(tdg.prepared()));
        Self { generation, dataset, platform, profile, specs, tdg, backward, patcher }
    }
}

/// The hot-swappable snapshot cell.
///
/// Readers pay one `RwLock` read acquisition and an `Arc` clone per
/// request; a reload builds the replacement *outside* the lock and
/// swaps the pointer while holding the write lock for only that swap.
pub struct SnapshotStore {
    current: RwLock<Arc<Snapshot>>,
    next_generation: AtomicU64,
}

impl SnapshotStore {
    /// A store serving `initial` as generation 1.
    pub fn new(
        dataset: Dataset,
        platform: Platform,
        profile: AttackerProfile,
    ) -> Self {
        let snapshot = Snapshot::build(dataset, platform, profile, 1);
        Self {
            current: RwLock::new(Arc::new(snapshot)),
            next_generation: AtomicU64::new(2),
        }
    }

    /// The snapshot to serve this request from.
    pub fn load(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().expect("snapshot lock poisoned"))
    }

    /// Builds a new generation from `dataset` (platform and profile are
    /// kept) and atomically publishes it. Returns the snapshot now being
    /// served. In-flight requests keep their old `Arc` and finish on
    /// the generation they started with.
    ///
    /// Generations are claimed *before* the (slow, lock-free) build, so
    /// two concurrent reloads can finish out of claim order. The publish
    /// is therefore conditional: a build only replaces the current
    /// snapshot if its generation is strictly newer, keeping the served
    /// generation monotonic — a slow build can never clobber a faster,
    /// newer one (the documented invariant; regression-pinned below).
    /// The loser returns the newer snapshot that beat it.
    pub fn reload(&self, dataset: Dataset) -> Arc<Snapshot> {
        let (platform, profile) = {
            let cur = self.current.read().expect("snapshot lock poisoned");
            (cur.platform, cur.profile)
        };
        let generation = self.next_generation.fetch_add(1, Ordering::Relaxed);
        let snapshot = Arc::new(Snapshot::build(dataset, platform, profile, generation));
        let mut cur = self.current.write().expect("snapshot lock poisoned");
        if snapshot.generation > cur.generation {
            *cur = Arc::clone(&snapshot);
        }
        Arc::clone(&cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_parses_and_round_trips() {
        assert_eq!(Dataset::parse("curated").unwrap(), Dataset::Curated);
        assert_eq!(Dataset::parse("paper").unwrap(), Dataset::Paper(2021));
        assert_eq!(Dataset::parse("paper:7").unwrap(), Dataset::Paper(7));
        assert!(Dataset::parse("nope").unwrap_err().is_client_error());
        for d in [Dataset::Curated, Dataset::Paper(7)] {
            assert_eq!(Dataset::parse(&d.name()).unwrap(), d);
        }
    }

    #[test]
    fn reload_bumps_generation_and_keeps_old_arcs_alive() {
        let store = SnapshotStore::new(
            Dataset::Curated,
            Platform::Web,
            AttackerProfile::paper_default(),
        );
        let before = store.load();
        assert_eq!(before.generation, 1);
        let after = store.reload(Dataset::Curated);
        assert_eq!(after.generation, 2);
        assert_eq!(store.load().generation, 2);
        // The pre-reload handle still serves its own generation.
        assert_eq!(before.generation, 1);
        assert_eq!(before.specs.len(), after.specs.len());
    }

    #[test]
    fn concurrent_reloads_never_regress_the_generation() {
        // Two racing reloads: the first claims generation 2 but builds
        // the slow 201-service paper population; the second claims 3 and
        // publishes its fast curated build while 2 is still compiling.
        // The old unconditional publish let the late generation-2 build
        // clobber 3 (served generation went 3 → 2); the conditional
        // publish keeps 3 no matter which build finishes first.
        let store = Arc::new(SnapshotStore::new(
            Dataset::Curated,
            Platform::Web,
            AttackerProfile::paper_default(),
        ));
        let slow = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || store.reload(Dataset::Paper(2021)).generation)
        };
        // Give the slow reload time to claim its generation and enter
        // the build before the fast one claims the next number.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let fast = store.reload(Dataset::Curated);
        let slow_returned = slow.join().expect("slow reload panicked");
        // Whichever interleaving the scheduler picked, the served
        // generation is the maximum ever claimed: under the old
        // unconditional publish the late slow build clobbered it back to
        // its stale claim. Both reloads were handed a snapshot no older
        // than their own claim's winner.
        assert_eq!(store.load().generation, 3);
        assert!(fast.generation <= 3);
        assert!(slow_returned == 2 || slow_returned == 3, "got generation {slow_returned}");
        // A later reload keeps counting upward.
        assert_eq!(store.reload(Dataset::Curated).generation, 4);
    }
}
