//! The `actfort_serve` binary: stands up the query service and blocks
//! until a `POST /admin/shutdown` drains it.
//!
//! ```sh
//! cargo run -p actfort-serve --bin actfort_serve -- \
//!     --addr 127.0.0.1:8080 --dataset paper:2021 --platform web --threads 4
//! ```

use actfort_serve::{Dataset, ServerConfig};
use actfort_ecosystem::policy::Platform;

fn usage() -> ! {
    eprintln!(
        "usage: actfort_serve [--addr HOST:PORT] [--dataset curated|paper:<seed>]\n\
         \x20                    [--platform web|mobile] [--threads N] [--queue N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => config.addr = value(),
            "--dataset" => {
                config.dataset = Dataset::parse(&value()).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--platform" => {
                config.platform = match value().as_str() {
                    "web" => Platform::Web,
                    "mobile" => Platform::MobileApp,
                    other => {
                        eprintln!("unknown platform {other:?} (expected web|mobile)");
                        std::process::exit(2);
                    }
                };
            }
            "--threads" => config.threads = Some(parse_count(&value())),
            "--queue" => config.queue_capacity = Some(parse_count(&value())),
            _ => usage(),
        }
    }

    // The service is observable by default: /metrics serves the live
    // obs snapshot.
    actfort_core::obs::set_enabled(true);

    let handle = actfort_serve::start(config).unwrap_or_else(|e| {
        eprintln!("actfort_serve: {e}");
        std::process::exit(1);
    });
    println!("actfort_serve listening on http://{}", handle.addr());
    println!("POST /admin/shutdown to drain and exit");
    handle.join();
    println!("actfort_serve: drained");
}

fn parse_count(raw: &str) -> usize {
    match raw.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!("expected a positive integer, got {raw:?}");
            std::process::exit(2);
        }
    }
}
