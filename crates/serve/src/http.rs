//! Minimal HTTP/1.1 framing over blocking TCP streams.
//!
//! The workspace is offline, so the server carries its own reader and
//! writer for the small protocol subset it speaks: request line +
//! headers + optional `Content-Length` body, `keep-alive` connection
//! reuse, and fixed-length responses. No chunked encoding, no TLS, no
//! pipelining — one request is fully answered before the next is read.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Upper bound on the request head (request line + headers), bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body, bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// How long a peer may stall *inside* a request before the read gives
/// up. The per-read socket timeout is short (it doubles as the
/// shutdown-polling cadence), so a request that straddles two TCP
/// segments on a busy host must tolerate several of them.
pub const MID_REQUEST_STALL: Duration = Duration::from_secs(5);

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path only; no query parsing).
    pub path: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes (empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why reading a request stopped.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Complete(Request),
    /// The peer closed the connection before sending anything.
    Closed,
    /// The read timed out with no bytes consumed — the caller may poll
    /// its shutdown flag and try again on the same stream.
    IdleTimeout,
    /// The peer sent something unparseable; the connection must close
    /// after an error response.
    Malformed(String),
}

/// Reads one request from `stream`.
///
/// A read timeout before *any* byte arrives surfaces as
/// [`ReadOutcome::IdleTimeout`] so keep-alive connections can poll for
/// shutdown; once inside a request, timeouts are retried until
/// [`MID_REQUEST_STALL`] elapses without progress, and only then is the
/// request malformed (the peer genuinely stalled inside a message).
///
/// # Errors
///
/// Propagates genuine I/O errors (reset, broken pipe, …).
pub fn read_request(stream: &mut TcpStream) -> io::Result<ReadOutcome> {
    let mut head = Vec::new();
    let mut buf = [0u8; 4096];
    let mut stall_started: Option<Instant> = None;
    let head_end = loop {
        if let Some(pos) = find_head_end(&head) {
            break pos;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Ok(ReadOutcome::Malformed("request head too large".into()));
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                return Ok(if head.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Malformed("connection closed mid-request".into())
                });
            }
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                stall_started = None;
            }
            Err(e) if is_timeout(&e) => {
                if head.is_empty() {
                    return Ok(ReadOutcome::IdleTimeout);
                }
                if stalled_too_long(&mut stall_started) {
                    return Ok(ReadOutcome::Malformed("timed out mid-request".into()));
                }
            }
            Err(e) => return Err(e),
        }
    };

    let overflow = head.split_off(head_end + 4);
    let head_text = match std::str::from_utf8(&head[..head_end]) {
        Ok(t) => t,
        Err(_) => return Ok(ReadOutcome::Malformed("request head is not UTF-8".into())),
    };
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Ok(ReadOutcome::Malformed(format!("bad request line {request_line:?}")));
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(ReadOutcome::Malformed(format!("unsupported version {version:?}")));
    }
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Ok(ReadOutcome::Malformed(format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose();
    let content_length = match content_length {
        Ok(len) => len.unwrap_or(0),
        Err(_) => return Ok(ReadOutcome::Malformed("bad Content-Length".into())),
    };
    if content_length > MAX_BODY_BYTES {
        return Ok(ReadOutcome::Malformed("request body too large".into()));
    }

    let mut body = overflow;
    let mut stall_started: Option<Instant> = None;
    while body.len() < content_length {
        match stream.read(&mut buf) {
            Ok(0) => return Ok(ReadOutcome::Malformed("connection closed mid-body".into())),
            Ok(n) => {
                body.extend_from_slice(&buf[..n]);
                stall_started = None;
            }
            Err(e) if is_timeout(&e) => {
                if stalled_too_long(&mut stall_started) {
                    return Ok(ReadOutcome::Malformed("timed out mid-body".into()));
                }
            }
            Err(e) => return Err(e),
        }
    }
    body.truncate(content_length);

    Ok(ReadOutcome::Complete(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        headers,
        body,
    }))
}

fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Tracks the start of a mid-request stall and reports whether it has
/// exceeded [`MID_REQUEST_STALL`]. The caller resets the tracker to
/// `None` whenever bytes arrive.
fn stalled_too_long(since: &mut Option<Instant>) -> bool {
    since.get_or_insert_with(Instant::now).elapsed() >= MID_REQUEST_STALL
}

/// An HTTP response ready to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 404, …).
    pub status: u16,
    /// Extra headers beyond the always-present `Content-Type`,
    /// `Content-Length` and `Connection`.
    pub headers: Vec<(&'static str, String)>,
    /// The JSON body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self { status, headers: Vec::new(), body: body.into() }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// First value of extra header `name`, if present (test helper).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }
}

/// The standard reason phrase for the subset of codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes `response` to `stream`, flushing it. `close` controls the
/// advertised `Connection` header.
///
/// # Errors
///
/// Propagates I/O errors from the socket.
pub fn write_response(stream: &mut TcpStream, response: &Response, close: bool) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n",
        response.status,
        reason(response.status),
        response.body.len(),
        if close { "close" } else { "keep-alive" },
    );
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(raw: &[u8]) -> ReadOutcome {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&raw).expect("write");
            s.flush().expect("flush");
            // Dropping the socket closes it; anything written is already
            // buffered for the reader.
        });
        let (mut conn, _) = listener.accept().expect("accept");
        let outcome = read_request(&mut conn).expect("io");
        writer.join().expect("writer");
        outcome
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /v1/forward HTTP/1.1\r\ncontent-length: 4\r\nX-Extra: a\r\n\r\nbody";
        match round_trip(raw) {
            ReadOutcome::Complete(req) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/v1/forward");
                assert_eq!(req.header("x-extra"), Some("a"));
                assert_eq!(req.body, b"body");
                assert!(!req.wants_close());
            }
            other => panic!("expected a request, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_request_line_and_oversized_body() {
        assert!(matches!(round_trip(b"NONSENSE\r\n\r\n"), ReadOutcome::Malformed(_)));
        let huge = format!("POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(round_trip(huge.as_bytes()), ReadOutcome::Malformed(_)));
        assert!(matches!(round_trip(b"GET / HTTP/2\r\n\r\n"), ReadOutcome::Malformed(_)));
    }

    #[test]
    fn empty_connection_reads_as_closed() {
        assert!(matches!(round_trip(b""), ReadOutcome::Closed));
    }
}
