//! Minimal HTTP/1.1 framing as *pure buffer transforms*.
//!
//! The workspace is offline, so the server carries its own parser and
//! renderer for the small protocol subset it speaks: request line +
//! headers + optional `Content-Length` body, keep-alive connection
//! reuse and pipelining. Nothing in this module touches a socket: the
//! reactor owns all I/O and feeds accumulated bytes through
//! [`parse_request`], which either consumes one complete request from
//! the front of the buffer or reports that more bytes are needed.
//! Responses are rendered head+body into one contiguous buffer by
//! [`render_response`], so a response always leaves in a single
//! `write` — the two-syscall head/body split of the old blocking
//! writer interacted with Nagle + delayed ACK to put a ~40 ms floor
//! under every exchange.

use std::time::Duration;

/// Upper bound on the request head (request line + headers), bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body, bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// How long a peer may stall *inside* a request (bytes of a message
/// started but not finished) before the reactor gives up on the
/// connection. Generous: a busy host fragmenting a request across TCP
/// segments must never be misread as a slow-loris attack.
pub const MID_REQUEST_STALL: Duration = Duration::from_secs(5);

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path only; no query parsing).
    pub path: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes (empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`). Under pipelining this also stops
    /// the server from parsing any later request on the connection.
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Outcome of attempting to parse one request from the front of a
/// connection's accumulated read buffer.
#[derive(Debug)]
pub enum Parse {
    /// The buffer does not yet hold a complete request; read more.
    Partial,
    /// One complete request, occupying the first `consumed` bytes of
    /// the buffer (the remainder may hold pipelined successors).
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer this request occupied.
        consumed: usize,
    },
    /// The peer sent something unparseable; the connection must close
    /// after an error response.
    Malformed(String),
}

/// Parses one request from the front of `buf` without consuming it —
/// the caller drains `consumed` bytes on [`Parse::Complete`]. Safe to
/// call repeatedly on a growing buffer: incomplete input is `Partial`
/// until either a full request materializes or a bound
/// ([`MAX_HEAD_BYTES`], [`MAX_BODY_BYTES`]) is exceeded.
pub fn parse_request(buf: &[u8]) -> Parse {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Parse::Malformed("request head too large".into());
        }
        return Parse::Partial;
    };
    if head_end > MAX_HEAD_BYTES {
        return Parse::Malformed("request head too large".into());
    }
    let head_text = match std::str::from_utf8(&buf[..head_end]) {
        Ok(t) => t,
        Err(_) => return Parse::Malformed("request head is not UTF-8".into()),
    };
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Parse::Malformed(format!("bad request line {request_line:?}"));
    };
    if !version.starts_with("HTTP/1.") {
        return Parse::Malformed(format!("unsupported version {version:?}"));
    }
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Parse::Malformed(format!("bad header line {line:?}"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose();
    let content_length = match content_length {
        Ok(len) => len.unwrap_or(0),
        Err(_) => return Parse::Malformed("bad Content-Length".into()),
    };
    if content_length > MAX_BODY_BYTES {
        return Parse::Malformed("request body too large".into());
    }

    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Parse::Partial;
    }
    Parse::Complete {
        request: Request {
            method: method.to_owned(),
            path: path.to_owned(),
            headers,
            body: buf[body_start..body_start + content_length].to_vec(),
        },
        consumed: body_start + content_length,
    }
}

fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

/// An HTTP response ready to be rendered.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 404, …).
    pub status: u16,
    /// Extra headers beyond the always-present `Content-Type`,
    /// `Content-Length` and `Connection`.
    pub headers: Vec<(&'static str, String)>,
    /// The JSON body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self { status, headers: Vec::new(), body: body.into() }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// First value of extra header `name`, if present (test helper).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }
}

/// The standard reason phrase for the subset of codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Appends the full wire form of `response` (head + body, one
/// contiguous run of bytes) to `out`. `close` controls the advertised
/// `Connection` header.
pub fn render_response(response: &Response, close: bool, out: &mut Vec<u8>) {
    use std::io::Write as _;
    let _ = write!(
        out,
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n",
        response.status,
        reason(response.status),
        response.body.len(),
        if close { "close" } else { "keep-alive" },
    );
    for (name, value) in &response.headers {
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&response.body);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_post_with_body_and_reports_consumption() {
        let raw = b"POST /v1/forward HTTP/1.1\r\ncontent-length: 4\r\nX-Extra: a\r\n\r\nbodyEXTRA";
        match parse_request(raw) {
            Parse::Complete { request, consumed } => {
                assert_eq!(request.method, "POST");
                assert_eq!(request.path, "/v1/forward");
                assert_eq!(request.header("x-extra"), Some("a"));
                assert_eq!(request.body, b"body");
                assert!(!request.wants_close());
                assert_eq!(consumed, raw.len() - "EXTRA".len());
            }
            other => panic!("expected a request, got {other:?}"),
        }
    }

    #[test]
    fn pipelined_requests_parse_in_sequence() {
        let raw: Vec<u8> = [
            &b"POST /a HTTP/1.1\r\ncontent-length: 2\r\n\r\nxy"[..],
            &b"GET /b HTTP/1.1\r\n\r\n"[..],
        ]
        .concat();
        let Parse::Complete { request, consumed } = parse_request(&raw) else {
            panic!("first request must parse");
        };
        assert_eq!(request.path, "/a");
        assert_eq!(request.body, b"xy");
        let Parse::Complete { request, consumed: second } = parse_request(&raw[consumed..]) else {
            panic!("second request must parse");
        };
        assert_eq!(request.path, "/b");
        assert!(request.body.is_empty());
        assert_eq!(consumed + second, raw.len());
    }

    #[test]
    fn partial_input_asks_for_more_bytes() {
        let full = b"POST / HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello";
        for cut in 0..full.len() {
            assert!(
                matches!(parse_request(&full[..cut]), Parse::Partial),
                "prefix of {cut} bytes must be Partial"
            );
        }
        assert!(matches!(parse_request(full), Parse::Complete { .. }));
    }

    #[test]
    fn rejects_bad_request_line_oversized_head_and_body() {
        assert!(matches!(parse_request(b"NONSENSE\r\n\r\n"), Parse::Malformed(_)));
        assert!(matches!(parse_request(b"GET / HTTP/2\r\n\r\n"), Parse::Malformed(_)));
        let huge_body =
            format!("POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(parse_request(huge_body.as_bytes()), Parse::Malformed(_)));
        assert!(matches!(
            parse_request(b"POST / HTTP/1.1\r\ncontent-length: nope\r\n\r\n"),
            Parse::Malformed(_)
        ));
        // A head that never terminates within the bound is refused even
        // though no \r\n\r\n was seen.
        let endless = vec![b'A'; MAX_HEAD_BYTES + 1];
        assert!(matches!(parse_request(&endless), Parse::Malformed(_)));
    }

    #[test]
    fn connection_close_is_honored_case_insensitively() {
        let raw = b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n";
        let Parse::Complete { request, .. } = parse_request(raw) else {
            panic!("parses");
        };
        assert!(request.wants_close());
    }

    #[test]
    fn render_emits_one_contiguous_head_and_body() {
        let mut out = Vec::new();
        let resp = Response::json(200, b"{}".to_vec()).with_header("x-actfort-cache", "hit");
        render_response(&resp, false, &mut out);
        let text = std::str::from_utf8(&out).expect("ascii");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.contains("x-actfort-cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut closed = Vec::new();
        render_response(&Response::json(503, b"x".to_vec()), true, &mut closed);
        assert!(std::str::from_utf8(&closed).expect("ascii").contains("connection: close\r\n"));
    }
}
