//! A small blocking HTTP/1.1 client for the serve wire protocol.
//!
//! Used by the integration tests, the `loadgen` bench driver and the
//! `serve_smoke` CI bin; it speaks exactly the subset the server does
//! (fixed-length bodies, keep-alive reuse) so one connection can carry
//! a whole load-generation session.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A response as the client sees it.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (panics on invalid UTF-8 — server bodies are
    /// always JSON text).
    pub fn text(&self) -> &str {
        std::str::from_utf8(&self.body).expect("server bodies are UTF-8 JSON")
    }
}

/// One keep-alive connection to a server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` with a generous I/O timeout.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Issues a `GET`.
    ///
    /// # Errors
    ///
    /// Propagates I/O and framing failures.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, b"")
    }

    /// Issues a `POST` with a JSON body.
    ///
    /// # Errors
    ///
    /// Propagates I/O and framing failures.
    pub fn post(&mut self, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        self.request("POST", path, body)
    }

    fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: actfort\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        let mut raw = Vec::new();
        let mut buf = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before a full response head",
                ));
            }
            raw.extend_from_slice(&buf[..n]);
        };
        let mut body = raw.split_off(head_end + 4);
        let head = String::from_utf8(raw[..head_end].to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response head"))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let status = status_line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad status line {status_line:?}"))
            })?;
        let headers: Vec<(String, String)> = lines
            .filter_map(|line| line.split_once(':'))
            .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_owned()))
            .collect();
        let content_length = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "response lacks Content-Length")
            })?;
        while body.len() < content_length {
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            body.extend_from_slice(&buf[..n]);
        }
        body.truncate(content_length);
        Ok(ClientResponse { status, headers, body })
    }
}
