//! A small blocking HTTP/1.1 client for the serve wire protocol.
//!
//! Used by the integration tests, the `loadgen` bench driver and the
//! `serve_smoke` CI bin; it speaks exactly the subset the server does
//! (fixed-length bodies, keep-alive reuse, pipelining) so one
//! connection can carry a whole load-generation session. Received
//! bytes accumulate in a carry buffer that survives across responses,
//! so bytes of a pipelined successor read together with one response
//! are never lost.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A response as the client sees it.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (panics on invalid UTF-8 — server bodies are
    /// always JSON text).
    pub fn text(&self) -> &str {
        std::str::from_utf8(&self.body).expect("server bodies are UTF-8 JSON")
    }
}

/// One keep-alive connection to a server.
pub struct Client {
    stream: TcpStream,
    carry: Vec<u8>,
}

impl Client {
    /// Connects to `addr` with a generous I/O timeout.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, carry: Vec::new() })
    }

    /// Issues a `GET`.
    ///
    /// # Errors
    ///
    /// Propagates I/O and framing failures.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, b"")
    }

    /// Issues a `POST` with a JSON body.
    ///
    /// # Errors
    ///
    /// Propagates I/O and framing failures.
    pub fn post(&mut self, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        self.request("POST", path, body)
    }

    /// Issues `requests.len()` pipelined `POST`s — every request is
    /// written before any response is read — and returns the responses
    /// in request order (the order the server must answer in).
    ///
    /// # Errors
    ///
    /// Propagates I/O and framing failures.
    pub fn pipeline_post(&mut self, requests: &[(&str, &[u8])]) -> io::Result<Vec<ClientResponse>> {
        let mut wire = Vec::new();
        for (path, body) in requests {
            render_request(&mut wire, "POST", path, body);
        }
        self.stream.write_all(&wire)?;
        self.stream.flush()?;
        let mut responses = Vec::with_capacity(requests.len());
        for _ in 0..requests.len() {
            responses.push(self.read_response()?);
        }
        Ok(responses)
    }

    fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        let mut wire = Vec::new();
        render_request(&mut wire, method, path, body);
        self.stream.write_all(&wire)?;
        self.stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some((response, consumed)) = parse_response(&self.carry)? {
                self.carry.drain(..consumed);
                return Ok(response);
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before a full response",
                ));
            }
            self.carry.extend_from_slice(&buf[..n]);
        }
    }
}

/// Appends one request's wire form (head + body, one contiguous run).
fn render_request(wire: &mut Vec<u8>, method: &str, path: &str, body: &[u8]) {
    let _ = write!(
        wire,
        "{method} {path} HTTP/1.1\r\nhost: actfort\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    wire.extend_from_slice(body);
}

/// Parses one complete response from the front of `buf`, returning it
/// with the byte count it occupied, or `None` when more bytes are
/// needed.
fn parse_response(buf: &[u8]) -> io::Result<Option<(ClientResponse, usize)>> {
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad status line {status_line:?}"))
        })?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_owned()))
        .collect();
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "response lacks Content-Length"))?;
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(None);
    }
    Ok(Some((
        ClientResponse { status, headers, body: buf[body_start..body_start + content_length].to_vec() },
        body_start + content_length,
    )))
}
