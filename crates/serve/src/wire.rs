//! The JSON wire protocol: request parsing and deterministic response
//! rendering, built entirely on `obs::json` (the workspace's in-tree
//! parser/writer — no external serializers).
//!
//! Rendering is deterministic by construction: record maps iterate in
//! `BTreeMap` order, arrays preserve engine order, and no wall-clock
//! value is ever written. Two runs of the same query against the same
//! snapshot generation therefore produce *byte-identical* bodies — the
//! property the response cache and the concurrency tests lean on.

use actfort_core::analysis::{AttackChain, ForwardResult};
use actfort_core::metrics::DepthBreakdown;
use actfort_core::obs::json::{self, Json};
use actfort_core::query::Engine;
use actfort_core::{
    Countermeasure, EdgeClass, Error, OverlayFactor, UserProfile, UserScore, WhatifReport,
};
use actfort_ecosystem::factor::ServiceId;
use std::fmt::Write as _;

/// How many backward partial states a worker is assumed to explore per
/// millisecond, used to translate a `deadline_ms` into the engine's
/// partial budget. Deliberately conservative (measured throughput on
/// the paper population is higher), so a deadline maps to a budget the
/// search exhausts *within* the deadline, not after it.
pub const DEADLINE_PARTIALS_PER_MS: usize = 2_000;

/// The request envelope every analysis endpoint shares: engine
/// selection, edge-class filter and the deadline/budget bounds. Parsed
/// exactly once per request (by `parse_common`); each endpoint's
/// request struct embeds it, so a new envelope field reaches all four
/// endpoints through one parser.
#[derive(Debug, Clone)]
pub struct RequestCommon {
    /// Engine selector.
    pub engine: Engine,
    /// Edge-class filter (`"all"` / `"login_only"` / `"recovery_only"`,
    /// default all edges).
    pub edge_class: EdgeClass,
    /// Explicit partial budget, if given (backward search only).
    pub budget: Option<usize>,
    /// Request deadline in milliseconds, if given.
    pub deadline_ms: Option<u64>,
}

impl RequestCommon {
    /// The partial budget the engine should run under: an explicit
    /// `budget` wins; otherwise a `deadline_ms` is translated at
    /// `partials_per_ms` (the server's calibration, default
    /// [`DEADLINE_PARTIALS_PER_MS`]); otherwise `None` (engine
    /// default).
    pub fn effective_budget(&self, partials_per_ms: usize) -> Option<usize> {
        self.budget.or_else(|| {
            self.deadline_ms.map(|ms| {
                (usize::try_from(ms).unwrap_or(usize::MAX))
                    .saturating_mul(partials_per_ms)
                    .max(1)
            })
        })
    }
}

fn parse_common(doc: &Json) -> Result<RequestCommon, Error> {
    Ok(RequestCommon {
        engine: field_engine(doc)?,
        edge_class: field_edge_class(doc)?,
        budget: field_usize(doc, "budget")?,
        deadline_ms: field_usize(doc, "deadline_ms")?.map(|n| n as u64),
    })
}

/// A parsed `POST /forward` (or `/v1/forward`) body.
#[derive(Debug, Clone)]
pub struct ForwardRequest {
    /// Seed accounts assumed already compromised (may be empty).
    pub seeds: Vec<ServiceId>,
    /// Incremental-engine memo toggle.
    pub memo: bool,
    /// The shared request envelope.
    pub common: RequestCommon,
}

/// A parsed `POST /backward` (or `/v1/backward`) body.
#[derive(Debug, Clone)]
pub struct BackwardRequest {
    /// The account to derive chains for.
    pub target: ServiceId,
    /// Maximum chains to return.
    pub max_chains: usize,
    /// The shared request envelope (budget/deadline live here).
    pub common: RequestCommon,
}

/// Maximum profiles per `POST /score` batch — a request-shape bound
/// (larger batches should page), not a throughput limit.
pub const MAX_SCORE_PROFILES: usize = 4096;

/// A parsed `POST /score` (or `/v1/score`) body.
#[derive(Debug, Clone)]
pub struct ScoreRequest {
    /// One entry per user: services held + factor kinds enabled.
    pub profiles: Vec<UserProfile>,
    /// The shared request envelope (the engine field is a schedule knob
    /// here — see [`actfort_core::query::ScoreQuery`]).
    pub common: RequestCommon,
}

/// Ceiling on `severed_chains` per `/whatif` request — a response-size
/// bound (each chain is rendered in full), not a compute limit.
pub const MAX_SEVERED_CHAINS: usize = 64;

/// A parsed `POST /whatif` (or `/v1/whatif`) body.
#[derive(Debug, Clone)]
pub struct WhatifRequest {
    /// The countermeasure set to evaluate (ignored-empty in sweep
    /// mode; any spelling order — evaluation canonicalizes).
    pub countermeasures: Vec<Countermeasure>,
    /// Sweep mode: evaluate every subset of the countermeasure space
    /// (`2^|all()|` reports) in one request.
    pub sweep: bool,
    /// Maximum severed chains reported per evaluated set.
    pub severed_chains: usize,
    /// The shared request envelope.
    pub common: RequestCommon,
}

/// A parsed `POST /admin/reload` body.
#[derive(Debug, Clone)]
pub struct ReloadRequest {
    /// Dataset spelling, handed to [`crate::snapshot::Dataset::parse`].
    pub dataset: String,
}

fn parse_body(body: &[u8]) -> Result<Json, Error> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Error::Query("request body is not UTF-8".into()))?;
    if text.trim().is_empty() {
        return Ok(Json::Obj(Default::default()));
    }
    json::parse(text).map_err(|e| Error::Query(format!("request body is not valid JSON: {e}")))
}

fn field_usize(doc: &Json, name: &str) -> Result<Option<usize>, Error> {
    match doc.get(name) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(n)) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => {
            Ok(Some(*n as usize))
        }
        Some(_) => Err(Error::Query(format!("\"{name}\" must be a non-negative integer"))),
    }
}

fn field_bool(doc: &Json, name: &str, default: bool) -> Result<bool, Error> {
    match doc.get(name) {
        None | Some(Json::Null) => Ok(default),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(Error::Query(format!("\"{name}\" must be a boolean"))),
    }
}

fn field_engine(doc: &Json) -> Result<Engine, Error> {
    match doc.get("engine") {
        None | Some(Json::Null) => Ok(Engine::Auto),
        Some(Json::Str(s)) => match s.as_str() {
            "auto" => Ok(Engine::Auto),
            "prepared" => Ok(Engine::Prepared),
            "incremental" => Ok(Engine::Incremental),
            "naive" => Ok(Engine::Naive),
            other => Err(Error::Query(format!(
                "unknown engine {other:?} (expected \"auto\", \"prepared\", \"incremental\" or \
                 \"naive\")"
            ))),
        },
        Some(_) => Err(Error::Query("\"engine\" must be a string".into())),
    }
}

fn field_edge_class(doc: &Json) -> Result<EdgeClass, Error> {
    match doc.get("edge_class") {
        None | Some(Json::Null) => Ok(EdgeClass::All),
        Some(Json::Str(s)) => EdgeClass::parse(s).ok_or_else(|| {
            Error::Query(format!(
                "unknown edge class {s:?} (expected \"all\", \"login_only\" or \"recovery_only\")"
            ))
        }),
        Some(_) => Err(Error::Query("\"edge_class\" must be a string".into())),
    }
}

/// The wire spelling of an engine selector (stable; part of the cache
/// key).
pub fn engine_name(engine: Engine) -> &'static str {
    match engine {
        Engine::Auto => "auto",
        Engine::Prepared => "prepared",
        Engine::Incremental => "incremental",
        Engine::Naive => "naive",
    }
}

/// Parses a forward request body.
///
/// # Errors
///
/// [`Error::Query`] on malformed JSON or mistyped fields.
pub fn parse_forward(body: &[u8]) -> Result<ForwardRequest, Error> {
    let doc = parse_body(body)?;
    let seeds = match doc.get("seeds") {
        None | Some(Json::Null) => Vec::new(),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|item| match item {
                Json::Str(s) => Ok(ServiceId::new(s)),
                _ => Err(Error::Query("\"seeds\" must be an array of service ids".into())),
            })
            .collect::<Result<_, _>>()?,
        Some(_) => return Err(Error::Query("\"seeds\" must be an array of service ids".into())),
    };
    Ok(ForwardRequest {
        seeds,
        memo: field_bool(&doc, "memo", true)?,
        common: parse_common(&doc)?,
    })
}

/// Parses a backward request body.
///
/// # Errors
///
/// [`Error::Query`] on malformed JSON, mistyped fields or a missing
/// target.
pub fn parse_backward(body: &[u8]) -> Result<BackwardRequest, Error> {
    let doc = parse_body(body)?;
    let target = match doc.get("target") {
        Some(Json::Str(s)) => ServiceId::new(s),
        _ => return Err(Error::Query("\"target\" must be a service id string".into())),
    };
    Ok(BackwardRequest {
        target,
        max_chains: field_usize(&doc, "max_chains")?.unwrap_or(8),
        common: parse_common(&doc)?,
    })
}

fn parse_profile(item: &Json, index: usize) -> Result<UserProfile, Error> {
    let Json::Obj(_) = item else {
        return Err(Error::Query(format!("\"profiles\"[{index}] must be an object")));
    };
    let services = match item.get("services") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|s| match s {
                Json::Str(s) => Ok(ServiceId::new(s)),
                _ => Err(Error::Query(format!(
                    "\"profiles\"[{index}].services must be an array of service ids"
                ))),
            })
            .collect::<Result<_, _>>()?,
        _ => {
            return Err(Error::Query(format!(
                "\"profiles\"[{index}].services must be an array of service ids"
            )))
        }
    };
    // Factors default to "everything enabled" — the conservative read
    // for a profile that only lists accounts.
    let factors = match item.get("factors") {
        None | Some(Json::Null) => OverlayFactor::ALL,
        Some(Json::Arr(items)) => {
            let mut mask = 0u16;
            for f in items {
                let Json::Str(name) = f else {
                    return Err(Error::Query(format!(
                        "\"profiles\"[{index}].factors must be an array of factor names"
                    )));
                };
                mask |= OverlayFactor::parse(name).ok_or_else(|| {
                    Error::Query(format!(
                        "unknown factor {name:?} in \"profiles\"[{index}] (expected one of {})",
                        OverlayFactor::NAMES
                            .iter()
                            .map(|(n, _)| format!("{n:?}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))
                })?;
            }
            mask
        }
        Some(_) => {
            return Err(Error::Query(format!(
                "\"profiles\"[{index}].factors must be an array of factor names"
            )))
        }
    };
    Ok(UserProfile::new(services, factors))
}

/// Parses a score request body:
/// `{"profiles":[{"services":[...],"factors":[...]}],"engine":"auto"}`.
/// Omitted `factors` means every overlay-controllable kind enabled.
///
/// # Errors
///
/// [`Error::Query`] on malformed JSON, a missing/mistyped `profiles`
/// array, an unknown factor name, or a batch larger than
/// [`MAX_SCORE_PROFILES`].
pub fn parse_score(body: &[u8]) -> Result<ScoreRequest, Error> {
    let doc = parse_body(body)?;
    let profiles = match doc.get("profiles") {
        Some(Json::Arr(items)) => {
            if items.len() > MAX_SCORE_PROFILES {
                return Err(Error::Query(format!(
                    "\"profiles\" holds {} entries; the batch limit is {MAX_SCORE_PROFILES}",
                    items.len()
                )));
            }
            items
                .iter()
                .enumerate()
                .map(|(i, item)| parse_profile(item, i))
                .collect::<Result<Vec<_>, _>>()?
        }
        _ => return Err(Error::Query("\"profiles\" must be an array of profile objects".into())),
    };
    Ok(ScoreRequest { profiles, common: parse_common(&doc)? })
}

/// Parses a whatif request body:
/// `{"countermeasures":["built_in_push",...],"sweep":false,"severed_chains":4}`.
/// All fields are optional; an empty body evaluates the baseline
/// (no-op) set.
///
/// # Errors
///
/// [`Error::Query`] on malformed JSON, an unknown countermeasure name,
/// a `severed_chains` past [`MAX_SEVERED_CHAINS`], or `sweep` combined
/// with an explicit countermeasure list (a sweep evaluates every
/// subset; listing one is contradictory).
pub fn parse_whatif(body: &[u8]) -> Result<WhatifRequest, Error> {
    let doc = parse_body(body)?;
    let countermeasures: Vec<Countermeasure> = match doc.get("countermeasures") {
        None | Some(Json::Null) => Vec::new(),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|item| {
                let Json::Str(name) = item else {
                    return Err(Error::Query(
                        "\"countermeasures\" must be an array of countermeasure names".into(),
                    ));
                };
                Countermeasure::parse(name).ok_or_else(|| {
                    Error::Query(format!(
                        "unknown countermeasure {name:?} (expected one of {})",
                        Countermeasure::all()
                            .iter()
                            .map(|cm| format!("{:?}", cm.wire_name()))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))
                })
            })
            .collect::<Result<_, _>>()?,
        Some(_) => {
            return Err(Error::Query(
                "\"countermeasures\" must be an array of countermeasure names".into(),
            ))
        }
    };
    let sweep = field_bool(&doc, "sweep", false)?;
    if sweep && !countermeasures.is_empty() {
        return Err(Error::Query(
            "\"sweep\" evaluates every countermeasure subset and cannot be combined with an \
             explicit \"countermeasures\" list"
                .into(),
        ));
    }
    let severed_chains = field_usize(&doc, "severed_chains")?.unwrap_or(4);
    if severed_chains > MAX_SEVERED_CHAINS {
        return Err(Error::Query(format!(
            "\"severed_chains\" is {severed_chains}; the limit is {MAX_SEVERED_CHAINS}"
        )));
    }
    Ok(WhatifRequest { countermeasures, sweep, severed_chains, common: parse_common(&doc)? })
}

/// Parses a reload request body.
///
/// # Errors
///
/// [`Error::Query`] when `"dataset"` is absent or not a string.
pub fn parse_reload(body: &[u8]) -> Result<ReloadRequest, Error> {
    let doc = parse_body(body)?;
    match doc.get("dataset") {
        Some(Json::Str(s)) => Ok(ReloadRequest { dataset: s.clone() }),
        _ => Err(Error::Query("\"dataset\" must be a string".into())),
    }
}

fn write_id_array(out: &mut String, ids: &[ServiceId]) {
    out.push('[');
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_str(out, id.as_str());
    }
    out.push(']');
}

/// Renders a forward result. Deterministic: same result + generation →
/// same bytes.
pub fn render_forward(
    generation: u64,
    engine: Engine,
    result: &ForwardResult,
) -> Vec<u8> {
    let mut out = String::with_capacity(4096);
    let _ = write!(
        out,
        "{{\"generation\":{generation},\"engine\":\"{}\",\"compromised\":{},",
        engine_name(engine),
        result.records.len()
    );
    out.push_str("\"rounds\":[");
    for (i, round) in result.rounds.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_id_array(&mut out, round);
    }
    out.push_str("],\"records\":{");
    for (i, (id, rec)) in result.records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_str(&mut out, id.as_str());
        let _ = write!(out, ":{{\"round\":{},\"min_providers\":{}}}", rec.round, rec.min_providers);
    }
    out.push_str("},\"uncompromised\":");
    write_id_array(&mut out, &result.uncompromised);
    out.push('}');
    out.into_bytes()
}

/// Renders a backward result (chains as arrays of steps, each step an
/// array of service ids). Deterministic.
pub fn render_backward(
    generation: u64,
    engine: Engine,
    target: &ServiceId,
    chains: &[AttackChain],
    exhaustive: bool,
) -> Vec<u8> {
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "{{\"generation\":{generation},\"engine\":\"{}\",\"target\":",
        engine_name(engine)
    );
    json::write_str(&mut out, target.as_str());
    let _ = write!(out, ",\"exhaustive\":{exhaustive},\"chains\":");
    write_chains(&mut out, chains);
    out.push('}');
    out.into_bytes()
}

/// Renders a score result: one `{blast_radius, weakest_chain}` object
/// per user, input order. Deterministic.
pub fn render_score(generation: u64, engine: Engine, scores: &[UserScore]) -> Vec<u8> {
    let mut out = String::with_capacity(64 + scores.len() * 40);
    let _ = write!(
        out,
        "{{\"generation\":{generation},\"engine\":\"{}\",\"users\":{},\"scores\":[",
        engine_name(engine),
        scores.len()
    );
    for (i, score) in scores.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"blast_radius\":{},\"weakest_chain\":{}}}",
            score.blast_radius, score.weakest_chain
        );
    }
    out.push_str("]}");
    out.into_bytes()
}

fn write_breakdown(out: &mut String, b: &DepthBreakdown) {
    let _ = write!(
        out,
        "{{\"direct_pct\":{},\"one_layer_pct\":{},\"two_layer_full_pct\":{},\
         \"two_layer_mixed_pct\":{},\"uncompromisable_pct\":{},\"total\":{}}}",
        b.direct_pct,
        b.one_layer_pct,
        b.two_layer_full_pct,
        b.two_layer_mixed_pct,
        b.uncompromisable_pct,
        b.total
    );
}

fn write_chains(out: &mut String, chains: &[AttackChain]) {
    out.push('[');
    for (i, chain) in chains.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, step) in chain.steps.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write_id_array(out, &step.services);
        }
        out.push(']');
    }
    out.push(']');
}

/// Renders a whatif response: one report per evaluated set (1 in
/// single-set mode, 16 in sweep mode), uniform shape either way.
/// Deterministic: breakdown percentages render through `f64`'s
/// shortest round-trip `Display`, countermeasures are in canonical
/// order, and chain/protected arrays preserve engine order.
pub fn render_whatif(generation: u64, reports: &[WhatifReport]) -> Vec<u8> {
    let mut out = String::with_capacity(1024 * reports.len().max(1));
    let _ = write!(out, "{{\"generation\":{generation},\"reports\":[");
    for (i, report) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"countermeasures\":[");
        for (j, cm) in report.countermeasures.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json::write_str(&mut out, cm.wire_name());
        }
        out.push_str("],\"label\":");
        json::write_str(&mut out, &report.label);
        out.push_str(",\"before\":");
        write_breakdown(&mut out, &report.before);
        out.push_str(",\"after\":");
        write_breakdown(&mut out, &report.after);
        out.push_str(",\"protected\":");
        write_id_array(&mut out, &report.protected);
        out.push_str(",\"severed\":");
        write_chains(&mut out, &report.severed);
        out.push('}');
    }
    out.push_str("]}");
    out.into_bytes()
}

/// Maps a core error to its wire form: `(HTTP status, JSON body)`. The
/// body carries the error's stable discriminant
/// ([`Error::code`]) and kind so clients can match
/// without parsing prose.
pub fn render_error(err: &Error) -> (u16, Vec<u8>) {
    let status = if err.is_client_error() { 400 } else { 500 };
    let mut out = String::with_capacity(128);
    let _ = write!(out, "{{\"error\":{{\"code\":{},\"kind\":\"{}\",\"message\":", err.code(), err.kind());
    json::write_str(&mut out, &err.to_string());
    out.push_str("}}");
    (status, out.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_request_parses_with_defaults_and_rejects_bad_types() {
        let req = parse_forward(b"{}").expect("empty object");
        assert!(req.seeds.is_empty());
        assert_eq!(req.common.engine, Engine::Auto);
        assert_eq!(req.common.edge_class, EdgeClass::All);
        assert!(req.memo);

        let req = parse_forward(br#"{"seeds":["gmail","taobao"],"engine":"naive","memo":false}"#)
            .expect("full form");
        assert_eq!(req.seeds.len(), 2);
        assert_eq!(req.common.engine, Engine::Naive);
        assert!(!req.memo);

        let req = parse_forward(br#"{"engine":"prepared"}"#).expect("prepared engine");
        assert_eq!(req.common.engine, Engine::Prepared);
        assert_eq!(engine_name(req.common.engine), "prepared");

        assert!(parse_forward(br#"{"seeds":"gmail"}"#).is_err());
        assert!(parse_forward(br#"{"engine":"warp"}"#).is_err());
        assert!(parse_forward(b"not json").is_err());
    }

    #[test]
    fn edge_class_parses_on_every_endpoint_with_a_stable_error() {
        // Every wire spelling round-trips, on every analysis endpoint.
        for class in EdgeClass::all() {
            let body = format!(r#"{{"edge_class":"{}"}}"#, class.wire_name());
            assert_eq!(parse_forward(body.as_bytes()).expect("forward").common.edge_class, class);
            assert_eq!(parse_whatif(body.as_bytes()).expect("whatif").common.edge_class, class);
            let body = format!(r#"{{"target":"alipay","edge_class":"{}"}}"#, class.wire_name());
            assert_eq!(parse_backward(body.as_bytes()).expect("backward").common.edge_class, class);
            let body = format!(r#"{{"profiles":[],"edge_class":"{}"}}"#, class.wire_name());
            assert_eq!(parse_score(body.as_bytes()).expect("score").common.edge_class, class);
        }

        let err = parse_forward(br#"{"edge_class":"sideways"}"#).expect_err("unknown class");
        assert_eq!(err.code(), 11, "edge-class errors use the query discriminant");
        assert_eq!(
            err.to_string(),
            "invalid query: unknown edge class \"sideways\" (expected \"all\", \"login_only\" \
             or \"recovery_only\")"
        );
        assert!(parse_forward(br#"{"edge_class":7}"#).is_err());
    }

    #[test]
    fn backward_request_budget_precedence() {
        let req =
            parse_backward(br#"{"target":"alipay","budget":100,"deadline_ms":1}"#).expect("parses");
        assert_eq!(req.common.effective_budget(DEADLINE_PARTIALS_PER_MS), Some(100));
        let req = parse_backward(br#"{"target":"alipay","deadline_ms":2}"#).expect("parses");
        assert_eq!(
            req.common.effective_budget(DEADLINE_PARTIALS_PER_MS),
            Some(2 * DEADLINE_PARTIALS_PER_MS)
        );
        let req = parse_backward(br#"{"target":"alipay"}"#).expect("parses");
        assert_eq!(req.common.effective_budget(DEADLINE_PARTIALS_PER_MS), None);
        assert_eq!(req.max_chains, 8);
        assert!(parse_backward(b"{}").is_err(), "target is mandatory");
    }

    #[test]
    fn score_request_parses_factors_and_rejects_malformed_batches() {
        let req = parse_score(
            br#"{"profiles":[{"services":["gmail","taobao"],"factors":["sms_code","email_code"]},
                             {"services":[]}],"engine":"prepared"}"#,
        )
        .expect("full form");
        assert_eq!(req.profiles.len(), 2);
        assert_eq!(req.profiles[0].services.len(), 2);
        assert_eq!(
            req.profiles[0].factors,
            OverlayFactor::SMS_CODE | OverlayFactor::EMAIL_CODE
        );
        // Omitted factors default to everything enabled.
        assert_eq!(req.profiles[1].factors, OverlayFactor::ALL);
        assert_eq!(req.common.engine, Engine::Prepared);

        // Every wire spelling round-trips through parse_score.
        for (name, bit) in OverlayFactor::NAMES {
            let body = format!(r#"{{"profiles":[{{"services":[],"factors":["{name}"]}}]}}"#);
            let req = parse_score(body.as_bytes()).expect(name);
            assert_eq!(req.profiles[0].factors, bit, "{name}");
        }

        assert!(parse_score(b"{}").is_err(), "profiles is mandatory");
        assert!(parse_score(br#"{"profiles":"x"}"#).is_err());
        assert!(parse_score(br#"{"profiles":[{"services":"gmail"}]}"#).is_err());
        assert!(parse_score(br#"{"profiles":[{"services":[],"factors":["warp"]}]}"#).is_err());
        assert!(parse_score(br#"{"profiles":[{"services":[],"factors":"sms_code"}]}"#).is_err());
        assert!(parse_score(br#"{"profiles":[42]}"#).is_err());
        let oversized = format!(
            r#"{{"profiles":[{}]}}"#,
            vec![r#"{"services":[]}"#; MAX_SCORE_PROFILES + 1].join(",")
        );
        assert!(parse_score(oversized.as_bytes()).is_err(), "batch limit enforced");
    }

    #[test]
    fn whatif_request_parses_with_defaults_and_rejects_bad_shapes() {
        let req = parse_whatif(b"{}").expect("empty object");
        assert!(req.countermeasures.is_empty());
        assert!(!req.sweep);
        assert_eq!(req.severed_chains, 4);

        let req = parse_whatif(
            br#"{"countermeasures":["built_in_push","unified_masking"],"severed_chains":0}"#,
        )
        .expect("full form");
        assert_eq!(
            req.countermeasures,
            vec![Countermeasure::BuiltInPush, Countermeasure::UnifiedMasking],
            "parse preserves spelling order; canonicalization is evaluation's job"
        );
        assert_eq!(req.severed_chains, 0);

        let req = parse_whatif(br#"{"sweep":true}"#).expect("sweep");
        assert!(req.sweep);

        // Every wire spelling round-trips.
        for cm in Countermeasure::all() {
            let body = format!(r#"{{"countermeasures":["{}"]}}"#, cm.wire_name());
            let req = parse_whatif(body.as_bytes()).expect(cm.wire_name());
            assert_eq!(req.countermeasures, vec![*cm]);
        }

        assert!(parse_whatif(br#"{"countermeasures":"built_in_push"}"#).is_err());
        assert!(parse_whatif(br#"{"countermeasures":[42]}"#).is_err());
        assert!(parse_whatif(br#"{"countermeasures":["warp_drive"]}"#).is_err());
        assert!(parse_whatif(br#"{"sweep":"yes"}"#).is_err());
        assert!(
            parse_whatif(br#"{"sweep":true,"countermeasures":["built_in_push"]}"#).is_err(),
            "sweep contradicts an explicit list"
        );
        let oversized = format!(r#"{{"severed_chains":{}}}"#, MAX_SEVERED_CHAINS + 1);
        assert!(parse_whatif(oversized.as_bytes()).is_err(), "severed cap enforced");
    }

    #[test]
    fn rendered_whatif_parses_back() {
        let breakdown = DepthBreakdown {
            direct_pct: 74.13,
            one_layer_pct: 9.83,
            two_layer_full_pct: 5.2,
            two_layer_mixed_pct: 2.89,
            uncompromisable_pct: 4.44,
            total: 201,
        };
        let report = WhatifReport {
            countermeasures: vec![Countermeasure::UnifiedMasking, Countermeasure::BuiltInPush],
            label: "unified masking + built-in push authentication".to_owned(),
            before: breakdown,
            after: DepthBreakdown { direct_pct: 10.0, uncompromisable_pct: 50.0, ..breakdown },
            protected: vec![ServiceId::new("alipay"), ServiceId::new("gmail")],
            severed: vec![AttackChain { steps: vec![step(&["gmail"]), step(&["alipay"])] }],
        };
        let body = render_whatif(7, std::slice::from_ref(&report));
        let doc = json::parse(std::str::from_utf8(&body).expect("utf-8")).expect("parses");
        assert_eq!(doc.get("generation").and_then(Json::as_num), Some(7.0));
        let Some(Json::Arr(reports)) = doc.get("reports") else { panic!("reports array") };
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        let Some(Json::Arr(cms)) = r.get("countermeasures") else { panic!("cms array") };
        assert_eq!(cms[0].as_str(), Some("unified_masking"));
        assert_eq!(cms[1].as_str(), Some("built_in_push"));
        assert_eq!(r.get("before").and_then(|b| b.get("direct_pct")).and_then(Json::as_num), Some(74.13));
        assert_eq!(r.get("after").and_then(|b| b.get("direct_pct")).and_then(Json::as_num), Some(10.0));
        assert_eq!(r.get("after").and_then(|b| b.get("total")).and_then(Json::as_num), Some(201.0));
        let Some(Json::Arr(protected)) = r.get("protected") else { panic!("protected array") };
        assert_eq!(protected.len(), 2);
        let Some(Json::Arr(severed)) = r.get("severed") else { panic!("severed array") };
        assert_eq!(severed.len(), 1);
        // Rendering is deterministic: same input, same bytes.
        assert_eq!(body, render_whatif(7, std::slice::from_ref(&report)));
    }

    fn step(ids: &[&str]) -> actfort_core::analysis::ChainStep {
        actfort_core::analysis::ChainStep {
            services: ids.iter().map(|s| ServiceId::new(s)).collect(),
        }
    }

    #[test]
    fn rendered_score_parses_back_in_input_order() {
        let scores = [
            UserScore { blast_radius: 7, weakest_chain: 3 },
            UserScore { blast_radius: 0, weakest_chain: 0 },
        ];
        let body = render_score(5, Engine::Prepared, &scores);
        let doc = json::parse(std::str::from_utf8(&body).expect("utf-8")).expect("parses");
        assert_eq!(doc.get("generation").and_then(Json::as_num), Some(5.0));
        assert_eq!(doc.get("engine").and_then(Json::as_str), Some("prepared"));
        assert_eq!(doc.get("users").and_then(Json::as_num), Some(2.0));
        let Some(Json::Arr(items)) = doc.get("scores") else { panic!("scores array") };
        assert_eq!(items[0].get("blast_radius").and_then(Json::as_num), Some(7.0));
        assert_eq!(items[1].get("weakest_chain").and_then(Json::as_num), Some(0.0));
    }

    #[test]
    fn rendered_responses_parse_back() {
        let result = ForwardResult {
            rounds: vec![vec![], vec![ServiceId::new("a")]],
            records: std::iter::once((
                ServiceId::new("a"),
                actfort_core::analysis::CompromiseRecord { round: 1, min_providers: 0 },
            ))
            .collect(),
            uncompromised: vec![ServiceId::new("b")],
            final_pool: actfort_core::pool::InfoPool::new(),
        };
        let body = render_forward(3, Engine::Auto, &result);
        let doc = json::parse(std::str::from_utf8(&body).expect("utf-8")).expect("parses");
        assert_eq!(doc.get("generation").and_then(Json::as_num), Some(3.0));
        assert_eq!(doc.get("engine").and_then(Json::as_str), Some("auto"));

        let body = render_backward(1, Engine::Naive, &ServiceId::new("x"), &[], true);
        let doc = json::parse(std::str::from_utf8(&body).expect("utf-8")).expect("parses");
        assert_eq!(doc.get("exhaustive"), Some(&Json::Bool(true)));

        let (status, body) = render_error(&Error::UnknownService("ghost".into()));
        assert_eq!(status, 400);
        let doc = json::parse(std::str::from_utf8(&body).expect("utf-8")).expect("parses");
        assert_eq!(doc.get("error").and_then(|e| e.get("code")).and_then(Json::as_num), Some(12.0));
    }
}
