//! Bounded work queue with a fixed worker pool and backpressure.
//!
//! Connection threads do protocol work only; analysis jobs are pushed
//! here so CPU-bound work is bounded by the worker count regardless of
//! how many sockets are open. The queue is *bounded*: when it is full,
//! [`WorkQueue::submit`] refuses immediately and the server answers
//! `503` + `Retry-After` instead of letting latency grow without bound
//! (the backpressure contract in DESIGN.md §11). Worker sizing follows
//! the [`BatchAnalyzer`](actfort_core::engine::BatchAnalyzer) thread
//! pool — the same `ACTFORT_THREADS`-aware probe the batch engine uses.

use crate::obs_names;
use actfort_core::obs;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work: runs on a worker thread, sends its result through
/// whatever channel the submitter captured.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Refusal returned by [`WorkQueue::submit`] when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// How many jobs were queued at refusal time (== capacity).
    pub depth: usize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    draining: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    wake: Condvar,
    capacity: usize,
}

/// Fixed worker pool draining a bounded FIFO of jobs.
pub struct WorkQueue {
    shared: Arc<Shared>,
    worker_count: usize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkQueue {
    /// A queue holding at most `capacity` pending jobs (minimum 1),
    /// drained by `workers` threads (minimum 1).
    pub fn new(workers: usize, capacity: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState { jobs: VecDeque::new(), draining: false }),
            wake: Condvar::new(),
            capacity: capacity.max(1),
        });
        let worker_count = workers.max(1);
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("actfort-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        Self { shared, worker_count, workers: Mutex::new(workers) }
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Queue capacity (pending jobs, not counting ones being executed).
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Enqueues `job`, refusing with [`QueueFull`] when `capacity` jobs
    /// are already pending or the queue is draining.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] — the caller should shed load (HTTP 503).
    pub fn submit(&self, job: Job) -> Result<(), QueueFull> {
        let mut state = self.shared.state.lock().expect("queue lock poisoned");
        if state.draining || state.jobs.len() >= self.shared.capacity {
            obs::add(obs_names::QUEUE_REJECTED, 1);
            return Err(QueueFull { depth: state.jobs.len() });
        }
        state.jobs.push_back(job);
        obs::observe(obs_names::QUEUE_DEPTH, state.jobs.len() as u64);
        drop(state);
        self.shared.wake.notify_one();
        Ok(())
    }

    /// Stops accepting jobs, runs everything already queued to
    /// completion and joins the workers (graceful drain). Idempotent:
    /// later calls find no workers left and return immediately.
    pub fn drain(&self) {
        self.shared.state.lock().expect("queue lock poisoned").draining = true;
        self.shared.wake.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().expect("queue lock poisoned"));
        for worker in workers {
            worker.join().expect("worker panicked");
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("queue lock poisoned");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    obs::observe(obs_names::QUEUE_DEPTH, state.jobs.len() as u64);
                    break job;
                }
                if state.draining {
                    return;
                }
                state = shared.wake.wait(state).expect("queue lock poisoned");
            }
        };
        // A panicking job must not shrink the pool; the submitter sees
        // its result channel close and reports an internal error.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn executes_jobs_and_drains_cleanly() {
        let queue = WorkQueue::new(2, 16);
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let ran = Arc::clone(&ran);
            queue
                .submit(Box::new(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                }))
                .expect("capacity 16 holds 10 jobs");
        }
        queue.drain();
        assert_eq!(ran.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn full_queue_refuses_with_backpressure() {
        // One worker, blocked on a gate; capacity one. The first job
        // occupies the worker, the second fills the queue, the third
        // must be refused.
        let queue = WorkQueue::new(1, 1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        queue
            .submit(Box::new(move || {
                started_tx.send(()).expect("test alive");
                gate_rx.recv().expect("gate");
            }))
            .expect("first job runs");
        started_rx.recv().expect("worker picked up the blocker");
        queue.submit(Box::new(|| {})).expect("second job queues");
        let refused = queue.submit(Box::new(|| {})).expect_err("third job refused");
        assert_eq!(refused.depth, 1);
        gate_tx.send(()).expect("unblock");
        queue.drain();
    }

    #[test]
    fn draining_queue_refuses_new_jobs() {
        let queue = WorkQueue::new(1, 4);
        assert_eq!(queue.workers(), 1);
        assert_eq!(queue.capacity(), 4);
        queue.shared.state.lock().expect("lock").draining = true;
        assert!(queue.submit(Box::new(|| {})).is_err());
        queue.drain();
    }
}
