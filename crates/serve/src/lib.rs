//! `actfort-serve` — a concurrent HTTP/JSON query service over the
//! unified [`Analysis`](actfort_core::query::Analysis) facade.
//!
//! The paper's workload is a defender continuously asking forward
//! ("given these breached accounts, who falls?") and backward ("how
//! would an attacker reach this account?") questions as the ecosystem
//! changes (§III-E). This crate turns the in-process analysis engines
//! into a long-lived service that amortizes graph construction across
//! queries, with nothing beyond `std` — matching the workspace's
//! vendored-shim policy:
//!
//! - [`http`] — minimal HTTP/1.1 framing as pure buffer transforms
//!   (request line + headers + `Content-Length` bodies, keep-alive,
//!   pipelining).
//! - [`reactor`] — the single-threaded epoll event loop that owns the
//!   listener and every client socket: edge-triggered readiness,
//!   per-connection state machines, an indexed timer wheel, classified
//!   accept errors with exponential backoff, and a wakeup-fd completion
//!   channel from the worker pool.
//! - [`wire`] — the JSON protocol on `obs::json`: deterministic
//!   rendering, stable error codes from
//!   [`Error::code`](actfort_core::Error::code).
//! - [`snapshot`] — `Arc`-shared immutable ecosystem generations with
//!   atomic hot-swap (`POST /admin/reload`); a request serves entirely
//!   from the generation it loaded first, so responses never tear.
//! - [`cache`] — forward *and* backward responses cached as rendered
//!   bytes, keyed on the canonicalized query + engine + snapshot
//!   generation.
//! - [`queue`] — a bounded work queue over a fixed worker pool (sized
//!   like [`BatchAnalyzer`](actfort_core::engine::BatchAnalyzer));
//!   when full the server sheds load with `503` + `Retry-After`.
//! - [`server`] — routing on the reactor thread, deadlines (translated
//!   into the backward engine's partial budget) and graceful
//!   drain-on-shutdown that completes every accepted request.
//! - [`client`] — the matching blocking client used by tests, the
//!   `loadgen` driver and CI smoke.
//!
//! # Endpoints
//!
//! | Method + path          | Purpose                                    |
//! |------------------------|--------------------------------------------|
//! | `GET /healthz`         | liveness + current generation              |
//! | `GET /metrics`         | the global `obs` snapshot as JSON          |
//! | `POST /v1/forward`     | forward analysis (cached)                  |
//! | `POST /v1/backward`    | backward chains (deadline-aware)           |
//! | `POST /score`          | per-user overlay scoring, batched (cached; |
//! |   (alias `/v1/score`)  | 64-lane bit-parallel sweep)                |
//! | `POST /whatif`         | countermeasure what-if: one set, or the    |
//! |   (alias `/v1/whatif`) | full 2⁴-subset sweep, on the delta-patched |
//! |                        | substrate — no recompiles (cached)         |
//! | `POST /admin/reload`   | hot-swap the dataset snapshot              |
//! | `POST /admin/shutdown` | graceful drain                             |

pub mod cache;
pub mod client;
pub mod http;
pub mod queue;
pub mod reactor;
pub mod server;
pub mod snapshot;
pub mod wire;

pub use client::{Client, ClientResponse};
pub use server::{
    start, ServerConfig, ServerHandle, CODE_SERVE_IO, CODE_SERVE_OVERLOADED,
    CODE_SERVE_UNKNOWN_VERSION,
};
pub use snapshot::Dataset;

/// Canonical `obs` metric names the server records, in one place so the
/// bench driver, the tests and `/metrics` consumers never drift on
/// spelling.
pub mod obs_names {
    /// Counter: requests fully parsed (any endpoint, any status).
    pub const REQUESTS: &str = "serve.requests";
    /// Counter: forward cache hits.
    pub const CACHE_HITS: &str = "serve.cache.hits";
    /// Counter: forward cache misses.
    pub const CACHE_MISSES: &str = "serve.cache.misses";
    /// Gauge (histogram of observed sizes): cache entry count.
    pub const CACHE_SIZE: &str = "serve.cache.size";
    /// Counter: jobs refused because the bounded queue was full.
    pub const QUEUE_REJECTED: &str = "serve.queue.rejected";
    /// Gauge (histogram of observed depths): pending jobs.
    pub const QUEUE_DEPTH: &str = "serve.queue.depth";
    /// Counter: backward searches cut short by a request deadline.
    pub const DEADLINE_EXPIRED: &str = "serve.deadline.expired";
    /// Counter: successful snapshot hot-swaps.
    pub const RELOADS: &str = "serve.reloads";
    /// Span: one forward analysis on a worker thread.
    pub const FORWARD_SPAN: &str = "serve.forward";
    /// Span: one backward analysis on a worker thread.
    pub const BACKWARD_SPAN: &str = "serve.backward";
    /// Span: one per-user score batch on a worker thread.
    pub const SCORE_SPAN: &str = "serve.score";
    /// Span: one countermeasure what-if evaluation (single set or the
    /// full every-subset sweep) on a worker thread.
    pub const WHATIF_SPAN: &str = "serve.whatif";
    /// Span (child of an endpoint span): the analysis run itself.
    pub const COMPUTE_SPAN: &str = "compute";
    /// Span (child of an endpoint span): rendering the response body.
    pub const RENDER_SPAN: &str = "render";
    /// Histogram: time an analysis job spent in the bounded queue
    /// before a worker picked it up (enqueue → job start).
    pub const QUEUE_WAIT_NS: &str = "serve.request.queue_wait_ns";
    /// Histogram: analysis compute time on the worker (the engine run,
    /// excluding rendering).
    pub const COMPUTE_NS: &str = "serve.request.compute_ns";
    /// Histogram: response-body render time on the worker.
    pub const RENDER_NS: &str = "serve.request.render_ns";
    /// Histogram: `/v1/forward` wall latency (protocol + queue + run).
    pub const FORWARD_LATENCY: &str = "serve.forward.latency_ns";
    /// Histogram: `/v1/backward` wall latency.
    pub const BACKWARD_LATENCY: &str = "serve.backward.latency_ns";
    /// Histogram: `/score` wall latency.
    pub const SCORE_LATENCY: &str = "serve.score.latency_ns";
    /// Histogram: `/whatif` wall latency.
    pub const WHATIF_LATENCY: &str = "serve.whatif.latency_ns";
    /// Histogram: `/healthz` wall latency.
    pub const HEALTHZ_LATENCY: &str = "serve.healthz.latency_ns";
    /// Histogram: `/metrics` wall latency.
    pub const METRICS_LATENCY: &str = "serve.metrics.latency_ns";
    /// Histogram: admin endpoint wall latency.
    pub const ADMIN_LATENCY: &str = "serve.admin.latency_ns";
    /// Histogram: 404/405 wall latency.
    pub const OTHER_LATENCY: &str = "serve.other.latency_ns";
    /// Counter: reactor `epoll_wait` returns.
    pub const REACTOR_POLLS: &str = "serve.reactor.polls";
    /// Counter: wakeup-fd pokes observed (worker completions, shutdown).
    pub const REACTOR_WAKEUPS: &str = "serve.reactor.wakeups";
    /// Counter: completions that arrived for an already-closed
    /// connection (or a reused token of a later generation) and were
    /// discarded by the generation check.
    pub const STALE_COMPLETIONS: &str = "serve.reactor.stale_completions";
    /// Counter: connections accepted.
    pub const CONN_ACCEPTED: &str = "serve.conn.accepted";
    /// Counter: connections closed (any reason).
    pub const CONN_CLOSED: &str = "serve.conn.closed";
    /// Counter: connections closed by an idle/stall timeout.
    pub const CONN_TIMEOUTS: &str = "serve.conn.timeouts";
    /// Histogram: connection lifetime, accept → close.
    pub const CONN_LIFETIME_NS: &str = "serve.conn.lifetime_ns";
    /// Gauge (histogram of observed depths): pipelined requests in
    /// flight on a connection at dispatch time.
    pub const PIPELINE_DEPTH: &str = "serve.conn.pipeline_depth";
    /// Histogram: request wall time, parse → response queued for write.
    pub const REQUEST_WALL_NS: &str = "serve.request.wall_ns";
    /// Counter: transient accept errors (retried immediately).
    pub const ACCEPT_TRANSIENT: &str = "serve.accept.transient";
    /// Counter: resource-exhaustion accept errors (EMFILE …, backed
    /// off exponentially).
    pub const ACCEPT_RESOURCE: &str = "serve.accept.resource";
    /// Counter: unexpected accept errors (also backed off).
    pub const ACCEPT_FATAL: &str = "serve.accept.fatal";
}
