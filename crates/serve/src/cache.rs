//! Rendered-body response cache for forward *and* backward queries.
//!
//! Values are fully rendered JSON bodies (`Arc<Vec<u8>>`), so a hit
//! serves the *exact bytes* a miss rendered — byte-identity between the
//! two paths is structural, not a property the renderer must re-earn.
//! Keys embed the snapshot generation: a hot-swap implicitly invalidates
//! every cached entry without touching the map (stale generations age
//! out through the FIFO bound).
//!
//! **History note (the backward miss bug).** Until the reactor rewrite
//! the key type could only spell a *forward* query — its payload was a
//! canonicalized seed list — and the backward handler never consulted
//! the cache at all, so repeated identical backward queries re-ran the
//! whole chain search every time (0% hit rate vs 94% forward in
//! `BENCH_forward.json`). The key now carries a query-kind discriminant
//! plus a kind-specific canonical payload; backward lookups key on
//! `(target, max_chains, effective budget)` so a deadline-derived
//! budget caches identically to the equivalent explicit budget, and
//! never collides with a differently-bounded search.

use crate::obs_names;
use actfort_core::counter::canonical_set;
use actfort_core::obs;
use actfort_core::{Countermeasure, EdgeClass, UserProfile};
use actfort_ecosystem::factor::ServiceId;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Cache key: one query, fully canonicalized.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Snapshot generation the query ran against.
    pub generation: u64,
    /// Engine selector as its wire spelling (`"auto"`, …).
    pub engine: &'static str,
    /// Query-kind discriminant (`"forward"` / `"backward"`), so the two
    /// key spaces can never collide however their payloads are spelled.
    pub kind: &'static str,
    /// Kind-specific canonical payload (see constructors).
    pub payload: String,
}

impl CacheKey {
    /// Key for a forward query. Seeds are sorted and deduplicated, so
    /// every spelling of the same compromised set maps to one entry;
    /// the memo toggle is part of the payload because it selects a
    /// different (byte-identical, but separately computed) code path,
    /// and the edge-class filter is because it selects a different
    /// reachable set.
    pub fn forward(
        generation: u64,
        engine: &'static str,
        class: EdgeClass,
        memo: bool,
        seeds: &[ServiceId],
    ) -> Self {
        let mut ids: Vec<&str> = seeds.iter().map(|s| s.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        Self {
            generation,
            engine,
            kind: "forward",
            payload: format!("{}\n{}\n{}", class.wire_name(), memo, ids.join("\n")),
        }
    }

    /// Key for a backward query: target, edge-class filter, chain cap
    /// and the *effective* partial budget (explicit budget, or the
    /// deadline translated at the server's calibration — both spellings
    /// of the same bound hash to the same entry; an unbounded search is
    /// its own entry).
    pub fn backward(
        generation: u64,
        engine: &'static str,
        class: EdgeClass,
        target: &ServiceId,
        max_chains: usize,
        budget: Option<usize>,
    ) -> Self {
        let budget = budget.map_or_else(|| "none".to_owned(), |b| b.to_string());
        Self {
            generation,
            engine,
            kind: "backward",
            payload: format!("{}\n{}\n{max_chains}\n{budget}", class.wire_name(), target.as_str()),
        }
    }

    /// Key for a whatif query: the canonical (sorted, deduplicated)
    /// countermeasure set — every spelling order of the same set maps
    /// to one entry, mirroring the evaluation itself, which
    /// canonicalizes before patching — plus the sweep flag and the
    /// severed-chain cap (both change the rendered body). Whatif always
    /// runs on the patched prepared substrate, so the key carries no
    /// engine selector.
    pub fn whatif(
        generation: u64,
        class: EdgeClass,
        cms: &[Countermeasure],
        sweep: bool,
        severed_chains: usize,
    ) -> Self {
        let names: Vec<&str> =
            canonical_set(cms).into_iter().map(Countermeasure::wire_name).collect();
        Self {
            generation,
            engine: "prepared",
            kind: "whatif",
            payload: format!(
                "{}\n{sweep}\n{severed_chains}\n{}",
                class.wire_name(),
                names.join("\n")
            ),
        }
    }

    /// Key for a score query: the canonical profile batch. *Within* a
    /// profile, service order and duplicates are canonicalized (sorted,
    /// deduped — same held-set, same entry); *across* profiles, batch
    /// order is preserved, because the response's `scores` array is in
    /// input order and a reordered batch is a different body.
    pub fn score(
        generation: u64,
        engine: &'static str,
        class: EdgeClass,
        profiles: &[UserProfile],
    ) -> Self {
        let mut payload = String::new();
        payload.push_str(class.wire_name());
        payload.push('\x1e');
        for profile in profiles {
            let mut ids: Vec<&str> = profile.services.iter().map(|s| s.as_str()).collect();
            ids.sort_unstable();
            ids.dedup();
            payload.push_str(&format!("{:#06x}", profile.factors));
            for id in ids {
                payload.push('\n');
                payload.push_str(id);
            }
            // Profile terminator: unambiguous because '\x1e' cannot
            // appear in a factor mask spelling and ids are newline-led.
            payload.push('\x1e');
        }
        Self { generation, engine, kind: "score", payload }
    }
}

/// Bounded FIFO map from canonical queries to rendered bodies.
pub struct ResponseCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

struct CacheInner {
    map: HashMap<CacheKey, Arc<Vec<u8>>>,
    order: VecDeque<CacheKey>,
}

impl ResponseCache {
    /// A cache holding at most `capacity` rendered bodies (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner { map: HashMap::new(), order: VecDeque::new() }),
            capacity: capacity.max(1),
        }
    }

    /// Looks `key` up, recording an `obs` hit or miss either way.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<u8>>> {
        let inner = self.inner.lock().expect("cache lock poisoned");
        let found = inner.map.get(key).cloned();
        match found {
            Some(body) => {
                obs::add(obs_names::CACHE_HITS, 1);
                Some(body)
            }
            None => {
                obs::add(obs_names::CACHE_MISSES, 1);
                None
            }
        }
    }

    /// Inserts a rendered body, evicting the oldest entry when full.
    /// Returns the cached body — the already-present one if another
    /// worker raced this insert, so concurrent misses of the same query
    /// still hand every caller identical bytes.
    pub fn insert(&self, key: CacheKey, body: Arc<Vec<u8>>) -> Arc<Vec<u8>> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(oldest) = inner.order.pop_front() {
                inner.map.remove(&oldest);
            }
        }
        let cached = match inner.map.entry(key.clone()) {
            Entry::Occupied(e) => Arc::clone(e.get()),
            Entry::Vacant(e) => {
                let cached = Arc::clone(e.insert(body));
                inner.order.push_back(key);
                cached
            }
        };
        obs::observe(obs_names::CACHE_SIZE, inner.map.len() as u64);
        cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(generation: u64, seeds: &[&str]) -> CacheKey {
        let ids: Vec<ServiceId> = seeds.iter().map(|s| ServiceId::new(s)).collect();
        CacheKey::forward(generation, "auto", EdgeClass::All, true, &ids)
    }

    #[test]
    fn seed_order_and_duplicates_canonicalize() {
        assert_eq!(key(1, &["b", "a", "b"]), key(1, &["a", "b"]));
        assert_ne!(key(1, &["a"]), key(2, &["a"]));
    }

    #[test]
    fn edge_class_separates_every_key_space() {
        let ids = [ServiceId::new("a")];
        let t = ServiceId::new("paypal");
        let p = UserProfile::new(vec![ServiceId::new("a")], actfort_core::OverlayFactor::ALL);
        for class in [EdgeClass::LoginOnly, EdgeClass::RecoveryOnly] {
            assert_ne!(
                CacheKey::forward(1, "auto", EdgeClass::All, true, &ids),
                CacheKey::forward(1, "auto", class, true, &ids)
            );
            assert_ne!(
                CacheKey::backward(1, "auto", EdgeClass::All, &t, 8, None),
                CacheKey::backward(1, "auto", class, &t, 8, None)
            );
            assert_ne!(
                CacheKey::whatif(1, EdgeClass::All, &[], false, 4),
                CacheKey::whatif(1, class, &[], false, 4)
            );
            assert_ne!(
                CacheKey::score(1, "auto", EdgeClass::All, std::slice::from_ref(&p)),
                CacheKey::score(1, "auto", class, std::slice::from_ref(&p))
            );
        }
    }

    #[test]
    fn backward_keys_separate_by_target_bound_and_budget() {
        let t = ServiceId::new("paypal");
        let base = CacheKey::backward(1, "auto", EdgeClass::All, &t, 8, None);
        assert_eq!(base, CacheKey::backward(1, "auto", EdgeClass::All, &t, 8, None));
        assert_ne!(base, CacheKey::backward(1, "auto", EdgeClass::All, &t, 4, None));
        assert_ne!(base, CacheKey::backward(1, "auto", EdgeClass::All, &t, 8, Some(100)));
        assert_ne!(base, CacheKey::backward(2, "auto", EdgeClass::All, &t, 8, None));
        assert_ne!(base, CacheKey::backward(1, "naive", EdgeClass::All, &t, 8, None));
        // An explicit budget and the same deadline-derived budget are
        // the same entry.
        assert_eq!(
            CacheKey::backward(1, "auto", EdgeClass::All, &t, 8, Some(2000)),
            CacheKey::backward(1, "auto", EdgeClass::All, &t, 8, Some(2000)),
        );
    }

    #[test]
    fn score_keys_canonicalize_within_profiles_but_preserve_batch_order() {
        use actfort_core::OverlayFactor;
        let p = |ids: &[&str], factors: u16| {
            UserProfile::new(ids.iter().map(|s| ServiceId::new(s)).collect(), factors)
        };
        let all = EdgeClass::All;
        let base = CacheKey::score(1, "auto", all, &[p(&["a", "b"], OverlayFactor::ALL)]);
        // Same held-set, different spelling: one entry.
        assert_eq!(
            base,
            CacheKey::score(1, "auto", all, &[p(&["b", "a", "b"], OverlayFactor::ALL)])
        );
        // Different factors, generation, engine or held-set: distinct.
        assert_ne!(
            base,
            CacheKey::score(1, "auto", all, &[p(&["a", "b"], OverlayFactor::SMS_CODE)])
        );
        assert_ne!(base, CacheKey::score(2, "auto", all, &[p(&["a", "b"], OverlayFactor::ALL)]));
        assert_ne!(base, CacheKey::score(1, "naive", all, &[p(&["a", "b"], OverlayFactor::ALL)]));
        assert_ne!(base, CacheKey::score(1, "auto", all, &[p(&["a"], OverlayFactor::ALL)]));
        // Batch order is significant (scores come back in input order),
        // and profile boundaries cannot be re-split: [a | b] != [a,b].
        let ab = [p(&["a"], OverlayFactor::ALL), p(&["b"], OverlayFactor::ALL)];
        let ba = [p(&["b"], OverlayFactor::ALL), p(&["a"], OverlayFactor::ALL)];
        assert_ne!(CacheKey::score(1, "auto", all, &ab), CacheKey::score(1, "auto", all, &ba));
        assert_ne!(CacheKey::score(1, "auto", all, &ab), base);
        // And the score key space never collides with forward's.
        assert_ne!(
            CacheKey::score(1, "auto", all, &[]).kind,
            CacheKey::forward(1, "auto", all, true, &[]).kind
        );
    }

    #[test]
    fn whatif_keys_canonicalize_the_set_and_separate_the_knobs() {
        use Countermeasure::{BuiltInPush, UnifiedMasking};
        let all = EdgeClass::All;
        let base = CacheKey::whatif(1, all, &[UnifiedMasking, BuiltInPush], false, 4);
        // Spelling order and duplicates collapse to one entry.
        assert_eq!(base, CacheKey::whatif(1, all, &[BuiltInPush, UnifiedMasking], false, 4));
        assert_eq!(
            base,
            CacheKey::whatif(1, all, &[BuiltInPush, UnifiedMasking, BuiltInPush], false, 4)
        );
        // Set, generation, sweep flag and severed cap all separate.
        assert_ne!(base, CacheKey::whatif(1, all, &[UnifiedMasking], false, 4));
        assert_ne!(base, CacheKey::whatif(2, all, &[UnifiedMasking, BuiltInPush], false, 4));
        assert_ne!(base, CacheKey::whatif(1, all, &[UnifiedMasking, BuiltInPush], true, 4));
        assert_ne!(base, CacheKey::whatif(1, all, &[UnifiedMasking, BuiltInPush], false, 8));
        // And the whatif key space never collides with the others.
        assert_ne!(CacheKey::whatif(1, all, &[], false, 4).kind, key(1, &[]).kind);
    }

    #[test]
    fn forward_and_backward_key_spaces_never_collide() {
        // A hostile forward seed spelled like a backward payload still
        // lands in a different key space thanks to the kind tag.
        let forward =
            CacheKey::forward(1, "auto", EdgeClass::All, true, &[ServiceId::new("x\n8\nnone")]);
        let backward = CacheKey::backward(1, "auto", EdgeClass::All, &ServiceId::new("x"), 8, None);
        assert_ne!(forward, backward);
    }

    #[test]
    fn hit_returns_inserted_bytes_and_fifo_evicts() {
        let cache = ResponseCache::new(2);
        let body = Arc::new(b"{}".to_vec());
        assert!(cache.get(&key(1, &["a"])).is_none());
        cache.insert(key(1, &["a"]), Arc::clone(&body));
        assert_eq!(cache.get(&key(1, &["a"])).as_deref(), Some(&*body));
        cache.insert(key(1, &["b"]), Arc::new(b"1".to_vec()));
        cache.insert(key(1, &["c"]), Arc::new(b"2".to_vec()));
        // "a" was oldest and the capacity is 2.
        assert!(cache.get(&key(1, &["a"])).is_none());
        assert!(cache.get(&key(1, &["c"])).is_some());
    }

    #[test]
    fn racing_insert_keeps_first_body() {
        let cache = ResponseCache::new(4);
        let first = cache.insert(key(1, &["a"]), Arc::new(b"first".to_vec()));
        let second = cache.insert(key(1, &["a"]), Arc::new(b"second".to_vec()));
        assert_eq!(first, second);
        assert_eq!(&*second, b"first");
    }
}
