//! Single-threaded event-driven reactor: raw epoll syscalls (std-only,
//! mio-style), edge-triggered readiness, per-connection state machines
//! and an indexed timer wheel.
//!
//! The previous server ran a nonblocking accept loop that slept a fixed
//! 2 ms per `WouldBlock` and spawned a blocking thread per connection;
//! every response left in two `write` syscalls on a socket without
//! `TCP_NODELAY`, so Nagle + delayed ACK put a ~40 ms floor under every
//! exchange, and the stall-grace sleeps gated shutdown responsiveness.
//! The reactor replaces all of it with one thread that owns the
//! listener, every client socket and a wakeup eventfd:
//!
//! - **Readiness**: one `epoll` instance, all fds registered
//!   edge-triggered (`EPOLLET`). Readability/writability are latched
//!   per connection and re-armed only by actual `WouldBlock`, the mio
//!   discipline.
//! - **Connection state machine**: `reading → queued → writing`.
//!   Accumulated bytes run through [`crate::http::parse_request`];
//!   each complete request claims an ordered response slot (bounded
//!   pipeline depth) and is handed to the [`Handler`]; responses are
//!   rendered into one contiguous write buffer and flushed until
//!   `WouldBlock`, preserving request order under pipelining.
//! - **Compute handoff**: the handler either fills the slot inline
//!   (cache hits, admin endpoints) or moves it into a worker job; the
//!   worker completes through [`CompletionSender`], which enqueues the
//!   response and pokes the eventfd so a parked reactor wakes. Fills
//!   from the reactor thread itself skip the eventfd write.
//! - **Timer wheel**: a fixed-slot indexed wheel replaces the old
//!   per-read socket timeouts and the `MID_REQUEST_STALL` instant
//!   tracker. Each connection holds one logical deadline (idle or
//!   mid-request stall) and at most one physical wheel entry; stale
//!   entries are dropped lazily via the connection-id generation.
//! - **Accept hygiene**: accept errors are classified
//!   ([`classify_accept_error`]) instead of being uniformly slept on —
//!   transient ones retry immediately, resource exhaustion (EMFILE,
//!   ENFILE, ENOMEM) and unexpected errors arm an exponentially
//!   backed-off retry timer, and every class is counted in `obs`.
//! - **Drain**: on shutdown the listener closes immediately, idle
//!   keep-alive connections are released, and connections with
//!   buffered requests or in-flight work finish everything already
//!   accepted before closing — a pipelined burst in flight at drain
//!   time loses nothing.
//!
//! Completion identity is double-checked at response-write time: a
//! completion names `(token, connection-generation, sequence)`, so a
//! worker result for a connection that died (and whose token was reused
//! by a new accept) can never be written onto the wrong socket.

use crate::http::{self, Parse, Request, Response};
use crate::obs_names;
use actfort_core::obs;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::{Duration, Instant};

/// Raw epoll / eventfd bindings. The workspace vendors no `libc` crate,
/// but `std` already links the platform libc, so the four symbols the
/// reactor needs are declared directly.
mod sys {
    use std::io;
    use std::os::raw::c_int;

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;
    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    /// `struct epoll_event`; packed on x86-64 exactly as in the kernel
    /// ABI, naturally aligned elsewhere.
    #[derive(Clone, Copy)]
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    pub struct EpollEvent {
        /// `EPOLL*` readiness bits.
        pub events: u32,
        /// Caller-owned token.
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
        fn eventfd(initval: u32, flags: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn create() -> io::Result<c_int> {
        cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
    }

    /// Registers `fd` with interest `events` under `token`.
    pub fn add(epfd: c_int, fd: c_int, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        cvt(unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &mut ev) }).map(|_| ())
    }

    /// Deregisters `fd`.
    pub fn del(epfd: c_int, fd: c_int) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        cvt(unsafe { epoll_ctl(epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
    }

    /// Waits up to `timeout_ms` for events; `Interrupted` is surfaced
    /// as zero events.
    pub fn wait(epfd: c_int, events: &mut [EpollEvent], timeout_ms: c_int) -> io::Result<usize> {
        let maxevents = c_int::try_from(events.len()).unwrap_or(c_int::MAX);
        match cvt(unsafe { epoll_wait(epfd, events.as_mut_ptr(), maxevents, timeout_ms) }) {
            Ok(n) => Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }

    /// A nonblocking close-on-exec eventfd.
    pub fn new_eventfd() -> io::Result<c_int> {
        cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
    }
}

/// Epoll token claimed by the listener.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Epoll token claimed by the wakeup eventfd.
const TOKEN_WAKEUP: u64 = u64::MAX - 1;
/// Events fetched per `epoll_wait`.
const EVENT_BATCH: usize = 256;
/// Accepts processed per readiness burst before re-checking the rest of
/// the loop (the latch keeps the remainder pending).
const ACCEPTS_PER_BURST: usize = 256;
/// Read chunk size.
const READ_CHUNK: usize = 16 * 1024;
/// Hard cap on a connection's accumulated unparsed bytes; reads pause
/// (TCP backpressure) above it until the pipeline drains.
const READ_BUF_CAP: usize = 2 * 1024 * 1024;

/// Identity of one accepted connection: a slab token plus a generation
/// bumped on every reuse of that token, so stale completions and timer
/// entries can never touch a successor connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnId {
    token: u32,
    generation: u32,
}

/// Reactor tuning knobs.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// How long a keep-alive connection may sit with no request in
    /// progress before it is closed.
    pub idle_timeout: Duration,
    /// How long a peer may stall *inside* a request (or with responses
    /// pending/unflushed) before the connection is closed.
    pub stall_timeout: Duration,
    /// Maximum pipelined requests in flight per connection; parsing
    /// (and eventually reading) pauses above this depth.
    pub max_pipeline: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        Self {
            idle_timeout: Duration::from_secs(60),
            stall_timeout: http::MID_REQUEST_STALL,
            max_pipeline: 32,
        }
    }
}

/// What to do about a failed `accept`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptDisposition {
    /// The pending-connection queue is drained; wait for the next edge.
    Drained,
    /// Transient, connection-scoped (aborted handshake, EINTR): retry
    /// the accept immediately.
    Retry,
    /// Resource exhaustion (EMFILE, ENFILE, ENOMEM, ENOBUFS): back off
    /// exponentially and retry on a timer — retrying in a tight loop
    /// can never succeed until fds are released.
    Backoff,
    /// Unexpected: counted separately, but also backed off rather than
    /// spun on (the old loop slept a blind 2 ms on *every* error, so a
    /// persistent failure spun silently forever).
    Fatal,
}

/// Classifies an `accept(2)` error. Pure, so the policy is unit-testable
/// without inducing real fd exhaustion.
pub fn classify_accept_error(err: &io::Error) -> AcceptDisposition {
    const EMFILE: i32 = 24;
    const ENFILE: i32 = 23;
    const ENOMEM: i32 = 12;
    const ENOBUFS: i32 = 105;
    const EPROTO: i32 = 71;
    if err.kind() == io::ErrorKind::WouldBlock {
        return AcceptDisposition::Drained;
    }
    match err.raw_os_error() {
        Some(EMFILE | ENFILE | ENOMEM | ENOBUFS) => AcceptDisposition::Backoff,
        Some(EPROTO) => AcceptDisposition::Retry,
        _ => match err.kind() {
            io::ErrorKind::Interrupted
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionReset => AcceptDisposition::Retry,
            _ => AcceptDisposition::Fatal,
        },
    }
}

/// Exponential accept backoff: 10 ms doubling to a 1.28 s cap, reset by
/// any successful accept.
#[derive(Debug, Default)]
pub struct AcceptBackoff {
    consecutive: u32,
}

impl AcceptBackoff {
    /// The delay to wait before retrying, *then* escalates the internal
    /// counter for the next failure.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.consecutive.min(7);
        self.consecutive = self.consecutive.saturating_add(1);
        Duration::from_millis(10u64 << exp)
    }

    /// An accept succeeded; the next failure starts the schedule over.
    pub fn reset(&mut self) {
        self.consecutive = 0;
    }
}

/// What a fired timer belongs to.
#[derive(Debug, Clone, Copy)]
enum TimerKind {
    /// A connection deadline (idle or stall — the connection's logical
    /// deadline decides which at fire time). The epoch invalidates
    /// entries armed before the connection's deadline *shortened*: a
    /// keep-alive connection idles on a 60 s entry, and when a request
    /// starts (stall budget, much sooner) a fresh entry is armed while
    /// the old one is left to fire as a stale no-op.
    Conn {
        /// Which connection (generation-checked at fire time).
        id: ConnId,
        /// Which arming of that connection's timer.
        epoch: u64,
    },
    /// Retry a backed-off accept.
    AcceptRetry,
}

#[derive(Debug)]
struct TimerEntry {
    deadline: Instant,
    kind: TimerKind,
}

/// Fixed-slot indexed timer wheel. Entries land `ceil(delta / tick)`
/// slots ahead of the cursor (clamped to one lap); entries whose
/// deadline has not arrived when their slot comes up are re-inserted,
/// so deadlines beyond one lap cost one extra hop per lap.
struct TimerWheel {
    slots: Vec<Vec<TimerEntry>>,
    cursor: usize,
    tick: Duration,
    anchor: Instant,
    len: usize,
}

impl TimerWheel {
    fn new(slots: usize, tick: Duration, now: Instant) -> Self {
        Self { slots: (0..slots).map(|_| Vec::new()).collect(), cursor: 0, tick, anchor: now, len: 0 }
    }

    fn insert(&mut self, entry: TimerEntry, now: Instant) {
        let delta = entry.deadline.saturating_duration_since(now);
        let ticks = (delta.as_nanos() / self.tick.as_nanos().max(1)) as usize + 1;
        let idx = (self.cursor + ticks.min(self.slots.len() - 1)) % self.slots.len();
        self.slots[idx].push(entry);
        self.len += 1;
    }

    /// Advances the cursor through every tick boundary `now` has passed
    /// and returns the entries whose deadline is due; not-yet-due
    /// entries from visited slots are re-inserted.
    fn advance(&mut self, now: Instant) -> Vec<TimerEntry> {
        let mut due = Vec::new();
        while now.saturating_duration_since(self.anchor) >= self.tick {
            self.anchor += self.tick;
            self.cursor = (self.cursor + 1) % self.slots.len();
            let entries = std::mem::take(&mut self.slots[self.cursor]);
            self.len -= entries.len();
            for entry in entries {
                if entry.deadline <= now {
                    due.push(entry);
                } else {
                    self.insert(entry, now);
                }
            }
        }
        due
    }

    /// Milliseconds until the next tick boundary (the longest the
    /// reactor should park when timers are outstanding).
    fn next_timeout_ms(&self, now: Instant) -> i32 {
        if self.len == 0 {
            return 500;
        }
        let since = now.saturating_duration_since(self.anchor);
        let remaining = self.tick.saturating_sub(since);
        i32::try_from(remaining.as_millis().max(1)).unwrap_or(i32::MAX)
    }
}

/// One in-flight request's ordered response slot.
struct Slot {
    seq: u64,
    started: Instant,
    response: Option<Response>,
    /// The request asked for `Connection: close`.
    close: bool,
}

/// Connection protocol phase, for the state machine's close logic.
struct Conn {
    stream: TcpStream,
    id: ConnId,
    read_buf: Vec<u8>,
    pending: VecDeque<Slot>,
    next_seq: u64,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Stop parsing new requests; close once pending work flushes.
    close_after: bool,
    /// Peer half-closed its sending side; serve what was received,
    /// then close.
    peer_closed: bool,
    /// Edge-triggered readiness latches.
    readable: bool,
    writable: bool,
    /// Logical deadline, the deadline the live wheel entry will fire
    /// at, and the epoch distinguishing the live entry from stale ones.
    deadline: Instant,
    armed_deadline: Option<Instant>,
    timer_epoch: u64,
    opened: Instant,
}

struct Completion {
    conn: ConnId,
    seq: u64,
    response: Response,
}

struct CompletionState {
    queue: Vec<Completion>,
    /// The reactor thread, once `run` starts — fills from that thread
    /// skip the eventfd poke because the queue drains later in the same
    /// loop iteration.
    reactor_thread: Option<ThreadId>,
}

struct CompletionQueue {
    state: Mutex<CompletionState>,
    wakeup: File,
}

/// Cloneable handle workers use to complete responses back to the
/// reactor, and the server uses to wake it for shutdown.
#[derive(Clone)]
pub struct CompletionSender {
    inner: Arc<CompletionQueue>,
}

impl CompletionSender {
    fn complete(&self, conn: ConnId, seq: u64, response: Response) {
        let mut state = self.inner.state.lock().expect("completion lock poisoned");
        state.queue.push(Completion { conn, seq, response });
        let from_reactor = state.reactor_thread == Some(std::thread::current().id());
        drop(state);
        if !from_reactor {
            self.wake();
        }
    }

    /// Pokes the reactor out of `epoll_wait` (idempotent, lock-free).
    pub fn wake(&self) {
        let _ = (&self.inner.wakeup).write(&1u64.to_ne_bytes());
    }
}

/// An ordered response slot handed to the [`Handler`]. Fill it inline
/// or move it into a worker job; a slot dropped unfilled (worker panic,
/// shed job) completes with a 500 so the connection never wedges.
pub struct ResponseSlot {
    conn: ConnId,
    seq: u64,
    sender: Option<CompletionSender>,
}

impl ResponseSlot {
    /// Completes this request with `response`. May be called from any
    /// thread.
    pub fn fill(mut self, response: Response) {
        if let Some(sender) = self.sender.take() {
            sender.complete(self.conn, self.seq, response);
        }
    }
}

impl Drop for ResponseSlot {
    fn drop(&mut self) {
        if let Some(sender) = self.sender.take() {
            sender.complete(
                self.conn,
                self.seq,
                Response::json(
                    500,
                    br#"{"error":{"code":2400,"kind":"upstream","message":"request was dropped by its worker"}}"#
                        .to_vec(),
                ),
            );
        }
    }
}

/// Protocol-to-application boundary: the reactor parses requests and
/// owns all sockets; the handler decides what each request means.
pub trait Handler: Send + 'static {
    /// Called on the reactor thread for every parsed request. Fill
    /// `slot` inline for cheap work, or move it into a worker job and
    /// fill it there.
    fn handle(&self, request: Request, slot: ResponseSlot);

    /// Renders the 400 body for a protocol-malformed request.
    fn malformed(&self, message: &str) -> Response {
        let mut body = String::from("{\"error\":{\"code\":11,\"kind\":\"query\",\"message\":");
        actfort_core::obs::json::write_str(&mut body, message);
        body.push_str("}}");
        Response::json(400, body.into_bytes())
    }
}

/// The reactor. Owns the listener, the epoll instance, the wakeup
/// eventfd and every accepted socket; [`Reactor::run`] serves until
/// shutdown + drain complete.
pub struct Reactor {
    epoll: OwnedFd,
    listener: Option<TcpListener>,
    completions: CompletionSender,
    conns: Vec<Option<Conn>>,
    generations: Vec<u32>,
    free: Vec<u32>,
    live: usize,
    wheel: TimerWheel,
    config: ReactorConfig,
    shutdown: Arc<AtomicBool>,
    draining: bool,
    accept_ready: bool,
    accept_paused: bool,
    backoff: AcceptBackoff,
}

impl Reactor {
    /// Builds a reactor around an already-bound listener. The listener
    /// is switched to nonblocking and registered edge-triggered.
    pub fn new(
        listener: TcpListener,
        config: ReactorConfig,
        shutdown: Arc<AtomicBool>,
    ) -> io::Result<Self> {
        listener.set_nonblocking(true)?;
        let epoll = unsafe { OwnedFd::from_raw_fd(sys::create()?) };
        let wakeup = unsafe { File::from_raw_fd(sys::new_eventfd()?) };
        sys::add(epoll.as_raw_fd(), listener.as_raw_fd(), sys::EPOLLIN | sys::EPOLLET, TOKEN_LISTENER)?;
        sys::add(epoll.as_raw_fd(), wakeup.as_raw_fd(), sys::EPOLLIN | sys::EPOLLET, TOKEN_WAKEUP)?;
        let completions = CompletionSender {
            inner: Arc::new(CompletionQueue {
                state: Mutex::new(CompletionState { queue: Vec::new(), reactor_thread: None }),
                wakeup,
            }),
        };
        let now = Instant::now();
        Ok(Self {
            epoll,
            listener: Some(listener),
            completions,
            conns: Vec::new(),
            generations: Vec::new(),
            free: Vec::new(),
            live: 0,
            wheel: TimerWheel::new(1024, Duration::from_millis(10), now),
            config,
            shutdown,
            draining: false,
            accept_ready: true,
            accept_paused: false,
            backoff: AcceptBackoff::default(),
        })
    }

    /// A handle for completing responses and waking the reactor.
    pub fn waker(&self) -> CompletionSender {
        self.completions.clone()
    }

    /// Serves until the shutdown flag is raised *and* every connection
    /// has drained. Consumes the reactor; sockets close on return.
    pub fn run<H: Handler>(mut self, handler: H) {
        self.completions.inner.state.lock().expect("completion lock poisoned").reactor_thread =
            Some(std::thread::current().id());
        let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; EVENT_BATCH];
        loop {
            let now = Instant::now();
            let timeout = if self.accept_ready && !self.draining && !self.accept_paused {
                0
            } else {
                self.wheel.next_timeout_ms(now)
            };
            let n = sys::wait(self.epoll.as_raw_fd(), &mut events, timeout).unwrap_or_default();
            obs::add(obs_names::REACTOR_POLLS, 1);
            let now = Instant::now();

            let mut touched: Vec<u32> = Vec::new();
            for ev in &events[..n] {
                let (bits, token) = (ev.events, ev.data);
                match token {
                    TOKEN_LISTENER => self.accept_ready = true,
                    TOKEN_WAKEUP => {
                        obs::add(obs_names::REACTOR_WAKEUPS, 1);
                        self.drain_wakeup();
                    }
                    token => {
                        let token = token as u32;
                        if let Some(conn) = self.conns.get_mut(token as usize).and_then(Option::as_mut) {
                            if bits & (sys::EPOLLIN | sys::EPOLLERR | sys::EPOLLHUP) != 0 {
                                conn.readable = true;
                            }
                            if bits & (sys::EPOLLOUT | sys::EPOLLERR | sys::EPOLLHUP) != 0 {
                                conn.writable = true;
                            }
                            if bits & sys::EPOLLRDHUP != 0 {
                                conn.readable = true;
                            }
                            touched.push(token);
                        }
                    }
                }
            }

            if self.shutdown.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain(&handler, now);
            }
            if self.accept_ready && !self.draining && !self.accept_paused {
                self.accept_burst(now);
            }
            for token in touched {
                self.service(token, &handler, now);
            }
            self.apply_completions(&handler, now);
            if self.shutdown.load(Ordering::SeqCst) && !self.draining {
                // An inline admin/shutdown raised the flag this round.
                self.begin_drain(&handler, now);
                self.apply_completions(&handler, now);
            }
            for entry in self.wheel.advance(Instant::now()) {
                match entry.kind {
                    TimerKind::Conn { id, epoch } => {
                        self.fire_conn_timer(id, epoch, Instant::now());
                    }
                    TimerKind::AcceptRetry => {
                        self.accept_paused = false;
                        self.accept_ready = true;
                    }
                }
            }
            if self.draining && self.live == 0 {
                break;
            }
        }
    }

    fn drain_wakeup(&self) {
        let mut buf = [0u8; 8];
        while (&self.completions.inner.wakeup).read(&mut buf).is_ok() {}
    }

    // ---- accept path ----------------------------------------------

    fn accept_burst(&mut self, now: Instant) {
        for _ in 0..ACCEPTS_PER_BURST {
            let Some(listener) = self.listener.as_ref() else {
                self.accept_ready = false;
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    self.backoff.reset();
                    obs::add(obs_names::CONN_ACCEPTED, 1);
                    self.register(stream, now);
                }
                Err(e) => match classify_accept_error(&e) {
                    AcceptDisposition::Drained => {
                        self.accept_ready = false;
                        return;
                    }
                    AcceptDisposition::Retry => {
                        obs::add(obs_names::ACCEPT_TRANSIENT, 1);
                    }
                    disposition => {
                        if disposition == AcceptDisposition::Fatal {
                            obs::add(obs_names::ACCEPT_FATAL, 1);
                        } else {
                            obs::add(obs_names::ACCEPT_RESOURCE, 1);
                        }
                        let delay = self.backoff.next_delay();
                        self.accept_paused = true;
                        self.wheel.insert(
                            TimerEntry { deadline: now + delay, kind: TimerKind::AcceptRetry },
                            now,
                        );
                        return;
                    }
                },
            }
        }
        // Burst cap reached with the latch still set; the next loop
        // iteration (timeout 0) continues accepting.
    }

    fn register(&mut self, stream: TcpStream, now: Instant) {
        if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
            return;
        }
        let token = self.free.pop().unwrap_or_else(|| {
            let token = u32::try_from(self.conns.len()).expect("fewer than 2^32 connections");
            self.conns.push(None);
            self.generations.push(0);
            token
        });
        let id = ConnId { token, generation: self.generations[token as usize] };
        let interest = sys::EPOLLIN | sys::EPOLLOUT | sys::EPOLLRDHUP | sys::EPOLLET;
        if sys::add(self.epoll.as_raw_fd(), stream.as_raw_fd(), interest, u64::from(token)).is_err()
        {
            return;
        }
        self.conns[token as usize] = Some(Conn {
            stream,
            id,
            read_buf: Vec::new(),
            pending: VecDeque::new(),
            next_seq: 0,
            write_buf: Vec::new(),
            write_pos: 0,
            close_after: false,
            peer_closed: false,
            readable: true,
            writable: true,
            deadline: now + self.config.idle_timeout,
            armed_deadline: None,
            timer_epoch: 0,
            opened: now,
        });
        self.live += 1;
        self.arm_timer(token, now);
    }

    // ---- connection state machine ---------------------------------

    /// Runs one connection's state machine as far as it will go:
    /// flush → read → parse/dispatch → flush → rearm/close.
    fn service<H: Handler>(&mut self, token: u32, handler: &H, now: Instant) {
        let mut dispatch: Vec<(Request, ConnId, u64)> = Vec::new();
        {
            let max_pipeline = self.config.max_pipeline;
            let Some(conn) = self.conns.get_mut(token as usize).and_then(Option::as_mut) else {
                return;
            };
            if !flush_writes(conn) {
                self.close(token, now);
                return;
            }
            // Read until WouldBlock, EOF, or backpressure pause.
            let mut buf = [0u8; READ_CHUNK];
            while conn.readable
                && !conn.peer_closed
                && !conn.close_after
                && conn.pending.len() < max_pipeline
                && conn.read_buf.len() < READ_BUF_CAP
            {
                match conn.stream.read(&mut buf) {
                    Ok(0) => conn.peer_closed = true,
                    Ok(n) => conn.read_buf.extend_from_slice(&buf[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => conn.readable = false,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.close(token, now);
                        return;
                    }
                }
            }
            // Parse as many buffered requests as pipeline depth allows.
            while !conn.close_after && conn.pending.len() < max_pipeline {
                match http::parse_request(&conn.read_buf) {
                    Parse::Partial => break,
                    Parse::Complete { request, consumed } => {
                        conn.read_buf.drain(..consumed);
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        let close = request.wants_close();
                        conn.pending.push_back(Slot {
                            seq,
                            started: now,
                            response: None,
                            close,
                        });
                        obs::observe(obs_names::PIPELINE_DEPTH, conn.pending.len() as u64);
                        if close {
                            conn.close_after = true;
                        }
                        dispatch.push((request, conn.id, seq));
                        if close {
                            break;
                        }
                    }
                    Parse::Malformed(msg) => {
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        conn.pending.push_back(Slot {
                            seq,
                            started: now,
                            response: Some(handler.malformed(&msg)),
                        close: true,
                        });
                        conn.close_after = true;
                        break;
                    }
                }
            }
            if conn.peer_closed && conn.read_buf.is_empty() {
                // Nothing further can arrive; finish pending work then
                // close.
                conn.close_after = true;
            }
        }
        for (request, conn_id, seq) in dispatch {
            handler.handle(
                request,
                ResponseSlot { conn: conn_id, seq, sender: Some(self.completions.clone()) },
            );
        }
        self.advance_writes(token, now);
    }

    /// Renders every response that is ready *in request order* into the
    /// write buffer, flushes, then closes or re-arms the timer.
    fn advance_writes(&mut self, token: u32, now: Instant) {
        let draining = self.draining;
        let close_now = {
            let Some(conn) = self.conns.get_mut(token as usize).and_then(Option::as_mut) else {
                return;
            };
            while conn.pending.front().is_some_and(|slot| slot.response.is_some()) {
                let slot = conn.pending.pop_front().expect("front exists");
                let response = slot.response.expect("checked above");
                let last_queued = conn.pending.is_empty() && conn.read_buf.is_empty();
                let close = slot.close || ((conn.close_after || draining) && last_queued);
                if close {
                    conn.close_after = true;
                }
                http::render_response(&response, close, &mut conn.write_buf);
                obs::record_ns(
                    obs_names::REQUEST_WALL_NS,
                    u64::try_from(now.saturating_duration_since(slot.started).as_nanos())
                        .unwrap_or(u64::MAX),
                );
            }
            if !flush_writes(conn) {
                true
            } else {
                let flushed = conn.write_pos == conn.write_buf.len();
                let idle = conn.pending.is_empty() && conn.read_buf.is_empty();
                (conn.close_after || (draining && idle)) && flushed && conn.pending.is_empty()
            }
        };
        if close_now {
            self.close(token, now);
        } else {
            self.arm_timer(token, now);
        }
    }

    fn apply_completions<H: Handler>(&mut self, handler: &H, now: Instant) {
        let ready = {
            let mut state =
                self.completions.inner.state.lock().expect("completion lock poisoned");
            std::mem::take(&mut state.queue)
        };
        for completion in ready {
            let token = completion.conn.token;
            let matches = self
                .conns
                .get_mut(token as usize)
                .and_then(Option::as_mut)
                // The generation check: a completion for a dead
                // connection whose token was reused must never be
                // written onto the successor socket.
                .filter(|conn| conn.id == completion.conn)
                .and_then(|conn| {
                    conn.pending
                        .iter_mut()
                        .find(|slot| slot.seq == completion.seq && slot.response.is_none())
                })
                .map(|slot| slot.response = Some(completion.response))
                .is_some();
            if matches {
                self.advance_writes(token, now);
                // Filling a slot may have freed pipeline depth; resume
                // parsing buffered requests.
                self.service(token, handler, now);
            } else {
                obs::add(obs_names::STALE_COMPLETIONS, 1);
            }
        }
    }

    // ---- timers ----------------------------------------------------

    /// Sets the connection's logical deadline from its state (stall
    /// while work is in progress, idle otherwise) and guarantees one
    /// physical wheel entry exists.
    fn arm_timer(&mut self, token: u32, now: Instant) {
        let (idle, stall) = (self.config.idle_timeout, self.config.stall_timeout);
        let draining = self.draining;
        let Some(conn) = self.conns.get_mut(token as usize).and_then(Option::as_mut) else {
            return;
        };
        let busy = !conn.pending.is_empty()
            || !conn.read_buf.is_empty()
            || conn.write_pos < conn.write_buf.len();
        // During drain, idle keep-alive connections get the (shorter)
        // stall budget instead of the full idle timeout, bounding drain
        // time even if a peer never closes.
        let timeout = if busy || draining { stall } else { idle };
        conn.deadline = now + timeout;
        // A *later* deadline rides the existing entry (it fires early,
        // sees the extension and re-queues); an *earlier* one must arm
        // a fresh entry or it would only be noticed at the old fire
        // time. The epoch bump turns the superseded entry into a no-op.
        let needs_entry = conn.armed_deadline.map_or(true, |armed| conn.deadline < armed);
        if needs_entry {
            conn.timer_epoch += 1;
            conn.armed_deadline = Some(conn.deadline);
            let (id, epoch, deadline) = (conn.id, conn.timer_epoch, conn.deadline);
            self.wheel.insert(TimerEntry { deadline, kind: TimerKind::Conn { id, epoch } }, now);
        }
    }

    fn fire_conn_timer(&mut self, id: ConnId, epoch: u64, now: Instant) {
        let Some(conn) = self.conns.get_mut(id.token as usize).and_then(Option::as_mut) else {
            return;
        };
        if conn.id != id || conn.timer_epoch != epoch {
            return; // Token reused, or the entry was superseded.
        }
        if conn.deadline <= now {
            obs::add(obs_names::CONN_TIMEOUTS, 1);
            self.close(id.token, now);
        } else {
            // The logical deadline moved later since this entry was
            // armed; keep the same epoch and ride until it is due.
            conn.armed_deadline = Some(conn.deadline);
            let deadline = conn.deadline;
            self.wheel.insert(TimerEntry { deadline, kind: TimerKind::Conn { id, epoch } }, now);
        }
    }

    // ---- lifecycle -------------------------------------------------

    fn begin_drain<H: Handler>(&mut self, handler: &H, now: Instant) {
        self.draining = true;
        if let Some(listener) = self.listener.take() {
            let _ = sys::del(self.epoll.as_raw_fd(), listener.as_raw_fd());
            drop(listener); // Stop accepting; pending handshakes are refused.
        }
        // Give every connection one final service pass: anything the
        // kernel has already buffered counts as accepted and will be
        // answered; truly idle connections close immediately.
        let tokens: Vec<u32> = (0..self.conns.len() as u32)
            .filter(|&t| self.conns[t as usize].is_some())
            .collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(token as usize).and_then(Option::as_mut) {
                conn.readable = true;
            }
            self.service(token, handler, now);
            // service() may have closed it already.
            if self.conns.get(token as usize).is_some_and(Option::is_some) {
                self.advance_writes(token, now);
            }
        }
    }

    fn close(&mut self, token: u32, now: Instant) {
        let Some(conn) = self.conns.get_mut(token as usize).and_then(Option::take) else {
            return;
        };
        let _ = sys::del(self.epoll.as_raw_fd(), conn.stream.as_raw_fd());
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        self.generations[token as usize] = self.generations[token as usize].wrapping_add(1);
        self.free.push(token);
        self.live -= 1;
        obs::add(obs_names::CONN_CLOSED, 1);
        obs::record_ns(
            obs_names::CONN_LIFETIME_NS,
            u64::try_from(now.saturating_duration_since(conn.opened).as_nanos())
                .unwrap_or(u64::MAX),
        );
    }
}

/// Writes as much buffered output as the socket accepts. Returns
/// `false` when the connection is broken and must close.
fn flush_writes(conn: &mut Conn) -> bool {
    if !conn.writable {
        return true;
    }
    while conn.write_pos < conn.write_buf.len() {
        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => return false,
            Ok(n) => conn.write_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                conn.writable = false;
                return true;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    conn.write_buf.clear();
    conn.write_pos = 0;
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_errors_classify_by_cause() {
        let make = io::Error::from_raw_os_error;
        assert_eq!(
            classify_accept_error(&io::Error::new(io::ErrorKind::WouldBlock, "eagain")),
            AcceptDisposition::Drained
        );
        for code in [24, 23, 12, 105] {
            assert_eq!(
                classify_accept_error(&make(code)),
                AcceptDisposition::Backoff,
                "errno {code} is resource exhaustion"
            );
        }
        assert_eq!(classify_accept_error(&make(71)), AcceptDisposition::Retry); // EPROTO
        assert_eq!(
            classify_accept_error(&io::Error::new(io::ErrorKind::ConnectionAborted, "aborted")),
            AcceptDisposition::Retry
        );
        assert_eq!(
            classify_accept_error(&io::Error::new(io::ErrorKind::Interrupted, "eintr")),
            AcceptDisposition::Retry
        );
        assert_eq!(
            classify_accept_error(&io::Error::new(io::ErrorKind::InvalidInput, "ebadf-ish")),
            AcceptDisposition::Fatal
        );
    }

    #[test]
    fn accept_backoff_doubles_to_a_cap_and_resets() {
        let mut backoff = AcceptBackoff::default();
        let mut delays = Vec::new();
        for _ in 0..10 {
            delays.push(backoff.next_delay().as_millis());
        }
        assert_eq!(&delays[..8], &[10, 20, 40, 80, 160, 320, 640, 1280]);
        assert_eq!(delays[8], 1280, "capped");
        assert_eq!(delays[9], 1280, "stays capped");
        backoff.reset();
        assert_eq!(backoff.next_delay().as_millis(), 10, "reset restarts the schedule");
    }

    #[test]
    fn timer_wheel_fires_due_entries_and_requeues_far_ones() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(8, Duration::from_millis(10), start);
        // Due within one lap.
        wheel.insert(
            TimerEntry {
                deadline: start + Duration::from_millis(30),
                kind: TimerKind::AcceptRetry,
            },
            start,
        );
        // Beyond one lap (8 slots × 10 ms): must survive a wrap.
        wheel.insert(
            TimerEntry {
                deadline: start + Duration::from_millis(200),
                kind: TimerKind::AcceptRetry,
            },
            start,
        );
        assert_eq!(wheel.len, 2);
        let due = wheel.advance(start + Duration::from_millis(45));
        assert_eq!(due.len(), 1, "only the 30 ms entry is due at 45 ms");
        let due = wheel.advance(start + Duration::from_millis(120));
        assert!(due.is_empty(), "the 200 ms entry re-queued across the wrap");
        let due = wheel.advance(start + Duration::from_millis(210));
        assert_eq!(due.len(), 1, "the far entry fires once due");
        assert_eq!(wheel.len, 0);
    }

    #[test]
    fn timer_wheel_timeout_tracks_tick_boundary() {
        let start = Instant::now();
        let wheel = TimerWheel::new(8, Duration::from_millis(10), start);
        assert_eq!(wheel.next_timeout_ms(start), 500, "empty wheel parks long");
        let mut wheel = TimerWheel::new(8, Duration::from_millis(10), start);
        wheel.insert(
            TimerEntry { deadline: start + Duration::from_millis(5), kind: TimerKind::AcceptRetry },
            start,
        );
        let ms = wheel.next_timeout_ms(start);
        assert!((1..=10).contains(&ms), "armed wheel parks at most one tick, got {ms}");
    }
}
