//! The Transformation Dependency Graph (TDG) — §III-D.
//!
//! Nodes are online accounts (service specs); a **strong-directivity
//! edge** `u → v` means `u` is a *full-capacity parent*: together with
//! the attacker profile, `u`'s exposed information satisfies at least one
//! complete authentication path of `v` (Definition 1). **Couple nodes**
//! jointly satisfying a path produce *weak-directivity edges* recorded in
//! the Couple File (Definitions 2–3).

use crate::pool::{attack_paths, attack_paths_in, path_satisfied, InfoPool};
use crate::prepared::Prepared;
use crate::profile::AttackerProfile;
use actfort_ecosystem::factor::ServiceId;
use actfort_ecosystem::policy::{EdgeClass, Platform};
use actfort_ecosystem::spec::ServiceSpec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Maximum couple group size searched (the combinatorial cut-off).
pub const MAX_COUPLE_SIZE: usize = 3;
/// Maximum couple entries recorded per target node.
pub const MAX_COUPLES_PER_TARGET: usize = 64;

/// One entry of the Couple File: `providers` jointly unlock `target`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoupleEntry {
    /// Node indices that must all be compromised.
    pub providers: Vec<usize>,
    /// The node they jointly unlock.
    pub target: usize,
    /// Whether the couple jointly satisfies at least one *login-class*
    /// path of the target (edges carrying only recovery-class paths are
    /// invisible under [`EdgeClass::LoginOnly`]).
    #[serde(default)]
    pub login: bool,
}

/// The dependency graph over one platform.
///
/// Owns the [`Prepared`] analysis substrate for its
/// `(population, platform, profile)` triple — built once here, shared by
/// every forward query routed through the graph (and by batch sweeps,
/// via the `Arc`). The platform-filtered spec list lives inside the
/// substrate; the graph no longer keeps its own copy.
#[derive(Debug, Clone)]
pub struct Tdg {
    platform: Platform,
    prepared: Arc<Prepared>,
    ap: AttackerProfile,
    fringe: Vec<bool>,
    /// Fringe membership when only login-class paths count.
    fringe_login: Vec<bool>,
    /// `strong[child]` = parents with a strong-directivity edge to child.
    strong: Vec<Vec<usize>>,
    /// Parallel to `strong`: whether each edge satisfies a login-class
    /// path (recovery-only edges carry `false`).
    strong_login: Vec<Vec<bool>>,
    couples: Vec<CoupleEntry>,
}

/// Whether `provider` exposes information that partially covers `factor`
/// (masked views that could combine with others').
fn contributes_partially(
    factor: &actfort_ecosystem::factor::CredentialFactor,
    provider: &ServiceSpec,
    platform: Platform,
) -> bool {
    use actfort_ecosystem::factor::CredentialFactor as F;
    use actfort_ecosystem::info::{Masking, PersonalInfoKind as K};
    let exposes_some = |kind: K| {
        provider
            .exposure_on(platform)
            .iter()
            .any(|e| e.kind == kind && e.masking != Masking::Hidden)
    };
    match factor {
        F::CitizenId => exposes_some(K::CitizenId) || exposes_some(K::Photos),
        F::BankcardNumber => exposes_some(K::BankcardNumber),
        F::CellphoneNumber => exposes_some(K::CellphoneNumber),
        F::CustomerService => [K::RealName, K::CitizenId, K::Address, K::BankcardNumber, K::CellphoneNumber]
            .into_iter()
            .any(exposes_some),
        _ => false,
    }
}

impl Tdg {
    /// Builds the TDG for every spec present on `platform`.
    pub fn build(specs: &[ServiceSpec], platform: Platform, ap: AttackerProfile) -> Self {
        let prepared = Arc::new(Prepared::new(specs, platform, ap));
        let specs = prepared.specs();
        let n = specs.len();
        let empty_pool = InfoPool::new();

        // Fringe nodes: compromisable with the attacker profile alone.
        let fringe: Vec<bool> = specs
            .iter()
            .map(|s| attack_paths(s, platform).iter().any(|p| path_satisfied(p, &ap, &empty_pool)))
            .collect();
        let fringe_login: Vec<bool> = specs
            .iter()
            .map(|s| {
                attack_paths_in(s, platform, EdgeClass::LoginOnly)
                    .iter()
                    .any(|p| path_satisfied(p, &ap, &empty_pool))
            })
            .collect();

        // Single-provider pools, reused across all targets.
        let single_pools: Vec<InfoPool> = specs
            .iter()
            .map(|s| {
                let mut pool = InfoPool::new();
                pool.absorb_compromise(s, platform);
                pool
            })
            .collect();

        let mut strong: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut strong_login: Vec<Vec<bool>> = vec![Vec::new(); n];
        let mut couples: Vec<CoupleEntry> = Vec::new();

        for target in 0..n {
            let paths: Vec<_> = attack_paths(&specs[target], platform)
                .into_iter()
                .filter(|p| !path_satisfied(p, &ap, &empty_pool))
                .cloned()
                .collect();
            if paths.is_empty() {
                continue;
            }
            // Does a pool satisfy at least one *login-class* outstanding
            // path? Edges failing this carry only recovery-class paths.
            let login_sat = |pool: &InfoPool| {
                paths
                    .iter()
                    .any(|p| !p.purpose.is_recovery() && path_satisfied(p, &ap, pool))
            };

            // Full-capacity parents, each tagged with its login bit.
            let mut parents: BTreeMap<usize, bool> = BTreeMap::new();
            for (provider, pool) in single_pools.iter().enumerate() {
                if provider == target {
                    continue;
                }
                if paths.iter().any(|p| path_satisfied(p, &ap, pool)) {
                    parents.insert(provider, login_sat(pool));
                }
            }

            // Couple candidates: nodes that are not full parents but whose
            // exposure moves at least one unsatisfied factor — either by
            // satisfying it outright or by contributing partial (masked)
            // coverage of the needed information kind.
            let candidates: Vec<usize> = (0..n)
                .filter(|&j| j != target && !parents.contains_key(&j))
                .filter(|&j| {
                    paths.iter().any(|p| {
                        p.factors.iter().any(|f| {
                            if crate::pool::factor_satisfied(f, &ap, &empty_pool) {
                                return false;
                            }
                            if crate::pool::factor_satisfied(f, &ap, &single_pools[j]) {
                                return true;
                            }
                            contributes_partially(f, &specs[j], platform)
                        })
                    })
                })
                .collect();

            let mut target_couples = 0usize;
            'pairs: for (a_idx, &a) in candidates.iter().enumerate() {
                for &b in &candidates[a_idx + 1..] {
                    let mut pool = single_pools[a].clone();
                    pool.absorb_compromise(&specs[b], platform);
                    if paths.iter().any(|p| path_satisfied(p, &ap, &pool)) {
                        let login = login_sat(&pool);
                        couples.push(CoupleEntry { providers: vec![a, b], target, login });
                        target_couples += 1;
                        if target_couples >= MAX_COUPLES_PER_TARGET {
                            break 'pairs;
                        }
                    }
                }
            }
            // Triples only when pairs found nothing and the candidate set
            // is small (keeps the search tractable on 200+ services).
            if target_couples == 0 && candidates.len() <= 40 && MAX_COUPLE_SIZE >= 3 {
                'triples: for (a_idx, &a) in candidates.iter().enumerate() {
                    for (b_off, &b) in candidates[a_idx + 1..].iter().enumerate() {
                        for &c in &candidates[a_idx + 1 + b_off + 1..] {
                            let mut pool = single_pools[a].clone();
                            pool.absorb_compromise(&specs[b], platform);
                            pool.absorb_compromise(&specs[c], platform);
                            if paths.iter().any(|p| path_satisfied(p, &ap, &pool)) {
                                let login = login_sat(&pool);
                                couples.push(CoupleEntry { providers: vec![a, b, c], target, login });
                                target_couples += 1;
                                if target_couples >= MAX_COUPLES_PER_TARGET {
                                    break 'triples;
                                }
                            }
                        }
                    }
                }
            }

            strong[target] = parents.keys().copied().collect();
            strong_login[target] = parents.values().copied().collect();
        }

        Self { platform, prepared, ap, fringe, fringe_login, strong, strong_login, couples }
    }

    /// The platform this graph describes.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// The attacker profile the graph was built against.
    pub fn attacker_profile(&self) -> AttackerProfile {
        self.ap
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.prepared.node_count()
    }

    /// The spec at a node index.
    pub fn spec(&self, index: usize) -> &ServiceSpec {
        &self.prepared.specs()[index]
    }

    /// All node specs.
    pub fn specs(&self) -> &[ServiceSpec] {
        self.prepared.specs()
    }

    /// The prepared analysis substrate for this graph's population —
    /// the forward fast path, shareable across threads.
    pub fn prepared(&self) -> &Arc<Prepared> {
        &self.prepared
    }

    /// Index of a service id.
    pub fn index_of(&self, id: &ServiceId) -> Option<usize> {
        self.specs().iter().position(|s| &s.id == id)
    }

    /// Whether the node falls to the attacker profile alone (red node in
    /// Fig. 4).
    pub fn is_fringe(&self, index: usize) -> bool {
        self.fringe[index]
    }

    /// Fringe membership under an edge-class filter.
    ///
    /// `RecoveryOnly` is not a graph the TDG materialises — recovery-only
    /// reachability is answered at the query facade as the set difference
    /// `All ∖ LoginOnly` — so only `All` and `LoginOnly` are accepted.
    pub fn is_fringe_in(&self, index: usize, class: EdgeClass) -> bool {
        match class {
            EdgeClass::All => self.fringe[index],
            EdgeClass::LoginOnly => self.fringe_login[index],
            EdgeClass::RecoveryOnly => {
                panic!("RecoveryOnly is resolved as All ∖ LoginOnly at the query facade")
            }
        }
    }

    /// Indices of all fringe nodes.
    pub fn fringe_nodes(&self) -> Vec<usize> {
        (0..self.node_count()).filter(|&i| self.fringe[i]).collect()
    }

    /// Full-capacity parents of a node (strong-directivity edges in).
    pub fn strong_parents(&self, index: usize) -> &[usize] {
        &self.strong[index]
    }

    /// Full-capacity parents visible under an edge-class filter (see
    /// [`Tdg::is_fringe_in`] for why `RecoveryOnly` is rejected).
    pub fn strong_parents_in(
        &self,
        index: usize,
        class: EdgeClass,
    ) -> impl Iterator<Item = usize> + '_ {
        assert!(
            class != EdgeClass::RecoveryOnly,
            "RecoveryOnly is resolved as All ∖ LoginOnly at the query facade"
        );
        self.strong[index]
            .iter()
            .zip(&self.strong_login[index])
            .filter(move |&(_, &login)| class == EdgeClass::All || login)
            .map(|(&p, _)| p)
    }

    /// Children a node is full-capacity parent of.
    pub fn strong_children(&self, index: usize) -> Vec<usize> {
        (0..self.node_count())
            .filter(|&c| self.strong[c].contains(&index))
            .collect()
    }

    /// Total strong-directivity edge count.
    pub fn strong_edge_count(&self) -> usize {
        self.strong.iter().map(Vec::len).sum()
    }

    /// The Couple File.
    pub fn couples(&self) -> &[CoupleEntry] {
        &self.couples
    }

    /// Couple entries unlocking a given target.
    pub fn couples_for(&self, target: usize) -> Vec<&CoupleEntry> {
        self.couples.iter().filter(|c| c.target == target).collect()
    }

    /// Couple entries unlocking a target under an edge-class filter (see
    /// [`Tdg::is_fringe_in`] for why `RecoveryOnly` is rejected).
    pub fn couples_for_in(&self, target: usize, class: EdgeClass) -> Vec<&CoupleEntry> {
        assert!(
            class != EdgeClass::RecoveryOnly,
            "RecoveryOnly is resolved as All ∖ LoginOnly at the query facade"
        );
        self.couples
            .iter()
            .filter(|c| c.target == target && (class == EdgeClass::All || c.login))
            .collect()
    }

    /// Whether `index` appears as a provider in any couple (making it a
    /// half-capacity parent).
    pub fn is_half_capacity_parent(&self, index: usize) -> bool {
        self.couples.iter().any(|c| c.providers.contains(&index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actfort_ecosystem::dataset::curated_services;

    fn tdg(platform: Platform) -> Tdg {
        Tdg::build(&curated_services(), platform, AttackerProfile::paper_default())
    }

    #[test]
    fn fringe_matches_sms_only_condition() {
        let g = tdg(Platform::Web);
        for i in 0..g.node_count() {
            let spec = g.spec(i);
            let sms_only = spec
                .paths_on(Platform::Web)
                .iter()
                .any(|p| p.is_sms_only());
            assert_eq!(
                g.is_fringe(i),
                sms_only,
                "{}: fringe classification mismatch",
                spec.id
            );
        }
    }

    #[test]
    fn gmail_is_fringe_and_paypal_is_internal() {
        let g = tdg(Platform::Web);
        let gmail = g.index_of(&"gmail".into()).unwrap();
        let paypal = g.index_of(&"paypal".into()).unwrap();
        assert!(g.is_fringe(gmail));
        assert!(!g.is_fringe(paypal));
    }

    #[test]
    fn gmail_is_full_capacity_parent_of_paypal() {
        // Case II: PayPal reset = SMS + email code; owning Gmail plus the
        // AP covers it.
        let g = tdg(Platform::Web);
        let gmail = g.index_of(&"gmail".into()).unwrap();
        let paypal = g.index_of(&"paypal".into()).unwrap();
        assert!(
            g.strong_parents(paypal).contains(&gmail),
            "gmail must be a full-capacity parent of paypal; parents: {:?}",
            g.strong_parents(paypal).iter().map(|&i| g.spec(i).id.as_str()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ctrip_is_full_capacity_parent_of_alipay_mobile() {
        // Case III: Alipay app reset = SMS + citizen ID; Ctrip exposes the
        // citizen ID in full.
        let g = tdg(Platform::MobileApp);
        let ctrip = g.index_of(&"ctrip".into()).unwrap();
        let alipay = g.index_of(&"alipay".into()).unwrap();
        assert!(g.strong_parents(alipay).contains(&ctrip));
    }

    #[test]
    fn travel_sites_form_couple_for_alipay_web_targets() {
        // Xiaozhu (ID head) + 12306 (ID tail) jointly provide the citizen
        // ID on mobile Alipay — they are couple nodes when neither is a
        // full parent. On mobile, Ctrip already provides it fully, so the
        // couple condition applies to the pair specifically.
        let g = tdg(Platform::MobileApp);
        let alipay = g.index_of(&"alipay".into()).unwrap();
        let xiaozhu = g.index_of(&"xiaozhu".into()).unwrap();
        let railway = g.index_of(&"china-railway-12306".into()).unwrap();
        let couple_found = g
            .couples_for(alipay)
            .iter()
            .any(|c| c.providers.contains(&xiaozhu) && c.providers.contains(&railway));
        assert!(couple_found, "xiaozhu + 12306 must form a couple for alipay");
        assert!(g.is_half_capacity_parent(xiaozhu));
    }

    #[test]
    fn robust_bank_has_no_parents() {
        let g = tdg(Platform::Web);
        let bank = g.index_of(&"union-bank".into()).unwrap();
        assert!(g.strong_parents(bank).is_empty());
        assert!(g.couples_for(bank).is_empty());
        assert!(!g.is_fringe(bank));
    }

    #[test]
    fn strong_children_inverts_parents() {
        let g = tdg(Platform::Web);
        let gmail = g.index_of(&"gmail".into()).unwrap();
        for child in g.strong_children(gmail) {
            assert!(g.strong_parents(child).contains(&gmail));
        }
    }

    #[test]
    fn mobile_only_services_absent_from_web_graph() {
        let g = tdg(Platform::Web);
        assert!(g.index_of(&"wechat".into()).is_none());
        let m = tdg(Platform::MobileApp);
        assert!(m.index_of(&"wechat".into()).is_some());
        assert!(m.index_of(&"government-portal".into()).is_none());
    }

    #[test]
    fn graph_has_substantial_connectivity() {
        let g = tdg(Platform::Web);
        assert!(g.strong_edge_count() > 50, "edges: {}", g.strong_edge_count());
        assert!(!g.fringe_nodes().is_empty());
    }

    #[test]
    fn class_all_accessors_match_unclassed_views() {
        for platform in [Platform::Web, Platform::MobileApp] {
            let g = tdg(platform);
            for i in 0..g.node_count() {
                assert_eq!(g.is_fringe(i), g.is_fringe_in(i, EdgeClass::All));
                assert_eq!(
                    g.strong_parents(i),
                    g.strong_parents_in(i, EdgeClass::All).collect::<Vec<_>>()
                );
                assert_eq!(g.couples_for(i), g.couples_for_in(i, EdgeClass::All));
            }
        }
    }

    #[test]
    fn login_only_views_are_subsets_of_all() {
        let g = tdg(Platform::Web);
        for i in 0..g.node_count() {
            if g.is_fringe_in(i, EdgeClass::LoginOnly) {
                assert!(g.is_fringe(i));
            }
            for p in g.strong_parents_in(i, EdgeClass::LoginOnly) {
                assert!(g.strong_parents(i).contains(&p));
            }
        }
    }

    #[test]
    fn paypal_gmail_edge_is_recovery_only() {
        // Gmail unlocks PayPal via its password-reset flow; PayPal's
        // sign-in needs the password itself, which Gmail does not expose.
        // The edge therefore vanishes under LoginOnly.
        let g = tdg(Platform::Web);
        let gmail = g.index_of(&"gmail".into()).unwrap();
        let paypal = g.index_of(&"paypal".into()).unwrap();
        assert!(g.strong_parents(paypal).contains(&gmail));
        assert!(!g
            .strong_parents_in(paypal, EdgeClass::LoginOnly)
            .any(|p| p == gmail));
    }
}
