//! Incremental, parallel forward-analysis engine.
//!
//! The naive fixed point (`Engine::Naive` in the query facade) rescans
//! every still-standing service against every attack path each round,
//! and rebuilds provider pools from scratch inside every
//! `min_providers` query. Both costs dominate ecosystem-scale sweeps
//! (hundreds of services × hundreds of seeds). This module replaces
//! them without changing a single answer:
//!
//! 1. **Frontier re-evaluation.** Factor satisfaction is monotone and
//!    fully determined by the static attacker profile plus a small set
//!    of pool *flags*: full knowledge of the six identity-information
//!    kinds, mailbox control, and per-service ownership. A reverse
//!    index maps each flag to the services whose attack paths consult
//!    it; after a round absorbs its victims, only subscribers of flags
//!    that actually flipped can newly fall, so only they are
//!    re-evaluated. Round one evaluates everybody, which makes the
//!    invariant inductive: a node outside the frontier saw no change
//!    in any input of any of its factors.
//! 2. **Collapsed provider classes.** `min_providers` queries share one
//!    lazily filled per-service singleton-pool cache, and the 1- and
//!    2-provider searches enumerate one *representative* per distinct
//!    pool signature (full kinds + coverage masks + mailbox control)
//!    instead of every compromised provider. Bare ownership is read
//!    only by `LinkedAccount` factors, which name their provider
//!    explicitly — so providers the target links are enumerated
//!    individually, and everything else is interchangeable within its
//!    class: the minimum stays exact (see `min_providers` for the
//!    argument). Pair checks go through
//!    [`crate::pool::path_satisfied_pair`], a union view that never
//!    materializes a merged pool.
//! 3. **Batch parallelism.** [`BatchAnalyzer`] shards independent
//!    analyses (per-seed cascades, per-platform sweeps, per-profile
//!    ablations) across scoped worker threads with an atomic work
//!    index, preserving input order in the output.

use crate::analysis::{CompromiseRecord, ForwardResult};
use crate::obs;
use crate::pool::{attack_paths_in, path_satisfied, path_satisfied_pair, InfoPool, PoolSignature};
use crate::profile::AttackerProfile;
use actfort_ecosystem::factor::{CredentialFactor, ServiceId};
use actfort_ecosystem::info::PersonalInfoKind;
use actfort_ecosystem::policy::{EdgeClass, Platform};
use actfort_ecosystem::spec::ServiceSpec;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The information kinds whose transition to "fully known" can newly
/// satisfy a factor: the six identity facts consulted by
/// `identity_fact_count`, which include every kind with a dedicated
/// knowledge factor (`RealName`, `CitizenId`, `BankcardNumber`,
/// `SecurityQuestion` → `SecurityAnswers`, `CellphoneNumber`).
const TRACKED_KINDS: [PersonalInfoKind; 6] = [
    PersonalInfoKind::RealName,
    PersonalInfoKind::CitizenId,
    PersonalInfoKind::CellphoneNumber,
    PersonalInfoKind::Address,
    PersonalInfoKind::BankcardNumber,
    PersonalInfoKind::SecurityAnswers,
];

/// Reverse dependency index: which nodes to re-evaluate when a flag
/// flips from unsatisfied to satisfied.
struct ReverseIndex {
    /// Subscribers per tracked kind (position-aligned with
    /// [`TRACKED_KINDS`]).
    kind_subs: [Vec<usize>; 6],
    /// Subscribers of mailbox control.
    email_subs: Vec<usize>,
    /// Subscribers of `LinkedAccount(id)` per provider id.
    link_subs: BTreeMap<ServiceId, Vec<usize>>,
}

fn kind_slot(kind: PersonalInfoKind) -> Option<usize> {
    TRACKED_KINDS.iter().position(|&k| k == kind)
}

impl ReverseIndex {
    fn build(paths: &[Vec<&actfort_ecosystem::policy::AuthPath>]) -> Self {
        let mut kind_subs: [Vec<usize>; 6] = Default::default();
        let mut email_subs = Vec::new();
        let mut link_subs: BTreeMap<ServiceId, Vec<usize>> = BTreeMap::new();
        for (i, node_paths) in paths.iter().enumerate() {
            for path in node_paths {
                for factor in &path.factors {
                    match factor {
                        CredentialFactor::CellphoneNumber => {
                            kind_subs[kind_slot(PersonalInfoKind::CellphoneNumber).expect("tracked")].push(i);
                        }
                        CredentialFactor::RealName => {
                            kind_subs[kind_slot(PersonalInfoKind::RealName).expect("tracked")].push(i);
                        }
                        CredentialFactor::CitizenId => {
                            kind_subs[kind_slot(PersonalInfoKind::CitizenId).expect("tracked")].push(i);
                        }
                        CredentialFactor::BankcardNumber => {
                            kind_subs[kind_slot(PersonalInfoKind::BankcardNumber).expect("tracked")].push(i);
                        }
                        CredentialFactor::SecurityQuestion => {
                            kind_subs[kind_slot(PersonalInfoKind::SecurityAnswers).expect("tracked")].push(i);
                        }
                        CredentialFactor::CustomerService => {
                            // The fact count consults all six kinds.
                            for subs in &mut kind_subs {
                                subs.push(i);
                            }
                        }
                        CredentialFactor::EmailCode | CredentialFactor::EmailLink => {
                            email_subs.push(i);
                        }
                        CredentialFactor::LinkedAccount(id) => {
                            link_subs.entry(id.clone()).or_default().push(i);
                        }
                        // SMS interception is a static profile
                        // capability; secrets and robust factors never
                        // become satisfiable. Neither subscribes.
                        _ => {}
                    }
                }
            }
        }
        for subs in &mut kind_subs {
            subs.sort_unstable();
            subs.dedup();
        }
        email_subs.sort_unstable();
        email_subs.dedup();
        for subs in link_subs.values_mut() {
            subs.sort_unstable();
            subs.dedup();
        }
        Self { kind_subs, email_subs, link_subs }
    }
}

/// Counter handles for one forward run, fetched once so the per-node
/// loops increment bare atomics (see `core::obs`; everything is a no-op
/// while the recorder is disabled).
struct EngineStats {
    rounds: obs::Counter,
    evaluated: obs::Counter,
    skipped: obs::Counter,
    fell: obs::Counter,
    class_reps: obs::Counter,
    class_collapsed: obs::Counter,
    minprov_queries: obs::Counter,
    minprov_memo_hits: obs::Counter,
    minprov_memo_misses: obs::Counter,
}

impl EngineStats {
    fn fetch() -> Self {
        Self {
            rounds: obs::counter("engine.rounds"),
            evaluated: obs::counter("engine.nodes_evaluated"),
            skipped: obs::counter("engine.nodes_skipped"),
            fell: obs::counter("engine.nodes_fell"),
            class_reps: obs::counter("engine.provider_class_reps"),
            class_collapsed: obs::counter("engine.provider_class_collapsed"),
            minprov_queries: obs::counter("engine.min_provider_queries"),
            minprov_memo_hits: obs::counter("engine.minprov_memo_hits"),
            minprov_memo_misses: obs::counter("engine.minprov_memo_misses"),
        }
    }

    /// Counts a [`ProviderIndex::register`] outcome: the collapse's hit
    /// rate is `class_collapsed / (class_collapsed + class_reps)`.
    fn observe_register(&self, outcome: Registered) {
        match outcome {
            Registered::NewClass => self.class_reps.inc(),
            Registered::Collapsed => self.class_collapsed.inc(),
            Registered::Uninformative => {}
        }
    }
}

/// Snapshot of the pool flags the reverse index keys on.
#[derive(PartialEq, Eq, Clone, Copy)]
struct FlagState {
    kinds_full: [bool; 6],
    owns_email: bool,
}

impl FlagState {
    fn of(pool: &InfoPool) -> Self {
        let mut kinds_full = [false; 6];
        for (slot, &kind) in TRACKED_KINDS.iter().enumerate() {
            kinds_full[slot] = pool.has_full(kind);
        }
        Self { kinds_full, owns_email: pool.owns_email_provider() }
    }
}

/// Lazily filled cache of per-service singleton pools, plus the
/// equivalence-class structure of the compromised set, shared by every
/// `min_providers` query of one forward run.
///
/// Distinct providers frequently expose identical information, and the
/// pooled *information* is all that matters to every factor except
/// `LinkedAccount` (which names its provider explicitly). Compromised
/// informative providers are therefore collapsed by pool signature, and
/// the provider searches enumerate one representative per class.
struct ProviderIndex {
    pools: Vec<Option<InfoPool>>,
    /// One compromised provider per distinct informative pool
    /// signature, in the order their classes first fell.
    reps: Vec<usize>,
    seen: BTreeSet<PoolSignature>,
    /// Memoized `min_providers` answers, keyed by the target's
    /// canonicalized path-factor lists plus the representative-set
    /// generation (`reps.len()` — representatives only ever append, so
    /// equal lengths mean the identical candidate set). Synthetic and
    /// curated populations share a handful of path archetypes across
    /// hundreds of services, and whole archetype cohorts fall in the
    /// same round, so the expensive representative enumeration runs
    /// once per (archetype, generation) instead of once per service.
    /// Targets naming a `LinkedAccount` bypass the memo: their
    /// candidate set is target-specific.
    memo: BTreeMap<(Vec<Vec<CredentialFactor>>, usize), usize>,
    memo_enabled: bool,
    platform: Platform,
}

/// How [`ProviderIndex::register`] filed a newly compromised provider —
/// the observable hit/miss outcome of the provider-class collapse.
enum Registered {
    /// First provider with this pool signature: elected representative.
    NewClass,
    /// Signature already represented: collapsed into the class (a cache
    /// hit for every later `min_providers` enumeration).
    Collapsed,
    /// Nothing transferable in the pool: never a candidate.
    Uninformative,
}

impl ProviderIndex {
    fn new(n: usize, memo_enabled: bool, platform: Platform) -> Self {
        Self {
            pools: (0..n).map(|_| None).collect(),
            reps: Vec::new(),
            seen: BTreeSet::new(),
            memo: BTreeMap::new(),
            memo_enabled,
            platform,
        }
    }

    fn pool(&mut self, nodes: &[&ServiceSpec], i: usize) -> &InfoPool {
        let platform = self.platform;
        self.pools[i].get_or_insert_with(|| {
            let mut p = InfoPool::new();
            p.absorb_compromise(nodes[i], platform);
            p
        })
    }

    /// Immutable access to an already-materialized pool.
    fn pool_ref(&self, i: usize) -> &InfoPool {
        self.pools[i].as_ref().expect("pool materialized before pool_ref")
    }

    /// Records a newly compromised provider, electing it class
    /// representative if its signature is new. Uninformative providers
    /// are never representatives: they add nothing over the empty pool
    /// except an ownership bit handled via `LinkedAccount` candidates.
    fn register(&mut self, nodes: &[&ServiceSpec], i: usize) -> Registered {
        let (informative, sig) = {
            let p = self.pool(nodes, i);
            (p.is_informative(), p.signature())
        };
        if !informative {
            Registered::Uninformative
        } else if self.seen.insert(sig) {
            self.reps.push(i);
            Registered::NewClass
        } else {
            Registered::Collapsed
        }
    }

    /// Fewest previously-compromised providers whose pooled exposures
    /// (plus the profile) satisfy one of the target's attack paths — 0,
    /// 1, 2 or 3 (capped).
    ///
    /// Exactness of the class collapsing: any satisfying provider set
    /// can be rewritten member-by-member, replacing each non-linked
    /// provider with its class representative, without changing what
    /// any factor of the target reads — equal signatures mean equal
    /// information, and the only factor reading ownership names a
    /// linked provider, which is kept as itself. Same-class pairs need
    /// no checking either: their union carries no more information than
    /// the single representative already tested by the 1-provider loop.
    fn min_providers(
        &mut self,
        paths: &[&actfort_ecosystem::policy::AuthPath],
        ap: &AttackerProfile,
        compromised: &BTreeSet<usize>,
        nodes: &[&ServiceSpec],
        id_index: &BTreeMap<&ServiceId, usize>,
        stats: &EngineStats,
    ) -> usize {
        // The answer is a function of (path factors, profile, candidate
        // set). The profile is fixed per run and the candidate set is
        // `reps` — unless a path names a `LinkedAccount`, which widens
        // candidates target-specifically and bypasses the memo. Path
        // order is irrelevant to a minimum, so the key sorts it.
        let memo_key = if self.memo_enabled
            && !paths.iter().any(|p| {
                p.factors.iter().any(|f| matches!(f, CredentialFactor::LinkedAccount(_)))
            }) {
            let mut factor_lists: Vec<Vec<CredentialFactor>> =
                paths.iter().map(|p| p.factors.clone()).collect();
            factor_lists.sort();
            let key = (factor_lists, self.reps.len());
            if let Some(&hit) = self.memo.get(&key) {
                stats.minprov_memo_hits.inc();
                return hit;
            }
            stats.minprov_memo_misses.inc();
            Some(key)
        } else {
            None
        };
        let answer = self.min_providers_uncached(paths, ap, compromised, nodes, id_index);
        if let Some(key) = memo_key {
            self.memo.insert(key, answer);
        }
        answer
    }

    /// The full representative enumeration behind [`Self::min_providers`].
    fn min_providers_uncached(
        &mut self,
        paths: &[&actfort_ecosystem::policy::AuthPath],
        ap: &AttackerProfile,
        compromised: &BTreeSet<usize>,
        nodes: &[&ServiceSpec],
        id_index: &BTreeMap<&ServiceId, usize>,
    ) -> usize {
        let empty = InfoPool::new();
        if paths.iter().any(|p| path_satisfied(p, ap, &empty)) {
            return 0;
        }
        // Candidates: every class representative, plus any compromised
        // provider the target names in a `LinkedAccount` factor.
        let mut candidates: Vec<usize> = self.reps.clone();
        for path in paths {
            for factor in &path.factors {
                if let CredentialFactor::LinkedAccount(id) = factor {
                    if let Some(&j) = id_index.get(id) {
                        if compromised.contains(&j) && !candidates.contains(&j) {
                            candidates.push(j);
                        }
                    }
                }
            }
        }
        for &j in &candidates {
            self.pool(nodes, j);
        }
        for &j in &candidates {
            if paths.iter().any(|p| path_satisfied(p, ap, self.pool_ref(j))) {
                return 1;
            }
        }
        for (ai, &a) in candidates.iter().enumerate() {
            let pa = self.pool_ref(a);
            for &b in &candidates[ai + 1..] {
                if paths.iter().any(|p| path_satisfied_pair(p, ap, pa, self.pool_ref(b))) {
                    return 2;
                }
            }
        }
        3
    }
}

/// Incremental forward fixed point — `Engine::Incremental` in the query
/// facade. Produces results identical to the naive reference (see the
/// equivalence property tests); only the work schedule differs. `class`
/// filters which attack paths each node may fall through; the filtered
/// path lists feed the reverse index and every `min_providers` query,
/// so the whole run sees one consistent class view.
pub(crate) fn forward_incremental_impl(
    specs: &[ServiceSpec],
    platform: Platform,
    ap: &AttackerProfile,
    seeds: &[ServiceId],
    memo_enabled: bool,
    class: EdgeClass,
) -> ForwardResult {
    let _span = obs::span("forward.incremental");
    let stats = EngineStats::fetch();
    obs::add("engine.runs", 1);
    let nodes: Vec<&ServiceSpec> = specs
        .iter()
        .filter(|s| match platform {
            Platform::Web => s.has_web,
            Platform::MobileApp => s.has_mobile,
        })
        .collect();
    // Attack paths per node, computed once instead of once per round.
    let paths: Vec<Vec<&actfort_ecosystem::policy::AuthPath>> =
        nodes.iter().map(|s| attack_paths_in(s, platform, class)).collect();
    let index = ReverseIndex::build(&paths);
    let id_index: BTreeMap<&ServiceId, usize> =
        nodes.iter().enumerate().map(|(i, s)| (&s.id, i)).collect();

    let mut pool = InfoPool::new();
    let mut compromised: BTreeSet<usize> = BTreeSet::new();
    let mut records: BTreeMap<ServiceId, CompromiseRecord> = BTreeMap::new();
    let mut rounds: Vec<Vec<ServiceId>> = Vec::new();
    let mut providers = ProviderIndex::new(nodes.len(), memo_enabled, platform);

    // Round 0: seeds.
    let mut seed_round = Vec::new();
    for (i, s) in nodes.iter().enumerate() {
        if seeds.contains(&s.id) {
            compromised.insert(i);
            pool.absorb_compromise(s, platform);
            stats.observe_register(providers.register(&nodes, i));
            records.insert(s.id.clone(), CompromiseRecord { round: 0, min_providers: 0 });
            seed_round.push(s.id.clone());
        }
    }
    rounds.push(seed_round);

    // Round 1 evaluates every standing node; afterwards only flag
    // subscribers can change, so the frontier shrinks to them.
    let mut frontier: BTreeSet<usize> =
        (0..nodes.len()).filter(|i| !compromised.contains(i)).collect();

    while !frontier.is_empty() {
        let round = rounds.len();
        stats.rounds.inc();
        stats.evaluated.add(frontier.len() as u64);
        // Nodes the reverse index let this round skip: everything still
        // standing that no flipped flag subscribes.
        stats.skipped.add(((nodes.len() - compromised.len()) - frontier.len()) as u64);
        obs::observe("engine.frontier_size", frontier.len() as u64);
        // Synchronous BFS: the whole frontier is judged against the
        // same pre-round pool, so `round` stays a true layer number.
        let newly: Vec<usize> = {
            let _eval = obs::span("evaluate");
            frontier
                .iter()
                .copied()
                .filter(|&i| paths[i].iter().any(|p| path_satisfied(p, ap, &pool)))
                .collect()
        };
        if newly.is_empty() {
            break;
        }
        stats.fell.add(newly.len() as u64);
        // Records are computed against the *pre-round* compromised set:
        // providers are accounts that had already fallen when this
        // layer was judged, never same-round peers.
        let mut ids = Vec::with_capacity(newly.len());
        {
            let _rec = obs::span("min_providers");
            for &i in &newly {
                stats.minprov_queries.inc();
                let min_providers =
                    providers.min_providers(&paths[i], ap, &compromised, &nodes, &id_index, &stats);
                records.insert(nodes[i].id.clone(), CompromiseRecord { round, min_providers });
                ids.push(nodes[i].id.clone());
            }
        }

        let before = FlagState::of(&pool);
        {
            let _abs = obs::span("absorb");
            for &i in &newly {
                compromised.insert(i);
                pool.absorb_compromise(nodes[i], platform);
                stats.observe_register(providers.register(&nodes, i));
            }
        }
        let after = FlagState::of(&pool);
        rounds.push(ids);

        // Next frontier: subscribers of every flag that flipped.
        frontier.clear();
        for slot in 0..TRACKED_KINDS.len() {
            if after.kinds_full[slot] && !before.kinds_full[slot] {
                frontier.extend(index.kind_subs[slot].iter().copied());
            }
        }
        if after.owns_email && !before.owns_email {
            frontier.extend(index.email_subs.iter().copied());
        }
        for &i in &newly {
            if let Some(subs) = index.link_subs.get(&nodes[i].id) {
                frontier.extend(subs.iter().copied());
            }
        }
        frontier.retain(|i| !compromised.contains(i));
    }

    let uncompromised = nodes
        .iter()
        .enumerate()
        .filter(|(i, _)| !compromised.contains(i))
        .map(|(_, s)| s.id.clone())
        .collect();
    ForwardResult { rounds, records, uncompromised, final_pool: pool }
}

/// Shards independent analyses across scoped worker threads.
///
/// Work items are claimed through an atomic index (no pre-chunking, so
/// uneven item costs balance naturally) and results are returned in
/// input order. With one thread — or one item — it degrades to a plain
/// serial map, which keeps single-core environments overhead-free.
#[derive(Debug, Clone, Copy)]
pub struct BatchAnalyzer {
    threads: usize,
}

impl Default for BatchAnalyzer {
    /// [`Self::from_env`], panicking on a malformed `ACTFORT_THREADS`.
    ///
    /// A setting like `ACTFORT_THREADS=0` used to fall through silently
    /// to the parallelism probe, hiding the operator's typo until a
    /// production box ran with the wrong worker count. `Default` has no
    /// error channel, so it fails loudly instead; callers that can
    /// propagate should use [`Self::from_env`] directly.
    fn default() -> Self {
        Self::from_env().unwrap_or_else(|e| panic!("{e}"))
    }
}

impl BatchAnalyzer {
    /// An analyzer running on up to `threads` workers (minimum 1).
    pub fn new(threads: usize) -> Self {
        Self { threads: threads.max(1) }
    }

    /// [`Self::available`], unless the `ACTFORT_THREADS` environment
    /// variable overrides the worker count. Unset (or empty) means the
    /// parallelism probe; anything set but not a positive integer is
    /// rejected with [`Error::Config`](crate::Error::Config) — a silent
    /// fallback would mask operator typos.
    pub fn from_env() -> Result<Self, crate::Error> {
        match std::env::var("ACTFORT_THREADS") {
            Err(_) => Ok(Self::available()),
            Ok(raw) if raw.trim().is_empty() => Ok(Self::available()),
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(n) if n >= 1 => Ok(Self::new(n)),
                _ => Err(crate::Error::config(
                    "ACTFORT_THREADS",
                    raw,
                    "a positive integer worker count (unset it for the parallelism probe)",
                )),
            },
        }
    }

    /// An analyzer sized to the machine's available parallelism.
    pub fn available() -> Self {
        Self::new(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// Worker count this analyzer will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, in parallel, preserving input order.
    pub fn run<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.run_with(items, || (), |(), item| f(item))
    }

    /// [`Self::run`] with per-worker state: `init` runs once per worker
    /// (once total on the serial path) and each call of `f` gets that
    /// worker's state mutably. This is the scratch-buffer fast path for
    /// sweeps over a shared [`Prepared`](crate::Prepared) substrate —
    /// one `ForwardScratch` per worker instead of per item.
    pub fn run_with<T, R, S, I, F>(&self, items: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &T) -> R + Sync,
    {
        let _span = obs::span("batch.run");
        let n = items.len();
        obs::add("engine.batch.runs", 1);
        obs::add("engine.batch.items", n as u64);
        let workers = self.threads.min(n);
        if workers <= 1 {
            let mut state = init();
            return items.iter().map(|item| f(&mut state, item)).collect();
        }
        let next = AtomicUsize::new(0);
        let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&mut state, &items[i])));
                    }
                    done.lock().expect("a worker panicked").extend(local);
                });
            }
        });
        let mut pairs = done.into_inner().expect("a worker panicked");
        pairs.sort_unstable_by_key(|&(i, _)| i);
        pairs.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::forward_naive_impl;
    use actfort_ecosystem::dataset::curated_services;

    fn forward_incremental(
        specs: &[ServiceSpec],
        platform: Platform,
        ap: &AttackerProfile,
        seeds: &[ServiceId],
    ) -> ForwardResult {
        forward_incremental_impl(specs, platform, ap, seeds, true, EdgeClass::All)
    }

    fn assert_equivalent(specs: &[ServiceSpec], platform: Platform, ap: &AttackerProfile, seeds: &[ServiceId]) {
        let naive = forward_naive_impl(specs, platform, ap, seeds, EdgeClass::All);
        let inc = forward_incremental(specs, platform, ap, seeds);
        assert_eq!(naive.rounds, inc.rounds);
        assert_eq!(naive.records, inc.records);
        assert_eq!(naive.uncompromised, inc.uncompromised);
    }

    #[test]
    fn equivalent_on_curated_population() {
        let specs = curated_services();
        for platform in [Platform::Web, Platform::MobileApp] {
            assert_equivalent(&specs, platform, &AttackerProfile::paper_default(), &[]);
            assert_equivalent(&specs, platform, &AttackerProfile::none(), &["gmail".into()]);
            assert_equivalent(&specs, platform, &AttackerProfile::targeted(), &[]);
        }
    }

    #[test]
    fn equivalent_on_synthetic_population() {
        let specs = actfort_ecosystem::synth::paper_population(2021);
        for platform in [Platform::Web, Platform::MobileApp] {
            assert_equivalent(&specs, platform, &AttackerProfile::paper_default(), &[]);
        }
    }

    #[test]
    fn memoized_and_unmemoized_engines_agree() {
        let check = |specs: &[ServiceSpec], seeds: &[ServiceId]| {
            for platform in [Platform::Web, Platform::MobileApp] {
                let with = forward_incremental(specs, platform, &AttackerProfile::paper_default(), seeds);
                let without =
                    forward_incremental_impl(specs, platform, &AttackerProfile::paper_default(), seeds, false, EdgeClass::All);
                assert_eq!(with.rounds, without.rounds);
                assert_eq!(with.records, without.records);
                assert_eq!(with.uncompromised, without.uncompromised);
            }
        };
        check(&curated_services(), &[]);
        check(&curated_services(), &["gmail".into()]);
        check(&actfort_ecosystem::synth::paper_population(2021), &[]);
    }

    #[test]
    fn minprov_memo_fires_on_synthetic_population() {
        // The only lib test toggling the global recorder; integration
        // test binaries that do so run in their own processes.
        let specs = actfort_ecosystem::synth::paper_population(7);
        let hits = obs::counter("engine.minprov_memo_hits");
        let misses = obs::counter("engine.minprov_memo_misses");
        let (h0, m0) = (hits.get(), misses.get());
        obs::set_enabled(true);
        forward_incremental(&specs, Platform::Web, &AttackerProfile::paper_default(), &[]);
        obs::set_enabled(false);
        assert!(hits.get() > h0, "archetype cohorts should share memo entries");
        assert!(misses.get() > m0, "first member of each cohort misses");
    }

    #[test]
    fn actfort_threads_env_overrides_default() {
        // Serialized against other env-reading tests by running in one
        // process-wide test binary; the variable is always restored.
        std::env::set_var("ACTFORT_THREADS", "3");
        assert_eq!(BatchAnalyzer::default().threads(), 3);
        assert_eq!(BatchAnalyzer::from_env().unwrap().threads(), 3);
        // Malformed values are rejected loudly, not silently probed
        // around (the old behaviour masked operator typos).
        for bad in ["not-a-number", "0", "-2"] {
            std::env::set_var("ACTFORT_THREADS", bad);
            let err = BatchAnalyzer::from_env().expect_err(bad);
            assert_eq!(err.code(), crate::error::CODE_CONFIG, "{bad}");
            assert!(err.is_client_error(), "{bad}");
            assert!(err.to_string().contains("ACTFORT_THREADS"), "{bad}: {err}");
        }
        // `Default` has no error channel: it must propagate the
        // rejection as a panic rather than swallow it. (Folded into this
        // test because env-var tests in one binary must not run in
        // parallel with each other.)
        std::env::set_var("ACTFORT_THREADS", "banana");
        let panic = std::panic::catch_unwind(BatchAnalyzer::default).expect_err("must panic");
        let msg = panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("ACTFORT_THREADS"), "panic message names the knob: {msg}");
        // Unset and blank mean the parallelism probe.
        std::env::set_var("ACTFORT_THREADS", "  ");
        assert_eq!(BatchAnalyzer::from_env().unwrap().threads(), BatchAnalyzer::available().threads());
        std::env::remove_var("ACTFORT_THREADS");
        assert_eq!(BatchAnalyzer::default().threads(), BatchAnalyzer::available().threads());
    }

    #[test]
    fn batch_preserves_order_and_results() {
        let items: Vec<u64> = (0..97).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 5, 16] {
            let got = BatchAnalyzer::new(threads).run(&items, |&x| x * x + 1);
            assert_eq!(got, serial, "threads={threads}");
        }
    }

    #[test]
    fn batch_handles_empty_and_singleton() {
        let analyzer = BatchAnalyzer::new(8);
        let empty: Vec<u32> = Vec::new();
        assert!(analyzer.run(&empty, |&x| x).is_empty());
        assert_eq!(analyzer.run(&[7u32], |&x| x + 1), vec![8]);
        assert!(BatchAnalyzer::available().threads() >= 1);
    }
}
