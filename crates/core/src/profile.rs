//! The attacker profile (AP) — §III-D.
//!
//! The TDG carries "an attacker profile which contains information about
//! an assumed attacker's capabilities, such as SMS Code interception,
//! social engineering database, and etc."

use serde::{Deserialize, Serialize};

/// Base capabilities assumed of the attacker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackerProfile {
    /// Knows the victim's cellphone number (phishing Wi-Fi / leak DB).
    pub knows_phone_number: bool,
    /// Can intercept SMS codes (passive sniffing or active MitM).
    pub sms_interception: bool,
    /// Can intercept email codes *without* first owning the mailbox
    /// (e.g. a mail-provider breach or TLS-stripping position). §VII-B:
    /// "any weak factors (like email code) in the ecosystem can be the
    /// breakthrough point" — this switch makes email the initial attack
    /// surface instead of (or alongside) SMS.
    pub email_interception: bool,
    /// Holds a social-engineering / leak database yielding the victim's
    /// legal name and home address.
    pub social_engineering_db: bool,
    /// Can run phishing campaigns (lowers stealth; not used by the
    /// default analyses but recorded for completeness).
    pub phishing: bool,
}

impl AttackerProfile {
    /// The paper's standard profile: cellphone number + SMS interception.
    pub fn paper_default() -> Self {
        Self {
            knows_phone_number: true,
            sms_interception: true,
            email_interception: false,
            social_engineering_db: false,
            phishing: false,
        }
    }

    /// The targeted-attack profile: adds the black-market leak database.
    pub fn targeted() -> Self {
        Self { social_engineering_db: true, ..Self::paper_default() }
    }

    /// The §VII-B extension: email codes, not SMS codes, are the
    /// breakthrough factor.
    pub fn email_surface() -> Self {
        Self {
            knows_phone_number: true,
            sms_interception: false,
            email_interception: true,
            social_engineering_db: false,
            phishing: false,
        }
    }

    /// A powerless profile (for countermeasure baselines).
    pub fn none() -> Self {
        Self {
            knows_phone_number: false,
            sms_interception: false,
            email_interception: false,
            social_engineering_db: false,
            phishing: false,
        }
    }
}

impl Default for AttackerProfile {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let p = AttackerProfile::paper_default();
        assert!(p.knows_phone_number && p.sms_interception);
        assert!(!p.social_engineering_db && !p.email_interception);
        assert!(AttackerProfile::targeted().social_engineering_db);
        let none = AttackerProfile::none();
        assert!(!none.knows_phone_number && !none.sms_interception);
        let email = AttackerProfile::email_surface();
        assert!(email.email_interception && !email.sms_interception);
    }
}
