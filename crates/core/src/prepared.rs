//! The prepared analysis substrate: one compilation per
//! `(population, platform, attacker-profile)`, many cheap analyses.
//!
//! The incremental engine in [`crate::engine`] already avoids the naive
//! loop's full rescans, but it still pays a per-*run* tax that dominates
//! batch sweeps: every `forward` call re-filters the spec list, rebuilds
//! the reverse index, re-walks exposure lists into `InfoPool`s, and keys
//! its `min_providers` memo on freshly cloned
//! `Vec<Vec<CredentialFactor>>` lists compared `BTreeMap`-style. This
//! module hoists all of that into [`Prepared`], built once and shared
//! (immutably, hence freely across threads) by any number of analyses:
//!
//! - **Interned ids.** Platform-eligible services become dense `u32`
//!   node ids; `compromised` / frontier / class-seen state are `u64`
//!   word bitsets instead of `BTreeSet<usize>`.
//! - **Compiled paths.** Every attack path is folded against the static
//!   attacker profile into a [`CPath`]: a 6-bit required-kind mask over
//!   [`TRACKED_KINDS`](crate::engine), a mailbox bit, a
//!   customer-service bit and resolved link ids. Factors the profile
//!   satisfies outright vanish; factors it can never satisfy (SMS
//!   without interception, unresolvable links, robust factors) kill the
//!   path at compile time. Path satisfaction at run time is three mask
//!   tests and a popcount.
//! - **Compiled providers.** Each node's singleton pool is flattened to
//!   a [`Provider`]: direct-full bits, the three positional coverage
//!   masks, mailbox control and an interned pool-signature class (the
//!   provider-collapse equivalence class, precomputed instead of
//!   re-hashed per run).
//! - **Interned memo keys.** The cross-round `min_providers` memo is
//!   keyed by a per-node *pathset id* — the interned, sorted list of
//!   compiled path signatures — plus the representative-set generation.
//!   A lookup is one array index and one integer compare; the old
//!   engine cloned and ordered the factor lists on every query.
//! - **Scratch reuse.** All mutable run state lives in
//!   [`ForwardScratch`]; [`Prepared::forward_with`] clears and reuses
//!   it, so a sweep of N seed sets allocates once, not N times.
//!
//! Results are byte-identical to [`crate::analysis::forward_naive`] and
//! the incremental engine — pinned by the unit tests below and the
//! property tests in `tests/proptests.rs`. The memo key is coarser than
//! the old engine's (distinct factor lists that compile to the same
//! `CPath`s share an entry), which is sound because the `min_providers`
//! answer is a function of the compiled form: hit counts may improve,
//! answers cannot change. See DESIGN.md §12.

use crate::analysis::{CompromiseRecord, ForwardResult};
use crate::obs;
use crate::pool::{attack_paths, canonical_len, InfoPool, PoolSignature};
use crate::profile::AttackerProfile;
use crate::score::{OverlayFactor, UserOverlay};
use actfort_ecosystem::factor::{CredentialFactor, ServiceId};
use actfort_ecosystem::info::PersonalInfoKind;
use actfort_ecosystem::policy::{AuthPath, EdgeClass, Platform};
use actfort_ecosystem::spec::ServiceSpec;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-unique substrate identity source (see [`Prepared::stamp`]).
static NEXT_STAMP: AtomicU64 = AtomicU64::new(1);

/// Tracked-kind bit positions, aligned with the engine's
/// `TRACKED_KINDS` order: RealName, CitizenId, CellphoneNumber,
/// Address, BankcardNumber, SecurityAnswers.
const BIT_REAL_NAME: u8 = 1 << 0;
const BIT_CITIZEN_ID: u8 = 1 << 1;
const BIT_CELLPHONE: u8 = 1 << 2;
const BIT_ADDRESS: u8 = 1 << 3;
const BIT_BANKCARD: u8 = 1 << 4;
const BIT_SECURITY: u8 = 1 << 5;

/// Positions of the six tracked kinds inside the
/// [`PersonalInfoKind::all`] ordering, used to project a pool
/// signature's 13-kind full mask down to the 6 tracked bits.
const TRACKED_IN_ALL: [usize; 6] = [0, 1, 2, 4, 9, 12];

/// The kinds with positional coverage, in [`PoolSignature`] order, and
/// the tracked bit each completes.
const COV_KINDS: [PersonalInfoKind; 3] = [
    PersonalInfoKind::CitizenId,
    PersonalInfoKind::BankcardNumber,
    PersonalInfoKind::CellphoneNumber,
];
pub(crate) const COV_BITS: [u8; 3] = [BIT_CITIZEN_ID, BIT_BANKCARD, BIT_CELLPHONE];

/// Class id of an uninformative provider (never a representative).
const CLASS_NONE: u32 = u32::MAX;

/// Memo generation sentinel: slot never written.
const GEN_NONE: u32 = u32::MAX;

/// Canonical lengths of the three positionally-covered kinds, in
/// [`PoolSignature`] slot order — the word layout of the lane engine's
/// transposed coverage state (`crate::score`).
pub(crate) const COV_LENS: [u32; 3] = [18, 16, 11];

#[inline]
pub(crate) fn bit(words: &[u64], i: u32) -> bool {
    words[(i >> 6) as usize] & (1u64 << (i & 63)) != 0
}

#[inline]
pub(crate) fn set_bit(words: &mut [u64], i: u32) {
    words[(i >> 6) as usize] |= 1u64 << (i & 63);
}

/// Tracked bits completed by positional coverage: a coverage mask equal
/// to the full canonical-length mask makes its kind fully known.
#[inline]
pub(crate) fn cov_complete_bits(cov: [u32; 3]) -> u8 {
    let mut bits = 0u8;
    for slot in 0..3 {
        let len = canonical_len(COV_KINDS[slot]).expect("coverage kinds have canonical lengths");
        if cov[slot] == (1u32 << len) - 1 {
            bits |= COV_BITS[slot];
        }
    }
    bits
}

/// Projects a pool signature's 13-kind full mask to the 6 tracked bits.
#[inline]
fn tracked_bits(full_mask: u16) -> u8 {
    let mut bits = 0u8;
    for (slot, &all_bit) in TRACKED_IN_ALL.iter().enumerate() {
        if full_mask & (1 << all_bit) != 0 {
            bits |= 1 << slot;
        }
    }
    bits
}

/// One attack path compiled against the static attacker profile.
/// Factors the profile satisfies are gone; what remains is exactly the
/// run-time-variable residue of `factor_satisfied_view`.
#[derive(Clone)]
pub(crate) struct CPath {
    /// Tracked kinds that must be fully known.
    pub(crate) req: u8,
    /// Needs mailbox control (an `EmailCode`/`EmailLink` the profile
    /// cannot intercept).
    pub(crate) needs_email: bool,
    /// Needs the customer-service dossier (≥ 3 identity facts) and the
    /// profile alone holds fewer than 3.
    pub(crate) needs_cs: bool,
    /// `LinkedAccount` providers, as node ids, all of which must be
    /// owned.
    pub(crate) links: Vec<u32>,
    /// [`crate::score::OverlayFactor`] mask over the path's *original*
    /// factor kinds — including ones the attacker profile folded away —
    /// so a per-user overlay can disable a path whose SMS/email step
    /// the profile would otherwise intercept for free.
    pub(crate) fmask: u16,
    /// Index of `fmask` in [`Prepared::fmasks`]: lane batches compute
    /// one activation word per *distinct* mask, not per path.
    pub(crate) fmask_id: u32,
    /// Edge-class tag: whether the source path's purpose is a recovery
    /// flow ([`actfort_ecosystem::policy::Purpose::is_recovery`]).
    /// Class-filtered queries test it with
    /// [`EdgeClass::admits_recovery`]; under [`EdgeClass::All`] the test
    /// is vacuous.
    pub(crate) recovery: bool,
}

/// Index of a class in the per-node `[_; 3]` class-state arrays.
#[inline]
pub(crate) fn class_index(class: EdgeClass) -> usize {
    match class {
        EdgeClass::All => 0,
        EdgeClass::LoginOnly => 1,
        EdgeClass::RecoveryOnly => 2,
    }
}

/// A node's singleton pool, flattened to the bits factor satisfaction
/// actually reads.
#[derive(Clone, Copy)]
pub(crate) struct Provider {
    /// Tracked kinds exposed fully (Photos-in-the-clear already folded
    /// into CitizenId by `absorb_compromise`).
    pub(crate) raw: u8,
    /// Positional coverage masks, [`PoolSignature`] order.
    pub(crate) cov: [u32; 3],
    /// `raw` plus coverage-completed bits — the kinds this provider
    /// alone makes fully known.
    pub(crate) eff: u8,
    /// Compromising this node grants mailbox control.
    pub(crate) email: bool,
    /// Interned pool-signature class, or [`CLASS_NONE`] when the pool
    /// is uninformative (such providers only matter via `LinkedAccount`
    /// factors naming them).
    class: u32,
}

/// Per-node compiled form.
pub(crate) struct Node {
    /// Live compiled paths (paths the profile can never satisfy are
    /// dropped — they can't satisfy, so they can't compromise).
    pub(crate) live: Vec<CPath>,
    /// Every resolvable `LinkedAccount` target across *all* attack
    /// paths (dead ones included), in path-then-factor order — the
    /// extra `min_providers` candidates beyond the class
    /// representatives.
    all_links: Vec<u32>,
    /// Satisfiable by the profile alone (the `min_providers == 0`
    /// case, a compile-time constant), per edge class
    /// ([`class_index`] order).
    open: [bool; 3],
    /// Interned pathset id for the `min_providers` memo, per edge
    /// class; `None` when any class-admitted path names a
    /// `LinkedAccount` (candidate set is then target-specific,
    /// bypassing the memo — same rule as the incremental engine). The
    /// memo stays sound per class because the key is the sorted
    /// `(req, email, cs)` list of exactly the class-admitted live
    /// paths: equal keys mean equal `min_providers` answers regardless
    /// of which class produced them, so all three classes share one
    /// interning map.
    pathset: [Option<u32>; 3],
}

/// A compiled overlay patch against one specific [`Prepared`]: the
/// recompiled state of the nodes a countermeasure set *touches* (its
/// blast radius), with everything untouched read from the base at run
/// time. This is the countermeasure analogue of the per-user
/// [`UserOverlay`](crate::score::UserOverlay): the base substrate stays
/// shared and immutable; the delta rides on top.
///
/// Built with [`Prepared::compile_patch`] (normally via
/// [`crate::counter::Patcher`], which computes the blast radius), run
/// with [`Prepared::forward_patched`]. Compilation cost is proportional
/// to the touched-node count, not the population: interned class /
/// pathset / fmask ids are resolved against the base's retained maps, so
/// a patched provider whose pool signature the base already interned
/// collapses into the same class as its untouched twins, and genuinely
/// new signatures mint fresh ids appended past the base tables.
pub struct SubstratePatch {
    /// [`Prepared::stamp`] of the base this patch was compiled against.
    base_stamp: u64,
    /// Touched node ids, ascending.
    touched: Vec<u32>,
    /// Dense node-id → patch-slot lookup; `u32::MAX` means untouched
    /// (read the base).
    slot_of: Vec<u32>,
    /// Recompiled per-touched-node state, slot order.
    providers: Vec<Provider>,
    nodes: Vec<Node>,
    specs: Vec<ServiceSpec>,
    /// Class / pathset id-space sizes including patch-minted ids
    /// (scratch sizing; base ids stay valid, patch ids append).
    classes: usize,
    pathsets: usize,
    /// Extra reverse-index subscriptions from touched nodes' recompiled
    /// paths. The base keeps its (possibly stale) entries for those
    /// nodes; over-subscription only ever costs a redundant
    /// re-evaluation, never a missed one.
    kind_subs: [Vec<u32>; 6],
    email_subs: Vec<u32>,
    link_subs: BTreeMap<u32, Vec<u32>>,
}

impl SubstratePatch {
    /// Node ids this patch recompiles (the blast radius), ascending.
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }

    /// [`Prepared::stamp`] of the base substrate this patch targets.
    pub fn base_stamp(&self) -> u64 {
        self.base_stamp
    }
}

/// Counter handles for one prepared forward run; same names as the
/// incremental engine, so dashboards and invariants carry over.
struct Stats {
    rounds: obs::Counter,
    evaluated: obs::Counter,
    skipped: obs::Counter,
    fell: obs::Counter,
    class_reps: obs::Counter,
    class_collapsed: obs::Counter,
    minprov_queries: obs::Counter,
    minprov_memo_hits: obs::Counter,
    minprov_memo_misses: obs::Counter,
}

impl Stats {
    fn fetch() -> Self {
        Self {
            rounds: obs::counter("engine.rounds"),
            evaluated: obs::counter("engine.nodes_evaluated"),
            skipped: obs::counter("engine.nodes_skipped"),
            fell: obs::counter("engine.nodes_fell"),
            class_reps: obs::counter("engine.provider_class_reps"),
            class_collapsed: obs::counter("engine.provider_class_collapsed"),
            minprov_queries: obs::counter("engine.min_provider_queries"),
            minprov_memo_hits: obs::counter("engine.minprov_memo_hits"),
            minprov_memo_misses: obs::counter("engine.minprov_memo_misses"),
        }
    }
}

/// The attacker's variable knowledge during one run, as the compiled
/// paths read it. Ownership lives in the `compromised` bitset (the
/// absorbed node set *is* the owned set).
#[derive(Default, Clone, Copy)]
pub(crate) struct RunState {
    pub(crate) raw: u8,
    pub(crate) cov: [u32; 3],
    pub(crate) eff: u8,
    pub(crate) email: bool,
}

impl RunState {
    #[inline]
    pub(crate) fn absorb(&mut self, p: &Provider) {
        self.raw |= p.raw;
        for slot in 0..3 {
            self.cov[slot] |= p.cov[slot];
        }
        self.email |= p.email;
        self.eff = self.raw | cov_complete_bits(self.cov);
    }
}

/// Reusable per-analysis mutable state. Create with
/// [`Prepared::scratch`]; every [`Prepared::forward_with`] call clears
/// and resizes it, so one scratch serves any number of runs (and any
/// substrate).
#[derive(Default)]
pub struct ForwardScratch {
    compromised: Vec<u64>,
    frontier: Vec<u64>,
    class_seen: Vec<u64>,
    reps: Vec<u32>,
    /// `min_providers` memo: one slot per pathset,
    /// `(representative generation, answer)`.
    memo: Vec<(u32, u8)>,
    newly: Vec<u32>,
    candidates: Vec<u32>,
}

impl ForwardScratch {
    /// An empty scratch; [`Prepared::forward_with`] sizes it on use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// An ecosystem compiled for analysis: build once per
/// `(population, platform, attacker-profile)` with [`Prepared::new`],
/// then run any number of forward analyses against it — concurrently,
/// via `Arc`, with one [`ForwardScratch`] per thread.
pub struct Prepared {
    platform: Platform,
    ap: AttackerProfile,
    /// Identity facts the profile knows without any compromise
    /// (tracked bits).
    pub(crate) ap_kinds: u8,
    /// Platform-eligible specs, node-id order.
    specs: Vec<ServiceSpec>,
    /// Owned name → node-id index (overlay construction resolves user
    /// service lists against it without re-scanning the spec list).
    pub(crate) ids: BTreeMap<ServiceId, u32>,
    pub(crate) providers: Vec<Provider>,
    pub(crate) nodes: Vec<Node>,
    /// Distinct [`CPath::fmask`] values, indexed by [`CPath::fmask_id`]
    /// — the lane engine precomputes one per-batch activation word per
    /// entry (`crate::score`).
    pub(crate) fmasks: Vec<u16>,
    /// Distinct informative pool-signature classes.
    classes: usize,
    /// Distinct interned pathsets (memo table size).
    pathsets: usize,
    /// The interning maps behind `classes` / `pathsets` / `fmasks`,
    /// retained after compilation so a [`SubstratePatch`] can re-intern
    /// its recompiled nodes against the *same* id space: signatures the
    /// base already saw reuse their ids (a patched provider collapses
    /// into the same class as an identical untouched one), new
    /// signatures mint fresh ids appended past the base counts.
    class_of: BTreeMap<PoolSignature, u32>,
    pathset_of: BTreeMap<Vec<(u8, bool, bool)>, u32>,
    fmask_of: BTreeMap<u16, u32>,
    /// Process-unique identity: patches record the stamp of the base
    /// they were compiled against, and [`Prepared::forward_patched`]
    /// refuses a patch stamped for a different substrate.
    stamp: u64,
    /// Reverse index over *unresolved* atoms of live paths: nodes to
    /// re-evaluate when a tracked kind becomes fully known…
    kind_subs: [Vec<u32>; 6],
    /// …when the mailbox falls…
    email_subs: Vec<u32>,
    /// …or when a specific provider is compromised (`link_subs[p]`).
    link_subs: Vec<Vec<u32>>,
}

impl std::fmt::Debug for Prepared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prepared")
            .field("platform", &self.platform)
            .field("nodes", &self.nodes.len())
            .field("classes", &self.classes)
            .field("pathsets", &self.pathsets)
            .finish_non_exhaustive()
    }
}

impl Prepared {
    /// Compiles `specs` (platform-filtered) against `ap`.
    pub fn new(specs: &[ServiceSpec], platform: Platform, ap: AttackerProfile) -> Self {
        let _span = obs::span("prepare");
        obs::add("engine.prepares", 1);
        let specs: Vec<ServiceSpec> = specs
            .iter()
            .filter(|s| match platform {
                Platform::Web => s.has_web,
                Platform::MobileApp => s.has_mobile,
            })
            .cloned()
            .collect();
        let n = specs.len();
        let ids: BTreeMap<ServiceId, u32> =
            specs.iter().enumerate().map(|(i, s)| (s.id.clone(), i as u32)).collect();
        debug_assert_eq!(ids.len(), n, "service ids must be unique within a population");

        let mut ap_kinds = 0u8;
        if ap.social_engineering_db {
            ap_kinds |= BIT_REAL_NAME | BIT_ADDRESS;
        }
        if ap.knows_phone_number {
            ap_kinds |= BIT_CELLPHONE;
        }
        let cs_static = ap_kinds.count_ones() >= 3;

        // Providers: flatten each node's singleton pool and intern its
        // signature class.
        let mut class_of: BTreeMap<PoolSignature, u32> = BTreeMap::new();
        let providers: Vec<Provider> = specs
            .iter()
            .map(|s| {
                let mut pool = InfoPool::new();
                pool.absorb_compromise(s, platform);
                let (full_mask, cov, email) = pool.signature();
                let raw = tracked_bits(full_mask);
                let class = if pool.is_informative() {
                    let next = class_of.len() as u32;
                    *class_of.entry((full_mask, cov, email)).or_insert(next)
                } else {
                    CLASS_NONE
                };
                Provider { raw, cov, eff: raw | cov_complete_bits(cov), email, class }
            })
            .collect();

        // Nodes: compile paths, collect link candidates, intern
        // pathsets and overlay-factor masks.
        let mut pathset_of: BTreeMap<Vec<(u8, bool, bool)>, u32> = BTreeMap::new();
        let mut fmask_of: BTreeMap<u16, u32> = BTreeMap::new();
        let nodes: Vec<Node> = specs
            .iter()
            .map(|s| {
                let paths = attack_paths(s, platform);
                let mut all_links = Vec::new();
                for p in &paths {
                    for f in &p.factors {
                        if let CredentialFactor::LinkedAccount(id) = f {
                            if let Some(&j) = ids.get(id) {
                                all_links.push(j);
                            }
                        }
                    }
                }
                let mut live: Vec<CPath> = paths
                    .iter()
                    .filter_map(|p| compile_path(p, &ap, cs_static, &ids))
                    .collect();
                for cp in &mut live {
                    let next = fmask_of.len() as u32;
                    cp.fmask_id = *fmask_of.entry(cp.fmask).or_insert(next);
                }
                let (open, pathset) = node_class_state(&paths, &live, |key| {
                    let next = pathset_of.len() as u32;
                    *pathset_of.entry(key).or_insert(next)
                });
                Node { live, all_links, open, pathset }
            })
            .collect();

        // Reverse index over the atoms that can still flip: a node is
        // re-evaluated only when an unresolved input of one of its live
        // paths changes. (The incremental engine subscribes every factor
        // occurrence, resolved or not — sound but strictly larger
        // frontiers.)
        let mut kind_subs: [Vec<u32>; 6] = Default::default();
        let mut email_subs: Vec<u32> = Vec::new();
        let mut link_subs: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, node) in nodes.iter().enumerate() {
            let i = i as u32;
            for cp in &node.live {
                for (slot, subs) in kind_subs.iter_mut().enumerate() {
                    if cp.req & (1 << slot) != 0 {
                        subs.push(i);
                    }
                }
                if cp.needs_email {
                    email_subs.push(i);
                }
                if cp.needs_cs {
                    // The fact count reads all six tracked kinds.
                    for subs in &mut kind_subs {
                        subs.push(i);
                    }
                }
                for &l in &cp.links {
                    link_subs[l as usize].push(i);
                }
            }
        }
        for subs in &mut kind_subs {
            subs.sort_unstable();
            subs.dedup();
        }
        email_subs.sort_unstable();
        email_subs.dedup();
        for subs in &mut link_subs {
            subs.sort_unstable();
            subs.dedup();
        }

        let mut fmasks = vec![0u16; fmask_of.len()];
        for (mask, id) in &fmask_of {
            fmasks[*id as usize] = *mask;
        }

        Self {
            platform,
            ap,
            ap_kinds,
            specs,
            ids,
            providers,
            nodes,
            fmasks,
            classes: class_of.len(),
            pathsets: pathset_of.len(),
            class_of,
            pathset_of,
            fmask_of,
            stamp: NEXT_STAMP.fetch_add(1, Ordering::Relaxed),
            kind_subs,
            email_subs,
            link_subs,
        }
    }

    /// Process-unique identity of this compilation (monotonic, never
    /// reused within a process). [`SubstratePatch`]es are pinned to it.
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// The platform this substrate was compiled for.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// The attacker profile this substrate was compiled against.
    pub fn attacker_profile(&self) -> AttackerProfile {
        self.ap
    }

    /// The platform-eligible specs, in node-id order.
    pub fn specs(&self) -> &[ServiceSpec] {
        &self.specs
    }

    /// Number of compiled nodes.
    pub fn node_count(&self) -> usize {
        self.specs.len()
    }

    /// A scratch sized for this substrate (any scratch works; this one
    /// just avoids the first-run growth).
    pub fn scratch(&self) -> ForwardScratch {
        let mut s = ForwardScratch::new();
        self.reset_scratch(&mut s, None);
        s
    }

    /// The forward fixed point on this substrate, with a fresh scratch.
    /// Result is byte-identical to `forward_naive` / the incremental
    /// engine.
    pub fn forward(&self, seeds: &[ServiceId], memo_enabled: bool) -> ForwardResult {
        self.forward_with(&mut self.scratch(), seeds, memo_enabled)
    }

    /// [`Self::forward`] restricted to one edge class: only
    /// class-admitted compiled paths can satisfy a node.
    /// [`EdgeClass::All`] is byte-identical to [`Self::forward`].
    pub fn forward_in(
        &self,
        class: EdgeClass,
        seeds: &[ServiceId],
        memo_enabled: bool,
    ) -> ForwardResult {
        self.forward_in_with(&mut self.scratch(), class, seeds, memo_enabled)
    }

    /// [`Self::forward_in`] reusing caller-owned scratch buffers.
    pub fn forward_in_with(
        &self,
        scratch: &mut ForwardScratch,
        class: EdgeClass,
        seeds: &[ServiceId],
        memo_enabled: bool,
    ) -> ForwardResult {
        self.forward_inner(scratch, seeds, memo_enabled, None, None, class)
    }

    fn reset_scratch(&self, s: &mut ForwardScratch, patch: Option<&SubstratePatch>) {
        let (classes, pathsets) = match patch {
            Some(p) => (p.classes, p.pathsets),
            None => (self.classes, self.pathsets),
        };
        let words = self.nodes.len().div_ceil(64);
        s.compromised.clear();
        s.compromised.resize(words, 0);
        s.frontier.clear();
        s.frontier.resize(words, 0);
        s.class_seen.clear();
        s.class_seen.resize(classes.div_ceil(64), 0);
        s.reps.clear();
        s.memo.clear();
        s.memo.resize(pathsets, (GEN_NONE, 0));
        s.newly.clear();
        s.candidates.clear();
    }

    /// [`Self::forward`] reusing caller-owned scratch buffers — the
    /// batch-sweep fast path: one substrate shared via `Arc`, one
    /// scratch per worker thread.
    pub fn forward_with(
        &self,
        scratch: &mut ForwardScratch,
        seeds: &[ServiceId],
        memo_enabled: bool,
    ) -> ForwardResult {
        self.forward_inner(scratch, seeds, memo_enabled, None, None, EdgeClass::All)
    }

    /// Compiles a [`SubstratePatch`] from `rewrites`: `(node id,
    /// replacement spec)` pairs covering exactly the nodes a
    /// countermeasure set touches, in ascending id order. Each rewrite
    /// is recompiled exactly the way [`Prepared::new`] compiled the
    /// original — same pool flattening, same path folding against the
    /// static profile — but interned against the base's retained maps,
    /// so the patched run is byte-identical to a cold compile of the
    /// rewritten population while costing only the blast radius.
    ///
    /// Replacement specs must keep their service id and platform flags
    /// (countermeasures transform policies, never the population
    /// membership); node ids and the link topology therefore stay valid.
    pub fn compile_patch(&self, rewrites: &[(u32, ServiceSpec)]) -> SubstratePatch {
        let _span = obs::span("patch.compile");
        obs::add("engine.patches", 1);
        obs::add("engine.patch_nodes", rewrites.len() as u64);
        let cs_static = self.ap_kinds.count_ones() >= 3;
        let mut touched = Vec::with_capacity(rewrites.len());
        let mut slot_of = vec![u32::MAX; self.nodes.len()];
        let mut providers = Vec::with_capacity(rewrites.len());
        let mut nodes = Vec::with_capacity(rewrites.len());
        let mut specs = Vec::with_capacity(rewrites.len());
        // Patch-local interning: ids the base already minted are reused;
        // new keys append past the base counts (shared across rewrites
        // within this patch).
        let mut new_classes: BTreeMap<PoolSignature, u32> = BTreeMap::new();
        let mut new_pathsets: BTreeMap<Vec<(u8, bool, bool)>, u32> = BTreeMap::new();
        let mut new_fmasks: BTreeMap<u16, u32> = BTreeMap::new();
        let mut kind_subs: [Vec<u32>; 6] = Default::default();
        let mut email_subs: Vec<u32> = Vec::new();
        let mut link_subs: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for (slot, (i, s)) in rewrites.iter().enumerate() {
            let i = *i;
            debug_assert!(touched.last().map_or(true, |&prev| prev < i), "rewrites must ascend");
            debug_assert_eq!(
                s.id, self.specs[i as usize].id,
                "a rewrite must replace the node's own spec"
            );
            touched.push(i);
            slot_of[i as usize] = slot as u32;

            let mut pool = InfoPool::new();
            pool.absorb_compromise(s, self.platform);
            let (full_mask, cov, email) = pool.signature();
            let raw = tracked_bits(full_mask);
            let class = if pool.is_informative() {
                let sig = (full_mask, cov, email);
                match self.class_of.get(&sig) {
                    Some(&id) => id,
                    None => {
                        let next = (self.classes + new_classes.len()) as u32;
                        *new_classes.entry(sig).or_insert(next)
                    }
                }
            } else {
                CLASS_NONE
            };
            providers.push(Provider { raw, cov, eff: raw | cov_complete_bits(cov), email, class });

            let paths = attack_paths(s, self.platform);
            let mut all_links = Vec::new();
            for p in &paths {
                for f in &p.factors {
                    if let CredentialFactor::LinkedAccount(id) = f {
                        if let Some(&j) = self.ids.get(id) {
                            all_links.push(j);
                        }
                    }
                }
            }
            let mut live: Vec<CPath> = paths
                .iter()
                .filter_map(|p| compile_path(p, &self.ap, cs_static, &self.ids))
                .collect();
            for cp in &mut live {
                cp.fmask_id = match self.fmask_of.get(&cp.fmask) {
                    Some(&id) => id,
                    None => {
                        let next = (self.fmasks.len() + new_fmasks.len()) as u32;
                        *new_fmasks.entry(cp.fmask).or_insert(next)
                    }
                };
            }
            let (open, pathset) = node_class_state(&paths, &live, |key| {
                match self.pathset_of.get(&key) {
                    Some(&id) => id,
                    None => {
                        let next = (self.pathsets + new_pathsets.len()) as u32;
                        *new_pathsets.entry(key).or_insert(next)
                    }
                }
            });
            // This node's recompiled paths may subscribe to atoms its
            // original paths never read; record those subscriptions so
            // the patched frontier sees them (mirrors `Prepared::new`).
            for cp in &live {
                for (kslot, subs) in kind_subs.iter_mut().enumerate() {
                    if cp.req & (1 << kslot) != 0 {
                        subs.push(i);
                    }
                }
                if cp.needs_email {
                    email_subs.push(i);
                }
                if cp.needs_cs {
                    for subs in &mut kind_subs {
                        subs.push(i);
                    }
                }
                for &l in &cp.links {
                    link_subs.entry(l).or_default().push(i);
                }
            }
            nodes.push(Node { live, all_links, open, pathset });
            specs.push(s.clone());
        }
        for subs in &mut kind_subs {
            subs.sort_unstable();
            subs.dedup();
        }
        email_subs.sort_unstable();
        email_subs.dedup();
        for subs in link_subs.values_mut() {
            subs.sort_unstable();
            subs.dedup();
        }
        SubstratePatch {
            base_stamp: self.stamp,
            touched,
            slot_of,
            providers,
            nodes,
            specs,
            classes: self.classes + new_classes.len(),
            pathsets: self.pathsets + new_pathsets.len(),
            kind_subs,
            email_subs,
            link_subs,
        }
    }

    /// The forward fixed point with `patch` overlaid on this substrate:
    /// touched nodes read their recompiled state, everything else reads
    /// the base. Byte-identical to compiling the patched population from
    /// scratch and running [`Self::forward`] — pinned by the whatif
    /// equivalence suite — at a cost proportional to the blast radius.
    ///
    /// # Panics
    ///
    /// If `patch` was compiled against a different substrate.
    pub fn forward_patched(
        &self,
        patch: &SubstratePatch,
        seeds: &[ServiceId],
        memo_enabled: bool,
    ) -> ForwardResult {
        self.forward_patched_with(&mut self.scratch(), patch, seeds, memo_enabled)
    }

    /// [`Self::forward_patched`] reusing caller-owned scratch buffers.
    pub fn forward_patched_with(
        &self,
        scratch: &mut ForwardScratch,
        patch: &SubstratePatch,
        seeds: &[ServiceId],
        memo_enabled: bool,
    ) -> ForwardResult {
        self.forward_patched_in_with(scratch, patch, EdgeClass::All, seeds, memo_enabled)
    }

    /// [`Self::forward_patched_with`] restricted to one edge class.
    pub fn forward_patched_in_with(
        &self,
        scratch: &mut ForwardScratch,
        patch: &SubstratePatch,
        class: EdgeClass,
        seeds: &[ServiceId],
        memo_enabled: bool,
    ) -> ForwardResult {
        assert_eq!(
            patch.base_stamp, self.stamp,
            "substrate patch applied to a substrate it was not compiled against"
        );
        self.forward_inner(scratch, seeds, memo_enabled, None, Some(patch), class)
    }

    /// The node to read for id `i` under an optional patch.
    #[inline]
    fn node_at<'s>(&'s self, patch: Option<&'s SubstratePatch>, i: u32) -> &'s Node {
        if let Some(p) = patch {
            let slot = p.slot_of[i as usize];
            if slot != u32::MAX {
                return &p.nodes[slot as usize];
            }
        }
        &self.nodes[i as usize]
    }

    /// The provider to read for id `i` under an optional patch.
    #[inline]
    fn provider_at<'s>(&'s self, patch: Option<&'s SubstratePatch>, i: u32) -> &'s Provider {
        if let Some(p) = patch {
            let slot = p.slot_of[i as usize];
            if slot != u32::MAX {
                return &p.providers[slot as usize];
            }
        }
        &self.providers[i as usize]
    }

    /// The spec to materialize for id `i` under an optional patch.
    #[inline]
    fn spec_at<'s>(&'s self, patch: Option<&'s SubstratePatch>, i: u32) -> &'s ServiceSpec {
        if let Some(p) = patch {
            let slot = p.slot_of[i as usize];
            if slot != u32::MAX {
                return &p.specs[slot as usize];
            }
        }
        &self.specs[i as usize]
    }

    /// The forward fixed point restricted to one user's
    /// [`UserOverlay`]: only *held* services can fall, and a path is
    /// active only when every one of its original factor kinds is
    /// *enabled* by the user. A full overlay (every service held, every
    /// factor enabled) reproduces [`Self::forward`] exactly — pinned by
    /// the scalar-degenerate regression tests.
    ///
    /// This is the one-user-at-a-time *reference* the 64-lane sweep in
    /// [`crate::score`] is property-tested against. The cross-round
    /// `min_providers` memo is bypassed: its pathset key does not see
    /// which paths the overlay deactivated, so two nodes sharing a
    /// pathset id may have different active subsets under the same
    /// overlay.
    pub fn forward_overlay(&self, overlay: &UserOverlay) -> ForwardResult {
        self.forward_overlay_with(&mut self.scratch(), overlay)
    }

    /// [`Self::forward_overlay`] reusing caller-owned scratch buffers.
    pub fn forward_overlay_with(
        &self,
        scratch: &mut ForwardScratch,
        overlay: &UserOverlay,
    ) -> ForwardResult {
        self.forward_inner(scratch, &[], false, Some(overlay), None, EdgeClass::All)
    }

    /// [`Self::forward_overlay_with`] restricted to one edge class —
    /// the scalar reference for class-filtered lane scoring.
    pub fn forward_overlay_in_with(
        &self,
        scratch: &mut ForwardScratch,
        overlay: &UserOverlay,
        class: EdgeClass,
    ) -> ForwardResult {
        self.forward_inner(scratch, &[], false, Some(overlay), None, class)
    }

    fn forward_inner(
        &self,
        scratch: &mut ForwardScratch,
        seeds: &[ServiceId],
        memo_enabled: bool,
        overlay: Option<&UserOverlay>,
        patch: Option<&SubstratePatch>,
        class: EdgeClass,
    ) -> ForwardResult {
        let _span =
            if patch.is_some() { obs::span("forward.patched") } else { obs::span("forward.prepared") };
        // All-ones when no overlay: `fmask & factors == fmask` is then
        // vacuous and the plain forward path is bit-identical to before.
        let factors = overlay.map_or(u16::MAX, |ov| ov.factors);
        let memo_enabled = memo_enabled && overlay.is_none();
        let stats = Stats::fetch();
        obs::add("engine.runs", 1);
        self.reset_scratch(scratch, patch);
        let n = self.nodes.len();
        let mut st = RunState::default();
        let mut records: BTreeMap<ServiceId, CompromiseRecord> = BTreeMap::new();
        let mut rounds: Vec<Vec<ServiceId>> = Vec::new();
        let mut compromised_count = 0usize;

        // Round 0: seeds.
        let mut seed_round = Vec::new();
        for (i, s) in self.specs.iter().enumerate() {
            if seeds.contains(&s.id) {
                set_bit(&mut scratch.compromised, i as u32);
                compromised_count += 1;
                let provider = self.provider_at(patch, i as u32);
                st.absorb(provider);
                register(provider, i as u32, &mut scratch.class_seen, &mut scratch.reps, &stats);
                records.insert(s.id.clone(), CompromiseRecord { round: 0, min_providers: 0 });
                seed_round.push(s.id.clone());
            }
        }
        rounds.push(seed_round);

        // Round 1 evaluates every standing node (under an overlay, every
        // standing *held* node); afterwards only subscribers of flipped
        // flags can change.
        for i in 0..n as u32 {
            if !bit(&scratch.compromised, i) && overlay.map_or(true, |ov| bit(&ov.held, i)) {
                set_bit(&mut scratch.frontier, i);
            }
        }
        let mut frontier_len =
            scratch.frontier.iter().map(|w| w.count_ones() as usize).sum::<usize>();

        while frontier_len > 0 {
            let round = rounds.len();
            stats.rounds.inc();
            stats.evaluated.add(frontier_len as u64);
            stats.skipped.add(((n - compromised_count) - frontier_len) as u64);
            obs::observe("engine.frontier_size", frontier_len as u64);
            // Synchronous BFS: the whole frontier is judged against the
            // same pre-round state, so `round` stays a true layer number.
            scratch.newly.clear();
            {
                let _eval = obs::span("evaluate");
                for (w, &word) in scratch.frontier.iter().enumerate() {
                    let mut m = word;
                    while m != 0 {
                        let i = (w as u32) << 6 | m.trailing_zeros();
                        m &= m - 1;
                        let sat = self.node_at(patch, i).live.iter().any(|cp| {
                            class.admits_recovery(cp.recovery)
                                && cp.fmask & factors == cp.fmask
                                && cp.req & !st.eff == 0
                                && (!cp.needs_email || st.email)
                                && (!cp.needs_cs
                                    || (self.ap_kinds | st.eff).count_ones() >= 3)
                                && cp.links.iter().all(|&l| bit(&scratch.compromised, l))
                        });
                        if sat {
                            scratch.newly.push(i);
                        }
                    }
                }
            }
            if scratch.newly.is_empty() {
                break;
            }
            stats.fell.add(scratch.newly.len() as u64);
            // Records are computed against the *pre-round* compromised
            // set: providers are accounts already fallen when this layer
            // was judged, never same-round peers.
            let mut ids = Vec::with_capacity(scratch.newly.len());
            {
                let _rec = obs::span("min_providers");
                for k in 0..scratch.newly.len() {
                    let i = scratch.newly[k];
                    stats.minprov_queries.inc();
                    let min_providers = self.min_providers(
                        i,
                        memo_enabled,
                        factors,
                        class,
                        patch,
                        &scratch.compromised,
                        &scratch.reps,
                        &mut scratch.memo,
                        &mut scratch.candidates,
                        &stats,
                    );
                    records
                        .insert(self.specs[i as usize].id.clone(), CompromiseRecord { round, min_providers });
                    ids.push(self.specs[i as usize].id.clone());
                }
            }

            let (before_eff, before_email) = (st.eff, st.email);
            {
                let _abs = obs::span("absorb");
                for k in 0..scratch.newly.len() {
                    let i = scratch.newly[k];
                    set_bit(&mut scratch.compromised, i);
                    let provider = self.provider_at(patch, i);
                    st.absorb(provider);
                    register(provider, i, &mut scratch.class_seen, &mut scratch.reps, &stats);
                }
            }
            compromised_count += scratch.newly.len();
            rounds.push(ids);

            // Next frontier: subscribers of every flag that flipped.
            // Under a patch both subscription sets are read: the base's
            // (stale entries for touched nodes are harmless — they only
            // re-evaluate) and the patch's extras for paths the rewrite
            // introduced.
            scratch.frontier.iter_mut().for_each(|w| *w = 0);
            for slot in 0..6 {
                if st.eff & (1 << slot) != 0 && before_eff & (1 << slot) == 0 {
                    for &sub in &self.kind_subs[slot] {
                        set_bit(&mut scratch.frontier, sub);
                    }
                    if let Some(p) = patch {
                        for &sub in &p.kind_subs[slot] {
                            set_bit(&mut scratch.frontier, sub);
                        }
                    }
                }
            }
            if st.email && !before_email {
                for &sub in &self.email_subs {
                    set_bit(&mut scratch.frontier, sub);
                }
                if let Some(p) = patch {
                    for &sub in &p.email_subs {
                        set_bit(&mut scratch.frontier, sub);
                    }
                }
            }
            for &i in &scratch.newly {
                for &sub in &self.link_subs[i as usize] {
                    set_bit(&mut scratch.frontier, sub);
                }
                if let Some(subs) = patch.and_then(|p| p.link_subs.get(&i)) {
                    for &sub in subs {
                        set_bit(&mut scratch.frontier, sub);
                    }
                }
            }
            frontier_len = 0;
            for w in 0..scratch.frontier.len() {
                scratch.frontier[w] &= !scratch.compromised[w];
                if let Some(ov) = overlay {
                    scratch.frontier[w] &= ov.held[w];
                }
                frontier_len += scratch.frontier[w].count_ones() as usize;
            }
        }

        let uncompromised = self
            .specs
            .iter()
            .enumerate()
            .filter(|(i, _)| !bit(&scratch.compromised, *i as u32))
            .map(|(_, s)| s.id.clone())
            .collect();
        // The pool is rebuilt only at materialization: absorption is
        // commutative and idempotent, so absorbing the compromised set
        // in node order reproduces the round-order pool exactly.
        let mut final_pool = InfoPool::new();
        for i in 0..self.specs.len() {
            if bit(&scratch.compromised, i as u32) {
                final_pool.absorb_compromise(self.spec_at(patch, i as u32), self.platform);
            }
        }
        ForwardResult { rounds, records, uncompromised, final_pool }
    }

    /// Fewest previously-compromised providers whose pooled exposures
    /// (plus the profile) satisfy one of the node's live paths — 0, 1,
    /// 2 or 3 (capped). Same enumeration as the incremental engine:
    /// one candidate per informative pool-signature class, plus any
    /// compromised provider the node links explicitly.
    #[allow(clippy::too_many_arguments)]
    fn min_providers(
        &self,
        node: u32,
        memo_enabled: bool,
        factors: u16,
        class: EdgeClass,
        patch: Option<&SubstratePatch>,
        compromised: &[u64],
        reps: &[u32],
        memo: &mut [(u32, u8)],
        candidates: &mut Vec<u32>,
        stats: &Stats,
    ) -> usize {
        let nd = self.node_at(patch, node);
        let gen = reps.len() as u32;
        // `forward_inner` already forces `memo_enabled` off for overlay
        // runs, keeping the pathset key sound (it cannot distinguish
        // overlay-deactivated path subsets). Class-filtered runs stay
        // memoized through their own per-class pathset slot.
        let slot = if memo_enabled { nd.pathset[class_index(class)] } else { None };
        if let Some(ps) = slot {
            let (g, ans) = memo[ps as usize];
            if g == gen {
                stats.minprov_memo_hits.inc();
                return ans as usize;
            }
            stats.minprov_memo_misses.inc();
        }
        let answer =
            self.min_providers_uncached(nd, factors, class, patch, compromised, reps, candidates);
        if let Some(ps) = slot {
            memo[ps as usize] = (gen, answer as u8);
        }
        answer
    }

    #[allow(clippy::too_many_arguments)]
    fn min_providers_uncached(
        &self,
        nd: &Node,
        factors: u16,
        class: EdgeClass,
        patch: Option<&SubstratePatch>,
        compromised: &[u64],
        reps: &[u32],
        candidates: &mut Vec<u32>,
    ) -> usize {
        if factors == u16::MAX {
            if nd.open[class_index(class)] {
                return 0;
            }
        } else if nd.live.iter().any(|cp| {
            class.admits_recovery(cp.recovery)
                && cp.fmask & factors == cp.fmask
                && cp.req == 0
                && !cp.needs_email
                && !cp.needs_cs
                && cp.links.is_empty()
        }) {
            return 0;
        }
        candidates.clear();
        candidates.extend_from_slice(reps);
        for &l in &nd.all_links {
            if bit(compromised, l) && !candidates.contains(&l) {
                candidates.push(l);
            }
        }
        for &j in candidates.iter() {
            let p = self.provider_at(patch, j);
            let sat = nd.live.iter().any(|cp| {
                class.admits_recovery(cp.recovery)
                    && cp.fmask & factors == cp.fmask
                    && cp.req & !p.eff == 0
                    && (!cp.needs_email || p.email)
                    && (!cp.needs_cs || (self.ap_kinds | p.eff).count_ones() >= 3)
                    && cp.links.iter().all(|&l| l == j)
            });
            if sat {
                return 1;
            }
        }
        for (ai, &a) in candidates.iter().enumerate() {
            let pa = self.provider_at(patch, a);
            for &b in &candidates[ai + 1..] {
                let pb = self.provider_at(patch, b);
                let cov =
                    [pa.cov[0] | pb.cov[0], pa.cov[1] | pb.cov[1], pa.cov[2] | pb.cov[2]];
                let eff = (pa.raw | pb.raw) | cov_complete_bits(cov);
                let email = pa.email || pb.email;
                let sat = nd.live.iter().any(|cp| {
                    class.admits_recovery(cp.recovery)
                        && cp.fmask & factors == cp.fmask
                        && cp.req & !eff == 0
                        && (!cp.needs_email || email)
                        && (!cp.needs_cs || (self.ap_kinds | eff).count_ones() >= 3)
                        && cp.links.iter().all(|&l| l == a || l == b)
                });
                if sat {
                    return 2;
                }
            }
        }
        3
    }
}

/// Files a newly compromised provider into its signature class,
/// electing it representative if the class is new — the compiled form
/// of the incremental engine's `ProviderIndex::register`.
#[inline]
fn register(p: &Provider, i: u32, class_seen: &mut [u64], reps: &mut Vec<u32>, stats: &Stats) {
    if p.class == CLASS_NONE {
        return;
    }
    if bit(class_seen, p.class) {
        stats.class_collapsed.inc();
    } else {
        set_bit(class_seen, p.class);
        reps.push(i);
        stats.class_reps.inc();
    }
}

/// Computes a node's per-class open flags and `min_providers` memo
/// pathset ids from its attack paths and compiled live set. `intern`
/// maps a sorted `(req, email, cs)` key to its id (base or patch-local
/// interning — the two construction sites differ only there).
fn node_class_state(
    paths: &[&AuthPath],
    live: &[CPath],
    mut intern: impl FnMut(Vec<(u8, bool, bool)>) -> u32,
) -> ([bool; 3], [Option<u32>; 3]) {
    let mut open = [false; 3];
    let mut pathset = [None; 3];
    for class in EdgeClass::all() {
        let ci = class_index(class);
        open[ci] = live.iter().any(|cp| {
            class.admits_recovery(cp.recovery)
                && cp.req == 0
                && !cp.needs_email
                && !cp.needs_cs
                && cp.links.is_empty()
        });
        let any_link = paths.iter().any(|p| {
            class.admits(p.purpose)
                && p.factors.iter().any(|f| matches!(f, CredentialFactor::LinkedAccount(_)))
        });
        if !any_link {
            let mut key: Vec<(u8, bool, bool)> = live
                .iter()
                .filter(|cp| class.admits_recovery(cp.recovery))
                .map(|cp| (cp.req, cp.needs_email, cp.needs_cs))
                .collect();
            key.sort_unstable();
            pathset[ci] = Some(intern(key));
        }
    }
    (open, pathset)
}

/// Folds one attack path against the static profile. `None` means the
/// path can never be satisfied under this profile (equivalently: it is
/// unsatisfied by every pool), so it is dropped from the live set.
fn compile_path(
    path: &AuthPath,
    ap: &AttackerProfile,
    cs_static: bool,
    id_of: &BTreeMap<ServiceId, u32>,
) -> Option<CPath> {
    use CredentialFactor as F;
    let mut cp = CPath {
        req: 0,
        needs_email: false,
        needs_cs: false,
        links: Vec::new(),
        fmask: 0,
        fmask_id: 0,
        recovery: path.purpose.is_recovery(),
    };
    for f in &path.factors {
        // The overlay mask records the *original* factor kind before any
        // profile folding: a path whose SMS step the profile intercepts
        // for free must still die for a user who never enabled SMS.
        cp.fmask |= OverlayFactor::of(f);
        match f {
            F::SmsCode => {
                if !ap.sms_interception {
                    return None;
                }
            }
            F::CellphoneNumber => {
                if !ap.knows_phone_number {
                    cp.req |= BIT_CELLPHONE;
                }
            }
            F::EmailCode | F::EmailLink => {
                if !ap.email_interception {
                    cp.needs_email = true;
                }
            }
            F::RealName => {
                if !ap.social_engineering_db {
                    cp.req |= BIT_REAL_NAME;
                }
            }
            F::CitizenId => cp.req |= BIT_CITIZEN_ID,
            F::BankcardNumber => cp.req |= BIT_BANKCARD,
            F::SecurityQuestion => cp.req |= BIT_SECURITY,
            F::CustomerService => {
                if !cs_static {
                    cp.needs_cs = true;
                }
            }
            F::LinkedAccount(id) => match id_of.get(id) {
                // A link to a node outside the platform-eligible
                // population can never be owned: dead path.
                Some(&j) => cp.links.push(j),
                None => return None,
            },
            // Secrets and robust factors are never satisfiable by
            // harvesting (and `attack_paths` already filters them);
            // unknown future variants conservatively match
            // `factor_satisfied_view`'s `_ => false`.
            _ => return None,
        }
    }
    Some(cp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::forward_naive_impl;
    use actfort_ecosystem::dataset::curated_services;

    fn assert_equivalent(
        specs: &[ServiceSpec],
        platform: Platform,
        ap: &AttackerProfile,
        seeds: &[ServiceId],
    ) {
        let naive = forward_naive_impl(specs, platform, ap, seeds, EdgeClass::All);
        let prepared = Prepared::new(specs, platform, *ap);
        for memo in [true, false] {
            let got = prepared.forward(seeds, memo);
            assert_eq!(naive, got, "{platform} memo={memo}");
        }
    }

    #[test]
    fn equivalent_on_curated_population() {
        let specs = curated_services();
        for platform in [Platform::Web, Platform::MobileApp] {
            assert_equivalent(&specs, platform, &AttackerProfile::paper_default(), &[]);
            assert_equivalent(&specs, platform, &AttackerProfile::none(), &["gmail".into()]);
            assert_equivalent(&specs, platform, &AttackerProfile::targeted(), &[]);
            assert_equivalent(&specs, platform, &AttackerProfile::email_surface(), &[]);
        }
    }

    #[test]
    fn equivalent_on_synthetic_population() {
        let specs = actfort_ecosystem::synth::paper_population(2021);
        for platform in [Platform::Web, Platform::MobileApp] {
            assert_equivalent(&specs, platform, &AttackerProfile::paper_default(), &[]);
        }
    }

    #[test]
    fn scratch_reuse_is_state_free() {
        // One substrate, one scratch, many seed sets: each run must
        // match a fresh-scratch run exactly (no state bleeds through).
        let specs = curated_services();
        let prepared = Prepared::new(&specs, Platform::Web, AttackerProfile::paper_default());
        let mut scratch = prepared.scratch();
        let seed_sets: Vec<Vec<ServiceId>> = vec![
            vec![],
            vec!["gmail".into()],
            vec!["taobao".into(), "gmail".into()],
            vec![],
        ];
        for seeds in &seed_sets {
            let reused = prepared.forward_with(&mut scratch, seeds, true);
            let fresh = prepared.forward(seeds, true);
            assert_eq!(reused, fresh, "seeds={seeds:?}");
        }
    }

    #[test]
    fn min_providers_accounting_matches_reference() {
        // The hand-built ecosystem from the engine's pre-round
        // accounting regression: partial-coverage pooling (2 providers),
        // same-round peers not counted, link candidates beyond the
        // class representatives.
        use actfort_ecosystem::factor::CredentialFactor as F;
        use actfort_ecosystem::info::{ExposedField, PersonalInfoKind};
        use actfort_ecosystem::policy::Purpose;
        use actfort_ecosystem::spec::ServiceDomain;

        let b = |id: &str| ServiceSpec::builder(id, id, ServiceDomain::Other);
        let specs = vec![
            b("leak-head")
                .path(Purpose::SignIn, Platform::Web, &[F::SmsCode])
                .expose_web(ExposedField::partial(PersonalInfoKind::CitizenId, 10, 0))
                .build(),
            b("leak-tail")
                .path(Purpose::SignIn, Platform::Web, &[F::SmsCode])
                .expose_web(ExposedField::partial(PersonalInfoKind::CitizenId, 0, 8))
                .build(),
            b("registry").path(Purpose::PasswordReset, Platform::Web, &[F::CitizenId]).build(),
            b("registry-mirror")
                .path(Purpose::PasswordReset, Platform::Web, &[F::CitizenId])
                .expose_web(ExposedField::clear(PersonalInfoKind::CitizenId))
                .build(),
            b("vault")
                .path(Purpose::PasswordReset, Platform::Web, &[F::LinkedAccount("registry".into())])
                .build(),
            b("fortress").path(Purpose::SignIn, Platform::Web, &[F::Password]).build(),
        ];
        let ap = AttackerProfile::paper_default();
        assert_equivalent(&specs, Platform::Web, &ap, &[]);
        let r = Prepared::new(&specs, Platform::Web, ap).forward(&[], true);
        let rec = |id: &str| *r.records.get(&id.into()).unwrap_or_else(|| panic!("{id} falls"));
        assert_eq!(rec("registry"), CompromiseRecord { round: 2, min_providers: 2 });
        assert_eq!(rec("vault"), CompromiseRecord { round: 3, min_providers: 1 });
        assert_eq!(r.uncompromised, vec![ServiceId::new("fortress")]);
    }

    #[test]
    fn substrate_is_platform_filtered() {
        let specs = curated_services();
        let web = Prepared::new(&specs, Platform::Web, AttackerProfile::paper_default());
        assert!(web.specs().iter().all(|s| s.has_web));
        assert!(web.node_count() < specs.len(), "mobile-only services are excluded");
    }
}
